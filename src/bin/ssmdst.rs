//! `ssmdst` — command-line driver for the self-stabilizing MDST protocol.
//!
//! ```text
//! ssmdst --family gnp-sparse --n 48 --seed 7 --scheduler async
//! ssmdst --family spider --n 16 --corrupt 0.5 --dot tree.dot
//! ```
//!
//! Generates a workload graph, runs the protocol to quiescence, optionally
//! injects a transient fault and measures recovery, and prints a summary
//! (degree vs. lower bound, rounds, message counts). With `--dot PATH` the
//! final tree is written as Graphviz DOT.

use ssmdst::core::oracle;
use ssmdst::graph::generators::GraphFamily;
use ssmdst::prelude::*;
use ssmdst::sim::faults::{inject, FaultPlan};

#[derive(Debug)]
struct Args {
    family: String,
    n: usize,
    seed: u64,
    scheduler: String,
    corrupt: f64,
    dot: Option<String>,
    max_rounds: u64,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            family: "gnp-sparse".into(),
            n: 32,
            seed: 1,
            scheduler: "sync".into(),
            corrupt: 0.0,
            dot: None,
            max_rounds: 500_000,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().ok_or_else(|| format!("missing value for {flag}"));
        match flag.as_str() {
            "--family" => args.family = val()?,
            "--n" => args.n = val()?.parse().map_err(|e| format!("--n: {e}"))?,
            "--seed" => args.seed = val()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--scheduler" => args.scheduler = val()?,
            "--corrupt" => args.corrupt = val()?.parse().map_err(|e| format!("--corrupt: {e}"))?,
            "--dot" => args.dot = Some(val()?),
            "--max-rounds" => {
                args.max_rounds = val()?.parse().map_err(|e| format!("--max-rounds: {e}"))?
            }
            "--help" | "-h" => {
                println!(
                    "usage: ssmdst [--family NAME] [--n N] [--seed S] \
                     [--scheduler sync|async|adversarial] [--corrupt FRAC] \
                     [--dot PATH] [--max-rounds R]\nfamilies: {}",
                    GraphFamily::all()
                        .iter()
                        .map(|f| f.label())
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e} (try --help)");
            std::process::exit(2);
        }
    };
    let Some(family) = GraphFamily::all().iter().find(|f| f.label() == args.family) else {
        eprintln!(
            "unknown family '{}'; available: {}",
            args.family,
            GraphFamily::all()
                .iter()
                .map(|f| f.label())
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(2);
    };
    let sched = match args.scheduler.as_str() {
        "sync" => Scheduler::Synchronous,
        "async" => Scheduler::RandomAsync { seed: args.seed },
        "adversarial" => Scheduler::Adversarial { seed: args.seed },
        other => {
            eprintln!("unknown scheduler '{other}' (sync|async|adversarial)");
            std::process::exit(2);
        }
    };

    let g = family.generate(args.n, args.seed);
    let lb = ssmdst::graph::degree_lower_bound(&g);
    println!(
        "graph: {} n={} m={} Δ(G)={} (Δ* ≥ {lb})",
        family.label(),
        g.n(),
        g.m(),
        g.max_degree()
    );

    let net = build_network(&g, Config::for_n(g.n()));
    let mut runner = Runner::new(net, sched);
    let quiet = (6 * g.n() as u64).max(64);
    let out = runner.run_to_quiescence(args.max_rounds, quiet, oracle::projection);
    if !out.converged() {
        eprintln!("did not stabilize within {} rounds", args.max_rounds);
        std::process::exit(1);
    }
    let t = oracle::try_extract_tree(&g, runner.network()).expect("stabilized ⇒ tree");
    println!(
        "stabilized: deg(T)={} after ~{} rounds, {} messages (largest {} bits)",
        t.max_degree(),
        runner.round() - quiet,
        runner.network().metrics.total_sent,
        runner.network().metrics.max_message_bits(),
    );

    if args.corrupt > 0.0 {
        let victims = inject(
            runner.network_mut(),
            FaultPlan::partial(args.corrupt, args.seed + 1),
        );
        println!("injected fault: corrupted {} nodes", victims.len());
        let before = runner.round();
        let out = runner.run_to_quiescence(args.max_rounds, quiet, oracle::projection);
        if !out.converged() {
            eprintln!("did not recover within {} rounds", args.max_rounds);
            std::process::exit(1);
        }
        let t = oracle::try_extract_tree(&g, runner.network()).expect("recovered ⇒ tree");
        println!(
            "recovered: deg(T)={} after ~{} rounds",
            t.max_degree(),
            runner.round() - before - quiet
        );
    }

    if let Some(path) = args.dot {
        let t = oracle::try_extract_tree(&g, runner.network()).expect("tree");
        std::fs::write(&path, ssmdst::graph::dot::to_dot(&g, Some(&t)))
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
}
