//! `ssmdst` — command-line driver for the self-stabilizing MDST protocol.
//!
//! ```text
//! ssmdst --family gnp-sparse --n 48 --seed 7 --scheduler async
//! ssmdst --family spider --n 16 --corrupt 0.5 --dot tree.dot
//! ssmdst replay failing.scn --trace run.trace
//! ssmdst replay corrupt-start-total --expect tests/golden/corrupt-start-total.trace
//! ssmdst shrink failing.scn --pred quality -o minimal.scn
//! ssmdst storm --seed 1 --execs 1000 --workers 8 --out storm-corpus/
//! ```
//!
//! The flag form generates a workload graph, runs the protocol to
//! quiescence, optionally injects a transient fault and measures recovery,
//! and prints a summary (degree vs. lower bound, rounds, message counts).
//! With `--dot PATH` the final tree is written as Graphviz DOT.
//!
//! The `replay` subcommand runs a scenario (`.scn` file or corpus name) and
//! prints its per-phase outcomes and chained run digest; `--expect FILE`
//! verifies the run reproduces a recorded trace bit-for-bit, `--trace FILE`
//! records one. The `shrink` subcommand delta-debugs a failing scenario
//! down to a minimal reproducer under a named failure predicate. The
//! `storm` subcommand runs the coverage-guided fuzzing loop: mutate corpus
//! scenarios, fan executions across workers, admit only novelty-bearing
//! mutants, report execs/sec and corpus growth, and auto-shrink any judge
//! failure into a committable `.scn` reproducer (exit 1).

use ssmdst::core::oracle;
use ssmdst::graph::generators::GraphFamily;
use ssmdst::prelude::*;
use ssmdst::scenario::{corpus, engine, scn, shrink, storm, Predicate, StormConfig};
use ssmdst::sim::faults::FaultPlan;
use ssmdst::sim::parallel::default_workers;
use ssmdst::sim::RunTrace;

#[derive(Debug)]
struct Args {
    family: String,
    n: usize,
    seed: u64,
    scheduler: String,
    corrupt: f64,
    dot: Option<String>,
    max_rounds: u64,
    backend: Backend,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            family: "gnp-sparse".into(),
            n: 32,
            seed: 1,
            scheduler: "sync".into(),
            corrupt: 0.0,
            dot: None,
            max_rounds: 500_000,
            backend: Backend::Reference,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().ok_or_else(|| format!("missing value for {flag}"));
        match flag.as_str() {
            "--family" => args.family = val()?,
            "--n" => args.n = val()?.parse().map_err(|e| format!("--n: {e}"))?,
            "--seed" => args.seed = val()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--scheduler" => args.scheduler = val()?,
            "--corrupt" => args.corrupt = val()?.parse().map_err(|e| format!("--corrupt: {e}"))?,
            "--dot" => args.dot = Some(val()?),
            "--max-rounds" => {
                args.max_rounds = val()?.parse().map_err(|e| format!("--max-rounds: {e}"))?
            }
            // Unknown backends are a listed-options parse error, never a
            // silent fall-through to the reference loop.
            "--backend" => args.backend = Backend::parse(&val()?)?,
            "--help" | "-h" => {
                println!(
                    "usage: ssmdst [--family NAME] [--n N] [--seed S] \
                     [--scheduler sync|async|adversarial] [--corrupt FRAC] \
                     [--dot PATH] [--max-rounds R] [--backend reference|batched|soa|sharded[:K]]\n\
                     \x20      ssmdst replay SCENARIO.scn|CORPUS-NAME [--trace OUT] [--expect GOLDEN] [--backend B]\n\
                     \x20      ssmdst shrink SCENARIO.scn|CORPUS-NAME --pred not-converged|degree-ge:K|quality [-o OUT.scn]\n\
                     \x20      ssmdst storm [SEED.scn|CORPUS-NAME ...] --seed S --execs N [--workers W] [--batch B]\n\
                     \x20                   [--max-corpus M] [--fail PRED] [--out DIR] [--expect-admissions K] [--distill]\n\
                     families: {}",
                    GraphFamily::all()
                        .iter()
                        .map(|f| f.label())
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

/// Load a scenario from a `.scn` file path or a corpus name.
fn load_scenario(handle: &str) -> Scenario {
    if let Some(s) = corpus::by_name(handle) {
        return s;
    }
    let text = std::fs::read_to_string(handle).unwrap_or_else(|e| {
        eprintln!("error: '{handle}' is neither a corpus scenario nor a readable file: {e}");
        eprintln!(
            "corpus scenarios: {}",
            corpus::corpus()
                .iter()
                .map(|s| s.name.clone())
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(2);
    });
    scn::parse(&text).unwrap_or_else(|e| {
        eprintln!("error: parsing {handle}: {e}");
        std::process::exit(2);
    })
}

/// Value of a flag; a flag with no following value is a hard error (never
/// silently skip the work the flag asked for).
fn flag_value(flag: &str, it: &mut std::slice::Iter<String>) -> String {
    match it.next() {
        Some(v) => v.clone(),
        None => {
            eprintln!("error: {flag} requires a value");
            std::process::exit(2);
        }
    }
}

/// `ssmdst replay SCENARIO [--trace OUT] [--expect GOLDEN] [--backend B]`
fn cmd_replay(args: &[String]) -> ! {
    let mut handle = None;
    let mut trace_out = None;
    let mut expect = None;
    let mut backend = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--trace" => trace_out = Some(flag_value("--trace", &mut it)),
            "--expect" => expect = Some(flag_value("--expect", &mut it)),
            "--backend" => {
                // Listed-options error; an unknown backend must never
                // silently fall through to the reference loop.
                backend = Some(
                    Backend::parse(&flag_value("--backend", &mut it)).unwrap_or_else(|e| {
                        eprintln!("error: {e}");
                        std::process::exit(2);
                    }),
                )
            }
            other if !other.starts_with("--") && handle.is_none() => {
                handle = Some(other.to_string())
            }
            other => {
                eprintln!("error: unexpected replay argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let Some(handle) = handle else {
        eprintln!(
            "usage: ssmdst replay SCENARIO.scn|CORPUS-NAME [--trace OUT] [--expect GOLDEN] \
             [--backend reference|batched|soa|sharded[:K]]"
        );
        std::process::exit(2);
    };
    let mut scenario = load_scenario(&handle);
    if let Some(b) = backend {
        // The backend is a mechanism, not replay identity: overriding it
        // leaves the fingerprint (and thus --expect comparisons) intact.
        scenario.backend = b;
    }
    let (out, trace) = engine::run_traced_any(&scenario);
    println!(
        "scenario: {} (protocol={} backend={} n={} m={} fingerprint={:016x})",
        scenario.name,
        scenario.protocol.label(),
        scenario.backend,
        out.n,
        out.m,
        scenario.fingerprint()
    );
    for ph in &out.phases {
        let verdict = if !ph.checked {
            "unjudged".to_string()
        } else if ph.ok {
            format!("ok (deg={} components={})", ph.degree, ph.components)
        } else {
            format!("FAILED (deg={} components={})", ph.degree, ph.components)
        };
        println!(
            "phase {:<24} rounds={:<8} {}{verdict}",
            ph.label,
            ph.rounds,
            if ph.converged { "" } else { "NOT CONVERGED " },
        );
    }
    println!("digest: {:016x}", out.digest);
    if let Some(path) = trace_out {
        std::fs::write(&path, trace.render()).unwrap_or_else(|e| {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(2);
        });
        println!("wrote {path}");
    }
    if let Some(path) = expect {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("error: reading {path}: {e}");
            std::process::exit(2);
        });
        let golden = RunTrace::parse(&text).unwrap_or_else(|e| {
            eprintln!("error: parsing {path}: {e}");
            std::process::exit(2);
        });
        match golden.first_divergence(&trace) {
            None => println!("replay matches {path} bit-for-bit"),
            Some(d) => {
                eprintln!("replay DIVERGED from {path}: {d}");
                std::process::exit(1);
            }
        }
    }
    std::process::exit(if out.all_ok() { 0 } else { 1 });
}

/// `ssmdst shrink SCENARIO --pred PRED [-o OUT.scn]`
fn cmd_shrink(args: &[String]) -> ! {
    let mut handle = None;
    let mut pred = None;
    let mut out_path = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--pred" => pred = Some(flag_value("--pred", &mut it)),
            "-o" | "--out" => out_path = Some(flag_value(a, &mut it)),
            other if !other.starts_with('-') && handle.is_none() => {
                handle = Some(other.to_string())
            }
            other => {
                eprintln!("error: unexpected shrink argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let (Some(handle), Some(pred)) = (handle, pred) else {
        eprintln!(
            "usage: ssmdst shrink SCENARIO.scn|CORPUS-NAME --pred not-converged|degree-ge:K|quality [-o OUT.scn]"
        );
        std::process::exit(2);
    };
    let predicate = Predicate::parse(&pred).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let scenario = load_scenario(&handle);
    eprintln!(
        "shrinking '{}' (size {}) under predicate {} …",
        scenario.name,
        scenario.size(),
        predicate.label()
    );
    match shrink::shrink(&scenario, |s| predicate.test(s)) {
        None => {
            eprintln!(
                "scenario does not fail predicate {} — nothing to shrink",
                predicate.label()
            );
            std::process::exit(1);
        }
        Some((minimal, stats)) => {
            eprintln!(
                "minimized: size {} -> {} ({} candidates tried, {} accepted)",
                scenario.size(),
                minimal.size(),
                stats.attempts,
                stats.accepted
            );
            let text = minimal.canonical();
            if let Some(path) = out_path {
                std::fs::write(&path, &text).unwrap_or_else(|e| {
                    eprintln!("error: writing {path}: {e}");
                    std::process::exit(2);
                });
                eprintln!("wrote {path}");
            }
            print!("{text}");
            std::process::exit(0);
        }
    }
}

/// `ssmdst storm [SEEDS...] --seed S --execs N [--workers W] [--batch B]
///               [--fail PRED] [--out DIR] [--expect-admissions K] [--distill]`
///
/// Coverage-guided fuzzing over the scenario corpus: mutate, execute,
/// admit novelty, auto-shrink judge failures. With no seed operands the
/// committed curated corpus is the seed set. With `--distill` the final
/// corpus (seeds + admissions) is greedily reduced to a minimal subset
/// covering every observed coverage feature, and `--out` receives the
/// distilled subset instead of the raw admissions.
fn cmd_storm(args: &[String]) -> ! {
    let mut seeds_handles: Vec<String> = Vec::new();
    let mut cfg = StormConfig::new(1, 256);
    cfg.workers = default_workers();
    let mut out_dir = None;
    let mut expect_admissions = 0usize;
    let mut do_distill = false;
    let parse_or_die = |flag: &str, v: String| -> u64 {
        v.parse().unwrap_or_else(|e| {
            eprintln!("error: {flag}: {e}");
            std::process::exit(2);
        })
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => cfg.seed = parse_or_die(a, flag_value(a, &mut it)),
            "--execs" => cfg.execs = parse_or_die(a, flag_value(a, &mut it)),
            "--workers" => cfg.workers = parse_or_die(a, flag_value(a, &mut it)) as usize,
            "--batch" => cfg.batch = parse_or_die(a, flag_value(a, &mut it)) as usize,
            "--max-corpus" => cfg.max_corpus = parse_or_die(a, flag_value(a, &mut it)) as usize,
            "--expect-admissions" => {
                expect_admissions = parse_or_die(a, flag_value(a, &mut it)) as usize
            }
            "--fail" => {
                cfg.failure = Predicate::parse(&flag_value(a, &mut it)).unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                })
            }
            "--out" => out_dir = Some(flag_value(a, &mut it)),
            "--distill" => do_distill = true,
            other if !other.starts_with("--") => seeds_handles.push(other.to_string()),
            other => {
                eprintln!("error: unexpected storm argument {other:?}");
                eprintln!(
                    "usage: ssmdst storm [SEED.scn|CORPUS-NAME ...] --seed S --execs N \
                     [--workers W] [--batch B] [--max-corpus M] [--fail PRED] [--out DIR] \
                     [--expect-admissions K] [--distill]"
                );
                std::process::exit(2);
            }
        }
    }
    let seeds: Vec<Scenario> = if seeds_handles.is_empty() {
        corpus::corpus()
    } else {
        seeds_handles.iter().map(|h| load_scenario(h)).collect()
    };
    println!(
        "storm: seeds={} seed={} execs={} workers={} batch={} failure={}",
        seeds.len(),
        cfg.seed,
        cfg.execs,
        cfg.workers,
        cfg.batch,
        cfg.failure.label()
    );
    let report = storm::storm_observed(&seeds, &cfg, |a| {
        println!(
            "  admit exec={:<6} op={:<15} parent={:<28} sig={:016x} features+{} -> {}",
            a.exec,
            a.kind.label(),
            a.parent,
            a.signature,
            a.new_features,
            a.scenario.name
        );
    });
    println!(
        "storm: {} execs in {:.2}s ({:.1} execs/sec)",
        report.execs,
        report.elapsed_secs,
        report.execs_per_sec()
    );
    println!(
        "corpus: {} -> {} (+{} admitted), {} coverage features",
        report.seeds,
        report.corpus_size,
        report.admitted.len(),
        report.features
    );
    // Distill after a clean storm: greedy minimal subset of the final
    // corpus (seeds + admissions) still covering every observed feature.
    let distilled = if do_distill && report.failure.is_none() {
        let mut candidates = seeds.clone();
        candidates.extend(report.admitted.iter().map(|a| a.scenario.clone()));
        let d = storm::distill(&candidates, cfg.workers);
        println!(
            "distilled: {} candidates, {} features -> {} scenarios",
            d.candidates,
            d.features,
            d.selected.len()
        );
        for p in &d.selected {
            println!("  keep {:<28} features+{}", p.scenario.name, p.gain);
        }
        Some(d)
    } else {
        None
    };
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| {
            eprintln!("error: creating {dir}: {e}");
            std::process::exit(2);
        });
        let write = |scenario: &Scenario| {
            let path = format!("{dir}/{}.scn", scenario.name);
            std::fs::write(&path, scenario.canonical()).unwrap_or_else(|e| {
                eprintln!("error: writing {path}: {e}");
                std::process::exit(2);
            });
        };
        if let Some(d) = &distilled {
            for p in &d.selected {
                write(&p.scenario);
            }
            println!("wrote {} distilled .scn files to {dir}", d.selected.len());
        } else {
            for a in &report.admitted {
                write(&a.scenario);
            }
            println!(
                "wrote {} admitted .scn files to {dir}",
                report.admitted.len()
            );
        }
    }
    if let Some(failure) = &report.failure {
        match failure.exec {
            Some(exec) => eprintln!(
                "JUDGE FAILURE at exec {exec} (scenario '{}', predicate {})",
                failure.scenario.name,
                cfg.failure.label()
            ),
            None => eprintln!(
                "JUDGE FAILURE in seed scenario '{}' (predicate {})",
                failure.scenario.name,
                cfg.failure.label()
            ),
        }
        eprintln!(
            "minimized: size {} -> {} ({} candidates tried, {} accepted)",
            failure.scenario.size(),
            failure.shrunk.size(),
            failure.stats.attempts,
            failure.stats.accepted
        );
        println!("--- minimal .scn reproducer (save and run `ssmdst replay`) ---");
        print!("{}", failure.shrunk.canonical());
        // Failure-mode fidelity: shrinking preserves the *predicate*, not
        // necessarily the mechanism, so keep the mutant as executed too.
        if let Some(dir) = &out_dir {
            for (suffix, scenario) in [("failed", &failure.scenario), ("shrunk", &failure.shrunk)] {
                let path = format!("{dir}/{}.{suffix}.scn", scenario.name);
                std::fs::write(&path, scenario.canonical()).unwrap_or_else(|e| {
                    eprintln!("error: writing {path}: {e}");
                });
                println!("wrote {path}");
            }
        }
        std::process::exit(1);
    }
    if report.admitted.len() < expect_admissions {
        eprintln!(
            "error: expected at least {expect_admissions} admissions, got {}",
            report.admitted.len()
        );
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn main() {
    // Subcommand dispatch; the flag form below is the legacy single-run CLI.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match raw.first().map(String::as_str) {
        Some("replay") => cmd_replay(&raw[1..]),
        Some("shrink") => cmd_shrink(&raw[1..]),
        Some("storm") => cmd_storm(&raw[1..]),
        _ => {}
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e} (try --help)");
            std::process::exit(2);
        }
    };
    let Some(family) = GraphFamily::all().iter().find(|f| f.label() == args.family) else {
        eprintln!(
            "unknown family '{}'; available: {}",
            args.family,
            GraphFamily::all()
                .iter()
                .map(|f| f.label())
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(2);
    };
    let sched = match args.scheduler.as_str() {
        "sync" => Scheduler::Synchronous,
        "async" => Scheduler::RandomAsync { seed: args.seed },
        "adversarial" => Scheduler::Adversarial { seed: args.seed },
        other => {
            eprintln!("unknown scheduler '{other}' (sync|async|adversarial)");
            std::process::exit(2);
        }
    };

    let g = family.generate(args.n, args.seed);
    let lb = ssmdst::graph::degree_lower_bound(&g);
    println!(
        "graph: {} n={} m={} Δ(G)={} (Δ* ≥ {lb})",
        family.label(),
        g.n(),
        g.m(),
        g.max_degree()
    );

    // The legacy flag form is a thin layer over the same Session surface
    // the scenario engine and the experiment harness use.
    let quiet = ssmdst::sim::quiet_window(g.n());
    let mut session = Session::from_network(build_network(&g, Config::for_n(g.n())))
        .scheduler(sched)
        .backend(args.backend)
        .horizon(args.max_rounds)
        .build();
    let out = session.run_to_quiescence(quiet, oracle::projection);
    if !out.converged() {
        eprintln!("did not stabilize within {} rounds", args.max_rounds);
        std::process::exit(1);
    }
    let t = oracle::try_extract_tree(&g, session.network()).expect("stabilized ⇒ tree");
    println!(
        "stabilized: deg(T)={} after ~{} rounds, {} messages (largest {} bits)",
        t.max_degree(),
        session.round() - quiet,
        session.network().metrics.total_sent,
        session.network().metrics.max_message_bits(),
    );

    if args.corrupt > 0.0 {
        let victims = session.inject(FaultPlan::partial(args.corrupt, args.seed + 1));
        println!("injected fault: corrupted {} nodes", victims.len());
        let before = session.round();
        let out = session.run_to_quiescence(quiet, oracle::projection);
        if !out.converged() {
            eprintln!("did not recover within {} rounds", args.max_rounds);
            std::process::exit(1);
        }
        let t = oracle::try_extract_tree(&g, session.network()).expect("recovered ⇒ tree");
        println!(
            "recovered: deg(T)={} after ~{} rounds",
            t.max_degree(),
            session.round() - before - quiet
        );
    }

    if let Some(path) = args.dot {
        let t = oracle::try_extract_tree(&g, session.network()).expect("tree");
        std::fs::write(&path, ssmdst::graph::dot::to_dot(&g, Some(&t)))
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
}
