//! # ssmdst — self-stabilizing minimum-degree spanning tree
//!
//! Facade crate re-exporting the whole reproduction of Blin, Gradinariu
//! Potop-Butucaru & Rovedakis, *"Self-stabilizing minimum-degree spanning
//! tree within one from the optimal degree"* (IPDPS 2009):
//!
//! * [`graph`] — graph substrate: representation, generators, exact MDST,
//!   lower bounds ([`ssmdst_graph`]);
//! * [`sim`] — event-driven asynchronous message-passing simulator with
//!   FIFO channels, schedulers, fault injection and dynamic topology
//!   ([`ssmdst_sim`]);
//! * [`core`] — the protocol itself ([`ssmdst_core`]);
//! * [`baselines`] — Fürer–Raghavachari, serialized-improvement and naive
//!   tree baselines ([`ssmdst_baselines`]);
//! * [`scenario`] — declarative scenarios, bit-exact record-replay,
//!   delta-debugging shrinker and campaign sweeps ([`ssmdst_scenario`];
//!   `ssmdst replay` / `ssmdst shrink` on the CLI).
//!
//! ## Paper-to-code map
//!
//! Where the paper's vocabulary lives in this workspace:
//!
//! | paper concept | implementation |
//! |---|---|
//! | optimal degree `Δ*` (called `D*` in places) | [`graph::mdst_exact::exact_mdst`] (exact), [`graph::lower_bound::degree_lower_bound`] (witness bound) |
//! | spanning-tree rules R1/R2, min-ID root election | [`core::spanning_tree`] |
//! | `dmax` propagation (PIF over the tree) | [`core::maxdeg`] |
//! | fundamental-**cycle search** (DFS token per non-tree edge) | [`core::cycle_search`] |
//! | `Action_on_Cycle`, improving/blocking edges, `Deblock` | [`core::reduction`] |
//! | **fragments** (the serialized predecessor \[3\] this paper improves on) | [`baselines::fragment`] |
//! | legitimacy predicate (Definition 1) | [`core::oracle::is_legitimate`] |
//! | transient faults & topology churn | [`sim::faults`] |
//! | re-convergence under churn (`deg ≤ Δ*+1` per component) | [`core::churn`] |
//!
//! ## Quickstart
//!
//! The one-call entry point is [`run`]:
//!
//! ```
//! use ssmdst::prelude::*;
//!
//! // A network whose BFS tree is terrible (hub degree n−1) but whose
//! // optimal spanning tree is a path (Δ* = 2).
//! let g = ssmdst::graph::generators::structured::star_with_ring(8).unwrap();
//!
//! let (out, runner) = ssmdst::run(&g, Config::for_n(g.n()), Scheduler::Synchronous, 10_000);
//! assert!(out.converged());
//! let deg = ssmdst::core::oracle::current_degree(&g, runner.network()).unwrap();
//! assert!(deg <= 3); // Δ* + 1 (Theorem 2)
//! ```
//!
//! Driving the [`sim::Runner`] by hand gives round-level control:
//!
//! ```
//! use ssmdst::prelude::*;
//!
//! let g = ssmdst::graph::generators::structured::star_with_ring(8).unwrap();
//!
//! // Run the protocol until the global state is legitimate and low-degree.
//! let net = ssmdst::core::build_network(&g, Config::for_n(g.n()));
//! let mut runner = Runner::new(net, Scheduler::Synchronous);
//! let out = runner.run_until(10_000, |net, _| {
//!     ssmdst::core::oracle::current_degree(&g, net)
//!         .map(|d| d <= 3)
//!         .unwrap_or(false)
//! });
//! assert!(out.converged());
//! ```

pub use ssmdst_baselines as baselines;
pub use ssmdst_core as core;
pub use ssmdst_graph as graph;
pub use ssmdst_scenario as scenario;
pub use ssmdst_sim as sim;

/// Convenient glob-import surface for examples and tests.
pub mod prelude {
    pub use ssmdst_baselines::{bfs_spanning_tree, fr_mdst, random_spanning_tree};
    pub use ssmdst_core::{build_network, oracle, Config, MdstNode};
    pub use ssmdst_graph::{Graph, GraphBuilder, SpanningTree};
    pub use ssmdst_scenario::{Scenario, SchedSpec, TopologySpec};
    pub use ssmdst_sim::{Network, RunOutcome, Runner, Scheduler};
}

/// Build the protocol network over `g` and run it to quiescence (or
/// `max_rounds`), returning the outcome and the runner for inspection —
/// the shortest path from a graph to a stabilized tree.
///
/// Quiescence is judged on the oracle projection (parents, `dmax`,
/// distances) held stable for the canonical [`sim::quiet_window`], the
/// same detector the experiment harness uses. For fault-injection or
/// dynamic-topology follow-ups, keep calling into the returned runner:
///
/// ```
/// use ssmdst::prelude::*;
/// use ssmdst::sim::faults::{apply_churn, ChurnEvent};
///
/// let g = ssmdst::graph::generators::structured::cycle(8).unwrap();
/// let (out, mut runner) = ssmdst::run(&g, Config::for_n(g.n()), Scheduler::Synchronous, 20_000);
/// assert!(out.converged());
///
/// // Cut one cycle edge: the tree must re-fit the now-forced path.
/// apply_churn(runner.network_mut(), &ChurnEvent::RemoveEdge(0, 1));
/// let out = runner.run_to_quiescence(20_000, 64, ssmdst::core::oracle::projection);
/// assert!(out.converged());
/// let budget = ssmdst::graph::SolveBudget { max_nodes: 100_000 };
/// assert!(ssmdst::core::churn::reconverged_within_one(runner.network(), budget));
/// ```
pub fn run(
    g: &graph::Graph,
    cfg: core::Config,
    sched: sim::Scheduler,
    max_rounds: u64,
) -> (sim::RunOutcome, sim::Runner<core::MdstNode>) {
    let net = core::build_network(g, cfg);
    let mut runner = sim::Runner::new(net, sched);
    let out = runner.run_to_quiescence(
        max_rounds,
        sim::quiet_window(g.n()),
        core::oracle::projection,
    );
    (out, runner)
}
