//! # ssmdst — self-stabilizing minimum-degree spanning tree
//!
//! Facade crate re-exporting the whole reproduction of Blin, Gradinariu
//! Potop-Butucaru & Rovedakis, *"Self-stabilizing minimum-degree spanning
//! tree within one from the optimal degree"* (IPDPS 2009):
//!
//! * [`graph`] — graph substrate: representation, generators, exact MDST,
//!   lower bounds ([`ssmdst_graph`]);
//! * [`sim`] — asynchronous message-passing simulator with FIFO channels,
//!   schedulers and fault injection ([`ssmdst_sim`]);
//! * [`core`] — the protocol itself ([`ssmdst_core`]);
//! * [`baselines`] — Fürer–Raghavachari, serialized-improvement and naive
//!   tree baselines ([`ssmdst_baselines`]).
//!
//! ## Quickstart
//!
//! ```
//! use ssmdst::prelude::*;
//!
//! // A network whose BFS tree is terrible (hub degree n−1) but whose
//! // optimal spanning tree is a path (Δ* = 2).
//! let g = ssmdst::graph::generators::structured::star_with_ring(8).unwrap();
//!
//! // Run the protocol until the global state is legitimate and low-degree.
//! let net = ssmdst::core::build_network(&g, Config::for_n(g.n()));
//! let mut runner = Runner::new(net, Scheduler::Synchronous);
//! let out = runner.run_until(10_000, |net, _| {
//!     ssmdst::core::oracle::current_degree(&g, net)
//!         .map(|d| d <= 3)
//!         .unwrap_or(false)
//! });
//! assert!(out.converged());
//! ```

pub use ssmdst_baselines as baselines;
pub use ssmdst_core as core;
pub use ssmdst_graph as graph;
pub use ssmdst_sim as sim;

/// Convenient glob-import surface for examples and tests.
pub mod prelude {
    pub use ssmdst_baselines::{bfs_spanning_tree, fr_mdst, random_spanning_tree};
    pub use ssmdst_core::{build_network, oracle, Config, MdstNode};
    pub use ssmdst_graph::{Graph, GraphBuilder, SpanningTree};
    pub use ssmdst_sim::{Network, RunOutcome, Runner, Scheduler};
}
