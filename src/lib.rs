//! # ssmdst — self-stabilizing minimum-degree spanning tree
//!
//! Facade crate re-exporting the whole reproduction of Blin, Gradinariu
//! Potop-Butucaru & Rovedakis, *"Self-stabilizing minimum-degree spanning
//! tree within one from the optimal degree"* (IPDPS 2009):
//!
//! * [`graph`] — graph substrate: representation, generators, exact MDST,
//!   lower bounds ([`ssmdst_graph`]);
//! * [`sim`] — event-driven asynchronous message-passing simulator with
//!   FIFO channels, schedulers, fault injection, dynamic topology, and
//!   the composable [`sim::Session`] + [`sim::Observer`] execution API
//!   ([`ssmdst_sim`]);
//! * [`core`] — the protocol itself ([`ssmdst_core`]);
//! * [`baselines`] — Fürer–Raghavachari, serialized-improvement and naive
//!   tree baselines ([`ssmdst_baselines`]);
//! * [`exact`] — the incremental exact-`Δ*` engine: a network-simplex
//!   tree structure under a certified-interval solver, with witness
//!   objects and an incremental re-solver for judging under churn
//!   ([`ssmdst_exact`]);
//! * [`scenario`] — declarative scenarios, bit-exact record-replay,
//!   delta-debugging shrinker and campaign sweeps, generic over the
//!   protocol registry ([`ssmdst_scenario`]; `ssmdst replay` /
//!   `ssmdst shrink` on the CLI).
//!
//! ## Paper-to-code map
//!
//! Where the paper's vocabulary lives in this workspace:
//!
//! | paper concept | implementation |
//! |---|---|
//! | optimal degree `Δ*` (called `D*` in places) | [`exact::Solver`] (certified interval, any scale), [`graph::mdst_exact::exact_mdst`] (branch-and-bound oracle, small `n`) |
//! | witness set `W` certifying `Δ* ≥ …` (Lemma 4) | [`exact::Witness`] (independent of the search that found it) |
//! | spanning-tree rules R1/R2, min-ID root election | [`core::spanning_tree`] |
//! | `dmax` propagation (PIF over the tree) | [`core::maxdeg`] |
//! | fundamental-**cycle search** (DFS token per non-tree edge) | [`core::cycle_search`] |
//! | `Action_on_Cycle`, improving/blocking edges, `Deblock` | [`core::reduction`] |
//! | **fragments** (the serialized predecessor \[3\] this paper improves on) | [`baselines::fragment`] |
//! | legitimacy predicate (Definition 1) | [`core::oracle::is_legitimate`] |
//! | transient faults & topology churn | [`sim::faults`] |
//! | re-convergence under churn (`deg ≤ Δ*+1` per component) | [`core::churn`] |
//! | the run loop / daemon model (§2) | [`sim::session::Session`] over [`sim::runner::Runner`] |
//! | cross-cutting instrumentation (digests, traces, metrics, stops) | [`sim::observer`], [`sim::stop`] |
//! | the protocol axis of the scenario space | [`scenario::protocol`] (registry; `mdst` and `flood-echo`) |
//!
//! ## Quickstart
//!
//! The one-call entry point is [`run`]:
//!
//! ```
//! use ssmdst::prelude::*;
//!
//! // A network whose BFS tree is terrible (hub degree n−1) but whose
//! // optimal spanning tree is a path (Δ* = 2).
//! let g = ssmdst::graph::generators::structured::star_with_ring(8).unwrap();
//!
//! let (out, runner) = ssmdst::run(&g, Config::for_n(g.n()), Scheduler::Synchronous, 10_000);
//! assert!(out.converged());
//! let deg = ssmdst::core::oracle::current_degree(&g, runner.network()).unwrap();
//! assert!(deg <= 3); // Δ* + 1 (Theorem 2)
//! ```
//!
//! For round-level control, drive a [`sim::Session`] yourself — the same
//! composable surface every driver in the workspace uses:
//!
//! ```
//! use ssmdst::prelude::*;
//!
//! let g = ssmdst::graph::generators::structured::star_with_ring(8).unwrap();
//!
//! // Run the protocol until the global state is legitimate and low-degree.
//! let mut session = Session::from_network(ssmdst::core::build_network(&g, Config::for_n(g.n())))
//!     .scheduler(Scheduler::Synchronous)
//!     .horizon(10_000)
//!     .build();
//! let out = session.run_until(10_000, &mut stop_when(|net: &Network<MdstNode>, _| {
//!     ssmdst::core::oracle::current_degree(&g, net)
//!         .map(|d| d <= 3)
//!         .unwrap_or(false)
//! }));
//! assert!(out.converged());
//! ```

// Library code must not grow bare `.unwrap()`s: use `.expect` with the
// invariant that makes failure unreachable (ssmdst-lint R4 audits the
// reasons). Unit tests keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub use ssmdst_baselines as baselines;
pub use ssmdst_core as core;
pub use ssmdst_exact as exact;
pub use ssmdst_graph as graph;
pub use ssmdst_scenario as scenario;
pub use ssmdst_sim as sim;

/// Convenient glob-import surface for examples and tests.
///
/// ## The execution API
///
/// [`Session`](prelude::Session) + [`Observer`](prelude::Observer) are
/// the composable driver surface; cross-cutting machinery attaches as
/// observers:
///
/// ```
/// use ssmdst::prelude::*;
///
/// let g = ssmdst::graph::generators::structured::cycle(6).unwrap();
/// let mut session = Session::from_network(build_network(&g, Config::for_n(g.n())))
///     .scheduler(Scheduler::Synchronous)
///     .horizon(50_000)
///     .observe((ScheduleDigest::new(), RoundTrace::new()));
/// let out = session.run_to_quiescence(quiet_window(g.n()), oracle::projection);
/// assert!(out.converged());
/// let (digest, trace) = session.observer();
/// assert_ne!(digest.value(), 0);
/// assert!(!trace.samples().is_empty());
/// ```
///
/// ## Scenarios and replay
///
/// A [`Scenario`](prelude::Scenario) is a committable artifact;
/// [`verify_replay`](prelude::verify_replay) checks a recorded trace
/// bit-for-bit:
///
/// ```
/// use ssmdst::prelude::*;
/// use ssmdst::scenario::engine;
///
/// let scn = Scenario::converge(
///     "doc",
///     TopologySpec::StarRing { n: 8 },
///     SchedSpec::Synchronous,
///     40_000,
/// );
/// let (out, trace) = engine::run_traced_any(&scn);
/// assert!(out.all_ok());
/// verify_replay(&scn, &trace).expect("bit-exact replay");
/// ```
///
/// ## Shrinking
///
/// [`shrink`](prelude::shrink) delta-debugs a failing scenario to a
/// minimal reproducer under a named [`Predicate`](prelude::Predicate):
///
/// ```
/// use ssmdst::prelude::*;
///
/// let mut scn = Scenario::converge(
///     "cap",
///     TopologySpec::Cycle { n: 8 },
///     SchedSpec::Synchronous,
///     1_000,
/// );
/// scn.stop.max_rounds = 20; // cannot confirm quiescence: always fails
/// let pred = Predicate::NotConverged;
/// let (minimal, _) = shrink(&scn, |s| pred.test(s)).expect("fails");
/// assert!(minimal.size() < scn.size());
/// ```
pub mod prelude {
    pub use ssmdst_baselines::{bfs_spanning_tree, fr_mdst, random_spanning_tree};
    pub use ssmdst_core::{build_network, oracle, Config, MdstNode};
    pub use ssmdst_graph::{Graph, GraphBuilder, SpanningTree};
    pub use ssmdst_scenario::shrink::shrink;
    pub use ssmdst_scenario::{
        verify_replay, Predicate, ProtocolSpec, Scenario, ScenarioOutcome, SchedSpec, StopSpec,
        TopologySpec,
    };
    pub use ssmdst_sim::{
        observe_rounds, quiet_window, stop_when, Backend, Network, Observer, QuiescenceGate,
        RoundTrace, RunOutcome, Runner, ScheduleDigest, Scheduler, Session, SessionBuilder, Stop,
    };
}

/// Build the protocol network over `g` and run it to quiescence (or
/// `max_rounds`), returning the outcome and the runner for inspection —
/// the shortest path from a graph to a stabilized tree. A thin wrapper
/// over [`sim::Session`].
///
/// Quiescence is judged on the oracle projection (parents, `dmax`,
/// distances) held stable for the canonical [`sim::quiet_window`] — the
/// same [`sim::stop::QuiescenceGate`] predicate every driver uses. For
/// fault-injection or dynamic-topology follow-ups, keep calling into the
/// returned runner:
///
/// ```
/// use ssmdst::prelude::*;
/// use ssmdst::sim::faults::{apply_churn, ChurnEvent};
///
/// let g = ssmdst::graph::generators::structured::cycle(8).unwrap();
/// let (out, mut runner) = ssmdst::run(&g, Config::for_n(g.n()), Scheduler::Synchronous, 20_000);
/// assert!(out.converged());
///
/// // Cut one cycle edge: the tree must re-fit the now-forced path.
/// apply_churn(runner.network_mut(), &ChurnEvent::RemoveEdge(0, 1));
/// let out = runner.run_to_quiescence(20_000, 64, ssmdst::core::oracle::projection);
/// assert!(out.converged());
/// let budget = ssmdst::graph::SolveBudget { max_nodes: 100_000 };
/// assert!(ssmdst::core::churn::reconverged_within_one(runner.network(), budget));
/// ```
pub fn run(
    g: &graph::Graph,
    cfg: core::Config,
    sched: sim::Scheduler,
    max_rounds: u64,
) -> (sim::RunOutcome, sim::Runner<core::MdstNode>) {
    let mut session = sim::Session::from_network(core::build_network(g, cfg))
        .scheduler(sched)
        .horizon(max_rounds)
        .build();
    let out = session.run_to_quiescence(sim::quiet_window(g.n()), core::oracle::projection);
    (out, session.into_runner())
}
