//! Export the before/after trees as Graphviz DOT files for inspection:
//!
//! ```text
//! cargo run --release --example visualize_tree
//! dot -Tsvg before.dot -o before.svg && dot -Tsvg after.dot -o after.svg
//! ```
//!
//! Tree edges are drawn bold blue, non-tree edges dashed gray, and
//! maximum-degree tree nodes filled red — the "before" picture shows the
//! BFS hub, the "after" picture the protocol's balanced tree.

use ssmdst::graph::dot::to_dot;
use ssmdst::graph::generators::gadgets::multi_hub;
use ssmdst::graph::stats::{leaf_count, max_degree_count, tree_degrees};
use ssmdst::prelude::*;
use std::fs;

fn main() -> std::io::Result<()> {
    let g = multi_hub(3, 5).expect("valid gadget");
    println!("multi-hub gadget: n={} m={}", g.n(), g.m());

    let before = bfs_spanning_tree(&g, 0).expect("connected");
    fs::write("before.dot", to_dot(&g, Some(&before)))?;
    let s = tree_degrees(&before);
    println!(
        "before (BFS): deg(T)={} ({} max-degree nodes, {} leaves) -> before.dot",
        s.max,
        max_degree_count(&before),
        leaf_count(&before)
    );

    let quiet = quiet_window(g.n());
    let mut session = Session::from_network(build_network(&g, Config::for_n(g.n())))
        .scheduler(Scheduler::Synchronous)
        .horizon(200_000)
        .build();
    let out = session.run_to_quiescence(quiet, oracle::projection);
    assert!(out.converged());
    let after = oracle::try_extract_tree(&g, session.network()).expect("tree");
    fs::write("after.dot", to_dot(&g, Some(&after)))?;
    let s = tree_degrees(&after);
    println!(
        "after (ssmdst, ~{} rounds): deg(T)={} ({} max-degree nodes, {} leaves) -> after.dot",
        session.round() - quiet,
        s.max,
        max_degree_count(&after),
        leaf_count(&after)
    );
    Ok(())
}
