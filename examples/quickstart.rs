//! Quickstart: build a session, run the protocol, watch the degree drop.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ssmdst::graph::generators::structured::star_with_ring;
use ssmdst::prelude::*;

fn main() {
    // A hub node connected to everyone, plus a ring: the worst case for a
    // naive (BFS) tree — hub degree n−1 — while the optimal spanning tree
    // is a Hamiltonian path (Δ* = 2).
    let n = 24;
    let g = star_with_ring(n).expect("valid parameters");
    println!("graph: n={} m={} Δ(G)={}", g.n(), g.m(), g.max_degree());

    // What a naive tree looks like.
    let bfs = bfs_spanning_tree(&g, 0).expect("connected");
    println!("BFS tree degree: {}", bfs.max_degree());

    // Run the self-stabilizing protocol from a clean reset: a Session
    // stopped by a named condition that doubles as the progress narrator
    // (one oracle computation per round).
    let mut session = Session::from_network(build_network(&g, Config::for_n(g.n())))
        .scheduler(Scheduler::Synchronous)
        .horizon(200_000)
        .build();
    let mut last = None;
    let out = session.run_until(
        200_000,
        &mut stop_when(|net: &Network<MdstNode>, round: u64| {
            let deg = oracle::current_degree(&g, net);
            if deg != last {
                if let Some(d) = deg {
                    println!("round {round:>6}: deg(T) = {d}");
                }
                last = deg;
            }
            deg == Some(2)
        }),
    );

    assert!(out.converged(), "expected convergence to the optimum");
    let t = oracle::try_extract_tree(&g, session.network()).expect("spanning tree");
    t.validate(&g).expect("valid spanning tree");
    println!(
        "converged in {} rounds: deg(T) = {} (Δ* = 2, guarantee ≤ Δ*+1 = 3)",
        session.round(),
        t.max_degree()
    );
    println!(
        "messages: {} total, largest {} bits",
        session.network().metrics.total_sent,
        session.network().metrics.max_message_bits()
    );
}
