//! Sensor-network scenario (the paper's ad-hoc motivation): a random
//! geometric radio graph, where a low-degree spanning tree means less
//! congestion and fewer collision hot-spots at any single sensor. Includes
//! a mid-run transient fault — half the sensors reboot into garbage state —
//! and a planned mid-run churn event scheduled straight on the session
//! builder (a sensor dies at a fixed round).
//!
//! ```text
//! cargo run --release --example sensor_network
//! ```

use ssmdst::graph::generators::geometric::random_geometric_with_points;
use ssmdst::prelude::*;
use ssmdst::sim::faults::FaultPlan;
use ssmdst::sim::ChurnEvent;

fn main() {
    let n = 48;
    // Radius just above the connectivity threshold: a realistic sparse
    // radio mesh.
    let radius = (2.0 * (n as f64).ln() / n as f64).sqrt();
    let (g, points) = random_geometric_with_points(n, radius, 42);
    println!(
        "sensor field: n={} m={} Δ(G)={} (radius {:.2})",
        g.n(),
        g.m(),
        g.max_degree(),
        radius
    );
    // The densest corner of the deployment:
    let hub = g.nodes().max_by_key(|&v| g.degree(v)).unwrap();
    println!(
        "busiest sensor: node {hub} at ({:.2},{:.2}) with {} radio neighbors",
        points[hub as usize].0,
        points[hub as usize].1,
        g.degree(hub)
    );

    // A sensor at the field's edge browns out at round 200 — declared on
    // the builder, applied by the session, announced to observers.
    let casualty = g.nodes().min_by_key(|&v| g.degree(v)).unwrap();
    let quiet = quiet_window(g.n());
    let mut session = Session::from_network(build_network(&g, Config::for_n(g.n())))
        .scheduler(Scheduler::RandomAsync { seed: 7 })
        .horizon(400_000)
        .churn_at(200, ChurnEvent::CrashNode(casualty))
        .build();
    let out = session.run_to_quiescence(quiet, oracle::projection);
    assert!(out.converged());
    println!(
        "stabilized in ~{} rounds with sensor {casualty} dark: the {} survivors \
         hold a tree (BFS on the full field would give degree {})",
        session.round() - quiet,
        session.network().alive_count(),
        bfs_spanning_tree(&g, 0).unwrap().max_degree()
    );

    // Transient fault: half the sensors reboot with corrupted memory.
    println!("\n*** transient fault: 50% of sensors corrupt their state ***");
    let victims = session.inject(FaultPlan::partial(0.5, 9));
    println!("{} sensors corrupted", victims.len());
    let before = session.round();
    let out = session.run_to_quiescence(quiet, oracle::projection);
    assert!(out.converged(), "self-stabilization must recover");
    println!(
        "recovered in ~{} rounds — no operator intervention",
        session.round() - before - quiet
    );

    // Power restored: the dark sensor rejoins and the full tree re-forms.
    let _ = session.churn(&ChurnEvent::RejoinNode(casualty));
    let out = session.run_to_quiescence(quiet, oracle::projection);
    assert!(out.converged(), "rejoin must re-stabilize");
    let t = oracle::try_extract_tree(&g, session.network()).expect("tree re-formed");
    t.validate(&g).expect("valid spanning tree");
    println!(
        "sensor {casualty} back online: full field re-stabilized, deg(T) = {}",
        t.max_degree()
    );
}
