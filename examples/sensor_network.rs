//! Sensor-network scenario (the paper's ad-hoc motivation): a random
//! geometric radio graph, where a low-degree spanning tree means less
//! congestion and fewer collision hot-spots at any single sensor. Includes
//! a mid-run transient fault — half the sensors reboot into garbage state —
//! and shows the self-stabilizing recovery.
//!
//! ```text
//! cargo run --release --example sensor_network
//! ```

use ssmdst::graph::generators::geometric::random_geometric_with_points;
use ssmdst::prelude::*;
use ssmdst::sim::faults::{inject, FaultPlan};

fn main() {
    let n = 48;
    // Radius just above the connectivity threshold: a realistic sparse
    // radio mesh.
    let radius = (2.0 * (n as f64).ln() / n as f64).sqrt();
    let (g, points) = random_geometric_with_points(n, radius, 42);
    println!(
        "sensor field: n={} m={} Δ(G)={} (radius {:.2})",
        g.n(),
        g.m(),
        g.max_degree(),
        radius
    );
    // The densest corner of the deployment:
    let hub = g.nodes().max_by_key(|&v| g.degree(v)).unwrap();
    println!(
        "busiest sensor: node {hub} at ({:.2},{:.2}) with {} radio neighbors",
        points[hub as usize].0,
        points[hub as usize].1,
        g.degree(hub)
    );

    let net = build_network(&g, Config::for_n(g.n()));
    let mut runner = Runner::new(net, Scheduler::RandomAsync { seed: 7 });
    let quiet = 6 * g.n() as u64;
    let out = runner.run_to_quiescence(400_000, quiet, oracle::projection);
    let t = oracle::try_extract_tree(&g, runner.network()).expect("tree formed");
    println!(
        "stabilized in ~{} rounds: deg(T) = {} (BFS tree would give {})",
        runner.round() - quiet,
        t.max_degree(),
        bfs_spanning_tree(&g, 0).unwrap().max_degree()
    );
    assert!(out.converged());

    // Transient fault: half the sensors reboot with corrupted memory.
    println!("\n*** transient fault: 50% of sensors corrupt their state ***");
    let victims = inject(runner.network_mut(), FaultPlan::partial(0.5, 9));
    println!("{} sensors corrupted", victims.len());
    let before = runner.round();
    let out = runner.run_to_quiescence(400_000, quiet, oracle::projection);
    assert!(out.converged(), "self-stabilization must recover");
    let t = oracle::try_extract_tree(&g, runner.network()).expect("tree re-formed");
    t.validate(&g).expect("valid spanning tree");
    println!(
        "recovered in ~{} rounds: deg(T) = {} — no operator intervention",
        runner.round() - before - quiet,
        t.max_degree()
    );
}
