//! Peer-to-peer overlay scenario (the paper's second motivation): a
//! scale-free overlay where high-degree peers relay disproportionate
//! traffic for others. A minimum-degree spanning tree spreads the relay
//! load; this example compares every baseline on the same overlay and then
//! runs the distributed protocol under an adversarial daemon.
//!
//! ```text
//! cargo run --release --example p2p_overlay
//! ```

use ssmdst::baselines::{
    bfs_spanning_tree, dfs_spanning_tree, fr_mdst, greedy_min_degree_tree, random_spanning_tree,
    serialized_mdst,
};
use ssmdst::graph::generators::random::barabasi_albert;
use ssmdst::prelude::*;

fn main() {
    let n = 64;
    let g = barabasi_albert(n, 2, 2024);
    println!(
        "overlay: n={} m={} max peer degree {}",
        g.n(),
        g.m(),
        g.max_degree()
    );

    // Centralized baselines (require a global view the P2P system lacks).
    let bfs = bfs_spanning_tree(&g, 0).unwrap();
    let dfs = dfs_spanning_tree(&g, 0).unwrap();
    let rnd = random_spanning_tree(&g, 1).unwrap();
    let greedy = greedy_min_degree_tree(&g, 1).unwrap();
    let (fr, fr_stats) = fr_mdst(&g, bfs.clone());
    let (ser, ser_stats) = serialized_mdst(&g, bfs.clone(), 10);
    println!("\nspanning-tree relay load (max tree degree):");
    println!("  BFS tree        : {}", bfs.max_degree());
    println!("  DFS tree        : {}", dfs.max_degree());
    println!("  random tree     : {}", rnd.max_degree());
    println!("  greedy tree     : {}", greedy.max_degree());
    println!(
        "  Fürer–Raghavachari: {} ({} swaps, {} phases)",
        fr.max_degree(),
        fr_stats.swaps,
        fr_stats.phases
    );
    println!(
        "  serialized [3]  : {} ({} one-swap phases)",
        ser.max_degree(),
        ser_stats.phases
    );

    // The self-stabilizing protocol: fully distributed, one-hop
    // communication only, adversarially scheduled — a Session with the
    // canonical quiescence predicate.
    let quiet = quiet_window(g.n());
    let mut session = Session::from_network(build_network(&g, Config::for_n(g.n())))
        .scheduler(Scheduler::Adversarial { seed: 5 })
        .horizon(600_000)
        .build();
    let out = session.run_to_quiescence(quiet, oracle::projection);
    assert!(out.converged(), "protocol must stabilize");
    let t = oracle::try_extract_tree(&g, session.network()).expect("tree");
    println!(
        "  ssmdst (distributed, adversarial daemon): {}",
        t.max_degree()
    );
    println!(
        "\nstabilized in ~{} rounds, {} messages ({} Search / {} Remove)",
        session.round() - quiet,
        session.network().metrics.total_sent,
        session.network().metrics.kind("Search").sent,
        session.network().metrics.kind("Remove").sent,
    );
    // The distributed result must match the centralized FR within 1.
    assert!(t.max_degree() <= fr.max_degree() + 1);
}
