//! Self-stabilization under repeated fault bursts: the adversary corrupts
//! an escalating fraction of nodes (up to everything at once, repeatedly)
//! and the protocol re-converges every time — Definition 1's convergence
//! property made visible, driven through one [`Session`].
//!
//! ```text
//! cargo run --release --example fault_storm
//! ```

use ssmdst::graph::generators::GraphFamily;
use ssmdst::prelude::*;
use ssmdst::sim::faults::FaultPlan;

fn main() {
    let g = GraphFamily::GnpSparse.generate(40, 11);
    let lb = ssmdst::graph::degree_lower_bound(&g);
    println!(
        "network: n={} m={} Δ(G)={}  (Δ* ≥ {lb})",
        g.n(),
        g.m(),
        g.max_degree()
    );

    let quiet = quiet_window(g.n());
    let mut session = Session::from_network(build_network(&g, Config::for_n(g.n())))
        .scheduler(Scheduler::RandomAsync { seed: 3 })
        .horizon(400_000)
        .build();

    let out = session.run_to_quiescence(quiet, oracle::projection);
    assert!(out.converged());
    println!(
        "initial stabilization: deg(T) = {:?}\n",
        oracle::current_degree(&g, session.network())
    );

    for (burst, fraction) in [0.2f64, 0.5, 1.0, 1.0, 0.8].iter().enumerate() {
        let victims = session.inject(FaultPlan {
            node_fraction: *fraction,
            message_drop: 0.5,
            seed: 100 + burst as u64,
        });
        let before = session.round();
        let out = session.run_to_quiescence(quiet, oracle::projection);
        assert!(out.converged(), "burst {burst}: no recovery");
        let t =
            oracle::try_extract_tree(&g, session.network()).expect("spanning tree after recovery");
        t.validate(&g).expect("valid tree");
        println!(
            "burst {burst}: corrupted {:>2} nodes ({:>3.0}%) + dropped half the messages \
             → recovered in ~{} rounds, deg(T) = {}",
            victims.len(),
            fraction * 100.0,
            session.round() - before - quiet,
            t.max_degree()
        );
        assert!(t.max_degree() <= lb + 2, "quality degraded past Δ*+1 range");
    }
    println!("\nall bursts recovered — the algorithm is self-stabilizing.");
}
