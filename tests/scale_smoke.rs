//! Scale smoke: the flat fabric at n = 10 000, quick enough for
//! `cargo test -q` in a debug build.
//!
//! Not a benchmark — a guard that the scale path *works*: sparse-G(n,p)
//! generation via skip sampling, fabric construction over ~10⁵ directed
//! slots, sparse-activity rounds whose obligation discovery must not scan
//! the world, full-gossip rounds, churn at scale, and the MDST protocol
//! automaton itself taking its first steps. Perf at this size is measured
//! by the S1–S3 experiment family (`experiments -- s1 s2 s3`).

use ssmdst::graph::generators::random::gnp_connected_sparse;
use ssmdst::sim::{Automaton, Message, Network, Outbox, Runner, Scheduler};

const N: usize = 10_000;

#[derive(Debug, Clone, Copy)]
struct Token;
impl Message for Token {
    fn kind(&self) -> &'static str {
        "Token"
    }
    fn size_bits(&self, _n: usize) -> usize {
        1
    }
}

/// One sentinel circulates a token; everyone else is disabled. The regime
/// where obligation *discovery* dominates obligation *execution*.
struct Sentinel {
    first_neighbor: Option<u32>,
    active: bool,
}
impl Automaton for Sentinel {
    type Msg = Token;
    fn tick(&mut self, out: &mut Outbox<Token>) {
        if let Some(w) = self.first_neighbor {
            out.send(w, Token);
        }
    }
    fn receive(&mut self, _: u32, _: Token, _: &mut Outbox<Token>) {}
    fn enabled(&self) -> bool {
        self.active
    }
}

#[test]
fn sparse_activity_rounds_at_ten_thousand_nodes() {
    let g = gnp_connected_sparse(N, 8.0 / N as f64, 7);
    assert_eq!(g.n(), N);
    assert!(g.directed_slots() > N, "sparse instance still has 2m > n");
    let net = Network::from_graph(&g, |v, nbrs| Sentinel {
        first_neighbor: nbrs.first().copied(),
        active: v == 0,
    });
    let mut r = Runner::new(net, Scheduler::Synchronous);
    // 500 rounds with exactly 2 obligations each: only feasible in debug
    // if discovery is index-driven, not an O(n + #channels) rescan.
    for _ in 0..500 {
        r.step_round();
    }
    let m = &r.network().metrics;
    assert_eq!(m.rounds, 500);
    assert_eq!(m.total_sent, 500, "one token per round");
    assert_eq!(r.network().in_flight(), 1);
}

#[test]
fn gossip_and_churn_at_ten_thousand_nodes() {
    #[derive(Debug)]
    struct Gossip {
        neighbors: Vec<u32>,
        heard: u64,
    }
    impl Automaton for Gossip {
        type Msg = Token;
        fn tick(&mut self, out: &mut Outbox<Token>) {
            for &w in &self.neighbors {
                out.send(w, Token);
            }
        }
        fn receive(&mut self, _: u32, _: Token, _: &mut Outbox<Token>) {
            self.heard += 1;
        }
        fn on_topology_change(&mut self, neighbors: &[u32]) {
            self.neighbors = neighbors.to_vec();
        }
    }
    let g = gnp_connected_sparse(N, 6.0 / N as f64, 11);
    let net = Network::from_graph(&g, |_, nbrs| Gossip {
        neighbors: nbrs.to_vec(),
        heard: 0,
    });
    let mut r = Runner::new(net, Scheduler::Synchronous);
    for _ in 0..5 {
        r.step_round();
    }
    let delivered_before = r.network().metrics.total_delivered;
    assert!(delivered_before > 0);
    // Churn at scale: tombstone a batch of edges and crash a node, then
    // keep running; the slot accounting must survive audit.
    let edges: Vec<(u32, u32)> = r.network().current_graph().edges()[..64].to_vec();
    for &(u, v) in &edges {
        assert!(r.network_mut().remove_edge(u, v));
    }
    assert!(r.network_mut().crash_node(4_321));
    for _ in 0..3 {
        r.step_round();
    }
    for &(u, v) in &edges {
        // Endpoints may have crashed; insert back where possible.
        r.network_mut().insert_edge(u, v);
    }
    assert!(r.network_mut().rejoin_node(4_321));
    for _ in 0..3 {
        r.step_round();
    }
    r.network().check_invariants();
    assert!(r.network().metrics.total_delivered > delivered_before);
}

#[test]
fn mdst_protocol_takes_steps_at_ten_thousand_nodes() {
    // Convergence at this size is an experiment, not a test; the smoke is
    // that construction and the first protocol rounds are sound at scale.
    let g = gnp_connected_sparse(N, 8.0 / N as f64, 3);
    let net = ssmdst::core::build_network(&g, ssmdst::core::Config::for_n(N));
    let mut r = Runner::new(net, Scheduler::Synchronous);
    for _ in 0..3 {
        r.step_round();
    }
    let m = &r.network().metrics;
    assert!(m.total_sent > 0, "protocol generated traffic");
    r.network().check_invariants();
}
