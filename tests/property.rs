//! Property-based integration tests (proptest): the paper's guarantees hold
//! on *randomly generated* graphs, initial states and fault patterns — not
//! just on the hand-picked fixtures.

use proptest::prelude::*;
use ssmdst::core::oracle;
use ssmdst::graph::generators::random::gnp_connected;
use ssmdst::graph::{exact_mdst, Graph, SolveBudget};
use ssmdst::prelude::*;
use ssmdst::sim::faults::{inject, FaultPlan};

/// Strategy: a connected random graph with 4..=12 nodes.
fn small_graph() -> impl Strategy<Value = Graph> {
    (4usize..=12, 0.15f64..0.8, 0u64..1000).prop_map(|(n, p, seed)| gnp_connected(n, p, seed))
}

fn converge(g: &Graph, sched: Scheduler) -> Option<u32> {
    let net = build_network(g, Config::for_n(g.n()));
    let mut runner = Runner::new(net, sched);
    let out = runner.run_to_quiescence(80_000, (6 * g.n() as u64).max(64), oracle::projection);
    if !out.converged() {
        return None;
    }
    oracle::try_extract_tree(g, runner.network()).map(|t| {
        t.validate(g).expect("tree validates");
        t.max_degree()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Theorem 2 as a property: random graph → deg(T) ≤ Δ* + 1.
    #[test]
    fn random_graphs_reach_delta_star_plus_one(g in small_graph()) {
        let deg = converge(&g, Scheduler::Synchronous)
            .expect("must converge to a spanning tree");
        let ds = exact_mdst(&g, SolveBudget::default())
            .delta_star()
            .expect("small instances are solvable");
        prop_assert!(deg <= ds + 1, "deg {deg} > Δ*+1 = {}", ds + 1);
        prop_assert!(deg >= ds, "deg {deg} beat the optimum {ds}?!");
    }

    /// Definition 1 as a property: random graph + random corruption →
    /// convergence to a legitimate configuration.
    #[test]
    fn random_corruption_recovers(g in small_graph(), fault_seed in 0u64..1000) {
        let net = build_network(&g, Config::for_n(g.n()));
        let mut runner = Runner::new(net, Scheduler::RandomAsync { seed: fault_seed });
        inject(runner.network_mut(), FaultPlan::total(fault_seed));
        let out = runner.run_to_quiescence(
            80_000,
            (6 * g.n() as u64).max(64),
            oracle::projection,
        );
        prop_assert!(out.converged());
        prop_assert!(oracle::is_legitimate(&g, runner.network()));
    }

    /// The sequential FR baseline satisfies the same bound on random
    /// graphs (cross-checks both FR and the exact solver).
    #[test]
    fn fr_baseline_within_one_on_random_graphs(g in small_graph(), tree_seed in 0u64..100) {
        let t0 = ssmdst::baselines::random_spanning_tree(&g, tree_seed).unwrap();
        let (t, _) = ssmdst::baselines::fr_mdst(&g, t0);
        t.validate(&g).unwrap();
        let ds = exact_mdst(&g, SolveBudget::default()).delta_star().unwrap();
        prop_assert!(t.max_degree() <= ds + 1);
    }

    /// Random swap sequences keep a spanning tree a spanning tree (the
    /// surgery underlying the whole reduction module).
    #[test]
    fn random_swap_sequences_preserve_trees(
        g in small_graph(),
        seeds in proptest::collection::vec(0usize..1_000_000, 0..12),
    ) {
        let mut t = SpanningTree::from_bfs(&g, 0).unwrap();
        for s in seeds {
            // Pick a pseudo-random non-tree edge and a removable cycle edge.
            let non_tree: Vec<_> = g
                .edges()
                .iter()
                .copied()
                .filter(|&(u, v)| !t.is_tree_edge(u, v))
                .collect();
            if non_tree.is_empty() {
                break;
            }
            let (u, v) = non_tree[s % non_tree.len()];
            let path = t.fundamental_cycle_path(u, v);
            // Remove an edge adjacent to a pseudo-random interior node.
            if path.len() < 3 {
                continue;
            }
            let i = 1 + (s / 7) % (path.len() - 2);
            t.swap((u, v), (path[i], path[i + 1]));
            t.validate(&g).expect("swap broke the tree");
        }
    }
}
