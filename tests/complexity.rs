//! Integration: the paper's complexity claims hold as *testable envelopes*
//! (the experiment harness measures the constants; these tests pin the
//! asymptotic shape so regressions fail CI).

use ssmdst::core::oracle;
use ssmdst::graph::generators::GraphFamily;
use ssmdst::prelude::*;

fn run(g: &ssmdst::graph::Graph) -> Runner<ssmdst::core::MdstNode> {
    let net = build_network(g, Config::for_n(g.n()));
    let mut runner = Runner::new(net, Scheduler::Synchronous);
    let out = runner.run_to_quiescence(150_000, (6 * g.n() as u64).max(64), oracle::projection);
    assert!(out.converged());
    runner
}

/// `O(δ log n)` memory: measured bits within a fixed constant of δ·lg n.
#[test]
fn memory_within_constant_of_delta_log_n() {
    for n in [12usize, 24] {
        let g = GraphFamily::GnpSparse.generate(n, 3);
        let runner = run(&g);
        let bits = oracle::max_state_bits(runner.network());
        let b = (usize::BITS - (g.n() - 1).leading_zeros()) as usize;
        let bound = g.max_degree() * b;
        assert!(
            bits <= 20 * bound,
            "n={n}: {bits} bits > 20·δ·lg n = {}",
            20 * bound
        );
    }
}

/// `O(n log n)` message length: the largest message within a fixed constant
/// of n·lg n bits.
#[test]
fn message_length_within_constant_of_n_log_n() {
    for n in [12usize, 24] {
        let g = GraphFamily::GnpSparse.generate(n, 3);
        let runner = run(&g);
        let bits = runner.network().metrics.max_message_bits();
        let bound = (g.n() as f64) * (g.n() as f64).log2();
        assert!(
            (bits as f64) <= 6.0 * bound,
            "n={n}: {bits} bits > 6·n·lg n = {:.0}",
            6.0 * bound
        );
    }
}

/// Convergence rounds stay inside the paper's `O(m n² log n)` bound with
/// an explicit (very generous) constant of 1 — the bound is loose by
/// orders of magnitude, so hitting it would indicate a livelock.
#[test]
fn rounds_within_paper_bound() {
    for fam in [GraphFamily::GnpSparse, GraphFamily::ScaleFree] {
        let g = fam.generate(20, 4);
        let net = build_network(&g, Config::for_n(g.n()));
        let mut runner = Runner::new(net, Scheduler::Synchronous);
        let bound = (g.m() as f64) * (g.n() as f64).powi(2) * (g.n() as f64).log2();
        let out =
            runner.run_to_quiescence(bound as u64, (6 * g.n() as u64).max(64), oracle::projection);
        assert!(out.converged(), "{} exceeded the paper bound", fam.label());
    }
}

/// Steady state is message-finite per round: after convergence, per-round
/// traffic is dominated by gossip, bounded by O(m) + search traffic.
#[test]
fn steady_state_traffic_is_bounded() {
    let g = GraphFamily::GnpSparse.generate(16, 5);
    let mut runner = run(&g);
    let before = runner.network().metrics.total_sent;
    let rounds = 100;
    let _ = runner.run_until(rounds, |_, _| false);
    let per_round = (runner.network().metrics.total_sent - before) / rounds;
    // 2m InfoMsg per round + searches; the cap below is ~6x observed.
    let cap = (2 * g.m() as u64) * 10;
    assert!(
        per_round <= cap,
        "steady state sends {per_round}/round > cap {cap}"
    );
}

/// The quiescence detector's convergence-round measurement is monotone
/// with instance size on a fixed family (sanity of the T2 experiment).
#[test]
fn convergence_rounds_scale_sanely() {
    let small = {
        let g = GraphFamily::Grid.generate(9, 1);
        let net = build_network(&g, Config::for_n(g.n()));
        let mut r = Runner::new(net, Scheduler::Synchronous);
        let _ = r.run_to_quiescence(150_000, 64, oracle::projection);
        r.round()
    };
    let large = {
        let g = GraphFamily::Grid.generate(36, 1);
        let net = build_network(&g, Config::for_n(g.n()));
        let mut r = Runner::new(net, Scheduler::Synchronous);
        let _ = r.run_to_quiescence(150_000, 6 * 36, oracle::projection);
        r.round()
    };
    assert!(large > small, "{large} vs {small}");
}
