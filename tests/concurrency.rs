//! Integration: the simultaneous-improvement behaviour (the paper's
//! headline difference from Blin–Butelle [3]) on the multi-hub gadget.

use ssmdst::core::oracle;
use ssmdst::graph::generators::gadgets::multi_hub;
use ssmdst::prelude::*;

/// Every hub of the gadget starts at maximum degree; the protocol must
/// lower all of them and converge within Δ*+1 (Δ* ≤ 3 by construction).
#[test]
fn multi_hub_all_hubs_reduced() {
    let hubs = 4;
    let g = multi_hub(hubs, 5).unwrap();
    let net = build_network(&g, Config::for_n(g.n()));
    let mut runner = Runner::new(net, Scheduler::Synchronous);
    let out = runner.run_to_quiescence(200_000, 6 * g.n() as u64, oracle::projection);
    assert!(out.converged());
    let t = oracle::try_extract_tree(&g, runner.network()).expect("tree");
    assert!(
        t.max_degree() <= 4,
        "hubs not reduced: deg {}",
        t.max_degree()
    );
    // Specifically, every hub's tree degree dropped below its graph degree.
    let degs = t.degrees();
    for h in 0..hubs {
        let hub = (h * 6) as u32;
        assert!(
            degs[hub as usize] < g.degree(hub) as u32,
            "hub {hub} untouched"
        );
    }
}

/// Two hubs on opposite sides are vertex-disjoint: both improvements can be
/// in flight concurrently and total time must be far below the serialized
/// sum (which would be ≥ #improvements · diameter).
#[test]
fn disjoint_improvements_overlap_in_time() {
    let g = multi_hub(6, 5).unwrap();
    let net = build_network(&g, Config::for_n(g.n()));
    let mut runner = Runner::new(net, Scheduler::Synchronous);
    let quiet = 6 * g.n() as u64;
    let out = runner.run_to_quiescence(400_000, quiet, oracle::projection);
    assert!(out.converged());
    let conv = runner.round() - quiet;
    // Fair comparison: the serialized emulation of [3] pays a refresh
    // (diameter) plus one search period per single-swap phase.
    let t0 = ssmdst::baselines::bfs_spanning_tree(&g, 0).unwrap();
    let diam = ssmdst::graph::traversal::diameter(&g).unwrap() as u64;
    let (_, ser) = ssmdst::baselines::serialized_mdst(&g, t0, diam + 2 * g.n() as u64);
    assert!(
        conv < ser.charged_rounds,
        "no concurrency: {conv} rounds ≥ serialized {}",
        ser.charged_rounds
    );
}

/// Under the random-async daemon the gadget also converges (concurrency is
/// not an artifact of lockstep rounds).
#[test]
fn multi_hub_converges_async() {
    let g = multi_hub(3, 4).unwrap();
    let net = build_network(&g, Config::for_n(g.n()));
    let mut runner = Runner::new(net, Scheduler::RandomAsync { seed: 7 });
    let out = runner.run_to_quiescence(200_000, 6 * g.n() as u64, oracle::projection);
    assert!(out.converged());
    let t = oracle::try_extract_tree(&g, runner.network()).expect("tree");
    assert!(t.max_degree() <= 4);
}
