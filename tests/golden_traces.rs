//! Golden-trace verification: record-replay is **bit-exact**.
//!
//! Each pinned scenario has two committed artifacts under `tests/golden/`:
//! `NAME.scn` (the canonical scenario text) and `NAME.trace` (the recorded
//! run trace). The test re-runs the scenario **from the committed file**
//! and requires the rendered trace to equal the committed trace
//! byte-for-byte — any change to the schedule, the RNG streams, the
//! protocol rules or the state projection shows up here as a digest
//! divergence with a located first-differing record.
//!
//! Regenerate after an *intentional* execution change with:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test golden_traces
//! ```

use ssmdst::scenario::{corpus, engine, scn};
use ssmdst::sim::RunTrace;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// The pinned corpus scenarios: all three daemons, an
/// arbitrary-configuration start, churn, and a partition — the regions of
/// the scenario space most likely to catch a determinism regression.
fn golden_names() -> &'static [&'static str] {
    &[
        "converge-gnp-sync",
        "converge-scalefree-adversarial",
        "corrupt-start-total",
        "corrupt-start-partial-adversarial",
        "edge-churn-async",
        "partition-heal-cycle",
    ]
}

#[test]
fn golden_traces_replay_bit_for_bit() {
    let dir = golden_dir();
    let regen = std::env::var_os("GOLDEN_REGEN").is_some();
    if regen {
        std::fs::create_dir_all(&dir).expect("create tests/golden");
    }
    for name in golden_names() {
        let scenario = corpus::by_name(name).expect("golden name must be in the corpus");
        let scn_path = dir.join(format!("{name}.scn"));
        let trace_path = dir.join(format!("{name}.trace"));

        if regen {
            let (_, trace) = engine::run_traced(&scenario);
            std::fs::write(&scn_path, scenario.canonical()).expect("write .scn");
            std::fs::write(&trace_path, trace.render()).expect("write .trace");
            eprintln!("regenerated {name}.scn + {name}.trace");
            continue;
        }

        // The committed .scn must be the canonical rendering of the corpus
        // entry — corpus and artifact cannot drift apart silently.
        let scn_text = std::fs::read_to_string(&scn_path)
            .unwrap_or_else(|e| panic!("{}: {e} (run GOLDEN_REGEN=1 once)", scn_path.display()));
        assert_eq!(
            scn_text,
            scenario.canonical(),
            "{name}.scn is not the canonical rendering of the corpus entry"
        );

        // Replay from the FILE, not the in-process value: this is the path
        // a failure report travels.
        let parsed = scn::parse(&scn_text).expect("committed .scn parses");
        assert_eq!(parsed, scenario, "parse must reconstruct the scenario");
        let (_, replayed) = engine::run_traced(&parsed);

        let golden_text = std::fs::read_to_string(&trace_path)
            .unwrap_or_else(|e| panic!("{}: {e} (run GOLDEN_REGEN=1 once)", trace_path.display()));
        let golden = RunTrace::parse(&golden_text).expect("committed .trace parses");
        if let Some(divergence) = golden.first_divergence(&replayed) {
            panic!(
                "golden trace {name} DIVERGED: {divergence}\n\
                 If the execution change is intentional, regenerate with \
                 GOLDEN_REGEN=1 cargo test --test golden_traces"
            );
        }
        // Byte-for-byte, not just structurally equal.
        assert_eq!(
            replayed.render(),
            golden_text,
            "{name}: rendered trace must equal the committed bytes"
        );
    }
}

/// Replay determinism holds within a process too: two back-to-back runs of
/// the same scenario value produce identical traces.
#[test]
fn replay_is_deterministic_in_process() {
    let scenario = corpus::by_name("corrupt-start-total").unwrap();
    let (_, a) = engine::run_traced(&scenario);
    let (_, b) = engine::run_traced(&scenario);
    assert_eq!(a, b);
    engine::verify_replay(&scenario, &a).expect("replay verifies");
}
