//! Integration: cross-validation between the four independent
//! implementations of the same optimization —
//! the distributed protocol, the sequential FR baseline, the serialized
//! emulation and the exact solver. They were written against different
//! specifications (message-level pseudocode vs. the FR paper vs. plain
//! branch-and-bound), so agreement is strong evidence of correctness.

use ssmdst::baselines::{bfs_spanning_tree, fr_mdst, serialized_mdst};
use ssmdst::core::oracle;
use ssmdst::graph::generators::GraphFamily;
use ssmdst::graph::{exact_mdst, SolveBudget};
use ssmdst::prelude::*;

fn protocol_degree(g: &ssmdst::graph::Graph) -> u32 {
    let net = build_network(g, Config::for_n(g.n()));
    let mut runner = Runner::new(net, Scheduler::Synchronous);
    let out = runner.run_to_quiescence(150_000, (6 * g.n() as u64).max(64), oracle::projection);
    assert!(out.converged());
    oracle::try_extract_tree(g, runner.network())
        .expect("terminal tree")
        .max_degree()
}

/// All three approximation algorithms land in `{Δ*, Δ*+1}`.
#[test]
fn all_methods_within_one_of_exact() {
    for fam in GraphFamily::all() {
        let g = fam.generate(12, 8);
        let ds = fam
            .known_delta_star(&g)
            .or_else(|| exact_mdst(&g, SolveBudget::default()).delta_star())
            .expect("solvable at n=12");
        let t0 = bfs_spanning_tree(&g, 0).unwrap();
        let (fr, _) = fr_mdst(&g, t0.clone());
        let (ser, _) = serialized_mdst(&g, t0, 1);
        let dist = protocol_degree(&g);
        for (label, d) in [
            ("FR", fr.max_degree()),
            ("serialized", ser.max_degree()),
            ("protocol", dist),
        ] {
            assert!(
                d >= ds && d <= ds + 1,
                "{} on {}: degree {d} outside [{}, {}]",
                label,
                fam.label(),
                ds,
                ds + 1
            );
        }
    }
}

/// The distributed protocol never does worse than the centralized FR by
/// more than one (both are Δ*+1 algorithms, so they differ by ≤ 1).
#[test]
fn protocol_tracks_fr_quality() {
    for seed in [11u64, 12, 13] {
        let g = GraphFamily::GnpDense.generate(14, seed);
        let (fr, _) = fr_mdst(&g, bfs_spanning_tree(&g, 0).unwrap());
        let dist = protocol_degree(&g);
        assert!(
            dist <= fr.max_degree() + 1 && fr.max_degree() <= dist + 1,
            "seed {seed}: protocol {dist} vs FR {}",
            fr.max_degree()
        );
    }
}

/// FR from different initial trees reaches the same quality band — the
/// fixed point depends on the graph, not the start.
#[test]
fn fr_quality_independent_of_initial_tree() {
    use ssmdst::baselines::{dfs_spanning_tree, random_spanning_tree};
    let g = GraphFamily::HamiltonianChords.generate(16, 3);
    let from_bfs = fr_mdst(&g, bfs_spanning_tree(&g, 0).unwrap())
        .0
        .max_degree();
    let from_dfs = fr_mdst(&g, dfs_spanning_tree(&g, 0).unwrap())
        .0
        .max_degree();
    let from_rnd = fr_mdst(&g, random_spanning_tree(&g, 4).unwrap())
        .0
        .max_degree();
    // Δ* = 2 by construction: all must be in {2, 3}.
    for d in [from_bfs, from_dfs, from_rnd] {
        assert!((2..=3).contains(&d), "degree {d}");
    }
}

/// The exact solver's witness is itself a certificate: its degree equals
/// the reported optimum, and no tree can beat it (decision procedure says
/// no at Δ*−1).
#[test]
fn exact_solver_is_self_certifying() {
    use ssmdst::graph::has_spanning_tree_with_max_degree;
    let g = GraphFamily::GnpDense.generate(12, 14);
    let res = exact_mdst(&g, SolveBudget::default());
    let ds = res.delta_star().expect("solvable");
    assert_eq!(res.witness().max_degree(), ds);
    res.witness().validate(&g).unwrap();
    if ds > 1 {
        assert_eq!(
            has_spanning_tree_with_max_degree(&g, ds - 1, SolveBudget::default()),
            Some(None),
            "a better tree exists: Δ* was wrong"
        );
    }
}
