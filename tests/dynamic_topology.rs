//! Dynamic-topology acceptance: after **each** churn event of a fault plan
//! (edge removal/insertion, node crash/rejoin, partition/heal), the
//! protocol must re-stabilize to per-component spanning trees of degree
//! ≤ Δ* + 1 on the *current* live topology — under every daemon.
//!
//! This is the convergence-under-perturbation regime: the constraint set
//! changes out from under the protocol, and self-stabilization (the paper's
//! Definition 1, with churn playing the role of the transient fault) is
//! what brings the tree back.

use ssmdst::core::{churn, oracle};
use ssmdst::graph::generators::random::gnp_connected;
use ssmdst::graph::SolveBudget;
use ssmdst::prelude::*;
use ssmdst::sim::faults::{apply_churn, ChurnEvent, TopologyPlan};

fn budget() -> SolveBudget {
    SolveBudget { max_nodes: 500_000 }
}

/// Run to quiescence and assert the component-wise tree bound.
fn assert_reconverges(
    runner: &mut Runner<MdstNode>,
    max_rounds: u64,
    context: &dyn std::fmt::Display,
) {
    let n = runner.network().n();
    let out =
        runner.run_to_quiescence(max_rounds, ssmdst::sim::quiet_window(n), oracle::projection);
    assert!(out.converged(), "no quiescence after {context}");
    let reports = churn::check_reconvergence(runner.network(), budget())
        .unwrap_or_else(|e| panic!("after {context}: {e}"));
    for r in &reports {
        assert!(
            r.within_one,
            "after {context}: component {:?} degree {} vs Δ* {:?} (lb {})",
            r.nodes, r.degree, r.delta_star, r.lower
        );
    }
}

fn gauntlet_under(sched: Scheduler) {
    let g = gnp_connected(12, 0.3, 2026);
    let plan = TopologyPlan::gauntlet(&g, 5);
    assert!(
        plan.events.len() >= 6,
        "gauntlet too small: {:?}",
        plan.events
    );
    let net = build_network(&g, Config::for_n(g.n()));
    let mut runner = Runner::new(net, sched);
    assert_reconverges(&mut runner, 60_000, &"initial convergence");
    for ev in &plan.events {
        apply_churn(runner.network_mut(), ev);
        assert_reconverges(&mut runner, 60_000, ev);
    }
    // The plan is symmetric (every removal is healed, every crash rejoined):
    // the final topology is the original graph, spanned by a single tree.
    let final_reports = churn::check_reconvergence(runner.network(), budget()).unwrap();
    assert_eq!(final_reports.len(), 1, "final topology reconnected");
    assert_eq!(final_reports[0].nodes.len(), g.n());
}

#[test]
fn gauntlet_reconverges_under_synchronous() {
    gauntlet_under(Scheduler::Synchronous);
}

#[test]
fn gauntlet_reconverges_under_random_async() {
    gauntlet_under(Scheduler::RandomAsync { seed: 9 });
}

#[test]
fn gauntlet_reconverges_under_adversarial() {
    gauntlet_under(Scheduler::Adversarial { seed: 9 });
}

/// Inserting a brand-new edge (one that was never in the host graph) must
/// also be absorbed: the new fundamental cycle is search fodder, and if it
/// offers an improvement the tree degree may only go down.
#[test]
fn new_edge_insertion_is_absorbed() {
    let g = ssmdst::graph::generators::structured::star_with_ring(10).unwrap();
    let net = build_network(&g, Config::for_n(g.n()));
    let mut runner = Runner::new(net, Scheduler::Synchronous);
    assert_reconverges(&mut runner, 60_000, &"initial convergence");
    let before = oracle::current_degree(&g, runner.network()).unwrap();
    // Wire two ring nodes that are not adjacent in the host graph.
    let ev = ChurnEvent::InsertEdge(2, 6);
    let applied = apply_churn(runner.network_mut(), &ev);
    assert_eq!(applied, 1, "edge {ev} must be new");
    assert_reconverges(&mut runner, 60_000, &ev);
    let g_now = runner.network().current_graph();
    let after = oracle::current_degree(&g_now, runner.network()).unwrap();
    assert!(after <= before, "degree regressed: {before} -> {after}");
}
