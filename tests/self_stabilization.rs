//! Integration: Definition 1 — convergence from arbitrary configurations
//! and closure of the legitimate set.

use ssmdst::core::oracle;
use ssmdst::graph::generators::GraphFamily;
use ssmdst::prelude::*;
use ssmdst::sim::faults::{inject, FaultPlan};

fn quiet(n: usize) -> u64 {
    (6 * n as u64).max(64)
}

/// Convergence: start from total garbage (every node corrupted, channels
/// emptied) and reach a legitimate configuration.
#[test]
fn converges_from_total_corruption() {
    for fam in [
        GraphFamily::GnpSparse,
        GraphFamily::Grid,
        GraphFamily::ScaleFree,
    ] {
        let g = fam.generate(12, 4);
        let net = build_network(&g, Config::for_n(g.n()));
        let mut runner = Runner::new(net, Scheduler::RandomAsync { seed: 8 });
        inject(runner.network_mut(), FaultPlan::total(13));
        let out = runner.run_to_quiescence(150_000, quiet(g.n()), oracle::projection);
        assert!(out.converged(), "{}: stuck after corruption", fam.label());
        assert!(
            oracle::is_legitimate(&g, runner.network()),
            "{}: terminal state not legitimate",
            fam.label()
        );
    }
}

/// Convergence from many distinct corrupted initial states (different
/// adversary seeds → different garbage).
#[test]
fn converges_from_many_garbage_states() {
    let g = GraphFamily::GnpSparse.generate(10, 2);
    for adversary_seed in 0..8u64 {
        let net = build_network(&g, Config::for_n(g.n()));
        let mut runner = Runner::new(net, Scheduler::Synchronous);
        inject(runner.network_mut(), FaultPlan::total(adversary_seed));
        let out = runner.run_to_quiescence(150_000, quiet(g.n()), oracle::projection);
        assert!(out.converged(), "adversary seed {adversary_seed}");
        assert!(oracle::is_legitimate(&g, runner.network()));
    }
}

/// Closure: once legitimate, the configuration stays legitimate (the tree
/// and dmax never change again; searches are pure reads).
#[test]
fn legitimate_configurations_are_closed() {
    let g = GraphFamily::GnpDense.generate(12, 6);
    let net = build_network(&g, Config::for_n(g.n()));
    let mut runner = Runner::new(net, Scheduler::Synchronous);
    let out = runner.run_to_quiescence(150_000, quiet(g.n()), oracle::projection);
    assert!(out.converged());
    let before = oracle::projection(runner.network());
    // Run a long time past convergence: nothing may change.
    let _ = runner.run_until(5_000, |_, _| false);
    assert_eq!(before, oracle::projection(runner.network()));
    assert!(oracle::is_legitimate(&g, runner.network()));
}

/// Partial corruption at every fraction recovers, and the recovered degree
/// is never worse than the guarantee.
#[test]
fn recovers_from_partial_corruption_at_all_fractions() {
    let g = GraphFamily::GnpSparse.generate(14, 5);
    let lb = ssmdst::graph::degree_lower_bound(&g);
    for frac in [0.1f64, 0.3, 0.7] {
        let net = build_network(&g, Config::for_n(g.n()));
        let mut runner = Runner::new(net, Scheduler::Synchronous);
        let out = runner.run_to_quiescence(150_000, quiet(g.n()), oracle::projection);
        assert!(out.converged());
        inject(runner.network_mut(), FaultPlan::partial(frac, 21));
        let out = runner.run_to_quiescence(150_000, quiet(g.n()), oracle::projection);
        assert!(out.converged(), "fraction {frac}");
        let t = oracle::try_extract_tree(&g, runner.network()).expect("tree");
        // deg ≤ Δ*+1 and Δ* is at least the combinatorial lower bound; the
        // exact solver confirms Δ* ≤ lb+1 on these instances, so lb+2 is a
        // safe envelope.
        assert!(t.max_degree() <= lb + 2, "fraction {frac}: degraded");
    }
}

/// Corrupting in-flight messages only (no node state) is harmless.
#[test]
fn survives_message_loss_bursts() {
    let g = GraphFamily::Geometric.generate(12, 7);
    let net = build_network(&g, Config::for_n(g.n()));
    let mut runner = Runner::new(net, Scheduler::RandomAsync { seed: 2 });
    for _ in 0..5 {
        let _ = runner.run_until(50, |_, _| false);
        runner.network_mut().clear_channels();
    }
    let out = runner.run_to_quiescence(150_000, quiet(g.n()), oracle::projection);
    assert!(out.converged());
    assert!(oracle::is_legitimate(&g, runner.network()));
}

/// The fault-recovery path also works under the adversarial daemon.
#[test]
fn recovery_under_adversarial_daemon() {
    let g = GraphFamily::Hypercube.generate(16, 0);
    let net = build_network(&g, Config::for_n(g.n()));
    let mut runner = Runner::new(net, Scheduler::Adversarial { seed: 17 });
    let out = runner.run_to_quiescence(200_000, quiet(g.n()), oracle::projection);
    assert!(out.converged());
    inject(runner.network_mut(), FaultPlan::total(3));
    let out = runner.run_to_quiescence(200_000, quiet(g.n()), oracle::projection);
    assert!(out.converged());
    assert!(oracle::is_legitimate(&g, runner.network()));
}
