//! Observer-composition determinism fence.
//!
//! The Session/Observer contract: observers **never perturb the
//! execution**. Attaching `(Trace, Digest, Metrics)` in any order — or
//! attaching nothing at all — yields the identical run: byte-identical
//! schedule digests, identical node states, identical metrics, and (at
//! the scenario level) identical golden traces. Any future observer that
//! mutates state, reorders hooks, or lets composition order leak into
//! the schedule fails here.

use ssmdst::prelude::*;
use ssmdst::scenario::{corpus, engine};
use ssmdst::sim::{Digest, MetricsTrace};

fn graph() -> Graph {
    ssmdst::graph::generators::structured::star_with_ring(10).unwrap()
}

fn session_with<O: Observer<MdstNode>>(
    sched: Scheduler,
    obs: O,
) -> ssmdst::sim::Session<MdstNode, O> {
    Session::from_network(build_network(&graph(), Config::for_n(10)))
        .scheduler(sched)
        .horizon(2_000)
        .observe(obs)
}

/// Fingerprint of an execution: final digest + node-state projection +
/// message totals.
type ExecutionFingerprint = (u64, (Vec<u32>, Vec<u32>, Vec<u32>), u64, u64);

fn fingerprint<O: Observer<MdstNode>>(
    session: &ssmdst::sim::Session<MdstNode, O>,
    digest: u64,
) -> ExecutionFingerprint {
    let m = &session.network().metrics;
    (
        digest,
        oracle::projection(session.network()),
        m.total_sent,
        m.total_delivered,
    )
}

/// `(Trace, Digest, Metrics)` attached in every order produces
/// byte-identical digests and identical executions.
#[test]
fn observer_order_never_changes_the_run() {
    for sched in [
        Scheduler::Synchronous,
        Scheduler::RandomAsync { seed: 9 },
        Scheduler::Adversarial { seed: 9 },
    ] {
        // Order 1: ((trace, digest), metrics)
        let mut s1 = session_with(
            sched,
            (
                (RoundTrace::new(), ScheduleDigest::new()),
                MetricsTrace::new(),
            ),
        );
        let _ = s1.run_until(60, &mut ());
        let ((t1, d1), m1) = s1.observer();
        let f1 = fingerprint(&s1, d1.value());

        // Order 2: (metrics, (digest, trace))
        let mut s2 = session_with(
            sched,
            (
                MetricsTrace::new(),
                (ScheduleDigest::new(), RoundTrace::new()),
            ),
        );
        let _ = s2.run_until(60, &mut ());
        let (m2, (d2, t2)) = s2.observer();
        let f2 = fingerprint(&s2, d2.value());

        // Order 3: (digest, (metrics, trace))
        let mut s3 = session_with(
            sched,
            (
                ScheduleDigest::new(),
                (MetricsTrace::new(), RoundTrace::new()),
            ),
        );
        let _ = s3.run_until(60, &mut ());
        let (d3, (m3, t3)) = s3.observer();
        let f3 = fingerprint(&s3, d3.value());

        assert_eq!(f1, f2, "order 1 vs 2 diverged under {sched:?}");
        assert_eq!(f1, f3, "order 1 vs 3 diverged under {sched:?}");
        assert_eq!(t1.samples(), t2.samples());
        assert_eq!(t1.samples(), t3.samples());
        assert_eq!(m1.sent(), m2.sent());
        assert_eq!(m1.sent(), m3.sent());
    }
}

/// An attached-observer run matches a bare run event-for-event: the
/// observer session's schedule digest equals the digest a bare runner
/// folds itself, and final states agree.
#[test]
fn observed_run_matches_bare_run_event_for_event() {
    for sched in [
        Scheduler::Synchronous,
        Scheduler::RandomAsync { seed: 4 },
        Scheduler::Adversarial { seed: 4 },
    ] {
        let mut observed = session_with(
            sched,
            (
                RoundTrace::new(),
                (ScheduleDigest::new(), MetricsTrace::new()),
            ),
        );
        for _ in 0..60 {
            let _ = observed.step();
        }

        let mut bare = Runner::new(build_network(&graph(), Config::for_n(10)), sched);
        let mut bare_digest = Digest::new();
        for _ in 0..60 {
            bare.step_round_digest(&mut bare_digest);
        }

        let (_, (digest, _)) = observed.observer();
        assert_eq!(
            digest.value(),
            bare_digest.value(),
            "schedule diverged under {sched:?}"
        );
        assert_eq!(
            oracle::projection(observed.network()),
            oracle::projection(bare.network())
        );
        assert_eq!(
            observed.network().metrics.total_sent,
            bare.network().metrics.total_sent
        );
    }
}

/// Golden fence at the scenario level: running a pinned corpus scenario
/// with a per-round observer hook attached produces the identical
/// recorded trace (records and final digest) as the unobserved run.
#[test]
fn scenario_traces_are_identical_with_and_without_observers() {
    for name in ["corrupt-start-total", "edge-churn-async"] {
        let scenario = corpus::by_name(name).expect("corpus entry");
        let (_, unobserved) = engine::run_traced(&scenario);
        let mut rounds_seen = 0u64;
        let (_, observed, _) = engine::run_traced_observed(&scenario, |_, _| rounds_seen += 1);
        assert!(rounds_seen > 0, "{name}: hook never fired");
        assert_eq!(
            unobserved, observed,
            "{name}: observer hook perturbed the recorded trace"
        );
        assert_eq!(
            unobserved.render(),
            observed.render(),
            "{name}: bytes differ"
        );
    }
}
