//! Workspace smoke test: every facade re-export is reachable through the
//! `ssmdst` crate, and the README/lib.rs quickstart actually runs. This is
//! the cheapest tier-1 canary — if the workspace wiring (crate names, path
//! deps, `pub use` surface) regresses, this file fails to *compile*.

use ssmdst::prelude::*;

/// Every module alias resolves and exposes its headline items. The bodies
/// exercise one real call per crate so the re-export is linked, not just
/// name-resolved.
#[test]
fn facade_reexports_are_reachable() {
    // ssmdst::graph == ssmdst_graph
    let g: ssmdst::graph::Graph =
        ssmdst::graph::generators::structured::star_with_ring(8).expect("star_with_ring generates");
    assert_eq!(g.n(), 8);
    assert!(ssmdst::graph::is_connected(&g));
    let lb = ssmdst::graph::degree_lower_bound(&g);
    assert!(lb >= 2);

    // ssmdst::baselines == ssmdst_baselines
    let t = ssmdst::baselines::bfs_spanning_tree(&g, 0).expect("bfs tree");
    t.validate(&g).expect("valid spanning tree");

    // ssmdst::core == ssmdst_core (type path and constructor)
    let cfg: ssmdst::core::Config = ssmdst::core::Config::for_n(g.n());
    let net = ssmdst::core::build_network(&g, cfg);
    assert_eq!(net.n(), g.n());

    // ssmdst::sim == ssmdst_sim
    let mut runner = ssmdst::sim::Runner::new(net, ssmdst::sim::Scheduler::Synchronous);
    let out = runner.run_to_quiescence(10_000, 64, ssmdst::core::oracle::projection);
    assert!(out.converged());
}

/// The prelude glob covers the names the examples and docs lean on.
#[test]
fn prelude_surface_is_complete() {
    // Types from all four crates are importable through one glob.
    let g: Graph = GraphBuilder::new(3)
        .edge(0, 1)
        .unwrap()
        .edge(1, 2)
        .unwrap()
        .build();
    let _: SpanningTree = bfs_spanning_tree(&g, 0).unwrap();
    let _: SpanningTree = random_spanning_tree(&g, 7).unwrap();
    let (t, _stats) = fr_mdst(&g, bfs_spanning_tree(&g, 0).unwrap());
    t.validate(&g).unwrap();

    let net: Network<MdstNode> = build_network(&g, Config::for_n(g.n()));
    let mut runner: Runner<MdstNode> = Runner::new(net, Scheduler::Synchronous);
    let out: RunOutcome = runner.run_until(1_000, |net, _| oracle::all_tree_stabilized(net));
    assert!(out.converged());
}

/// The lib.rs quickstart, verbatim as a compiled test (the doctest runs it
/// too — `cargo test --doc` — but doctests can be skipped by test filters,
/// so the canary also lives here).
#[test]
fn quickstart_runs_to_low_degree() {
    let g = ssmdst::graph::generators::structured::star_with_ring(8).unwrap();
    let net = ssmdst::core::build_network(&g, Config::for_n(g.n()));
    let mut runner = Runner::new(net, Scheduler::Synchronous);
    let out = runner.run_until(10_000, |net, _| {
        ssmdst::core::oracle::current_degree(&g, net)
            .map(|d| d <= 3)
            .unwrap_or(false)
    });
    assert!(out.converged());
}
