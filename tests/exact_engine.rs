//! Property-based differential for the exact-Δ* engine (`ssmdst::exact`):
//! the certified interval agrees with the independent branch-and-bound
//! oracle and brackets the Fürer–Raghavachari baseline on random and
//! structured small-n families (the 256-case sweep), and the incremental
//! re-solver is outcome-identical to a from-scratch solve after every
//! prefix of a random churn chain.

use proptest::prelude::*;
use ssmdst::exact::{IncrementalSolver, Solver};
use ssmdst::graph::generators::random::gnp_connected;
use ssmdst::graph::generators::structured;
use ssmdst::graph::{exact_mdst, Graph, SolveBudget};

/// A small instance from a mix of families: connected G(n, p) most of the
/// time, plus the structured shapes whose optima are known stress cases
/// (cycles: Δ* = 2; star-rings: hub vs ring tension; complete bipartite:
/// every improvement is endpoint-blocked).
fn small_graph() -> impl Strategy<Value = Graph> {
    prop_oneof![
        5 => (4usize..=12, 0.15f64..0.8, 0u64..1000)
            .prop_map(|(n, p, seed)| gnp_connected(n, p, seed)),
        1 => (4usize..=12).prop_map(|n| structured::cycle(n).expect("n >= 3")),
        1 => (5usize..=12).prop_map(|n| structured::star_with_ring(n).expect("n >= 4")),
        1 => (2usize..=4, 2usize..=5)
            .prop_map(|(a, b)| structured::complete_bipartite(a, b).expect("a, b >= 1")),
    ]
}

fn solver() -> Solver {
    Solver::builder().settle_max_n(64).build()
}

/// Rebuild the incremental solver's current topology into a fresh
/// instance — the from-scratch reference the warm path must match.
fn from_scratch(inc: &IncrementalSolver) -> IncrementalSolver {
    let mut fresh = IncrementalSolver::new(inc.n(), solver());
    for v in 0..inc.n() as u32 {
        if !inc.is_alive(v) {
            fresh.crash(v);
        }
    }
    for u in 0..inc.n() as u32 {
        for v in inc.neighbors(u).collect::<Vec<_>>() {
            if u < v {
                fresh.insert_edge(u, v);
            }
        }
    }
    fresh
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The differential sweep: on every instance the engine settles, its
    /// Δ* equals the branch-and-bound oracle's, its witness re-verifies
    /// independently against the raw graph, and the FR baseline lands in
    /// `[Δ*, Δ* + 1]` (Fürer–Raghavachari's guarantee, checked against
    /// *our* Δ*).
    #[test]
    fn engine_matches_branch_and_bound_and_brackets_fr(g in small_graph()) {
        let sol = solver().solve(&g);
        prop_assert!(sol.exact(), "small instances must settle");
        let oracle = exact_mdst(&g, SolveBudget::default())
            .delta_star()
            .expect("small instances are solvable");
        prop_assert_eq!(sol.lower, oracle, "engine vs branch-and-bound");
        prop_assert!(
            sol.witness.certifies(&g) + 1 >= sol.lower,
            "witness certifies {} but interval claims lower {}",
            sol.witness.certifies(&g),
            sol.lower
        );
        let t0 = ssmdst::baselines::bfs_spanning_tree(&g, 0).expect("connected");
        let (fr, _) = ssmdst::baselines::fr_mdst(&g, t0);
        let deg = fr.max_degree();
        prop_assert!(oracle <= deg && deg <= oracle + 1, "FR degree {deg} vs Δ* {oracle}");
    }

    /// The incremental contract: after every prefix of a random churn
    /// chain (edge remove/insert, crash/rejoin), the warm re-solve's
    /// per-component outcome — membership and certified interval — is
    /// identical to a from-scratch solve of the same topology.
    #[test]
    fn incremental_matches_from_scratch_across_churn_chains(
        g in small_graph(),
        ops in proptest::collection::vec((0u8..4, 0usize..1000, 0usize..1000), 1..10),
    ) {
        let mut inc = IncrementalSolver::from_graph(&g, solver());
        inc.solve_all();
        for (op, a, b) in ops {
            let n = inc.n() as u32;
            let alive: Vec<u32> = (0..n).filter(|&v| inc.is_alive(v)).collect();
            match op {
                0 => {
                    // Remove a present edge (may split the component).
                    let edges: Vec<(u32, u32)> = alive
                        .iter()
                        .flat_map(|&u| {
                            inc.neighbors(u).filter(move |&v| u < v).map(move |v| (u, v))
                        })
                        .collect();
                    if let Some(&(u, v)) = edges.get(a % edges.len().max(1)) {
                        inc.remove_edge(u, v);
                    }
                }
                1 => {
                    // Insert an edge between two live vertices.
                    let u = alive[a % alive.len()];
                    let v = alive[b % alive.len()];
                    if u != v {
                        inc.insert_edge(u.min(v), u.max(v));
                    }
                }
                2 => {
                    // Crash a live vertex, keeping at least one alive.
                    if alive.len() > 1 {
                        inc.crash(alive[a % alive.len()]);
                    }
                }
                _ => {
                    // Rejoin a dead vertex to a nonempty set of live ones.
                    let dead: Vec<u32> = (0..n).filter(|&v| !inc.is_alive(v)).collect();
                    if let (Some(&v), false) = (dead.get(a % dead.len().max(1)), alive.is_empty()) {
                        let mut nbrs: Vec<u32> =
                            (0..=b % alive.len()).map(|i| alive[i]).collect();
                        nbrs.dedup();
                        inc.rejoin(v, &nbrs);
                    }
                }
            }
            let warm = inc.solve_all();
            let cold = from_scratch(&inc).solve_all();
            prop_assert_eq!(warm.len(), cold.len(), "component count diverged");
            for (w, c) in warm.iter().zip(&cold) {
                prop_assert_eq!(&w.members, &c.members, "membership diverged");
                prop_assert_eq!(w.lower, c.lower, "lower bound diverged");
                prop_assert_eq!(w.upper, c.upper, "upper bound diverged");
                prop_assert_eq!(w.exact(), c.exact(), "settledness diverged");
            }
        }
    }
}
