//! Integration: the ablation configurations of DESIGN.md (A1, A2) remain
//! correct (self-stabilizing, tree-valid); the experiment harness measures
//! their performance cost separately.

use ssmdst::core::oracle;
use ssmdst::graph::generators::GraphFamily;
use ssmdst::prelude::*;
use ssmdst::sim::faults::{inject, FaultPlan};

fn quiet(n: usize) -> u64 {
    (6 * n as u64).max(64)
}

/// A1: strict paper-style R2 still converges to a legitimate configuration.
#[test]
fn strict_mode_converges() {
    let g = GraphFamily::GnpSparse.generate(12, 1);
    let net = build_network(&g, Config::strict(g.n()));
    let mut runner = Runner::new(net, Scheduler::Synchronous);
    let out = runner.run_to_quiescence(300_000, quiet(g.n()), oracle::projection);
    assert!(out.converged(), "strict mode stuck");
    assert!(oracle::is_legitimate(&g, runner.network()));
}

/// A1: strict mode also recovers from corruption.
#[test]
fn strict_mode_recovers_from_faults() {
    let g = GraphFamily::Grid.generate(9, 1);
    let net = build_network(&g, Config::strict(g.n()));
    let mut runner = Runner::new(net, Scheduler::RandomAsync { seed: 4 });
    inject(runner.network_mut(), FaultPlan::total(5));
    let out = runner.run_to_quiescence(300_000, quiet(g.n()), oracle::projection);
    assert!(out.converged());
    assert!(oracle::try_extract_tree(&g, runner.network()).is_some());
}

/// A2: with Deblock disabled the protocol still stabilizes to a valid
/// spanning tree (the quality guarantee, not safety, is what degrades).
#[test]
fn no_deblock_still_safe() {
    for fam in [GraphFamily::GnpDense, GraphFamily::ScaleFree] {
        let g = fam.generate(12, 2);
        let net = build_network(&g, Config::without_deblock(g.n()));
        let mut runner = Runner::new(net, Scheduler::Synchronous);
        let out = runner.run_to_quiescence(150_000, quiet(g.n()), oracle::projection);
        assert!(out.converged(), "{}", fam.label());
        let t = oracle::try_extract_tree(&g, runner.network()).expect("tree");
        t.validate(&g).unwrap();
    }
}

/// A2: Deblock never *hurts* quality — with it enabled the final degree is
/// less than or equal to the no-deblock run on the same instance.
#[test]
fn deblock_never_hurts_quality() {
    for seed in [3u64, 4, 5] {
        let g = GraphFamily::GnpDense.generate(12, seed);
        let run = |cfg: Config| {
            let net = build_network(&g, cfg);
            let mut runner = Runner::new(net, Scheduler::Synchronous);
            let out = runner.run_to_quiescence(150_000, quiet(g.n()), oracle::projection);
            assert!(out.converged());
            oracle::try_extract_tree(&g, runner.network())
                .expect("tree")
                .max_degree()
        };
        let with = run(Config::for_n(g.n()));
        let without = run(Config::without_deblock(g.n()));
        assert!(
            with <= without,
            "seed {seed}: deblock degraded quality ({with} > {without})"
        );
    }
}

/// Config search-period sanity: an aggressive (short) period still
/// converges — throttles are performance knobs, not correctness knobs.
#[test]
fn short_search_period_still_converges() {
    let g = GraphFamily::HamiltonianChords.generate(12, 6);
    let cfg = Config {
        search_period: 8,
        ..Config::for_n(g.n())
    };
    let net = build_network(&g, cfg);
    let mut runner = Runner::new(net, Scheduler::Synchronous);
    let out = runner.run_to_quiescence(150_000, quiet(g.n()), oracle::projection);
    assert!(out.converged());
    assert!(oracle::is_legitimate(&g, runner.network()));
}
