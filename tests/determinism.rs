//! Determinism guard: with a fixed seed, every scheduler must produce a
//! byte-identical execution trace across independent runs. Future
//! parallelism work (sharded simulation, multi-threaded sweeps) must not
//! perturb single-run determinism — reproducible experiment tables and
//! replayable failing executions depend on it.

use ssmdst::core::oracle;
use ssmdst::graph::generators::random::gnp_connected;
use ssmdst::prelude::*;
use ssmdst::sim::faults::{inject, FaultPlan};
use ssmdst::sim::ChangeSeries;

/// Run the protocol for `rounds` rounds on `g`, recording the oracle
/// projection (parents, distances, dmax) into a [`ChangeSeries`] sampled
/// every round, with a fault burst injected at round 40 to exercise the
/// recovery paths too.
fn traced_run(
    g: &ssmdst::graph::Graph,
    sched: Scheduler,
    fault_seed: u64,
    rounds: u64,
) -> ChangeSeries<(Vec<u32>, Vec<u32>, Vec<u32>)> {
    let net = build_network(g, Config::for_n(g.n()));
    let mut runner = Runner::new(net, sched);
    let mut series = ChangeSeries::new();
    series.observe(0, oracle::projection(runner.network()));
    for r in 1..=rounds {
        if r == 40 {
            inject(runner.network_mut(), FaultPlan::partial(0.5, fault_seed));
        }
        runner.step_round();
        series.observe(r, oracle::projection(runner.network()));
    }
    series
}

fn assert_identical_traces(sched: Scheduler) {
    let g = gnp_connected(12, 0.3, 2026);
    let a = traced_run(&g, sched, 7, 120);
    let b = traced_run(&g, sched, 7, 120);
    // Structural equality of every recorded (round, state) sample...
    assert_eq!(a.samples(), b.samples(), "trace diverged under {sched:?}");
    // ...and byte-identity of the rendered series, so even formatting-level
    // drift (e.g. a nondeterministic container order sneaking into the
    // projection) is caught.
    assert_eq!(
        format!("{:?}", a.samples()).into_bytes(),
        format!("{:?}", b.samples()).into_bytes(),
        "trace bytes diverged under {sched:?}"
    );
    // The trace must be non-trivial: the fault at round 40 forces changes.
    assert!(a.changes() > 1, "degenerate trace under {sched:?}");
}

#[test]
fn synchronous_trace_is_deterministic() {
    assert_identical_traces(Scheduler::Synchronous);
}

#[test]
fn random_async_trace_is_deterministic_per_seed() {
    assert_identical_traces(Scheduler::RandomAsync { seed: 42 });
}

#[test]
fn adversarial_trace_is_deterministic_per_seed() {
    assert_identical_traces(Scheduler::Adversarial { seed: 42 });
}

/// Different seeds must actually explore different interleavings —
/// otherwise the seed parameter is decorative and the determinism guard
/// above is vacuous.
#[test]
fn random_async_seeds_differ() {
    let g = gnp_connected(12, 0.3, 2026);
    let a = traced_run(&g, Scheduler::RandomAsync { seed: 1 }, 7, 120);
    let b = traced_run(&g, Scheduler::RandomAsync { seed: 2 }, 7, 120);
    assert_ne!(
        a.samples(),
        b.samples(),
        "seeds 1 and 2 produced identical executions"
    );
}
