//! Scenario-corpus conformance harness.
//!
//! Sweeps the whole curated corpus through the protocol and enforces two
//! contracts on every run:
//!
//! 1. **Self-stabilization**: every phase of every scenario converges and
//!    passes the component-wise degree ≤ Δ*+1 judge;
//! 2. **Differential vs Fürer–Raghavachari**: whenever a run ends on a
//!    single spanning tree, `deg(ssmdst) ≤ deg(FR) + 1` — implied by
//!    Theorem 2 (`deg(ssmdst) ≤ Δ* + 1 ≤ deg(FR) + 1`), checked against
//!    the independent centralized implementation.
//!
//! On failure the harness does not just assert: it **delta-debugs the
//! failing scenario to a minimal reproducer and prints the `.scn` text in
//! the panic message**, so the CI job log carries a one-file repro.

use ssmdst::baselines;
use ssmdst::prelude::*;
use ssmdst::scenario::{corpus, engine, shrink};

/// Shrink under `fails`, then panic with the minimal committable `.scn`.
fn fail_with_repro(scn: &Scenario, fails: impl FnMut(&Scenario) -> bool, msg: String) -> ! {
    let repro = shrink::shrink(scn, fails)
        .map(|(minimal, _)| minimal)
        .unwrap_or_else(|| scn.clone());
    panic!(
        "{msg}\n--- minimal .scn reproducer (save and run `ssmdst replay`) ---\n{}",
        repro.canonical()
    );
}

fn fr_degree(g: &Graph) -> u32 {
    let bfs = baselines::bfs_spanning_tree(g, 0).expect("corpus graphs are connected");
    let (fr, _) = baselines::fr_mdst(g, bfs);
    fr.max_degree()
}

#[test]
fn corpus_stabilizes_and_matches_fuerer_raghavachari() {
    for scenario in corpus::corpus() {
        // Protocol-generic: MDST rows and flood/echo rows alike go
        // through the registry dispatch.
        let out = engine::run_any(&scenario);

        if !out.all_ok() {
            let bad: Vec<String> = out
                .phases
                .iter()
                .filter(|p| !p.ok)
                .map(|p| format!("{} (converged={}, deg={})", p.label, p.converged, p.degree))
                .collect();
            fail_with_repro(
                &scenario,
                |s| !engine::run_any(s).all_ok(),
                format!(
                    "corpus scenario '{}' failed phases: {}",
                    scenario.name,
                    bad.join(", ")
                ),
            );
        }

        // Differential: the distributed result within one of the
        // centralized FR result, whenever a single tree survives churn.
        if let Some(deg) = out.final_degree {
            let fr = fr_degree(&scenario.topology.build());
            if deg > fr + 1 {
                fail_with_repro(
                    &scenario,
                    |s| {
                        let o = engine::run_any(s);
                        match o.final_degree {
                            Some(d) => d > fr_degree(&s.topology.build()) + 1,
                            None => false,
                        }
                    },
                    format!(
                        "corpus scenario '{}': deg(ssmdst)={deg} > deg(FR)+1={}",
                        scenario.name,
                        fr + 1
                    ),
                );
            }
        }
    }
}

/// Differential for the exact-`Δ*` engine over every corpus topology:
/// at corpus scale the certified interval must settle, agree with the
/// independent branch-and-bound oracle, carry a witness that re-verifies
/// against the raw graph, and bracket the Fürer–Raghavachari tree
/// (`Δ* ≤ deg(FR) ≤ Δ* + 1`).
#[test]
fn exact_engine_agrees_with_oracles_on_corpus_graphs() {
    use ssmdst::exact::Solver;
    use ssmdst::graph::{exact_mdst, SolveBudget};

    let solver = Solver::builder().settle_max_n(256).build();
    for scenario in corpus::corpus() {
        let g = scenario.topology.build();
        let sol = solver.solve(&g);
        assert!(sol.exact(), "{}: corpus-scale graphs settle", scenario.name);
        let oracle = exact_mdst(&g, SolveBudget::default())
            .delta_star()
            .expect("corpus graphs are tiny; the oracle always finishes");
        assert_eq!(
            sol.lower, oracle,
            "{}: engine vs branch-and-bound",
            scenario.name
        );
        assert!(
            sol.witness.certifies(&g) >= sol.lower.saturating_sub(1),
            "{}: witness must re-verify independently",
            scenario.name
        );
        let fr = fr_degree(&g);
        assert!(
            oracle <= fr && fr <= oracle + 1,
            "{}: FR tree degree {fr} outside [{oracle}, {}]",
            scenario.name,
            oracle + 1
        );
    }
}

/// The shrinker acceptance contract end-to-end: a seeded injected failure
/// (a spider's tree degree is its leg count at every size) reduces to a
/// strictly smaller scenario that still fails, with everything irrelevant
/// stripped.
#[test]
fn shrinker_reduces_injected_failure_to_minimal_repro() {
    use ssmdst::scenario::Predicate;

    let original = corpus::by_name("converge-spider").expect("corpus entry");
    let pred = Predicate::DegreeAtLeast(3);
    assert!(pred.test(&original), "spider trees have degree >= 3");

    let (minimal, stats) = shrink::shrink(&original, |s| pred.test(s)).expect("original must fail");
    assert!(
        minimal.size() < original.size(),
        "shrunk scenario must be strictly smaller: {} vs {}",
        minimal.size(),
        original.size()
    );
    assert!(pred.test(&minimal), "minimal scenario still fails");
    assert_eq!(
        minimal.topology.n_hint(),
        4,
        "spider shrinks to the family minimum"
    );
    assert!(stats.accepted > 0 && stats.attempts >= stats.accepted);

    // The reproducer is a valid, replayable artifact.
    let reparsed = ssmdst::scenario::scn::parse(&minimal.canonical()).expect("repro parses");
    assert_eq!(reparsed, minimal);
    let (out, trace) = engine::run_traced(&reparsed);
    assert!(out.final_degree.unwrap() >= 3);
    engine::verify_replay(&reparsed, &trace).expect("repro replays bit-for-bit");
}

/// Campaign sweep over the corpus: parallel fan-out must preserve order
/// and reproduce the sequential digests (parallelism never perturbs runs).
#[test]
fn corpus_campaign_is_parallel_deterministic() {
    let scns = corpus::corpus();
    let par = ssmdst::scenario::run_campaign(&scns, 8);
    let seq = ssmdst::scenario::run_campaign(&scns, 1);
    assert_eq!(par.len(), scns.len());
    for ((p, s), scn) in par.iter().zip(&seq).zip(&scns) {
        assert_eq!(p.name, scn.name, "input order preserved");
        assert_eq!(p.digest, s.digest, "{}: parallel != sequential", p.name);
        assert!(p.ok, "{} failed", p.name);
    }
}
