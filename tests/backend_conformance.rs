//! The multi-backend conformance ladder: every execution backend earns
//! its place by being **bit-exact** against the reference round loop on
//! three rungs of increasing breadth:
//!
//! 1. **Golden traces** — each committed `tests/golden/NAME.trace` must be
//!    reproduced byte-for-byte by every backend. The `backend` field is
//!    fingerprint-neutral (a mechanism, not replay identity), so the
//!    reference-recorded goldens are directly binding on every backend.
//! 2. **Full corpus** — every committed `.scn` scenario yields a
//!    field-identical [`ScenarioOutcome`] (including the chained
//!    `ScheduleDigest`) on every backend.
//! 3. **Storm-mutant sweep** — a fixed-seed batch of storm-style mutants
//!    (default 64, `BACKEND_CONFORMANCE_EXECS` overrides; CI pins 256 in
//!    release) re-checks the digest across the reachable scenario space.
//!
//! A backend that diverges anywhere on the ladder does not ship. The
//! sibling property test (`crates/scenario/tests/backend_property.rs`)
//! adds trace-level divergence location and auto-shrunk reproducers.
//!
//! [`ScenarioOutcome`]: ssmdst::scenario::ScenarioOutcome

use ssmdst::prelude::*;
use ssmdst::scenario::{corpus, engine, mutate};
use ssmdst::sim::RunTrace;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Same pinned set as `tests/golden_traces.rs`.
fn golden_names() -> &'static [&'static str] {
    &[
        "converge-gnp-sync",
        "converge-scalefree-adversarial",
        "corrupt-start-total",
        "corrupt-start-partial-adversarial",
        "edge-churn-async",
        "partition-heal-cycle",
    ]
}

fn non_reference() -> [Backend; 3] {
    // The ladder's sharded entry uses 3 shards — a count that does not
    // divide typical node counts, so ragged boundaries are always hit.
    // Per-shard-count invariance gets its own rung below.
    [
        Backend::Batched,
        Backend::Soa,
        Backend::Sharded { shards: 3 },
    ]
}

/// Rung 1: every backend reproduces every committed golden trace
/// byte-for-byte.
#[test]
fn golden_traces_replay_bit_for_bit_on_every_backend() {
    let dir = golden_dir();
    for name in golden_names() {
        let trace_path = dir.join(format!("{name}.trace"));
        let golden_text = std::fs::read_to_string(&trace_path)
            .unwrap_or_else(|e| panic!("{}: {e}", trace_path.display()));
        let golden = RunTrace::parse(&golden_text).expect("committed .trace parses");
        for backend in non_reference() {
            let mut scenario = corpus::by_name(name).expect("golden name is in the corpus");
            scenario.backend = backend;
            let (_, replayed) = engine::run_traced(&scenario);
            if let Some(divergence) = golden.first_divergence(&replayed) {
                panic!("golden trace {name} DIVERGED on backend {backend}: {divergence}");
            }
            assert_eq!(
                replayed.render(),
                golden_text,
                "{name} on {backend}: rendered trace must equal the committed bytes"
            );
        }
    }
}

/// Rung 2: the full committed corpus, field-identical outcomes (digest
/// included) on every backend.
#[test]
fn full_corpus_outcomes_are_identical_on_every_backend() {
    for scenario in corpus::corpus() {
        let reference = engine::run_any(&scenario);
        for backend in non_reference() {
            let mut candidate = scenario.clone();
            candidate.backend = backend;
            let out = engine::run_any(&candidate);
            assert_eq!(
                out.digest, reference.digest,
                "{}: ScheduleDigest diverged on {backend}",
                scenario.name
            );
            assert_eq!(
                out, reference,
                "{}: outcome diverged on {backend}",
                scenario.name
            );
        }
    }
}

/// Shard-count invariance rung: the sharded backend's digest must not
/// depend on the shard count — 1 (inline pipeline), 2, 3 (ragged) and 8
/// (more shards than some scenarios have obligations) all reproduce every
/// committed golden trace byte-for-byte. Together with rung 1 this pins
/// `sharded:K` ≡ `reference` for the whole sweep of K.
#[test]
fn golden_traces_are_shard_count_invariant() {
    let dir = golden_dir();
    for name in golden_names() {
        let trace_path = dir.join(format!("{name}.trace"));
        let golden_text = std::fs::read_to_string(&trace_path)
            .unwrap_or_else(|e| panic!("{}: {e}", trace_path.display()));
        let golden = RunTrace::parse(&golden_text).expect("committed .trace parses");
        for shards in [1usize, 2, 3, 8] {
            let mut scenario = corpus::by_name(name).expect("golden name is in the corpus");
            scenario.backend = Backend::Sharded { shards };
            let (_, replayed) = engine::run_traced(&scenario);
            if let Some(divergence) = golden.first_divergence(&replayed) {
                panic!("golden trace {name} DIVERGED on sharded:{shards}: {divergence}");
            }
            assert_eq!(
                replayed.render(),
                golden_text,
                "{name} on sharded:{shards}: rendered trace must equal the committed bytes"
            );
        }
    }
}

/// Rung 3: a fixed-seed storm-mutant sweep. Mutants are derived exactly
/// like the storm derives them (corpus parent + seeded operator chains),
/// so the sweep walks the same reachable scenario space the fuzzer does —
/// deterministically, with no admission filtering.
#[test]
fn storm_mutant_sweep_digests_are_identical_on_every_backend() {
    let execs: u64 = std::env::var("BACKEND_CONFORMANCE_EXECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let parents = corpus::corpus();
    let mut checked = 0u64;
    for exec in 0..execs {
        let mut scenario = parents[(exec as usize) % parents.len()].clone();
        // Short chains reach deeper mutants than single steps.
        let depth = 1 + (exec % 3);
        for step in 0..depth {
            let (_, child) = mutate(&scenario, 0xBACC0_u64 ^ (exec * 31 + step));
            scenario = child;
        }
        let reference = engine::run_any(&scenario);
        for backend in non_reference() {
            let mut candidate = scenario.clone();
            candidate.backend = backend;
            let out = engine::run_any(&candidate);
            assert_eq!(
                out.digest,
                reference.digest,
                "mutant exec={exec} ({}): ScheduleDigest diverged on {backend}\n--- .scn ---\n{}",
                scenario.name,
                scenario.canonical()
            );
            assert_eq!(
                out, reference,
                "mutant exec={exec} ({}): outcome diverged on {backend}",
                scenario.name
            );
            checked += 1;
        }
    }
    assert_eq!(checked, execs * non_reference().len() as u64);
}
