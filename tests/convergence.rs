//! Integration: the protocol converges on every workload family to a valid
//! spanning tree within one of the optimal degree (paper Theorem 2).

use ssmdst::core::oracle;
use ssmdst::graph::generators::GraphFamily;
use ssmdst::graph::{exact_mdst, SolveBudget};
use ssmdst::prelude::*;

/// Run to quiescence and return (converged, tree degree).
fn converge(g: &ssmdst::graph::Graph, sched: Scheduler) -> (bool, Option<u32>) {
    let net = build_network(g, Config::for_n(g.n()));
    let mut runner = Runner::new(net, sched);
    let quiet = (6 * g.n() as u64).max(64);
    let out = runner.run_to_quiescence(150_000, quiet, oracle::projection);
    let tree = oracle::try_extract_tree(g, runner.network());
    if let Some(t) = &tree {
        t.validate(g).expect("extracted tree must validate");
    }
    (out.converged(), tree.map(|t| t.max_degree()))
}

#[test]
fn all_families_reach_delta_star_plus_one() {
    for fam in GraphFamily::all() {
        for seed in [1u64, 2] {
            let g = fam.generate(12, seed);
            let (conv, deg) = converge(&g, Scheduler::Synchronous);
            assert!(conv, "{} seed {seed}: no convergence", fam.label());
            let deg = deg.expect("terminal state must be a tree");
            let ds = fam
                .known_delta_star(&g)
                .or_else(|| exact_mdst(&g, SolveBudget::default()).delta_star())
                .expect("ground truth for n=12");
            assert!(
                deg <= ds + 1,
                "{} seed {seed}: deg {deg} > Δ*+1 = {}",
                fam.label(),
                ds + 1
            );
        }
    }
}

#[test]
fn random_async_daemon_converges_on_every_family() {
    for fam in GraphFamily::all() {
        let g = fam.generate(10, 3);
        let (conv, deg) = converge(&g, Scheduler::RandomAsync { seed: 5 });
        assert!(conv, "{}: async no convergence", fam.label());
        assert!(deg.is_some(), "{}: async terminal not a tree", fam.label());
    }
}

#[test]
fn adversarial_daemon_converges_on_every_family() {
    for fam in GraphFamily::all() {
        let g = fam.generate(10, 3);
        let (conv, deg) = converge(&g, Scheduler::Adversarial { seed: 5 });
        assert!(conv, "{}: adversarial no convergence", fam.label());
        assert!(deg.is_some());
    }
}

#[test]
fn star_with_ring_collapses_to_optimal_range() {
    let g = ssmdst::graph::generators::structured::star_with_ring(16).unwrap();
    let (conv, deg) = converge(&g, Scheduler::Synchronous);
    assert!(conv);
    assert!(deg.unwrap() <= 3, "Δ* = 2, got {:?}", deg); // Δ*+1 = 3
}

#[test]
fn forced_spider_stays_at_forced_degree() {
    // Every hub edge is a bridge: the protocol must not thrash trying to
    // improve the unimprovable.
    let g = ssmdst::graph::generators::gadgets::spider(5, 3).unwrap();
    let (conv, deg) = converge(&g, Scheduler::Synchronous);
    assert!(conv);
    assert_eq!(deg, Some(5));
}

#[test]
fn deterministic_same_seed_same_result() {
    let g = GraphFamily::GnpDense.generate(14, 9);
    let run = || {
        let net = build_network(&g, Config::for_n(g.n()));
        let mut runner = Runner::new(net, Scheduler::RandomAsync { seed: 42 });
        let _ = runner.run_to_quiescence(150_000, 96, oracle::projection);
        (
            oracle::projection(runner.network()),
            runner.network().metrics.total_sent,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn trivial_networks() {
    // Two nodes: one edge, trivially optimal.
    let g = ssmdst::graph::graph::graph_from_edges(2, &[(0, 1)]);
    let (conv, deg) = converge(&g, Scheduler::Synchronous);
    assert!(conv);
    assert_eq!(deg, Some(1));
    // Triangle: Δ* = 2.
    let g = ssmdst::graph::generators::structured::cycle(3).unwrap();
    let (conv, deg) = converge(&g, Scheduler::Synchronous);
    assert!(conv);
    assert_eq!(deg, Some(2));
}
