//! Steady-state allocation guard for the flat message fabric.
//!
//! The engine's contract (network.rs, events.rs): once its scratch buffers
//! and channel deques have warmed up, the round loop — derive obligations,
//! key them, sort, tick/deliver, route — performs **zero heap
//! allocations**. This binary installs a counting allocator (the
//! `vendor/alloc-counter` shim) and meters the loop directly, so any
//! future regression (a stray `Vec::new` per round, a `BTreeMap` sneaking
//! back onto the path, `take_dirty` reverting to handing out fresh
//! vectors) fails loudly instead of silently taxing every experiment.
//!
//! Scope: the guarantee is about the *fabric*. The messages themselves are
//! `Copy` here; a protocol whose messages own heap data (e.g. a path
//! vector) pays for those clones, which is the protocol's cost, not the
//! fabric's.
//!
//! The counter is per-thread, so the harness's own threads cannot perturb
//! the measurement; this file still holds a single `#[test]` so the
//! metered region never interleaves with a sibling test on the same
//! thread.

use alloc_counter::{allocations_on_this_thread, CountingAllocator};
use ssmdst::sim::{Automaton, Backend, Message, Network, Outbox, Runner, Scheduler, Session};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

#[derive(Debug, Clone, Copy)]
struct Beat(u32);
impl Message for Beat {
    fn kind(&self) -> &'static str {
        "Beat"
    }
    fn size_bits(&self, _n: usize) -> usize {
        32
    }
}

/// Gossips a counter to every neighbor each round — the obligation-dense
/// regime (every node ticks, every channel carries traffic), which
/// exercises the full tick → send → deliver → dirty-mark cycle.
#[derive(Debug)]
struct Gossip {
    neighbors: Vec<u32>,
    beat: u32,
    heard: u64,
}

impl Automaton for Gossip {
    type Msg = Beat;
    fn tick(&mut self, out: &mut Outbox<Beat>) {
        self.beat += 1;
        for &w in &self.neighbors {
            out.send(w, Beat(self.beat));
        }
    }
    fn receive(&mut self, _from: u32, msg: Beat, _out: &mut Outbox<Beat>) {
        self.heard += msg.0 as u64;
    }
}

#[test]
fn steady_state_round_loop_is_allocation_free() {
    // Every execution backend inherits the fabric's zero-allocation
    // contract: the batched backend's slot buffer and the SoA backend's
    // bit-words are steady-state scratch, warmed once and reused forever.
    // The sharded backend is metered at `shards: 1`, which runs the full
    // stage/execute/merge pipeline inline: that measures the engine's own
    // per-round allocations (inboxes, outboxes, skip lists — all reused).
    // With more shards, `std::thread::scope` itself allocates per spawn
    // (thread stacks and join handles, on this thread) — a property of
    // std's threading, not of the per-shard round loop.
    for backend in Backend::ALL.map(|b| match b {
        Backend::Sharded { .. } => Backend::Sharded { shards: 1 },
        other => other,
    }) {
        for sched in [
            Scheduler::Synchronous,
            Scheduler::RandomAsync { seed: 5 },
            Scheduler::Adversarial { seed: 5 },
        ] {
            let g = ssmdst::graph::generators::random::gnp_connected(64, 0.15, 42);
            let net = Network::from_graph(&g, |_, nbrs| Gossip {
                neighbors: nbrs.to_vec(),
                beat: 0,
                heard: 0,
            });
            let mut runner = Runner::new(net, sched);
            runner.set_backend(backend);
            // Warm-up: buffers, channel deques and the metrics kind table
            // grow to their steady-state capacity during the first rounds.
            for _ in 0..50 {
                runner.step_round();
            }
            let before = allocations_on_this_thread();
            for _ in 0..100 {
                runner.step_round();
            }
            let allocs = allocations_on_this_thread() - before;
            assert_eq!(
                allocs, 0,
                "steady-state rounds allocated {allocs} times under {sched:?} on {backend}"
            );
            // The loop really ran: traffic flowed every round.
            assert!(runner.network().metrics.total_delivered > 0);

            // The Session surface with no observers attached is the same
            // machine code: every `()` observer hook is an empty inlineable
            // default, so the redesigned driver keeps the guarantee.
            let g = ssmdst::graph::generators::random::gnp_connected(64, 0.15, 42);
            let net = Network::from_graph(&g, |_, nbrs| Gossip {
                neighbors: nbrs.to_vec(),
                beat: 0,
                heard: 0,
            });
            let mut session = Session::from_network(net)
                .scheduler(sched)
                .backend(backend)
                .build();
            for _ in 0..50 {
                let _ = session.step();
            }
            let before = allocations_on_this_thread();
            for _ in 0..100 {
                let _ = session.step();
            }
            let allocs = allocations_on_this_thread() - before;
            assert_eq!(
                allocs, 0,
                "steady-state session rounds allocated {allocs} times under {sched:?} on {backend}"
            );
            assert!(session.network().metrics.total_delivered > 0);
        }
    }
}
