//! Property-based tests of the graph substrate's core invariants.

use proptest::prelude::*;
use ssmdst_graph::generators::random::{gnm_connected, gnp_connected};
use ssmdst_graph::{
    bfs_distances, biconnectivity, connected_components, degree_lower_bound, exact_mdst,
    is_connected, Graph, SolveBudget, SpanningTree, UnionFind,
};

fn arb_graph() -> impl Strategy<Value = Graph> {
    (3usize..=14, 0.1f64..0.9, 0u64..10_000).prop_map(|(n, p, s)| gnp_connected(n, p, s))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Handshake lemma and basic representation invariants.
    #[test]
    fn representation_invariants(g in arb_graph()) {
        prop_assert_eq!(g.degree_sum(), 2 * g.m());
        // Neighbor lists sorted and symmetric.
        for v in g.nodes() {
            let nbrs = g.neighbors(v);
            prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]));
            for &u in nbrs {
                prop_assert!(g.has_edge(u, v));
                prop_assert!(g.has_edge(v, u));
            }
        }
        // Edge ids roundtrip.
        for (i, &(u, v)) in g.edges().iter().enumerate() {
            prop_assert_eq!(g.edge_id(u, v), Some(i as u32));
            prop_assert_eq!(g.endpoints(i as u32), (u, v));
        }
    }

    /// Connectivity repair really connects.
    #[test]
    fn generators_produce_connected_graphs(
        n in 2usize..30, p in 0.0f64..0.3, seed in 0u64..500,
    ) {
        let g = gnp_connected(n, p, seed);
        prop_assert!(is_connected(&g));
        let (c, _) = connected_components(&g);
        prop_assert_eq!(c, 1);
        let g = gnm_connected(n, n.min(n * (n - 1) / 2), seed);
        prop_assert!(is_connected(&g));
    }

    /// BFS distances satisfy the triangle property along edges.
    #[test]
    fn bfs_distances_are_1_lipschitz_on_edges(g in arb_graph()) {
        let d = bfs_distances(&g, 0);
        for &(u, v) in g.edges() {
            let (du, dv) = (d[u as usize] as i64, d[v as usize] as i64);
            prop_assert!((du - dv).abs() <= 1, "edge ({u},{v}): {du} vs {dv}");
        }
    }

    /// A BFS tree is valid, spans, and tree paths are consistent with it.
    #[test]
    fn bfs_tree_and_paths(g in arb_graph()) {
        let t = SpanningTree::from_bfs(&g, 0).unwrap();
        t.validate(&g).unwrap();
        prop_assert_eq!(t.edge_set().len(), g.n() - 1);
        // The tree path between any two nodes starts/ends correctly and
        // walks tree edges only.
        let a = 0u32;
        let b = (g.n() - 1) as u32;
        let path = t.tree_path(a, b);
        prop_assert_eq!(*path.first().unwrap(), a);
        prop_assert_eq!(*path.last().unwrap(), b);
        for w in path.windows(2) {
            prop_assert!(t.is_tree_edge(w[0], w[1]));
        }
    }

    /// Fundamental-cycle swap: for every non-tree edge and every cycle
    /// edge, the swap yields a valid spanning tree containing the inserted
    /// edge and not the removed one.
    #[test]
    fn every_swap_is_valid(g in arb_graph(), pick in 0usize..1_000) {
        let t0 = SpanningTree::from_bfs(&g, 0).unwrap();
        let non_tree: Vec<_> = g.edges().iter().copied()
            .filter(|&(u, v)| !t0.is_tree_edge(u, v)).collect();
        if non_tree.is_empty() {
            return Ok(()); // the graph is a tree
        }
        let (u, v) = non_tree[pick % non_tree.len()];
        let path = t0.fundamental_cycle_path(u, v);
        for w in path.windows(2) {
            let mut t = t0.clone();
            t.swap((u, v), (w[0], w[1]));
            t.validate(&g).unwrap();
            prop_assert!(t.is_tree_edge(u, v));
            prop_assert!(!t.is_tree_edge(w[0], w[1]));
        }
    }

    /// The lower bound never exceeds the exact optimum.
    #[test]
    fn lower_bound_is_sound(g in arb_graph()) {
        let lb = degree_lower_bound(&g);
        if let Some(ds) = exact_mdst(&g, SolveBudget { max_nodes: 500_000 }).delta_star() {
            prop_assert!(lb <= ds, "lb {lb} > Δ* {ds}");
            // And the trivial sandwich: Δ* ≤ n - 1.
            prop_assert!(ds <= (g.n() - 1) as u32);
        }
    }

    /// The paper's within-one-of-optimal guarantee, via the
    /// Fürer–Raghavachari witness bound: the exact optimum Δ* never exceeds
    /// `degree_lower_bound + 1` on random connected graphs. (FR's Theorem 1
    /// produces, alongside the ≤ Δ*+1 tree, a witness set S certifying
    /// Δ* ≥ bound(S) ≥ deg(T) − 1; our heuristic witness search must stay
    /// strong enough to preserve that sandwich.)
    #[test]
    fn exact_optimum_within_one_of_lower_bound(g in arb_graph()) {
        let lb = degree_lower_bound(&g);
        if let Some(ds) = exact_mdst(&g, SolveBudget { max_nodes: 500_000 }).delta_star() {
            prop_assert!(ds <= lb + 1, "Δ* {ds} > lb+1 = {} (lb {lb})", lb + 1);
        }
    }

    /// Removing any bridge disconnects; removing any non-bridge does not.
    #[test]
    fn bridges_characterization(g in arb_graph()) {
        let bc = biconnectivity(&g);
        for &(u, v) in g.edges().iter().take(20) {
            // Rebuild without this edge.
            let mut b = ssmdst_graph::GraphBuilder::new(g.n());
            for &(x, y) in g.edges() {
                if (x, y) != (u, v) {
                    b.add_edge(x, y).unwrap();
                }
            }
            let without = b.build();
            let disconnects = !is_connected(&without);
            let is_bridge = bc.bridges.binary_search(&(u, v)).is_ok();
            prop_assert_eq!(disconnects, is_bridge, "edge ({}, {})", u, v);
        }
    }

    /// Union-find agrees with BFS connectivity on random edge subsets.
    #[test]
    fn union_find_matches_components(g in arb_graph(), keep in 0u64..u64::MAX) {
        // Keep a pseudo-random subset of edges.
        let kept: Vec<_> = g.edges().iter().enumerate()
            .filter(|(i, _)| (keep >> (i % 64)) & 1 == 1)
            .map(|(_, &e)| e)
            .collect();
        let mut uf = UnionFind::new(g.n());
        let mut b = ssmdst_graph::GraphBuilder::new(g.n());
        for &(u, v) in &kept {
            uf.union(u, v);
            b.add_edge(u, v).unwrap();
        }
        let sub = b.build();
        let (c, labels) = connected_components(&sub);
        prop_assert_eq!(c, uf.components());
        for u in 0..g.n() as u32 {
            for v in 0..g.n() as u32 {
                prop_assert_eq!(
                    labels[u as usize] == labels[v as usize],
                    uf.connected(u, v)
                );
            }
        }
    }
}
