//! Disjoint-set forest with union by rank and path halving.
//!
//! Used by the degree-bounded spanning-tree decision procedure, the
//! Fürer–Raghavachari baseline (component tracking after removing high-degree
//! nodes) and the generators (connectivity repair).

/// Disjoint-set forest over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set, with path halving.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[ra as usize] == self.rank[rb as usize] {
            self.rank[hi as usize] += 1;
        }
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    pub fn components(&self) -> usize {
        self.components
    }

    /// Reset to `n` singletons without reallocating.
    pub fn reset(&mut self) {
        for (i, p) in self.parent.iter_mut().enumerate() {
            *p = i as u32;
        }
        self.rank.fill(0);
        self.components = self.parent.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.components(), 4);
        for i in 0..4 {
            assert_eq!(uf.find(i), i);
        }
        assert!(!uf.connected(0, 1));
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0)); // already merged
        assert_eq!(uf.components(), 3);
        assert!(uf.union(1, 2));
        assert!(uf.connected(0, 3));
        assert_eq!(uf.components(), 2);
        assert!(!uf.connected(0, 4));
    }

    #[test]
    fn reset_restores_singletons() {
        let mut uf = UnionFind::new(3);
        uf.union(0, 1);
        uf.union(1, 2);
        assert_eq!(uf.components(), 1);
        uf.reset();
        assert_eq!(uf.components(), 3);
        assert!(!uf.connected(0, 2));
    }

    #[test]
    fn transitive_connectivity_chain() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            assert!(uf.union(i, i + 1));
        }
        assert_eq!(uf.components(), 1);
        assert!(uf.connected(0, 99));
    }
}
