//! Graphviz DOT export for graphs and spanning trees — used by the examples
//! to make results inspectable (`dot -Tsvg out.dot`).

use crate::graph::Graph;
use crate::spanning_tree::SpanningTree;
use std::fmt::Write as _;

/// Render the graph; if `tree` is given, its edges are drawn bold/colored
/// and maximum-degree tree nodes are highlighted.
pub fn to_dot(g: &Graph, tree: Option<&SpanningTree>) -> String {
    let mut s = String::new();
    s.push_str("graph ssmdst {\n  node [shape=circle fontsize=10];\n");
    if let Some(t) = tree {
        let deg = t.degrees();
        let k = *deg.iter().max().unwrap_or(&0);
        for v in g.nodes() {
            let d = deg[v as usize];
            if d == k && k > 0 {
                let _ = writeln!(
                    s,
                    "  {v} [style=filled fillcolor=salmon label=\"{v}\\nd={d}\"];"
                );
            } else {
                let _ = writeln!(s, "  {v} [label=\"{v}\\nd={d}\"];");
            }
        }
    } else {
        for v in g.nodes() {
            let _ = writeln!(s, "  {v};");
        }
    }
    for &(u, v) in g.edges() {
        let is_tree = tree.map(|t| t.is_tree_edge(u, v)).unwrap_or(false);
        if is_tree {
            let _ = writeln!(s, "  {u} -- {v} [penwidth=2.5 color=blue];");
        } else {
            let _ = writeln!(s, "  {u} -- {v} [color=gray style=dashed];");
        }
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::structured;

    #[test]
    fn plain_graph_export() {
        let g = structured::cycle(4).unwrap();
        let s = to_dot(&g, None);
        assert!(s.starts_with("graph ssmdst {"));
        assert!(s.contains("0 -- 1"));
        assert!(s.ends_with("}\n"));
        // All 4 edges present.
        assert_eq!(s.matches(" -- ").count(), 4);
    }

    #[test]
    fn tree_edges_are_highlighted() {
        let g = structured::star_with_ring(6).unwrap();
        let t = SpanningTree::from_bfs(&g, 0).unwrap();
        let s = to_dot(&g, Some(&t));
        // Tree edges bold, the rest dashed; hub is max-degree → filled.
        assert!(s.contains("penwidth=2.5"));
        assert!(s.contains("style=dashed"));
        assert!(s.contains("fillcolor=salmon"));
        assert_eq!(s.matches("penwidth").count(), g.n() - 1);
    }
}
