//! Exact minimum-degree spanning tree via a degree-bounded decision
//! procedure with branch-and-bound.
//!
//! Computing `Δ*` is NP-hard (the paper reduces from Hamiltonian path), so
//! the solver is budgeted: it explores at most [`SolveBudget::max_nodes`]
//! search nodes per decision and reports `Unknown` when exhausted. The
//! experiment harness uses it on small/medium instances as ground truth for
//! the `deg(T) ≤ Δ* + 1` guarantee (Theorem 2), and falls back to the
//! [`crate::lower_bound`] module beyond that.

use crate::graph::{Graph, NodeId};
use crate::lower_bound::degree_lower_bound;
use crate::spanning_tree::SpanningTree;
use crate::union_find::UnionFind;

/// Search budget for one decision-procedure invocation.
#[derive(Debug, Clone, Copy)]
pub struct SolveBudget {
    /// Maximum number of branch-and-bound nodes to expand.
    pub max_nodes: u64,
}

impl Default for SolveBudget {
    fn default() -> Self {
        // Enough for dense graphs up to ~n=24 and sparse ones far beyond.
        SolveBudget {
            max_nodes: 5_000_000,
        }
    }
}

/// Result of an exact solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExactMdst {
    /// `Δ*` determined exactly, with a witness tree achieving it.
    Exact {
        delta_star: u32,
        witness: SpanningTree,
    },
    /// Budget exhausted; `Δ*` lies in `[lower, upper]` (upper has a witness).
    Bounded {
        lower: u32,
        upper: u32,
        witness: SpanningTree,
    },
}

impl ExactMdst {
    /// The optimal degree if known exactly.
    pub fn delta_star(&self) -> Option<u32> {
        match self {
            ExactMdst::Exact { delta_star, .. } => Some(*delta_star),
            ExactMdst::Bounded { .. } => None,
        }
    }

    /// Best-known lower bound on `Δ*`.
    pub fn lower(&self) -> u32 {
        match self {
            ExactMdst::Exact { delta_star, .. } => *delta_star,
            ExactMdst::Bounded { lower, .. } => *lower,
        }
    }

    /// Best-known upper bound on `Δ*` (witnessed).
    pub fn upper(&self) -> u32 {
        match self {
            ExactMdst::Exact { delta_star, .. } => *delta_star,
            ExactMdst::Bounded { upper, .. } => *upper,
        }
    }

    /// A spanning tree achieving [`ExactMdst::upper`].
    pub fn witness(&self) -> &SpanningTree {
        match self {
            ExactMdst::Exact { witness, .. } | ExactMdst::Bounded { witness, .. } => witness,
        }
    }
}

struct Searcher<'g> {
    g: &'g Graph,
    cap: u32,
    deg: Vec<u32>,
    nodes_left: u64,
    chosen: Vec<(NodeId, NodeId)>,
}

/// Outcome of a bounded decision search.
enum Found {
    Yes,
    No,
    Budget,
}

impl<'g> Searcher<'g> {
    /// Does a spanning tree with `max degree ≤ cap` exist?
    ///
    /// Branches on the lexicographically first *usable* edge (connects two
    /// components, both endpoints under the cap): include it or discard it
    /// permanently. Pruning: fail when the number of remaining usable edges
    /// cannot connect the remaining components, or when some component has
    /// no usable incident edge at all.
    fn decide(&mut self, uf: &mut UnionFind, from: usize, picked: usize) -> Found {
        if self.nodes_left == 0 {
            return Found::Budget;
        }
        self.nodes_left -= 1;
        let n = self.g.n();
        if picked == n - 1 {
            return Found::Yes;
        }
        let need = (n - 1) - picked;
        // First usable edge at index >= from; also count usable edges for
        // the connectivity prune.
        let mut first: Option<usize> = None;
        let mut usable = 0usize;
        for (i, &(u, v)) in self.g.edges().iter().enumerate().skip(from) {
            if self.deg[u as usize] < self.cap
                && self.deg[v as usize] < self.cap
                && uf.find(u) != uf.find(v)
            {
                usable += 1;
                if first.is_none() {
                    first = Some(i);
                }
                if usable >= need && first.is_some() && usable > need {
                    // Counting beyond `need` only matters for the prune; we
                    // can stop once both facts are established. (Keep
                    // counting is O(m), acceptable; break for speed.)
                    break;
                }
            }
        }
        if usable < need {
            return Found::No;
        }
        let i = first.expect("usable >= need >= 1"); // lint: allow(no-panic-in-library) — the usable < need early return above guarantees a hit
        let (u, v) = self.g.edges()[i];

        // Branch 1: include edge i.
        let snapshot_uf = uf.clone();
        uf.union(u, v);
        self.deg[u as usize] += 1;
        self.deg[v as usize] += 1;
        self.chosen.push((u, v));
        match self.decide(uf, i + 1, picked + 1) {
            Found::Yes => return Found::Yes,
            Found::Budget => return Found::Budget,
            Found::No => {}
        }
        self.chosen.pop();
        self.deg[u as usize] -= 1;
        self.deg[v as usize] -= 1;
        *uf = snapshot_uf;

        // Branch 2: permanently discard edge i.
        self.decide(uf, i + 1, picked)
    }
}

/// Decide whether `g` admits a spanning tree of maximum degree ≤ `cap`,
/// returning a witness on success. `None` means the budget was exhausted
/// (answer unknown).
pub fn has_spanning_tree_with_max_degree(
    g: &Graph,
    cap: u32,
    budget: SolveBudget,
) -> Option<Option<SpanningTree>> {
    if g.n() == 0 {
        return Some(None);
    }
    if g.n() == 1 {
        return Some(Some(
            SpanningTree::from_parents(g, 0, vec![0]).expect("trivial tree"), // lint: allow(no-panic-in-library) — single-node tree is always well-formed
        ));
    }
    if cap == 0 || !crate::traversal::is_connected(g) {
        return Some(None);
    }
    let mut s = Searcher {
        g,
        cap,
        deg: vec![0; g.n()],
        nodes_left: budget.max_nodes,
        chosen: Vec::with_capacity(g.n() - 1),
    };
    let mut uf = UnionFind::new(g.n());
    match s.decide(&mut uf, 0, 0) {
        Found::Yes => {
            let t = tree_from_edge_list(g, &s.chosen);
            Some(Some(t))
        }
        Found::No => Some(None),
        Found::Budget => None,
    }
}

/// Build a rooted [`SpanningTree`] (root 0) from an `n−1`-edge forest list.
fn tree_from_edge_list(g: &Graph, edges: &[(NodeId, NodeId)]) -> SpanningTree {
    let n = g.n();
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for &(u, v) in edges {
        adj[u as usize].push(v);
        adj[v as usize].push(u);
    }
    let mut parent = vec![u32::MAX; n];
    parent[0] = 0;
    let mut stack = vec![0u32];
    while let Some(v) = stack.pop() {
        for &w in &adj[v as usize] {
            if parent[w as usize] == u32::MAX {
                parent[w as usize] = v;
                stack.push(w);
            }
        }
    }
    // lint: allow(no-panic-in-library) — caller passed a decision witness, which spans by construction
    SpanningTree::from_parents(g, 0, parent).expect("edge list formed a spanning tree")
}

/// Compute `Δ*` exactly (budget permitting).
///
/// Strategy: start from the combinatorial lower bound and raise the cap
/// until the decision procedure finds a witness. If a decision exhausts its
/// budget the result degrades to [`ExactMdst::Bounded`] using a BFS tree as
/// the witnessed upper bound.
///
/// # Panics
/// Panics if the graph is empty or disconnected (no spanning tree exists).
pub fn exact_mdst(g: &Graph, budget: SolveBudget) -> ExactMdst {
    assert!(g.n() >= 1, "exact_mdst: empty graph");
    if g.n() == 1 {
        let witness = SpanningTree::from_parents(g, 0, vec![0]).expect("trivial"); // lint: allow(no-panic-in-library) — single-node tree is always well-formed
        return ExactMdst::Exact {
            delta_star: 0,
            witness,
        };
    }
    let fallback = SpanningTree::from_bfs(g, 0).expect("connected graph"); // lint: allow(no-panic-in-library) — documented `# Panics`: disconnected graphs have no spanning tree to witness
    let lb = degree_lower_bound(g);
    let ub_start = fallback.max_degree();
    let mut cap = lb;
    loop {
        if cap >= ub_start {
            // The BFS tree already witnesses `cap`; it must be optimal since
            // every smaller cap failed.
            return ExactMdst::Exact {
                delta_star: ub_start,
                witness: fallback,
            };
        }
        match has_spanning_tree_with_max_degree(g, cap, budget) {
            Some(Some(witness)) => {
                return ExactMdst::Exact {
                    delta_star: cap,
                    witness,
                }
            }
            Some(None) => cap += 1,
            None => {
                return ExactMdst::Bounded {
                    lower: cap.max(lb),
                    upper: ub_start,
                    witness: fallback,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{gadgets, structured};
    use crate::graph::graph_from_edges;

    fn delta_star(g: &Graph) -> u32 {
        exact_mdst(g, SolveBudget::default())
            .delta_star()
            .expect("budget sufficient for test instance")
    }

    #[test]
    fn path_is_its_own_mdst() {
        let g = structured::path(6).unwrap();
        assert_eq!(delta_star(&g), 2);
    }

    #[test]
    fn cycle_has_delta_star_two() {
        let g = structured::cycle(7).unwrap();
        assert_eq!(delta_star(&g), 2);
    }

    #[test]
    fn complete_graph_has_hamiltonian_path() {
        let g = structured::complete(7).unwrap();
        assert_eq!(delta_star(&g), 2);
    }

    #[test]
    fn star_is_forced() {
        let g = graph_from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(delta_star(&g), 4);
    }

    #[test]
    fn star_with_ring_drops_to_two() {
        let g = structured::star_with_ring(8).unwrap();
        assert_eq!(delta_star(&g), 2);
    }

    #[test]
    fn spider_is_forced_to_leg_count() {
        let g = gadgets::spider(4, 2).unwrap();
        assert_eq!(delta_star(&g), 4);
        let g = gadgets::spider(3, 3).unwrap();
        assert_eq!(delta_star(&g), 3);
    }

    #[test]
    fn hamiltonian_chords_has_delta_star_two() {
        for seed in 0..3 {
            let g = gadgets::hamiltonian_with_chords(12, 15, seed);
            assert_eq!(delta_star(&g), 2, "seed {seed}");
        }
    }

    #[test]
    fn complete_bipartite_formula() {
        // K_{2,5}: left nodes absorb 5 right nodes + the link: ⌈4/2⌉+1 = 3.
        let g = structured::complete_bipartite(2, 5).unwrap();
        assert_eq!(delta_star(&g), 3);
        // K_{1,4} is a star.
        let g = structured::complete_bipartite(1, 4).unwrap();
        assert_eq!(delta_star(&g), 4);
    }

    #[test]
    fn witness_achieves_reported_degree() {
        let g = structured::grid(3, 3).unwrap();
        let res = exact_mdst(&g, SolveBudget::default());
        let ds = res.delta_star().unwrap();
        assert_eq!(res.witness().max_degree(), ds);
        res.witness().validate(&g).unwrap();
        assert_eq!(ds, 2); // 3x3 grid has a Hamiltonian path
    }

    #[test]
    fn decision_procedure_rejects_below_optimum() {
        let g = gadgets::spider(4, 2).unwrap();
        assert_eq!(
            has_spanning_tree_with_max_degree(&g, 3, SolveBudget::default()),
            Some(None)
        );
        assert!(
            has_spanning_tree_with_max_degree(&g, 4, SolveBudget::default())
                .unwrap()
                .is_some()
        );
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        let g = structured::complete(10).unwrap();
        // Absurdly small budget: must give up, not answer wrongly.
        let res = has_spanning_tree_with_max_degree(&g, 2, SolveBudget { max_nodes: 3 });
        assert!(res.is_none());
        let res = exact_mdst(&g, SolveBudget { max_nodes: 3 });
        assert!(res.delta_star().is_none());
        assert!(res.lower() <= res.upper());
    }

    #[test]
    fn single_node_and_edge() {
        let g = crate::graph::GraphBuilder::new(1).build();
        assert_eq!(delta_star(&g), 0);
        let g = graph_from_edges(2, &[(0, 1)]);
        assert_eq!(delta_star(&g), 1);
    }

    #[test]
    fn disconnected_graph_has_no_spanning_tree() {
        let g = graph_from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(
            has_spanning_tree_with_max_degree(&g, 3, SolveBudget::default()),
            Some(None)
        );
    }
}
