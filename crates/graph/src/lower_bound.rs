//! Combinatorial lower bounds on the optimal spanning-tree degree `Δ*`.
//!
//! For a vertex set `S`, removing `S` from `G` leaves `c(G−S)` components.
//! Any spanning tree must contain at least `c(G−S) + |S| − 1` edges incident
//! to `S` (each component needs an attachment, and `S` itself must be
//! internally connected through them), so some vertex of `S` has tree degree
//! at least `⌈(c(G−S) + |S| − 1) / |S|⌉`. Maximizing over `S` gives the
//! classic witness lower bound — the same structure as the forest argument
//! in Fürer–Raghavachari's Theorem 1, which the paper inherits.
//!
//! Exhausting all `S` is exponential; we evaluate all singletons, all pairs
//! up to a size threshold, and a greedy heuristic set built from high-degree
//! vertices. The result is always a *valid* lower bound, just not always the
//! tightest.

use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// Number of connected components of `G − S` (nodes in `removed` are
/// skipped). `removed` must be a boolean mask of length `n`.
fn components_without(g: &Graph, removed: &[bool]) -> usize {
    let n = g.n();
    let mut seen = vec![false; n];
    let mut comps = 0;
    let mut q = VecDeque::new();
    for s in 0..n {
        if removed[s] || seen[s] {
            continue;
        }
        comps += 1;
        seen[s] = true;
        q.push_back(s as NodeId);
        while let Some(v) = q.pop_front() {
            for &w in g.neighbors(v) {
                let wi = w as usize;
                if !removed[wi] && !seen[wi] {
                    seen[wi] = true;
                    q.push_back(w);
                }
            }
        }
    }
    comps
}

/// The witness bound `⌈(c(G−S) + |S| − 1) / |S|⌉` for one explicit `S`.
///
/// Returns 0 for an empty `S` (no information).
pub fn vertex_removal_bound(g: &Graph, s: &[NodeId]) -> u32 {
    if s.is_empty() {
        return 0;
    }
    let mut removed = vec![false; g.n()];
    for &v in s {
        removed[v as usize] = true;
    }
    let c = components_without(g, &removed);
    let k = s.len();
    ((c + k - 1) as u32).div_ceil(k as u32)
}

/// Best lower bound on `Δ*` over singletons, (for small graphs) pairs, a
/// greedy high-degree set, and the bridge-degree bound (every bridge is in
/// every spanning tree); floored by the trivial bounds (`1` for any edge,
/// `2` once `n ≥ 3`).
pub fn degree_lower_bound(g: &Graph) -> u32 {
    let n = g.n();
    if n <= 1 {
        return 0;
    }
    let mut best = if n == 2 { 1 } else { 2 };
    best = best.max(
        crate::bridges::bridge_degrees(g)
            .into_iter()
            .max()
            .unwrap_or(0),
    );
    // Singletons: catches stars, spiders and all cut-vertex forcing.
    for v in 0..n as u32 {
        best = best.max(vertex_removal_bound(g, &[v]));
    }
    // Pairs on small graphs: catches double-broom-style forcing.
    if n <= 64 {
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                best = best.max(vertex_removal_bound(g, &[u, v]));
            }
        }
    }
    // Greedy: repeatedly add the highest-degree remaining vertex and check.
    let mut by_degree: Vec<NodeId> = (0..n as u32).collect();
    by_degree.sort_unstable_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    let mut s: Vec<NodeId> = Vec::new();
    for &v in by_degree.iter().take(n.min(16)) {
        s.push(v);
        best = best.max(vertex_removal_bound(g, &s));
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{gadgets, structured};
    use crate::graph::graph_from_edges;
    use crate::mdst_exact::{exact_mdst, SolveBudget};

    #[test]
    fn star_bound_is_tight() {
        let g = graph_from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        assert_eq!(vertex_removal_bound(&g, &[0]), 5);
        assert_eq!(degree_lower_bound(&g), 5);
    }

    #[test]
    fn spider_bound_is_tight() {
        let g = gadgets::spider(4, 3).unwrap();
        assert_eq!(degree_lower_bound(&g), 4);
    }

    #[test]
    fn path_bound_is_trivial_two() {
        let g = structured::path(8).unwrap();
        assert_eq!(degree_lower_bound(&g), 2);
    }

    #[test]
    fn two_node_graph() {
        let g = graph_from_edges(2, &[(0, 1)]);
        assert_eq!(degree_lower_bound(&g), 1);
    }

    #[test]
    fn empty_set_gives_zero() {
        let g = structured::path(4).unwrap();
        assert_eq!(vertex_removal_bound(&g, &[]), 0);
    }

    #[test]
    fn complete_bipartite_pair_bound() {
        // K_{2,7}: removing both left nodes leaves 7 components:
        // ⌈(7+1)/2⌉ = 4 = Δ*.
        let g = structured::complete_bipartite(2, 7).unwrap();
        assert_eq!(degree_lower_bound(&g), 4);
    }

    #[test]
    fn bound_never_exceeds_exact_optimum() {
        let instances: Vec<crate::graph::Graph> = vec![
            structured::grid(3, 3).unwrap(),
            structured::star_with_ring(8).unwrap(),
            gadgets::double_broom(3, 2).unwrap(),
            gadgets::hamiltonian_with_chords(10, 12, 1),
            structured::complete_bipartite(3, 7).unwrap(),
        ];
        for g in &instances {
            let lb = degree_lower_bound(g);
            let ds = exact_mdst(g, SolveBudget::default())
                .delta_star()
                .expect("small instance");
            assert!(lb <= ds, "lb {lb} > Δ* {ds}");
        }
    }
}
