//! Immutable simple undirected graph in CSR (compressed sparse row) form.
//!
//! The representation is tuned for the access patterns of the protocol
//! simulator and the solvers:
//!
//! * `neighbors(v)` returns a sorted slice (the protocol iterates a node's
//!   neighborhood on every `InfoMsg`) — one contiguous window of a single
//!   flat array, not a per-node heap allocation,
//! * a canonical edge list `edges()` with stable [`EdgeId`]s (the degree
//!   reduction module is driven by non-tree edges),
//! * O(log δ) adjacency tests via binary search,
//! * **directed-adjacency slot ids** ([`Graph::slot_of`]): every directed
//!   edge `(v, w)` owns the index of `w` inside the flat adjacency array.
//!   Slot ids are dense (`0..2m`), stable for the lifetime of the graph,
//!   and ordered lexicographically by `(v, w)` — the message fabric in
//!   `ssmdst-sim` addresses its FIFO channels by slot (`channel[slot]`)
//!   instead of through an ordered map.

use crate::error::GraphError;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::collections::HashSet; // lint: allow(no-unordered-collections) — membership-only duplicate probe in GraphBuilder; never iterated

/// Dense node identifier, `0..n`.
pub type NodeId = u32;

/// Index into the canonical edge list of a [`Graph`].
pub type EdgeId = u32;

/// A simple undirected graph.
///
/// Construct through [`GraphBuilder`] or the [`crate::generators`] module.
/// Instances are immutable: the protocol treats the topology as static, as
/// the paper does ("we consider a static topology").
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Graph {
    n: u32,
    /// CSR row offsets: node `v`'s neighbors (and directed slots) live at
    /// `adj[row_ptr[v] .. row_ptr[v + 1]]`. Length `n + 1`.
    row_ptr: Vec<u32>,
    /// Flat sorted adjacency: the concatenation of every node's sorted
    /// neighbor list. An index into this array is a directed slot id.
    adj: Vec<NodeId>,
    /// Canonical edge list with `u < v`, sorted lexicographically.
    edges: Vec<(NodeId, NodeId)>,
}

impl Graph {
    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.n as usize
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node identifiers.
    #[inline]
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.n
    }

    /// Sorted neighbors of `v` — a contiguous CSR row.
    ///
    /// # Panics
    /// Panics if `v >= n`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[self.row_ptr[v as usize] as usize..self.row_ptr[v as usize + 1] as usize]
    }

    /// Degree of `v` in the graph (not in any tree).
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.row_ptr[v as usize + 1] - self.row_ptr[v as usize]) as usize
    }

    /// Maximum degree δ of the network.
    pub fn max_degree(&self) -> usize {
        (0..self.n).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Minimum degree of the network.
    pub fn min_degree(&self) -> usize {
        (0..self.n).map(|v| self.degree(v)).min().unwrap_or(0)
    }

    /// Whether `{u, v}` is an edge. O(log δ).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u != v && u < self.n && self.neighbors(u).binary_search(&v).is_ok()
    }

    // ------------------------------------------------------------------
    // Directed-adjacency slots (the message-fabric addressing scheme)
    // ------------------------------------------------------------------

    /// Number of directed-adjacency slots (`2m`). Slot ids are dense in
    /// `0..directed_slots()` and lexicographic in `(source, target)`.
    #[inline]
    pub fn directed_slots(&self) -> usize {
        self.adj.len()
    }

    /// The directed slot id of `(v, w)` if `{v, w}` is an edge: CSR row
    /// offset plus the binary-search position of `w` in `v`'s row. O(log δ).
    #[inline]
    pub fn slot_of(&self, v: NodeId, w: NodeId) -> Option<u32> {
        if v >= self.n {
            return None;
        }
        self.neighbors(v)
            .binary_search(&w)
            .ok()
            .map(|i| self.row_ptr[v as usize] + i as u32)
    }

    /// The first directed slot owned by `v`; `v`'s slots are the contiguous
    /// range `row_start(v) .. row_start(v) + degree(v)`, aligned with
    /// [`Graph::neighbors`].
    #[inline]
    pub fn row_start(&self, v: NodeId) -> u32 {
        self.row_ptr[v as usize]
    }

    /// Endpoints `(source, target)` of directed slot `s`. The source is
    /// recovered by binary search over the row offsets (O(log n)); the hot
    /// paths in the simulator keep their own O(1) slot tables instead.
    ///
    /// # Panics
    /// Panics if `s` is out of range.
    pub fn slot_endpoints(&self, s: u32) -> (NodeId, NodeId) {
        let target = self.adj[s as usize];
        let source = self.row_ptr.partition_point(|&off| off <= s) - 1;
        (source as NodeId, target)
    }

    /// Canonical edge list: pairs `(u, v)` with `u < v`, lexicographically
    /// sorted. Indexing this slice by [`EdgeId`] is stable for the lifetime
    /// of the graph.
    #[inline]
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// The [`EdgeId`] of `{u, v}` if present. O(log m).
    pub fn edge_id(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        let key = if u < v { (u, v) } else { (v, u) };
        self.edges.binary_search(&key).ok().map(|i| i as EdgeId)
    }

    /// Endpoints of edge `e` as `(u, v)` with `u < v`.
    ///
    /// # Panics
    /// Panics if `e` is out of range.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.edges[e as usize]
    }

    /// Sum of degrees == 2m; sanity invariant used by property tests.
    pub fn degree_sum(&self) -> usize {
        self.adj.len()
    }
}

/// Incremental builder for [`Graph`].
///
/// ```
/// use ssmdst_graph::GraphBuilder;
/// let g = GraphBuilder::new(4)
///     .edge(0, 1).unwrap()
///     .edge(1, 2).unwrap()
///     .edge(2, 3).unwrap()
///     .edge(3, 0).unwrap()
///     .build();
/// assert_eq!(g.n(), 4);
/// assert_eq!(g.m(), 4);
/// assert!(g.has_edge(0, 3));
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: u32,
    edges: Vec<(NodeId, NodeId)>,
    /// O(1) duplicate probe over canonical keys (`u < v` packed into a
    /// `u64`), so randomized generators can stage E edges in O(E) expected
    /// time instead of the O(E²) a per-insert linear scan would cost.
    staged: HashSet<u64>, // lint: allow(no-unordered-collections) — probed with `contains`/`insert` only; iteration order can't leak
}

/// Canonical `u64` key for the undirected edge `{u, v}`.
#[inline]
fn edge_key(u: NodeId, v: NodeId) -> u64 {
    let (a, b) = if u < v { (u, v) } else { (v, u) };
    ((a as u64) << 32) | b as u64
}

impl GraphBuilder {
    /// Start a graph on `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "graph too large");
        GraphBuilder {
            n: n as u32,
            edges: Vec::new(),
            staged: HashSet::new(), // lint: allow(no-unordered-collections) — same membership-only set as the field above
        }
    }

    /// Add the undirected edge `{u, v}`; rejects self-loops, duplicates and
    /// out-of-range endpoints. Consumes and returns `self` for chaining.
    pub fn edge(mut self, u: NodeId, v: NodeId) -> Result<Self, GraphError> {
        self.add_edge(u, v)?;
        Ok(self)
    }

    /// Add an edge through a mutable reference (generator-friendly form).
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        for &x in &[u, v] {
            if x >= self.n {
                return Err(GraphError::NodeOutOfRange { node: x, n: self.n });
            }
        }
        let key = if u < v { (u, v) } else { (v, u) };
        // Precise eager duplicate errors stay, but at O(1) expected cost: a
        // hash probe replaces the old linear `edges.contains` scan that made
        // randomized-generator builds O(E²). `build` still sorts + dedups as
        // a belt-and-suspenders pass, so the canonical edge list is correct
        // even if this probe is ever bypassed.
        if !self.staged.insert(edge_key(u, v)) {
            return Err(GraphError::DuplicateEdge { u: key.0, v: key.1 });
        }
        self.edges.push(key);
        Ok(())
    }

    /// Add an edge, silently ignoring duplicates. Used by randomized
    /// generators where collision is expected.
    pub fn add_edge_dedup(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        match self.add_edge(u, v) {
            Ok(()) | Err(GraphError::DuplicateEdge { .. }) => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Current number of (deduplicated) edges staged in the builder.
    pub fn staged_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalize into an immutable [`Graph`]: sort + dedup the canonical
    /// edge list, then assemble the CSR arrays in two counting passes
    /// (O(n + m), no per-node allocations).
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let n = self.n as usize;
        // Index-width contract (checked builds): the CSR offsets and the
        // directed slot ids are u32, so the directed edge count `2m` must
        // fit. At the 10M-node scale a sparse instance has `2m` in the
        // tens of millions — three orders of magnitude of headroom — but
        // an overflow here would silently wrap `row_ptr` and corrupt every
        // slot address, so it must be a loud checked-build failure.
        debug_assert!(
            self.edges.len() <= (u32::MAX / 2) as usize,
            "directed slot count 2m = {} overflows the u32 CSR offsets",
            2 * self.edges.len()
        );
        let mut row_ptr = vec![0u32; n + 1];
        for &(u, v) in &self.edges {
            row_ptr[u as usize + 1] += 1;
            row_ptr[v as usize + 1] += 1;
        }
        for i in 0..n {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut cursor = row_ptr.clone();
        let mut adj = vec![0 as NodeId; 2 * self.edges.len()];
        for &(u, v) in &self.edges {
            adj[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            adj[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        // Rows come out sorted for free: row `v` is filled from the
        // lexicographically sorted edge list, so it first receives the `w`s
        // of all edges `(w, v)` with `w < v` (ascending in `w`), then the
        // `x`s of all edges `(v, x)` with `x > v` (ascending in `x`).
        debug_assert!((0..n).all(|v| {
            adj[row_ptr[v] as usize..row_ptr[v + 1] as usize]
                .windows(2)
                .all(|w| w[0] < w[1])
        }));
        Graph {
            n: self.n,
            row_ptr,
            adj,
            edges: self.edges,
        }
    }
}

/// Convenience constructor from an edge list; used pervasively in tests.
///
/// # Panics
/// Panics on invalid edges — tests want loud failures.
pub fn graph_from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Graph {
    let mut b = GraphBuilder::new(n);
    for &(u, v) in edges {
        b.add_edge(u, v)
            // lint: allow(no-panic-in-library) — documented `# Panics` test helper; loud failure is the contract
            .unwrap_or_else(|e| panic!("bad edge ({u},{v}): {e}"));
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.nodes().count(), 0);
    }

    #[test]
    fn single_node() {
        let g = GraphBuilder::new(1).build();
        assert_eq!(g.n(), 1);
        assert_eq!(g.degree(0), 0);
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn triangle_basic_queries() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(g.m(), 3);
        assert_eq!(g.degree(1), 2);
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(2, 2));
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.degree_sum(), 6);
    }

    #[test]
    fn edge_ids_are_canonical_and_stable() {
        let g = graph_from_edges(4, &[(2, 3), (0, 1), (1, 3)]);
        // Sorted canonical list: (0,1), (1,3), (2,3)
        assert_eq!(g.edges(), &[(0, 1), (1, 3), (2, 3)]);
        assert_eq!(g.edge_id(3, 1), Some(1));
        assert_eq!(g.edge_id(3, 2), Some(2));
        assert_eq!(g.edge_id(0, 2), None);
        assert_eq!(g.endpoints(0), (0, 1));
    }

    #[test]
    fn builder_rejects_self_loop() {
        let err = GraphBuilder::new(2).edge(1, 1).unwrap_err();
        assert_eq!(err, GraphError::SelfLoop { node: 1 });
    }

    #[test]
    fn builder_rejects_out_of_range() {
        let err = GraphBuilder::new(2).edge(0, 2).unwrap_err();
        assert_eq!(err, GraphError::NodeOutOfRange { node: 2, n: 2 });
    }

    #[test]
    fn builder_rejects_duplicate_in_either_orientation() {
        let err = GraphBuilder::new(3)
            .edge(0, 1)
            .unwrap()
            .edge(1, 0)
            .unwrap_err();
        assert_eq!(err, GraphError::DuplicateEdge { u: 0, v: 1 });
    }

    #[test]
    fn dedup_add_ignores_duplicates() {
        let mut b = GraphBuilder::new(3);
        b.add_edge_dedup(0, 1).unwrap();
        b.add_edge_dedup(1, 0).unwrap();
        b.add_edge_dedup(1, 2).unwrap();
        let g = b.build();
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = graph_from_edges(5, &[(3, 0), (3, 4), (3, 1), (3, 2)]);
        assert_eq!(g.neighbors(3), &[0, 1, 2, 4]);
        assert_eq!(g.max_degree(), 4);
        assert_eq!(g.min_degree(), 1);
    }

    #[test]
    fn slots_are_dense_lexicographic_and_roundtrip() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(g.directed_slots(), 2 * g.m());
        // Slot ids enumerate (source, target) lexicographically.
        let mut expected = 0u32;
        for v in g.nodes() {
            assert_eq!(g.row_start(v), expected);
            for &w in g.neighbors(v) {
                assert_eq!(g.slot_of(v, w), Some(expected));
                assert_eq!(g.slot_endpoints(expected), (v, w));
                expected += 1;
            }
        }
        assert_eq!(expected as usize, g.directed_slots());
        // Non-edges and out-of-range sources have no slot.
        assert_eq!(g.slot_of(0, 2), None);
        assert_eq!(g.slot_of(0, 0), None);
        assert_eq!(g.slot_of(9, 0), None);
    }

    #[test]
    fn slot_endpoints_skip_isolated_nodes() {
        // Node 1 is isolated: its empty CSR row must not confuse the
        // slot-to-source recovery.
        let g = graph_from_edges(4, &[(0, 2), (2, 3)]);
        assert_eq!(g.degree(1), 0);
        assert_eq!(g.slot_endpoints(0), (0, 2));
        assert_eq!(g.slot_endpoints(1), (2, 0));
        assert_eq!(g.slot_endpoints(2), (2, 3));
        assert_eq!(g.slot_endpoints(3), (3, 2));
    }

    /// Regression: staging E edges must be O(E) expected, not O(E²). The
    /// old per-insert `Vec::contains` scan made this complete-graph build
    /// (~180k edges, plus 180k duplicate probes) take on the order of
    /// 10¹⁰ comparisons — far beyond any test timeout; with the hash probe
    /// it finishes in well under a second even unoptimized.
    #[test]
    fn large_build_is_linear_not_quadratic() {
        let n: u32 = 600;
        let mut b = GraphBuilder::new(n as usize);
        for u in 0..n {
            for v in (u + 1)..n {
                b.add_edge(u, v).unwrap();
            }
        }
        // Duplicate probes are O(1) too, in both orientations.
        for u in 0..n {
            for v in (u + 1)..n {
                assert!(b.add_edge_dedup(v, u).is_ok());
            }
        }
        let m = (n as usize) * (n as usize - 1) / 2;
        assert_eq!(b.staged_edges(), m);
        let g = b.build();
        assert_eq!(g.m(), m);
        assert_eq!(g.max_degree(), n as usize - 1);
    }
}
