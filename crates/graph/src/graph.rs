//! Immutable simple undirected graph with sorted adjacency lists.
//!
//! The representation is tuned for the access patterns of the protocol
//! simulator and the solvers:
//!
//! * `neighbors(v)` returns a sorted slice (the protocol iterates a node's
//!   neighborhood on every `InfoMsg`),
//! * a canonical edge list `edges()` with stable [`EdgeId`]s (the degree
//!   reduction module is driven by non-tree edges),
//! * O(log δ) adjacency tests via binary search.

use crate::error::GraphError;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Dense node identifier, `0..n`.
pub type NodeId = u32;

/// Index into the canonical edge list of a [`Graph`].
pub type EdgeId = u32;

/// A simple undirected graph.
///
/// Construct through [`GraphBuilder`] or the [`crate::generators`] module.
/// Instances are immutable: the protocol treats the topology as static, as
/// the paper does ("we consider a static topology").
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Graph {
    n: u32,
    /// Sorted adjacency lists, one per node.
    adj: Vec<Vec<NodeId>>,
    /// Canonical edge list with `u < v`, sorted lexicographically.
    edges: Vec<(NodeId, NodeId)>,
}

impl Graph {
    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.n as usize
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node identifiers.
    #[inline]
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.n
    }

    /// Sorted neighbors of `v`.
    ///
    /// # Panics
    /// Panics if `v >= n`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[v as usize]
    }

    /// Degree of `v` in the graph (not in any tree).
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v as usize].len()
    }

    /// Maximum degree δ of the network.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Minimum degree of the network.
    pub fn min_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// Whether `{u, v}` is an edge. O(log δ).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u != v && (u as usize) < self.adj.len() && self.adj[u as usize].binary_search(&v).is_ok()
    }

    /// Canonical edge list: pairs `(u, v)` with `u < v`, lexicographically
    /// sorted. Indexing this slice by [`EdgeId`] is stable for the lifetime
    /// of the graph.
    #[inline]
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// The [`EdgeId`] of `{u, v}` if present. O(log m).
    pub fn edge_id(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        let key = if u < v { (u, v) } else { (v, u) };
        self.edges.binary_search(&key).ok().map(|i| i as EdgeId)
    }

    /// Endpoints of edge `e` as `(u, v)` with `u < v`.
    ///
    /// # Panics
    /// Panics if `e` is out of range.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.edges[e as usize]
    }

    /// Sum of degrees == 2m; sanity invariant used by property tests.
    pub fn degree_sum(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }
}

/// Incremental builder for [`Graph`].
///
/// ```
/// use ssmdst_graph::GraphBuilder;
/// let g = GraphBuilder::new(4)
///     .edge(0, 1).unwrap()
///     .edge(1, 2).unwrap()
///     .edge(2, 3).unwrap()
///     .edge(3, 0).unwrap()
///     .build();
/// assert_eq!(g.n(), 4);
/// assert_eq!(g.m(), 4);
/// assert!(g.has_edge(0, 3));
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: u32,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Start a graph on `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "graph too large");
        GraphBuilder {
            n: n as u32,
            edges: Vec::new(),
        }
    }

    /// Add the undirected edge `{u, v}`; rejects self-loops, duplicates and
    /// out-of-range endpoints. Consumes and returns `self` for chaining.
    pub fn edge(mut self, u: NodeId, v: NodeId) -> Result<Self, GraphError> {
        self.add_edge(u, v)?;
        Ok(self)
    }

    /// Add an edge through a mutable reference (generator-friendly form).
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        for &x in &[u, v] {
            if x >= self.n {
                return Err(GraphError::NodeOutOfRange { node: x, n: self.n });
            }
        }
        let key = if u < v { (u, v) } else { (v, u) };
        // Duplicate detection is deferred to `build` for generators that add
        // many edges, but we check eagerly here to give precise errors when
        // the builder is used by hand.
        if self.edges.contains(&key) {
            return Err(GraphError::DuplicateEdge { u: key.0, v: key.1 });
        }
        self.edges.push(key);
        Ok(())
    }

    /// Add an edge, silently ignoring duplicates. Used by randomized
    /// generators where collision is expected.
    pub fn add_edge_dedup(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        match self.add_edge(u, v) {
            Ok(()) | Err(GraphError::DuplicateEdge { .. }) => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Current number of (deduplicated) edges staged in the builder.
    pub fn staged_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalize into an immutable [`Graph`].
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); self.n as usize];
        for &(u, v) in &self.edges {
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
        for a in &mut adj {
            a.sort_unstable();
        }
        Graph {
            n: self.n,
            adj,
            edges: self.edges,
        }
    }
}

/// Convenience constructor from an edge list; used pervasively in tests.
///
/// # Panics
/// Panics on invalid edges — tests want loud failures.
pub fn graph_from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Graph {
    let mut b = GraphBuilder::new(n);
    for &(u, v) in edges {
        b.add_edge(u, v)
            .unwrap_or_else(|e| panic!("bad edge ({u},{v}): {e}"));
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.nodes().count(), 0);
    }

    #[test]
    fn single_node() {
        let g = GraphBuilder::new(1).build();
        assert_eq!(g.n(), 1);
        assert_eq!(g.degree(0), 0);
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn triangle_basic_queries() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(g.m(), 3);
        assert_eq!(g.degree(1), 2);
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(2, 2));
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.degree_sum(), 6);
    }

    #[test]
    fn edge_ids_are_canonical_and_stable() {
        let g = graph_from_edges(4, &[(2, 3), (0, 1), (1, 3)]);
        // Sorted canonical list: (0,1), (1,3), (2,3)
        assert_eq!(g.edges(), &[(0, 1), (1, 3), (2, 3)]);
        assert_eq!(g.edge_id(3, 1), Some(1));
        assert_eq!(g.edge_id(3, 2), Some(2));
        assert_eq!(g.edge_id(0, 2), None);
        assert_eq!(g.endpoints(0), (0, 1));
    }

    #[test]
    fn builder_rejects_self_loop() {
        let err = GraphBuilder::new(2).edge(1, 1).unwrap_err();
        assert_eq!(err, GraphError::SelfLoop { node: 1 });
    }

    #[test]
    fn builder_rejects_out_of_range() {
        let err = GraphBuilder::new(2).edge(0, 2).unwrap_err();
        assert_eq!(err, GraphError::NodeOutOfRange { node: 2, n: 2 });
    }

    #[test]
    fn builder_rejects_duplicate_in_either_orientation() {
        let err = GraphBuilder::new(3)
            .edge(0, 1)
            .unwrap()
            .edge(1, 0)
            .unwrap_err();
        assert_eq!(err, GraphError::DuplicateEdge { u: 0, v: 1 });
    }

    #[test]
    fn dedup_add_ignores_duplicates() {
        let mut b = GraphBuilder::new(3);
        b.add_edge_dedup(0, 1).unwrap();
        b.add_edge_dedup(1, 0).unwrap();
        b.add_edge_dedup(1, 2).unwrap();
        let g = b.build();
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = graph_from_edges(5, &[(3, 0), (3, 4), (3, 1), (3, 2)]);
        assert_eq!(g.neighbors(3), &[0, 1, 2, 4]);
        assert_eq!(g.max_degree(), 4);
        assert_eq!(g.min_degree(), 1);
    }
}
