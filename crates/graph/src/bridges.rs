//! Bridges and articulation points (Tarjan's low-link algorithm).
//!
//! Bridges matter for the MDST problem: a bridge belongs to **every**
//! spanning tree, so the number of bridges incident to a vertex is a lower
//! bound on its degree in any spanning tree — a cheap, often tight bound
//! that complements the vertex-removal bound (see [`crate::lower_bound`]).
//! The spider gadgets are the extreme case: every hub edge is a bridge.

use crate::graph::{Graph, NodeId};

/// Result of one biconnectivity pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Biconnectivity {
    /// All bridge edges, canonical `(min, max)` form, sorted.
    pub bridges: Vec<(NodeId, NodeId)>,
    /// All articulation points, sorted.
    pub articulation_points: Vec<NodeId>,
}

/// Iterative Tarjan low-link computation over all components.
pub fn biconnectivity(g: &Graph) -> Biconnectivity {
    let n = g.n();
    let mut disc = vec![u32::MAX; n]; // discovery time
    let mut low = vec![u32::MAX; n];
    let mut parent = vec![u32::MAX; n];
    let mut child_count = vec![0u32; n];
    let mut is_artic = vec![false; n];
    let mut bridges = Vec::new();
    let mut time = 0u32;

    for root in 0..n as u32 {
        if disc[root as usize] != u32::MAX {
            continue;
        }
        // Iterative DFS: stack of (node, neighbor-index).
        let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
        disc[root as usize] = time;
        low[root as usize] = time;
        time += 1;
        while let Some(&mut (v, ref mut i)) = stack.last_mut() {
            let nbrs = g.neighbors(v);
            if *i < nbrs.len() {
                let w = nbrs[*i];
                *i += 1;
                if disc[w as usize] == u32::MAX {
                    parent[w as usize] = v;
                    child_count[v as usize] += 1;
                    disc[w as usize] = time;
                    low[w as usize] = time;
                    time += 1;
                    stack.push((w, 0));
                } else if w != parent[v as usize] {
                    low[v as usize] = low[v as usize].min(disc[w as usize]);
                }
            } else {
                stack.pop();
                if let Some(&(p, _)) = stack.last() {
                    low[p as usize] = low[p as usize].min(low[v as usize]);
                    if low[v as usize] > disc[p as usize] {
                        bridges.push(if p < v { (p, v) } else { (v, p) });
                    }
                    // Non-root articulation: some child cannot reach above.
                    if parent[p as usize] != u32::MAX && low[v as usize] >= disc[p as usize] {
                        is_artic[p as usize] = true;
                    }
                }
            }
        }
        // Root articulation: more than one DFS child.
        if child_count[root as usize] > 1 {
            is_artic[root as usize] = true;
        }
    }
    bridges.sort_unstable();
    let articulation_points = (0..n as u32).filter(|&v| is_artic[v as usize]).collect();
    Biconnectivity {
        bridges,
        articulation_points,
    }
}

/// Number of bridges incident to each vertex. Since every bridge is in
/// every spanning tree, `max_v bridge_degree(v)` lower-bounds `Δ*`.
pub fn bridge_degrees(g: &Graph) -> Vec<u32> {
    let mut deg = vec![0u32; g.n()];
    for (u, v) in biconnectivity(g).bridges {
        deg[u as usize] += 1;
        deg[v as usize] += 1;
    }
    deg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{gadgets, structured};
    use crate::graph::graph_from_edges;

    #[test]
    fn path_is_all_bridges() {
        let g = structured::path(5).unwrap();
        let bc = biconnectivity(&g);
        assert_eq!(bc.bridges.len(), 4);
        // Interior nodes are articulation points.
        assert_eq!(bc.articulation_points, vec![1, 2, 3]);
    }

    #[test]
    fn cycle_has_no_bridges() {
        let g = structured::cycle(6).unwrap();
        let bc = biconnectivity(&g);
        assert!(bc.bridges.is_empty());
        assert!(bc.articulation_points.is_empty());
    }

    #[test]
    fn spider_hub_edges_are_bridges() {
        let g = gadgets::spider(4, 2).unwrap();
        let bc = biconnectivity(&g);
        // Every edge of a spider is a bridge (it is a tree).
        assert_eq!(bc.bridges.len(), g.m());
        let bd = bridge_degrees(&g);
        assert_eq!(bd[0], 4); // the hub
        assert!(bc.articulation_points.contains(&0));
    }

    #[test]
    fn barbell_bridge_detected() {
        // Two triangles joined by one edge {2,3}: that edge is the bridge,
        // its endpoints are articulation points.
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]);
        let bc = biconnectivity(&g);
        assert_eq!(bc.bridges, vec![(2, 3)]);
        assert_eq!(bc.articulation_points, vec![2, 3]);
        assert_eq!(bridge_degrees(&g), vec![0, 0, 1, 1, 0, 0]);
    }

    #[test]
    fn star_with_ring_has_no_bridges() {
        let g = structured::star_with_ring(8).unwrap();
        assert!(biconnectivity(&g).bridges.is_empty());
    }

    #[test]
    fn disconnected_components_handled() {
        let g = graph_from_edges(4, &[(0, 1), (2, 3)]);
        let bc = biconnectivity(&g);
        assert_eq!(bc.bridges, vec![(0, 1), (2, 3)]);
        assert!(bc.articulation_points.is_empty());
    }

    #[test]
    fn bridge_bound_consistent_with_exact_solver() {
        use crate::mdst_exact::{exact_mdst, SolveBudget};
        for g in [
            gadgets::spider(3, 2).unwrap(),
            gadgets::double_broom(3, 2).unwrap(),
            structured::grid(3, 3).unwrap(),
        ] {
            let bound = bridge_degrees(&g).into_iter().max().unwrap_or(0);
            let ds = exact_mdst(&g, SolveBudget::default()).delta_star().unwrap();
            assert!(bound <= ds, "bridge bound {bound} exceeds Δ* {ds}");
        }
    }
}
