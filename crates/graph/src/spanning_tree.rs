//! Rooted spanning trees: validation, degrees, tree paths, fundamental
//! cycles and edge swaps.
//!
//! This is the *centralized* view of the structure the distributed protocol
//! maintains with per-node `parent` pointers. The oracle extracts the
//! protocol's global state into a [`SpanningTree`] to check legitimacy, and
//! the baselines (Fürer–Raghavachari, local search) operate on it directly.

use crate::error::GraphError;
use crate::graph::{Graph, NodeId};

/// A spanning tree of a host [`Graph`], stored as a rooted parent vector.
///
/// Invariants (enforced by [`SpanningTree::from_parents`]):
/// * `parent[root] == root`, every other node's parent edge exists in the
///   host graph,
/// * following parents from any node reaches `root` (no cycles),
/// * consequently the tree spans all `n` nodes with `n − 1` edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanningTree {
    root: NodeId,
    parent: Vec<NodeId>,
    /// Depth of each node (root = 0); kept consistent by all mutators.
    depth: Vec<u32>,
}

impl SpanningTree {
    /// Validate a parent vector against its host graph.
    pub fn from_parents(g: &Graph, root: NodeId, parent: Vec<NodeId>) -> Result<Self, GraphError> {
        let n = g.n();
        if n == 0 {
            return Err(GraphError::Empty);
        }
        if parent.len() != n {
            return Err(GraphError::NotASpanningTree("parent vector length != n"));
        }
        if root as usize >= n {
            return Err(GraphError::NodeOutOfRange {
                node: root,
                n: n as u32,
            });
        }
        if parent[root as usize] != root {
            return Err(GraphError::NotASpanningTree("parent[root] != root"));
        }
        for v in g.nodes() {
            let p = parent[v as usize];
            if v == root {
                continue;
            }
            if p as usize >= n {
                return Err(GraphError::NotASpanningTree("parent out of range"));
            }
            if p == v {
                return Err(GraphError::NotASpanningTree("non-root self-parent"));
            }
            if !g.has_edge(v, p) {
                return Err(GraphError::NotASpanningTree("parent edge not in graph"));
            }
        }
        // Depth computation doubles as acyclicity/reachability check.
        let mut depth = vec![u32::MAX; n];
        depth[root as usize] = 0;
        for v in g.nodes() {
            if depth[v as usize] != u32::MAX {
                continue;
            }
            // Walk up until a node of known depth; record the chain.
            let mut chain = Vec::new();
            let mut x = v;
            while depth[x as usize] == u32::MAX {
                chain.push(x);
                x = parent[x as usize];
                if chain.len() > n {
                    return Err(GraphError::NotASpanningTree("parent cycle"));
                }
                if chain.contains(&x) {
                    return Err(GraphError::NotASpanningTree("parent cycle"));
                }
            }
            let mut d = depth[x as usize];
            for &c in chain.iter().rev() {
                d += 1;
                depth[c as usize] = d;
            }
        }
        Ok(SpanningTree {
            root,
            parent,
            depth,
        })
    }

    /// Build from a BFS parent vector as returned by
    /// [`crate::traversal::bfs_tree`].
    pub fn from_bfs(g: &Graph, root: NodeId) -> Result<Self, GraphError> {
        let parent = crate::traversal::bfs_tree(g, root);
        if parent.contains(&u32::MAX) {
            return Err(GraphError::Disconnected);
        }
        Self::from_parents(g, root, parent)
    }

    /// Root of the tree.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Parent of `v` (`root`'s parent is itself).
    #[inline]
    pub fn parent(&self, v: NodeId) -> NodeId {
        self.parent[v as usize]
    }

    /// Borrow the raw parent vector.
    #[inline]
    pub fn parents(&self) -> &[NodeId] {
        &self.parent
    }

    /// Depth of `v` (root = 0).
    #[inline]
    pub fn depth(&self, v: NodeId) -> u32 {
        self.depth[v as usize]
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.parent.len()
    }

    /// Whether `{u, v}` is a tree edge.
    pub fn is_tree_edge(&self, u: NodeId, v: NodeId) -> bool {
        u != v && (self.parent[u as usize] == v || self.parent[v as usize] == u)
    }

    /// Tree degree of each node.
    pub fn degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.parent.len()];
        for v in 0..self.parent.len() as u32 {
            let p = self.parent[v as usize];
            if p != v {
                deg[v as usize] += 1;
                deg[p as usize] += 1;
            }
        }
        deg
    }

    /// Tree degree of one node. O(1) amortized callers should prefer
    /// [`SpanningTree::degrees`].
    pub fn degree_of(&self, v: NodeId) -> u32 {
        let mut d = 0;
        for u in 0..self.parent.len() as u32 {
            if u != v && self.parent[u as usize] == v {
                d += 1;
            }
        }
        if self.parent[v as usize] != v {
            d += 1;
        }
        d
    }

    /// `deg(T) = max_v deg_T(v)` — the quantity the paper minimizes.
    pub fn max_degree(&self) -> u32 {
        self.degrees().into_iter().max().unwrap_or(0)
    }

    /// Nodes of maximum tree degree (the set `S` in FR Theorem 1).
    pub fn max_degree_nodes(&self) -> Vec<NodeId> {
        let deg = self.degrees();
        let k = *deg.iter().max().unwrap_or(&0);
        deg.iter()
            .enumerate()
            .filter(|&(_, &d)| d == k)
            .map(|(i, _)| i as NodeId)
            .collect()
    }

    /// The `n − 1` tree edges in canonical `(min, max)` form, sorted.
    pub fn edge_set(&self) -> Vec<(NodeId, NodeId)> {
        let mut es: Vec<(NodeId, NodeId)> = (0..self.parent.len() as u32)
            .filter(|&v| self.parent[v as usize] != v)
            .map(|v| {
                let p = self.parent[v as usize];
                if v < p {
                    (v, p)
                } else {
                    (p, v)
                }
            })
            .collect();
        es.sort_unstable();
        es
    }

    /// Children of each node (adjacency of the rooted tree, minus parents).
    pub fn children_lists(&self) -> Vec<Vec<NodeId>> {
        let mut ch: Vec<Vec<NodeId>> = vec![Vec::new(); self.parent.len()];
        for v in 0..self.parent.len() as u32 {
            let p = self.parent[v as usize];
            if p != v {
                ch[p as usize].push(v);
            }
        }
        ch
    }

    /// Unique tree path from `u` to `v` inclusive, via the lowest common
    /// ancestor. O(depth).
    pub fn tree_path(&self, u: NodeId, v: NodeId) -> Vec<NodeId> {
        let (mut a, mut b) = (u, v);
        let mut up_a = vec![a];
        let mut up_b = vec![b];
        while self.depth[a as usize] > self.depth[b as usize] {
            a = self.parent[a as usize];
            up_a.push(a);
        }
        while self.depth[b as usize] > self.depth[a as usize] {
            b = self.parent[b as usize];
            up_b.push(b);
        }
        while a != b {
            a = self.parent[a as usize];
            up_a.push(a);
            b = self.parent[b as usize];
            up_b.push(b);
        }
        // up_a ends at the LCA; append up_b reversed, skipping the LCA.
        up_b.pop();
        up_a.extend(up_b.into_iter().rev());
        up_a
    }

    /// The fundamental cycle of non-tree edge `{u, v}`: the tree path
    /// `u..=v`. Closing it with `{u, v}` yields the cycle `C_e` of the paper.
    ///
    /// # Panics
    /// Panics (in debug) if `{u, v}` is a tree edge.
    pub fn fundamental_cycle_path(&self, u: NodeId, v: NodeId) -> Vec<NodeId> {
        debug_assert!(!self.is_tree_edge(u, v), "{{u,v}} must be a non-tree edge");
        self.tree_path(u, v)
    }

    /// Swap non-tree edge `{u, v}` in and tree edge `{w, z}` out.
    ///
    /// `{w, z}` must lie on the fundamental cycle of `{u, v}`. The component
    /// cut off by removing `{w, z}` (the one *not* containing the root) is
    /// re-rooted at whichever of `u`/`v` lies inside it — exactly the parent
    /// re-orientation the protocol's `Remove`/`Back`/`Reverse` messages
    /// perform, applied atomically. Depths are recomputed for the re-hung
    /// component.
    pub fn swap(&mut self, (u, v): (NodeId, NodeId), (w, z): (NodeId, NodeId)) {
        assert!(
            self.is_tree_edge(w, z),
            "swap: {{{w},{z}}} is not a tree edge"
        );
        assert!(
            !self.is_tree_edge(u, v),
            "swap: {{{u},{v}}} is already a tree edge"
        );
        // Child side of the removed edge = root of the cut component B.
        let b_root = if self.parent[w as usize] == z { w } else { z };
        debug_assert!(
            self.parent[b_root as usize] == if b_root == w { z } else { w },
            "swap: {{{w},{z}}} endpoints are not parent-linked"
        );
        // Detach B.
        self.parent[b_root as usize] = b_root;
        // Which endpoint of the inserted edge is inside B?
        let (inside, outside) = if self.reaches(u, b_root) {
            (u, v)
        } else {
            debug_assert!(self.reaches(v, b_root), "swap edge not on the cycle");
            (v, u)
        };
        // Re-root B at `inside`: reverse parents along inside -> b_root.
        let mut prev = inside;
        let mut cur = self.parent[inside as usize];
        self.parent[inside as usize] = outside;
        while prev != b_root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = prev;
            prev = cur;
            cur = next;
        }
        self.recompute_depths_from(inside);
    }

    /// Whether following parents from `x` reaches `stop` before the tree
    /// root. Helper for [`SpanningTree::swap`].
    fn reaches(&self, mut x: NodeId, stop: NodeId) -> bool {
        loop {
            if x == stop {
                return true;
            }
            let p = self.parent[x as usize];
            if p == x {
                return false;
            }
            x = p;
        }
    }

    /// Recompute `depth` for the subtree hanging at `top` (after a re-hang).
    fn recompute_depths_from(&mut self, top: NodeId) {
        let ch = self.children_lists();
        let base = if self.parent[top as usize] == top {
            0
        } else {
            self.depth[self.parent[top as usize] as usize] + 1
        };
        let mut stack = vec![(top, base)];
        while let Some((v, d)) = stack.pop() {
            self.depth[v as usize] = d;
            for &c in &ch[v as usize] {
                stack.push((c, d + 1));
            }
        }
    }

    /// Re-validate the invariants against the host graph (used by tests and
    /// after swap sequences).
    pub fn validate(&self, g: &Graph) -> Result<(), GraphError> {
        SpanningTree::from_parents(g, self.root, self.parent.clone()).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::graph_from_edges;

    /// 0-1-2-3 path plus chord {0,3}: a 4-cycle.
    fn square() -> Graph {
        graph_from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)])
    }

    #[test]
    fn from_bfs_builds_valid_tree() {
        let g = square();
        let t = SpanningTree::from_bfs(&g, 0).unwrap();
        assert_eq!(t.root(), 0);
        t.validate(&g).unwrap();
        assert_eq!(t.edge_set().len(), 3);
        assert_eq!(t.depth(0), 0);
    }

    #[test]
    fn from_parents_rejects_cycles() {
        let g = square();
        // Root 0 is fine but 2 and 3 parent each other (both edges exist in
        // the square), forming a 2-cycle unreachable from the root.
        let err = SpanningTree::from_parents(&g, 0, vec![0, 2, 3, 2]).unwrap_err();
        assert_eq!(err, GraphError::NotASpanningTree("parent cycle"));
    }

    #[test]
    fn from_parents_rejects_non_graph_edges() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let err = SpanningTree::from_parents(&g, 0, vec![0, 0, 0]).unwrap_err();
        assert_eq!(
            err,
            GraphError::NotASpanningTree("parent edge not in graph")
        );
    }

    #[test]
    fn from_parents_rejects_bad_root() {
        let g = graph_from_edges(2, &[(0, 1)]);
        assert!(SpanningTree::from_parents(&g, 0, vec![1, 0]).is_err()); // parent[root] != root
        assert!(SpanningTree::from_parents(&g, 5, vec![0, 0]).is_err());
    }

    #[test]
    fn degrees_and_max_degree() {
        // Star with center 0.
        let g = graph_from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let t = SpanningTree::from_bfs(&g, 0).unwrap();
        assert_eq!(t.degrees(), vec![3, 1, 1, 1]);
        assert_eq!(t.max_degree(), 3);
        assert_eq!(t.max_degree_nodes(), vec![0]);
        assert_eq!(t.degree_of(0), 3);
        assert_eq!(t.degree_of(2), 1);
    }

    #[test]
    fn tree_path_through_lca() {
        // Path 0-1-2-3 rooted at 0.
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let t = SpanningTree::from_bfs(&g, 0).unwrap();
        assert_eq!(t.tree_path(3, 0), vec![3, 2, 1, 0]);
        assert_eq!(t.tree_path(0, 3), vec![0, 1, 2, 3]);
        assert_eq!(t.tree_path(2, 2), vec![2]);
    }

    #[test]
    fn tree_path_between_siblings() {
        let g = graph_from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 4)]);
        let t = SpanningTree::from_bfs(&g, 0).unwrap();
        assert_eq!(t.tree_path(3, 4), vec![3, 1, 0, 2, 4]);
    }

    #[test]
    fn fundamental_cycle_of_chord() {
        let g = square();
        let t = SpanningTree::from_bfs(&g, 0).unwrap();
        // BFS from 0 visits 1 and 3 at depth 1; tree edges {0,1},{0,3},{1,2}.
        let path = t.fundamental_cycle_path(2, 3);
        assert_eq!(path.first(), Some(&2));
        assert_eq!(path.last(), Some(&3));
        assert!(path.len() >= 3);
    }

    #[test]
    fn swap_keeps_spanning_tree_and_changes_edges() {
        let g = square();
        let mut t = SpanningTree::from_bfs(&g, 0).unwrap();
        let before = t.edge_set();
        // Non-tree edge is {2,3}; remove {0,3} from its cycle.
        assert!(!t.is_tree_edge(2, 3));
        t.swap((2, 3), (0, 3));
        t.validate(&g).unwrap();
        let after = t.edge_set();
        assert_ne!(before, after);
        assert!(t.is_tree_edge(2, 3));
        assert!(!t.is_tree_edge(0, 3));
    }

    #[test]
    fn swap_updates_depths() {
        // Path 0-1-2-3-4 with chord {0,4}.
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        let mut t = SpanningTree::from_bfs(&g, 0).unwrap();
        // BFS from 0 adopts both 1 and 4 as children; non-tree edge is {2,3}.
        assert!(!t.is_tree_edge(2, 3));
        t.swap((2, 3), (3, 4));
        t.validate(&g).unwrap();
        // 3 now hangs off 2: depth(3) = depth(2) + 1 = 3.
        assert_eq!(t.depth(3), t.depth(2) + 1);
        assert_eq!(t.depth(3), 3);
    }

    #[test]
    #[should_panic(expected = "not a tree edge")]
    fn swap_rejects_non_tree_removal() {
        let g = square();
        let mut t = SpanningTree::from_bfs(&g, 0).unwrap();
        t.swap((2, 3), (2, 3));
    }

    #[test]
    fn single_node_tree() {
        let g = crate::graph::GraphBuilder::new(1).build();
        let t = SpanningTree::from_parents(&g, 0, vec![0]).unwrap();
        assert_eq!(t.max_degree(), 0);
        assert!(t.edge_set().is_empty());
    }
}
