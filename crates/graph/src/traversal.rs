//! Classic traversals over [`Graph`]: BFS, DFS, components, diameter.
//!
//! These back the oracle checks (connectivity, distances), the baselines
//! (BFS trees) and the experiment harness (diameter normalization).

use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// Hop distances from `src` (`u32::MAX` for unreachable nodes).
pub fn bfs_distances(g: &Graph, src: NodeId) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.n()];
    let mut q = VecDeque::new();
    dist[src as usize] = 0;
    q.push_back(src);
    while let Some(v) = q.pop_front() {
        let dv = dist[v as usize];
        for &w in g.neighbors(v) {
            if dist[w as usize] == u32::MAX {
                dist[w as usize] = dv + 1;
                q.push_back(w);
            }
        }
    }
    dist
}

/// BFS parent vector rooted at `src`: `parent[src] == src`, unreachable nodes
/// get `u32::MAX`. This is the shape the paper's spanning-tree module
/// converges to (up to tie-breaking), so it doubles as a baseline tree.
pub fn bfs_tree(g: &Graph, src: NodeId) -> Vec<NodeId> {
    let mut parent = vec![u32::MAX; g.n()];
    let mut q = VecDeque::new();
    parent[src as usize] = src;
    q.push_back(src);
    while let Some(v) = q.pop_front() {
        for &w in g.neighbors(v) {
            if parent[w as usize] == u32::MAX {
                parent[w as usize] = v;
                q.push_back(w);
            }
        }
    }
    parent
}

/// Whether the graph is connected. The empty graph is considered connected.
pub fn is_connected(g: &Graph) -> bool {
    if g.n() == 0 {
        return true;
    }
    bfs_distances(g, 0).iter().all(|&d| d != u32::MAX)
}

/// Component label per node, labels are `0..#components` in discovery order.
pub fn connected_components(g: &Graph) -> (usize, Vec<u32>) {
    let mut comp = vec![u32::MAX; g.n()];
    let mut next = 0u32;
    let mut q = VecDeque::new();
    for s in g.nodes() {
        if comp[s as usize] != u32::MAX {
            continue;
        }
        comp[s as usize] = next;
        q.push_back(s);
        while let Some(v) = q.pop_front() {
            for &w in g.neighbors(v) {
                if comp[w as usize] == u32::MAX {
                    comp[w as usize] = next;
                    q.push_back(w);
                }
            }
        }
        next += 1;
    }
    (next as usize, comp)
}

/// Iterative DFS preorder from `src` (neighbors visited in sorted order).
pub fn dfs_order(g: &Graph, src: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; g.n()];
    let mut order = Vec::new();
    let mut stack = vec![src];
    while let Some(v) = stack.pop() {
        if seen[v as usize] {
            continue;
        }
        seen[v as usize] = true;
        order.push(v);
        // Push reversed so that the smallest neighbor is processed first.
        for &w in g.neighbors(v).iter().rev() {
            if !seen[w as usize] {
                stack.push(w);
            }
        }
    }
    order
}

/// Exact diameter by n BFS runs; `None` for disconnected or empty graphs.
/// Used only on experiment-scale graphs (n ≤ a few thousand).
pub fn diameter(g: &Graph) -> Option<u32> {
    if g.n() == 0 {
        return None;
    }
    let mut best = 0;
    for s in g.nodes() {
        let d = bfs_distances(g, s);
        for &x in &d {
            if x == u32::MAX {
                return None;
            }
            best = best.max(x);
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::graph_from_edges;

    fn path4() -> Graph {
        graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn bfs_distances_on_path() {
        let d = bfs_distances(&path4(), 0);
        assert_eq!(d, vec![0, 1, 2, 3]);
        let d = bfs_distances(&path4(), 2);
        assert_eq!(d, vec![2, 1, 0, 1]);
    }

    #[test]
    fn bfs_distances_unreachable() {
        let g = graph_from_edges(3, &[(0, 1)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], u32::MAX);
    }

    #[test]
    fn bfs_tree_is_rooted_and_spanning() {
        let g = graph_from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 4), (3, 4)]);
        let p = bfs_tree(&g, 0);
        assert_eq!(p[0], 0);
        // Every node reaches the root by following parents.
        for mut v in 0..5u32 {
            for _ in 0..10 {
                if v == 0 {
                    break;
                }
                v = p[v as usize];
            }
            assert_eq!(v, 0);
        }
    }

    #[test]
    fn connectivity_detection() {
        assert!(is_connected(&path4()));
        let g = graph_from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!is_connected(&g));
        let (c, labels) = connected_components(&g);
        assert_eq!(c, 2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn empty_graph_is_connected_by_convention() {
        let g = crate::graph::GraphBuilder::new(0).build();
        assert!(is_connected(&g));
        assert_eq!(diameter(&g), None);
    }

    #[test]
    fn dfs_preorder_visits_all_once() {
        let g = graph_from_edges(5, &[(0, 1), (0, 2), (1, 3), (1, 4)]);
        let order = dfs_order(&g, 0);
        assert_eq!(order.len(), 5);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
        // Smallest-neighbor-first: 0 then 1 (not 2).
        assert_eq!(order[0], 0);
        assert_eq!(order[1], 1);
    }

    #[test]
    fn diameter_of_path_and_cycle() {
        assert_eq!(diameter(&path4()), Some(3));
        let cycle = graph_from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        assert_eq!(diameter(&cycle), Some(3));
    }
}
