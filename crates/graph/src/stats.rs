//! Descriptive graph statistics used by the experiment tables and examples:
//! degree distributions, tree quality summaries.

use crate::graph::Graph;
use crate::spanning_tree::SpanningTree;

/// Summary of a degree sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: u32,
    /// Largest degree.
    pub max: u32,
    /// Arithmetic mean.
    pub mean: f64,
    /// Histogram: `hist[d]` = number of vertices of degree `d`.
    pub hist: Vec<usize>,
}

fn stats_of(degs: impl Iterator<Item = u32>) -> DegreeStats {
    let degs: Vec<u32> = degs.collect();
    if degs.is_empty() {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
            hist: vec![],
        };
    }
    let (min, max) = degs
        .iter()
        .fold((u32::MAX, 0), |(lo, hi), &d| (lo.min(d), hi.max(d)));
    let mean = degs.iter().map(|&d| d as f64).sum::<f64>() / degs.len() as f64;
    let mut hist = vec![0usize; max as usize + 1];
    for &d in &degs {
        hist[d as usize] += 1;
    }
    DegreeStats {
        min,
        max,
        mean,
        hist,
    }
}

/// Degree statistics of the host graph.
pub fn graph_degrees(g: &Graph) -> DegreeStats {
    stats_of(g.nodes().map(|v| g.degree(v) as u32))
}

/// Degree statistics of a spanning tree.
pub fn tree_degrees(t: &SpanningTree) -> DegreeStats {
    stats_of(t.degrees().into_iter())
}

/// Number of maximum-degree vertices of a tree — the size of FR's set `S`,
/// i.e. how much simultaneous-improvement opportunity an instance offers.
pub fn max_degree_count(t: &SpanningTree) -> usize {
    t.max_degree_nodes().len()
}

/// Number of leaves of a tree (degree-1 nodes). A path has 2; a star n−1.
/// Useful as a shape summary in tables.
pub fn leaf_count(t: &SpanningTree) -> usize {
    tree_degrees(t).hist.get(1).copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::structured;

    #[test]
    fn path_statistics() {
        let g = structured::path(5).unwrap();
        let s = graph_degrees(&g);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 2);
        assert!((s.mean - 8.0 / 5.0).abs() < 1e-9);
        assert_eq!(s.hist, vec![0, 2, 3]);
    }

    #[test]
    fn star_tree_statistics() {
        let g = structured::star_with_ring(8).unwrap();
        let t = SpanningTree::from_bfs(&g, 0).unwrap();
        let s = tree_degrees(&t);
        assert_eq!(s.max, 7);
        assert_eq!(max_degree_count(&t), 1);
        assert_eq!(leaf_count(&t), 7);
    }

    #[test]
    fn hamiltonian_path_tree_has_two_leaves() {
        let g = structured::path(9).unwrap();
        let t = SpanningTree::from_bfs(&g, 0).unwrap();
        assert_eq!(leaf_count(&t), 2);
        assert_eq!(max_degree_count(&t), 7); // interior nodes all degree 2
    }

    #[test]
    fn empty_graph_statistics() {
        let g = crate::graph::GraphBuilder::new(0).build();
        let s = graph_degrees(&g);
        assert_eq!(s.max, 0);
        assert!(s.hist.is_empty());
    }
}
