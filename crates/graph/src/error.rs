//! Error type shared by the graph substrate.

use std::fmt;

/// Errors produced while building or querying graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An endpoint referenced a node index `>= n`.
    NodeOutOfRange { node: u32, n: u32 },
    /// A self-loop `{v, v}` was supplied; the model only supports simple
    /// undirected graphs.
    SelfLoop { node: u32 },
    /// The same undirected edge was supplied twice.
    DuplicateEdge { u: u32, v: u32 },
    /// An operation required a connected graph but the input was not.
    Disconnected,
    /// An operation required a non-empty graph.
    Empty,
    /// A parent vector did not describe a spanning tree of the host graph.
    NotASpanningTree(&'static str),
    /// A generator was asked for parameters it cannot satisfy
    /// (e.g. a 2-dimensional grid with zero rows).
    InvalidParameter(&'static str),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph with {n} nodes")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            GraphError::DuplicateEdge { u, v } => write!(f, "duplicate edge {{{u}, {v}}}"),
            GraphError::Disconnected => write!(f, "graph is not connected"),
            GraphError::Empty => write!(f, "graph is empty"),
            GraphError::NotASpanningTree(why) => write!(f, "not a spanning tree: {why}"),
            GraphError::InvalidParameter(why) => write!(f, "invalid parameter: {why}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GraphError::NodeOutOfRange { node: 7, n: 3 };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('3'));
        let e = GraphError::DuplicateEdge { u: 1, v: 2 };
        assert!(e.to_string().contains("{1, 2}"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(GraphError::Disconnected, GraphError::Disconnected);
        assert_ne!(GraphError::Disconnected, GraphError::Empty);
    }
}
