//! # ssmdst-graph
//!
//! Graph substrate for the self-stabilizing minimum-degree spanning tree
//! (MDST) reproduction of Blin, Gradinariu Potop-Butucaru and Rovedakis,
//! *"Self-stabilizing minimum-degree spanning tree within one from the
//! optimal degree"*, IPDPS 2009.
//!
//! This crate is deliberately self-contained (no external graph crates): it
//! provides
//!
//! * an immutable undirected [`Graph`] representation with sorted adjacency
//!   lists and a canonical edge list,
//! * a family of deterministic, seedable [`generators`] producing the
//!   workloads used throughout the experiment suite (random, geometric,
//!   structured and adversarial gadget graphs with known optimal degree),
//! * rooted [`SpanningTree`]s with validation, degree accounting, tree-path
//!   and fundamental-cycle queries,
//! * an exact minimum-degree spanning tree solver ([`mdst_exact`]) built on a
//!   degree-bounded decision procedure, used as ground truth `Δ*` in tests
//!   and experiments,
//! * combinatorial lower bounds on `Δ*` ([`lower_bound`]) for graphs too
//!   large for the exact solver,
//! * classic traversals and a [`UnionFind`] used by the solvers and the
//!   baselines.
//!
//! Node identifiers are dense `u32` indices `0..n`; the protocol crate maps
//! them to arbitrary unique identifiers when exercising identifier-dependent
//! behaviour (the paper breaks ties by node ID).

// Library code must not grow bare `.unwrap()`s: use `.expect` with the
// invariant that makes failure unreachable (ssmdst-lint R4 audits the
// reasons). Unit tests keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod bridges;
pub mod dot;
pub mod error;
pub mod generators;
pub mod graph;
pub mod lower_bound;
pub mod mdst_exact;
pub mod spanning_tree;
pub mod stats;
pub mod traversal;
pub mod union_find;

pub use bridges::{biconnectivity, bridge_degrees, Biconnectivity};
pub use error::GraphError;
pub use graph::{EdgeId, Graph, GraphBuilder, NodeId};
pub use lower_bound::{degree_lower_bound, vertex_removal_bound};
pub use mdst_exact::{exact_mdst, has_spanning_tree_with_max_degree, ExactMdst, SolveBudget};
pub use spanning_tree::SpanningTree;
pub use traversal::{bfs_distances, bfs_tree, connected_components, dfs_order, is_connected};
pub use union_find::UnionFind;
