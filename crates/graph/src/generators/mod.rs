//! Deterministic, seedable graph generators — the workload suite.
//!
//! Every generator takes an explicit seed and is reproducible across runs
//! and platforms (ChaCha RNG). Families:
//!
//! * [`random`] — Erdős–Rényi `G(n,p)` / `G(n,m)` (connectivity-repaired),
//!   Barabási–Albert preferential attachment, near-regular graphs;
//! * [`geometric`] — random geometric graphs on the unit square (the paper's
//!   motivating ad-hoc/sensor topologies);
//! * [`structured`] — paths, cycles, grids, tori, hypercubes, complete and
//!   complete-bipartite graphs, stars with rings;
//! * [`gadgets`] — adversarial instances with *known* optimal degree `Δ*`
//!   (cut-vertex spiders, Hamiltonian-plus-chords, double brooms), used as
//!   ground truth where the exact solver would be too slow.
//!
//! [`GraphFamily`] enumerates the families used by the experiment harness so
//! sweeps can be written generically.

pub mod gadgets;
pub mod geometric;
pub mod random;
pub mod structured;

pub use gadgets::{double_broom, hamiltonian_with_chords, multi_hub, spider, wheel_with_spokes};
pub use geometric::random_geometric;
pub use random::{
    barabasi_albert, gnm_connected, gnp_connected, gnp_connected_sparse, near_regular,
};
pub use structured::{
    complete, complete_bipartite, cycle, grid, hypercube, path, star_with_ring, torus,
};

use crate::graph::Graph;

/// Workload families swept by the experiment harness.
///
/// `label()` names the family in printed tables; `generate(n, seed)` builds a
/// connected instance with approximately `n` nodes (structured families round
/// `n` to their natural shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphFamily {
    /// `G(n, p)` with `p = 2 ln n / n` (connected regime, repaired).
    GnpSparse,
    /// `G(n, p)` with `p = 0.3` (dense).
    GnpDense,
    /// Random geometric graph, radius in the connectivity regime.
    Geometric,
    /// Barabási–Albert with attachment 2 (heavy-tailed degrees).
    ScaleFree,
    /// 2-dimensional grid (`⌈√n⌉ × ⌈√n⌉`).
    Grid,
    /// Hypercube of dimension `⌈log₂ n⌉`.
    Hypercube,
    /// Hamiltonian path + random chords: `Δ* = 2` by construction.
    HamiltonianChords,
    /// Cut-vertex spider: `Δ*` equals the number of legs by construction.
    Spider,
}

impl GraphFamily {
    /// All families, in table order.
    pub fn all() -> &'static [GraphFamily] {
        use GraphFamily::*;
        &[
            GnpSparse,
            GnpDense,
            Geometric,
            ScaleFree,
            Grid,
            Hypercube,
            HamiltonianChords,
            Spider,
        ]
    }

    /// Human-readable family name used in experiment tables.
    pub fn label(&self) -> &'static str {
        use GraphFamily::*;
        match self {
            GnpSparse => "gnp-sparse",
            GnpDense => "gnp-dense",
            Geometric => "geometric",
            ScaleFree => "scale-free",
            Grid => "grid",
            Hypercube => "hypercube",
            HamiltonianChords => "ham-chords",
            Spider => "spider",
        }
    }

    /// Generate a connected instance with ~`n` nodes.
    ///
    /// # Panics
    /// Panics if `n < 4` (the experiment suite never goes below that).
    pub fn generate(&self, n: usize, seed: u64) -> Graph {
        assert!(n >= 4, "experiment families need n >= 4");
        use GraphFamily::*;
        match self {
            GnpSparse => {
                let p = (2.0 * (n as f64).ln() / n as f64).min(1.0);
                gnp_connected(n, p, seed)
            }
            GnpDense => gnp_connected(n, 0.3, seed),
            Geometric => {
                // r ~ sqrt(2 ln n / n): just above the connectivity threshold.
                let r = (2.0 * (n as f64).ln() / n as f64).sqrt().min(1.0);
                random_geometric(n, r, seed)
            }
            ScaleFree => barabasi_albert(n, 2, seed),
            Grid => {
                let side = (n as f64).sqrt().ceil() as usize;
                grid(side, side).expect("grid parameters valid") // lint: allow(no-panic-in-library) — side = ceil(sqrt(n)) >= 2 for the n this family accepts
            }
            Hypercube => {
                let dim = (n as f64).log2().ceil().max(2.0) as u32;
                hypercube(dim).expect("hypercube parameters valid") // lint: allow(no-panic-in-library) — dim clamped to >= 2 on the line above
            }
            HamiltonianChords => hamiltonian_with_chords(n, 2 * n, seed),
            Spider => {
                let legs = 5.min(n - 1).max(3);
                let leg_len = ((n - 1) / legs).max(1);
                spider(legs, leg_len).expect("spider parameters valid") // lint: allow(no-panic-in-library) — legs in 3..=5 and leg_len >= 1 by the clamps above
            }
        }
    }

    /// `Δ*` when it is known analytically for this family's instances.
    pub fn known_delta_star(&self, g: &Graph) -> Option<u32> {
        match self {
            GraphFamily::HamiltonianChords => Some(2),
            GraphFamily::Spider => {
                // Δ* = max(#legs, 2); #legs = degree of the hub node 0.
                Some((g.degree(0) as u32).max(2))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;

    #[test]
    fn all_families_generate_connected_graphs() {
        for fam in GraphFamily::all() {
            for &n in &[8usize, 20, 33] {
                let g = fam.generate(n, 42);
                assert!(
                    is_connected(&g),
                    "{} (n={n}) must be connected",
                    fam.label()
                );
                assert!(g.n() >= 4);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for fam in GraphFamily::all() {
            let a = fam.generate(24, 7);
            let b = fam.generate(24, 7);
            assert_eq!(a, b, "{} must be seed-deterministic", fam.label());
        }
    }

    #[test]
    fn different_seeds_differ_for_random_families() {
        let a = GraphFamily::GnpDense.generate(24, 1);
        let b = GraphFamily::GnpDense.generate(24, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn known_delta_star_only_for_gadgets() {
        let g = GraphFamily::HamiltonianChords.generate(16, 3);
        assert_eq!(GraphFamily::HamiltonianChords.known_delta_star(&g), Some(2));
        let g = GraphFamily::Spider.generate(16, 3);
        let ds = GraphFamily::Spider.known_delta_star(&g).unwrap();
        assert!(ds >= 3);
        let g = GraphFamily::Grid.generate(16, 3);
        assert_eq!(GraphFamily::Grid.known_delta_star(&g), None);
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = GraphFamily::all().iter().map(|f| f.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), GraphFamily::all().len());
    }
}
