//! Adversarial gadget instances with analytically known `Δ*`.
//!
//! The exact solver ([`crate::mdst_exact`]) is exponential in the worst case,
//! so large-scale experiments need instances whose optimal degree is known by
//! construction:
//!
//! * [`spider`]: a cut vertex of degree `k` forces `Δ* = max(k, 2)`;
//! * [`hamiltonian_with_chords`]: a hidden Hamiltonian path forces `Δ* = 2`
//!   while random chords inflate the degrees any naive tree picks up;
//! * [`double_broom`]: two high-degree brooms joined by a path — `Δ*` equals
//!   the broom fan-out, and every improvement chain must cross the handle;
//! * [`wheel_with_spokes`]: hub + ring, `Δ* = 2`, the BFS-from-hub worst case
//!   with tunable extra spokes.

use crate::error::GraphError;
use crate::graph::{Graph, GraphBuilder, NodeId};
use rand::prelude::*;

use super::random::rng;

/// Spider: hub node `0` with `legs` paths of length `leg_len` attached.
///
/// Every hub edge is a bridge, so every spanning tree contains all of them:
/// `Δ* = max(legs, 2)` exactly. `n = 1 + legs · leg_len`.
pub fn spider(legs: usize, leg_len: usize) -> Result<Graph, GraphError> {
    if legs < 1 || leg_len < 1 {
        return Err(GraphError::InvalidParameter(
            "spider: legs and leg_len must be >= 1",
        ));
    }
    let n = 1 + legs * leg_len;
    let mut b = GraphBuilder::new(n);
    for l in 0..legs {
        let first = (1 + l * leg_len) as NodeId;
        b.add_edge(0, first)?;
        for i in 1..leg_len {
            let v = first + i as NodeId;
            b.add_edge(v - 1, v)?;
        }
    }
    Ok(b.build())
}

/// Hamiltonian path through a random permutation of `0..n`, plus `chords`
/// random extra edges. `Δ* = 2` by construction (the hidden path), but the
/// chords give naive trees degree up to `Θ(log n / log log n)` and give the
/// protocol a rich supply of fundamental cycles.
pub fn hamiltonian_with_chords(n: usize, chords: usize, seed: u64) -> Graph {
    assert!(n >= 3, "hamiltonian_with_chords: n must be >= 3");
    let mut r = rng(seed);
    let mut perm: Vec<NodeId> = (0..n as NodeId).collect();
    perm.shuffle(&mut r);
    let mut b = GraphBuilder::new(n);
    for w in perm.windows(2) {
        b.add_edge_dedup(w[0], w[1]).expect("path edge valid"); // lint: allow(no-panic-in-library) — permutation windows are distinct in-range pairs
    }
    let max_extra = n * (n - 1) / 2 - (n - 1);
    let target = chords.min(max_extra);
    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < target && attempts < 100 * target.max(1) {
        attempts += 1;
        let u = r.random_range(0..n as u32);
        let v = r.random_range(0..n as u32);
        if u == v {
            continue;
        }
        let before = b.staged_edges();
        b.add_edge_dedup(u, v).expect("chord valid"); // lint: allow(no-panic-in-library) — u != v checked above and both drawn from 0..n
        if b.staged_edges() > before {
            added += 1;
        }
    }
    b.build()
}

/// Double broom: two hubs, each fanning out to `fan` leaves, connected by a
/// path of `handle` interior nodes. Leaves of each broom are also chained to
/// each other (so leaves are not forced), and each leaf chain reconnects to
/// the handle midpoint, giving the reduction module a route to off-load hub
/// degree. `Δ* = 3` for `fan ≥ 3` (each hub keeps the handle edge plus the
/// two chain ends... verified by the exact solver in tests).
///
/// Layout: hub_a = 0, hub_b = 1, handle = 2..2+handle,
/// leaves_a = next `fan`, leaves_b = last `fan`. `n = 2 + handle + 2·fan`.
pub fn double_broom(fan: usize, handle: usize) -> Result<Graph, GraphError> {
    if fan < 2 || handle < 1 {
        return Err(GraphError::InvalidParameter(
            "double_broom: fan >= 2 and handle >= 1 required",
        ));
    }
    let n = 2 + handle + 2 * fan;
    let mut b = GraphBuilder::new(n);
    let hub_a = 0u32;
    let hub_b = 1u32;
    let handle_start = 2u32;
    let leaves_a = 2 + handle as u32;
    let leaves_b = leaves_a + fan as u32;
    // Handle path hub_a - h0 - h1 - ... - hub_b.
    b.add_edge(hub_a, handle_start)?;
    for i in 1..handle as u32 {
        b.add_edge(handle_start + i - 1, handle_start + i)?;
    }
    b.add_edge(handle_start + handle as u32 - 1, hub_b)?;
    // Brooms: hub -> each leaf; leaves chained.
    for f in 0..fan as u32 {
        b.add_edge(hub_a, leaves_a + f)?;
        b.add_edge(hub_b, leaves_b + f)?;
        if f > 0 {
            b.add_edge(leaves_a + f - 1, leaves_a + f)?;
            b.add_edge(leaves_b + f - 1, leaves_b + f)?;
        }
    }
    // Reconnect each leaf chain's far end to the handle midpoint so hub
    // degree can be off-loaded through the chain.
    let mid = handle_start + (handle as u32) / 2;
    b.add_edge(leaves_a + fan as u32 - 1, mid)?;
    b.add_edge(leaves_b + fan as u32 - 1, mid)?;
    Ok(b.build())
}

/// Multi-hub: `hubs` hub nodes arranged on a ring, each the center of its
/// own star-with-ring of `spokes` satellites.
///
/// Construction per hub `h`: `h` connects to its `spokes` satellites, the
/// satellites form a ring among themselves, and consecutive hubs are
/// joined. Every hub starts with degree `spokes + 2` in the natural BFS
/// tree while `Δ* = 2` stays achievable through the satellite rings
/// (verified by the exact solver in tests), so **all hubs are max-degree
/// simultaneously** — the purpose-built workload for the paper's
/// simultaneous-improvement claim (experiment F3).
///
/// `n = hubs · (1 + spokes)`.
pub fn multi_hub(hubs: usize, spokes: usize) -> Result<Graph, GraphError> {
    if hubs < 2 || spokes < 3 {
        return Err(GraphError::InvalidParameter(
            "multi_hub: need hubs >= 2 and spokes >= 3",
        ));
    }
    let n = hubs * (1 + spokes);
    let mut b = GraphBuilder::new(n);
    let hub = |h: usize| (h * (1 + spokes)) as NodeId;
    let sat = |h: usize, s: usize| (h * (1 + spokes) + 1 + s) as NodeId;
    for h in 0..hubs {
        // Hub ring.
        let next = (h + 1) % hubs;
        b.add_edge_dedup(hub(h), hub(next))?;
        for s in 0..spokes {
            // Star.
            b.add_edge(hub(h), sat(h, s))?;
            // Satellite ring.
            b.add_edge_dedup(sat(h, s), sat(h, (s + 1) % spokes))?;
        }
        // Bridge the satellite rings of consecutive hubs so a Hamiltonian
        // path can traverse the whole graph without loading any hub.
        b.add_edge_dedup(sat(h, spokes - 1), sat(next, 0))?;
    }
    Ok(b.build())
}

/// Wheel: hub `0` joined to every rim node, rim forms a cycle, plus
/// `extra_spokes` random rim–rim chords. `Δ* = 2` (rim path + one spoke).
pub fn wheel_with_spokes(n: usize, extra_spokes: usize, seed: u64) -> Result<Graph, GraphError> {
    if n < 5 {
        return Err(GraphError::InvalidParameter("wheel: n must be >= 5"));
    }
    let mut r = rng(seed);
    let rim = n - 1;
    let mut b = GraphBuilder::new(n);
    for v in 1..n as u32 {
        b.add_edge(0, v)?;
    }
    for i in 0..rim as u32 {
        let u = 1 + i;
        let v = 1 + (i + 1) % rim as u32;
        b.add_edge_dedup(u, v)?;
    }
    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < extra_spokes && attempts < 100 * extra_spokes.max(1) {
        attempts += 1;
        let u = r.random_range(1..n as u32);
        let v = r.random_range(1..n as u32);
        if u == v {
            continue;
        }
        let before = b.staged_edges();
        b.add_edge_dedup(u, v)?;
        if b.staged_edges() > before {
            added += 1;
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;

    #[test]
    fn spider_structure() {
        let g = spider(4, 3).unwrap();
        assert_eq!(g.n(), 13);
        assert_eq!(g.degree(0), 4);
        assert!(is_connected(&g));
        // All hub edges are bridges: removing node 0 disconnects into 4 parts.
        assert!(spider(0, 1).is_err());
    }

    #[test]
    fn spider_single_leg_is_path() {
        let g = spider(1, 5).unwrap();
        assert_eq!(g.n(), 6);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn hamiltonian_with_chords_connected_and_sized() {
        let g = hamiltonian_with_chords(20, 30, 4);
        assert!(is_connected(&g));
        assert!(g.m() >= 19);
        assert!(g.m() <= 19 + 30);
    }

    #[test]
    fn hamiltonian_with_chords_deterministic() {
        assert_eq!(
            hamiltonian_with_chords(15, 10, 2),
            hamiltonian_with_chords(15, 10, 2)
        );
    }

    #[test]
    fn double_broom_structure() {
        let g = double_broom(4, 3).unwrap();
        assert_eq!(g.n(), 2 + 3 + 8);
        assert!(is_connected(&g));
        // Hubs have fan + 1 edges (leaves + handle).
        assert_eq!(g.degree(0), 5);
        assert_eq!(g.degree(1), 5);
        assert!(double_broom(1, 1).is_err());
    }

    #[test]
    fn multi_hub_structure() {
        let g = multi_hub(3, 4).unwrap();
        assert_eq!(g.n(), 15);
        assert!(is_connected(&g));
        // Hubs: ring (2) + spokes (4) = 6 each.
        for h in 0..3 {
            assert_eq!(g.degree((h * 5) as u32), 6);
        }
        assert!(multi_hub(1, 4).is_err());
        assert!(multi_hub(3, 2).is_err());
    }

    #[test]
    fn multi_hub_has_low_optimal_degree() {
        use crate::mdst_exact::{exact_mdst, SolveBudget};
        let g = multi_hub(2, 4).unwrap();
        let ds = exact_mdst(&g, SolveBudget::default())
            .delta_star()
            .expect("small instance");
        assert!(ds <= 3, "Δ* = {ds}");
    }

    #[test]
    fn wheel_structure() {
        let g = wheel_with_spokes(9, 0, 0).unwrap();
        assert_eq!(g.degree(0), 8);
        // Rim nodes: hub + 2 ring edges.
        for v in 1..9u32 {
            assert_eq!(g.degree(v), 3);
        }
        assert!(wheel_with_spokes(4, 0, 0).is_err());
    }

    #[test]
    fn wheel_extra_spokes_add_edges() {
        let base = wheel_with_spokes(12, 0, 1).unwrap();
        let more = wheel_with_spokes(12, 6, 1).unwrap();
        assert!(more.m() > base.m());
    }
}
