//! Random geometric graphs — the ad-hoc / sensor-network workloads the
//! paper's introduction motivates.

use crate::graph::{Graph, GraphBuilder};
use rand::prelude::*;

use super::random::{connect_components, rng};

/// Random geometric graph: `n` points uniform on the unit square, edge iff
/// Euclidean distance ≤ `radius`. Repaired to be connected (below the
/// `sqrt(ln n / (π n))` threshold RGGs disconnect; the repair adds the few
/// long-range edges a real deployment would call a backbone).
///
/// # Panics
/// Panics if `n == 0` or `radius` is not positive and finite.
pub fn random_geometric(n: usize, radius: f64, seed: u64) -> Graph {
    assert!(n > 0, "rgg: n must be positive");
    assert!(
        radius.is_finite() && radius > 0.0,
        "rgg: radius must be positive"
    );
    let mut r = rng(seed);
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (r.random::<f64>(), r.random::<f64>()))
        .collect();
    let mut b = GraphBuilder::new(n);
    let r2 = radius * radius;
    for u in 0..n {
        for v in (u + 1)..n {
            let dx = pts[u].0 - pts[v].0;
            let dy = pts[u].1 - pts[v].1;
            if dx * dx + dy * dy <= r2 {
                b.add_edge(u as u32, v as u32).expect("rgg edge valid"); // lint: allow(no-panic-in-library) — u < v < n and each pair visited once
            }
        }
    }
    connect_components(&mut b, n, &mut r);
    b.build()
}

/// Random geometric graph together with its embedding, for examples that
/// want to visualize or reason about positions.
pub fn random_geometric_with_points(n: usize, radius: f64, seed: u64) -> (Graph, Vec<(f64, f64)>) {
    // Re-derive the identical point set by replaying the RNG.
    let mut r = rng(seed);
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (r.random::<f64>(), r.random::<f64>()))
        .collect();
    (random_geometric(n, radius, seed), pts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;

    #[test]
    fn rgg_is_connected_after_repair() {
        for seed in 0..4 {
            let g = random_geometric(40, 0.05, seed); // far below threshold
            assert!(is_connected(&g), "seed {seed}");
        }
    }

    #[test]
    fn rgg_radius_sqrt2_is_complete() {
        let g = random_geometric(10, 1.5, 0);
        assert_eq!(g.m(), 10 * 9 / 2);
    }

    #[test]
    fn rgg_deterministic() {
        assert_eq!(random_geometric(30, 0.3, 5), random_geometric(30, 0.3, 5));
    }

    #[test]
    fn rgg_points_match_graph_seed() {
        let (g1, pts) = random_geometric_with_points(20, 0.4, 9);
        let g2 = random_geometric(20, 0.4, 9);
        assert_eq!(g1, g2);
        assert_eq!(pts.len(), 20);
        assert!(pts
            .iter()
            .all(|&(x, y)| (0.0..=1.0).contains(&x) && (0.0..=1.0).contains(&y)));
    }

    #[test]
    fn larger_radius_means_more_edges() {
        let small = random_geometric(50, 0.15, 2);
        let large = random_geometric(50, 0.5, 2);
        assert!(large.m() > small.m());
    }
}
