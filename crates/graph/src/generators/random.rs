//! Random graph families: Erdős–Rényi, Barabási–Albert, near-regular.
//!
//! All generators guarantee connectivity (the protocol's model assumes a
//! connected network): instances below the connectivity threshold are
//! repaired by adding a minimum set of random inter-component edges, which
//! perturbs the degree distribution negligibly.

use crate::graph::{Graph, GraphBuilder, NodeId};
use crate::union_find::UnionFind;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Deterministic RNG from a seed (StdRng is ChaCha12 — stable across runs).
pub(crate) fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Add the fewest random edges needed to connect the staged graph.
///
/// Picks a random representative in each component and chains components in
/// random order, so the repair does not bias toward low node IDs.
pub(crate) fn connect_components(b: &mut GraphBuilder, n: usize, rng: &mut StdRng) {
    if n == 0 {
        return;
    }
    // Recompute components from the staged edges.
    let snapshot = b.clone().build();
    let (c, labels) = crate::traversal::connected_components(&snapshot);
    if c <= 1 {
        return;
    }
    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); c];
    for v in 0..n as u32 {
        members[labels[v as usize] as usize].push(v);
    }
    members.shuffle(rng);
    let mut uf = UnionFind::new(n);
    for &(u, v) in snapshot.edges() {
        uf.union(u, v);
    }
    for w in members.windows(2) {
        let u = *w[0].choose(rng).expect("non-empty component"); // lint: allow(no-panic-in-library) — every component has at least one member
        let v = *w[1].choose(rng).expect("non-empty component"); // lint: allow(no-panic-in-library) — every component has at least one member
        if uf.union(u, v) {
            b.add_edge_dedup(u, v).expect("repair edge valid"); // lint: allow(no-panic-in-library) — endpoints come from distinct components, so u != v
        }
    }
}

/// Erdős–Rényi `G(n, p)`, repaired to be connected.
///
/// # Panics
/// Panics if `p` is not in `[0, 1]` or `n == 0`.
pub fn gnp_connected(n: usize, p: f64, seed: u64) -> Graph {
    assert!(n > 0, "gnp: n must be positive");
    assert!((0.0..=1.0).contains(&p), "gnp: p must be in [0,1]");
    let mut r = rng(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if r.random::<f64>() < p {
                b.add_edge(u, v).expect("gnp edge valid"); // lint: allow(no-panic-in-library) — u < v < n and each pair flipped once
            }
        }
    }
    connect_components(&mut b, n, &mut r);
    b.build()
}

/// Sparse Erdős–Rényi `G(n, p)` via geometric skip sampling, repaired to
/// be connected — `O(n + pn²)` expected instead of the `O(n²)` coin flips
/// of [`gnp_connected`], which is what makes the S1 scale experiments
/// (n up to 65 536) feasible.
///
/// The draw sequence differs from [`gnp_connected`]'s, so the two produce
/// *different* (both deterministic) instances for the same seed; existing
/// experiment families keep using `gnp_connected` so their committed
/// numbers stay comparable.
///
/// # Panics
/// Panics if `n == 0` or `p` is not in `[0, 1)`.
pub fn gnp_connected_sparse(n: usize, p: f64, seed: u64) -> Graph {
    assert!(n > 0, "gnp_sparse: n must be positive");
    assert!(
        (0.0..1.0).contains(&p),
        "gnp_sparse: p must be in [0,1) (use gnp_connected for dense p)"
    );
    let mut r = rng(seed);
    let mut b = GraphBuilder::new(n);
    if p > 0.0 {
        // Walk the linearized upper triangle, jumping geometric gaps:
        // skip ~ floor(ln(U) / ln(1-p)) misses between successive edges.
        // ln_1p keeps the denominator exact for tiny p, where (1.0 - p)
        // would round to 1.0 and collapse every skip to zero (a complete-
        // graph death march instead of an almost-empty graph).
        let total = n as u64 * (n as u64 - 1) / 2;
        let inv_log = 1.0 / (-p).ln_1p();
        let mut idx: u64 = 0;
        loop {
            let u01: f64 = r.random::<f64>().max(f64::MIN_POSITIVE);
            let skip = (u01.ln() * inv_log).floor() as u64;
            idx = match idx.checked_add(skip) {
                Some(i) if i < total => i,
                _ => break,
            };
            let (u, v) = triangle_unrank(idx, n as u64);
            b.add_edge_dedup(u, v).expect("gnp_sparse edge valid"); // lint: allow(no-panic-in-library) — triangle_unrank yields u < v < n
            idx += 1;
            if idx >= total {
                break;
            }
        }
    }
    connect_components(&mut b, n, &mut r);
    b.build()
}

/// Inverse of the row-major linearization of the strict upper triangle:
/// maps `idx ∈ [0, n(n-1)/2)` to the pair `(u, v)`, `u < v`.
fn triangle_unrank(idx: u64, n: u64) -> (NodeId, NodeId) {
    // Row u starts at offset u*n - u*(u+1)/2. Solve by binary search to
    // stay exact at 64-bit scale (float sqrt loses ulps past 2^26).
    let row_start = |u: u64| u * n - u * (u + 1) / 2;
    let (mut lo, mut hi) = (0u64, n - 1);
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if row_start(mid) <= idx {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    let u = lo;
    let v = u + 1 + (idx - row_start(u));
    (u as NodeId, v as NodeId)
}

/// Erdős–Rényi `G(n, m)`: exactly `m` random edges (before connectivity
/// repair, which may add a few more).
///
/// # Panics
/// Panics if `m` exceeds `n(n−1)/2`.
pub fn gnm_connected(n: usize, m: usize, seed: u64) -> Graph {
    assert!(n > 0, "gnm: n must be positive");
    let max_m = n * (n - 1) / 2;
    assert!(m <= max_m, "gnm: m={m} exceeds maximum {max_m}");
    let mut r = rng(seed);
    let mut b = GraphBuilder::new(n);
    // Rejection sampling is fine for the densities used in experiments.
    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < m && attempts < 50 * max_m.max(1) {
        attempts += 1;
        let u = r.random_range(0..n as u32);
        let v = r.random_range(0..n as u32);
        if u == v {
            continue;
        }
        let before = b.staged_edges();
        b.add_edge_dedup(u, v).expect("gnm edge valid"); // lint: allow(no-panic-in-library) — u != v checked above and both drawn from 0..n
        if b.staged_edges() > before {
            added += 1;
        }
    }
    connect_components(&mut b, n, &mut r);
    b.build()
}

/// Barabási–Albert preferential attachment: start from a clique of
/// `attach + 1` nodes, each new node attaches to `attach` existing nodes
/// sampled proportionally to degree. Produces the heavy-tailed degree
/// distributions of peer-to-peer overlays (the paper's second motivation).
///
/// # Panics
/// Panics if `attach == 0` or `n <= attach`.
pub fn barabasi_albert(n: usize, attach: usize, seed: u64) -> Graph {
    assert!(attach >= 1, "ba: attach must be >= 1");
    assert!(n > attach, "ba: need n > attach");
    let mut r = rng(seed);
    let mut b = GraphBuilder::new(n);
    // Degree-proportional sampling via the repeated-endpoints urn.
    let mut urn: Vec<NodeId> = Vec::with_capacity(2 * n * attach);
    let core = attach + 1;
    for u in 0..core as u32 {
        for v in (u + 1)..core as u32 {
            b.add_edge(u, v).expect("ba core edge"); // lint: allow(no-panic-in-library) — clique pairs u < v < core <= n are distinct
            urn.push(u);
            urn.push(v);
        }
    }
    for v in core as u32..n as u32 {
        let mut targets = Vec::with_capacity(attach);
        let mut guard = 0;
        while targets.len() < attach && guard < 10_000 {
            guard += 1;
            let t = *urn.choose(&mut r).expect("urn non-empty"); // lint: allow(no-panic-in-library) — urn seeded with the core clique before any draw
            if t != v && !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            b.add_edge(v, t).expect("ba attach edge"); // lint: allow(no-panic-in-library) — targets are distinct, != v, and staged once per v
            urn.push(v);
            urn.push(t);
        }
    }
    b.build()
}

/// Near-`d`-regular connected graph: a Hamiltonian cycle (guaranteeing
/// connectivity and degree ≥ 2) plus random perfect-matching-style rounds
/// until every node has degree ≥ `d` or the attempt budget is exhausted.
///
/// # Panics
/// Panics if `d < 2` or `n < d + 1`.
pub fn near_regular(n: usize, d: usize, seed: u64) -> Graph {
    assert!(d >= 2, "near_regular: d must be >= 2");
    assert!(n > d, "near_regular: need n > d");
    let mut r = rng(seed);
    let mut b = GraphBuilder::new(n);
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.shuffle(&mut r);
    for i in 0..n {
        b.add_edge_dedup(perm[i], perm[(i + 1) % n])
            .expect("cycle edge"); // lint: allow(no-panic-in-library) — consecutive entries of a permutation differ for n >= 2
    }
    let mut deg = vec![2usize; n];
    // Track how many nodes still sit below the target degree incrementally:
    // re-scanning `deg` on every attempt made the loop guard O(n), turning
    // large-n generation quadratic. The accepted-edge sequence (and thus
    // the generated instance per seed) is unchanged — only the guard is.
    let mut below = deg.iter().filter(|&&x| x < d).count();
    // Phase 1: uniform pair sampling. Cheap and unbiased while most nodes
    // sit below the target, but the hit probability decays like
    // (below / n)², so the endgame needs ~1.64 n² expected attempts — a
    // silent quadratic stall at n = 10⁶. The budget is therefore capped
    // absolutely (not just at 100·n·d, which itself is 10⁹ attempts at
    // S4 scale); the cap leaves every instance with n·d ≤ 40 000 — all
    // committed test and bench instances — byte-identical, because their
    // budget is unchanged and the accepted-edge sequence is a prefix
    // property of the rng stream.
    let mut attempts = 0usize;
    let phase1_budget = (100 * n * d).min(4_000_000);
    while below > 0 && attempts < phase1_budget {
        attempts += 1;
        let u = r.random_range(0..n as u32);
        let v = r.random_range(0..n as u32);
        if u == v || deg[u as usize] >= d || deg[v as usize] >= d {
            continue;
        }
        let before = b.staged_edges();
        b.add_edge_dedup(u, v).expect("regular edge"); // lint: allow(no-panic-in-library) — u != v checked above and both drawn from 0..n
        if b.staged_edges() > before {
            for x in [u, v] {
                deg[x as usize] += 1;
                if deg[x as usize] == d {
                    below -= 1;
                }
            }
        }
    }
    // Phase 2: finish by sampling directly from the below-degree pool, so
    // each attempt hits two below-degree nodes by construction and the
    // total work is O(below · d) — independent of n. The retry budget
    // bounds the duplicate/self-pair tail (a tiny pool can be a clique of
    // itself, at which point no legal edge remains and "near"-regular is
    // the honest answer).
    if below > 0 {
        let mut pool: Vec<u32> = (0..n as u32).filter(|&v| deg[v as usize] < d).collect();
        let mut attempts = 0usize;
        let budget = 50 * (pool.len() * d + 16);
        while pool.len() >= 2 && attempts < budget {
            attempts += 1;
            let i = r.random_range(0..pool.len());
            let j = r.random_range(0..pool.len());
            if i == j {
                continue;
            }
            let (u, v) = (pool[i], pool[j]);
            let before = b.staged_edges();
            b.add_edge_dedup(u, v).expect("regular edge"); // lint: allow(no-panic-in-library) — pool holds distinct node ids < n and i != j
            if b.staged_edges() > before {
                for x in [u, v] {
                    deg[x as usize] += 1;
                }
                // Drop saturated endpoints, higher index first so the
                // swap-remove cannot displace the other one.
                for k in [i.max(j), i.min(j)] {
                    if deg[pool[k] as usize] >= d {
                        pool.swap_remove(k);
                    }
                }
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;

    #[test]
    fn gnp_connected_is_connected_even_at_low_p() {
        for seed in 0..5 {
            let g = gnp_connected(30, 0.01, seed);
            assert!(is_connected(&g), "seed {seed}");
            assert_eq!(g.n(), 30);
        }
    }

    #[test]
    fn gnp_p_one_is_complete() {
        let g = gnp_connected(8, 1.0, 0);
        assert_eq!(g.m(), 8 * 7 / 2);
    }

    #[test]
    fn gnp_p_zero_becomes_a_tree_after_repair() {
        let g = gnp_connected(10, 0.0, 3);
        assert!(is_connected(&g));
        assert_eq!(g.m(), 9); // exactly the repair edges
    }

    #[test]
    fn gnm_edge_count_at_least_m() {
        let g = gnm_connected(20, 30, 11);
        assert!(g.m() >= 30);
        assert!(is_connected(&g));
    }

    #[test]
    #[should_panic(expected = "exceeds maximum")]
    fn gnm_rejects_impossible_m() {
        gnm_connected(4, 10, 0);
    }

    #[test]
    fn ba_is_connected_with_expected_edge_count() {
        let g = barabasi_albert(50, 2, 9);
        assert!(is_connected(&g));
        // core clique C(3,2)=3 edges + 2 per additional node (minus rare
        // collisions when the urn rejects duplicates).
        assert!(g.m() >= 3 + 2 * (50 - 3) - 5);
    }

    #[test]
    fn ba_has_heavy_hub() {
        let g = barabasi_albert(200, 2, 1);
        // Preferential attachment should produce a hub well above attach.
        assert!(g.max_degree() >= 8, "max degree {}", g.max_degree());
    }

    #[test]
    fn near_regular_meets_degree_floor() {
        let g = near_regular(40, 4, 5);
        assert!(is_connected(&g));
        assert!(g.min_degree() >= 2);
        let low = g.nodes().filter(|&v| g.degree(v) < 4).count();
        assert!(low <= 2, "{low} nodes below target degree");
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(gnp_connected(25, 0.2, 7), gnp_connected(25, 0.2, 7));
        assert_eq!(gnm_connected(25, 40, 7), gnm_connected(25, 40, 7));
        assert_eq!(barabasi_albert(25, 2, 7), barabasi_albert(25, 2, 7));
        assert_eq!(near_regular(25, 3, 7), near_regular(25, 3, 7));
        assert_eq!(
            gnp_connected_sparse(500, 0.01, 7),
            gnp_connected_sparse(500, 0.01, 7)
        );
    }

    #[test]
    fn gnp_sparse_is_connected_with_plausible_density() {
        let n = 2000usize;
        let p = 8.0 / n as f64; // mean degree 8
        let g = gnp_connected_sparse(n, p, 3);
        assert!(is_connected(&g));
        let expect = p * (n * (n - 1) / 2) as f64;
        // Binomial concentration: ±30% of the mean is > 10 sigma out.
        assert!(
            (g.m() as f64) > 0.7 * expect && (g.m() as f64) < 1.3 * expect,
            "m = {} vs expected ≈ {expect:.0}",
            g.m()
        );
    }

    #[test]
    fn gnp_sparse_p_zero_becomes_a_tree_after_repair() {
        let g = gnp_connected_sparse(12, 0.0, 1);
        assert!(is_connected(&g));
        assert_eq!(g.m(), 11);
    }

    #[test]
    fn gnp_sparse_subnormal_p_stays_sparse() {
        // Regression: with 1/ln(1-p), p below ~5e-17 made every skip zero
        // and staged the complete graph; ln_1p keeps the skips geometric.
        let g = gnp_connected_sparse(300, 1e-17, 2);
        assert!(is_connected(&g));
        assert_eq!(g.m(), 299, "only the connectivity-repair tree edges");
    }

    /// Sequence-compatibility fence for the phase-1 budget cap: every
    /// instance with `n·d ≤ 40 000` keeps its exact pre-cap edge set (the
    /// cap only bites above 4M attempts), and the phase-2 endgame never
    /// runs when phase 1 saturates. Committed bench/test instances all sit
    /// under this line.
    #[test]
    fn small_instances_saturate_in_phase_one() {
        let g = near_regular(40, 4, 5);
        // Phase 1 budget for (40, 4) is 16 000 < 4M: unchanged behavior.
        let low = g.nodes().filter(|&v| g.degree(v) < 4).count();
        assert!(low <= 2, "{low} nodes below target degree");
        // Exactly reproducible run-to-run.
        assert_eq!(g, near_regular(40, 4, 5));
    }

    /// Large-n smoke: generation at n = 10⁶ must be O(m)-ish, not the
    /// quadratic endgame stall the two-phase sampler removes. The wall
    /// bound is deliberately loose (loaded CI); a quadratic regression
    /// would need ~10¹² attempts and miss it by hours.
    #[test]
    fn near_regular_million_nodes_is_bounded() {
        let start = std::time::Instant::now();
        let n = 1_000_000;
        let g = near_regular(n, 4, 9);
        assert_eq!(g.n(), n);
        assert!(g.min_degree() >= 2, "cycle guarantees degree ≥ 2");
        let low = g.nodes().filter(|&v| g.degree(v) < 4).count();
        assert!(
            low <= n / 100,
            "{low} nodes below target degree — endgame pool sampler regressed"
        );
        assert!(
            start.elapsed() < std::time::Duration::from_secs(60),
            "near_regular(1M) took {:?} — rejection loop no longer bounded",
            start.elapsed()
        );
    }

    /// Large-n smoke for the skip-sampling G(n, p) path: n = 10⁶ with mean
    /// degree 6 stays O(n + m), including the connectivity repair.
    #[test]
    fn gnp_sparse_million_nodes_is_bounded() {
        let start = std::time::Instant::now();
        let n = 1_000_000usize;
        let p = 6.0 / n as f64;
        let g = gnp_connected_sparse(n, p, 4);
        assert_eq!(g.n(), n);
        assert!(is_connected(&g));
        let expect = p * (n as f64) * ((n - 1) as f64) / 2.0;
        assert!(
            (g.m() as f64) > 0.7 * expect && (g.m() as f64) < 1.4 * expect,
            "m = {} vs expected ≈ {expect:.0}",
            g.m()
        );
        assert!(
            start.elapsed() < std::time::Duration::from_secs(60),
            "gnp_connected_sparse(1M) took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn triangle_unrank_covers_the_upper_triangle() {
        let n = 7u64;
        let mut seen = Vec::new();
        for idx in 0..n * (n - 1) / 2 {
            let (u, v) = triangle_unrank(idx, n);
            assert!(u < v && (v as u64) < n, "idx {idx} → ({u},{v})");
            seen.push((u, v));
        }
        seen.dedup();
        assert_eq!(seen.len() as u64, n * (n - 1) / 2);
    }
}
