//! Deterministic structured topologies: paths, cycles, grids, tori,
//! hypercubes, complete (bipartite) graphs and star-with-ring overlays.
//!
//! These have well-understood optimal degrees and stress specific aspects of
//! the protocol: grids and tori exercise long fundamental cycles, hypercubes
//! give many vertex-disjoint improvement options, complete graphs maximize
//! the non-tree-edge population (search traffic), and star-with-ring is the
//! worst case a BFS tree produces (degree `n−1` at the hub) while `Δ* = 2`.

use crate::error::GraphError;
use crate::graph::{Graph, GraphBuilder, NodeId};

/// Path `0 − 1 − … − (n−1)`. `Δ* = 2` for `n ≥ 3` (the path is its own MDST).
pub fn path(n: usize) -> Result<Graph, GraphError> {
    if n == 0 {
        return Err(GraphError::InvalidParameter("path: n must be >= 1"));
    }
    let mut b = GraphBuilder::new(n);
    for v in 1..n as u32 {
        b.add_edge(v - 1, v)?;
    }
    Ok(b.build())
}

/// Cycle `C_n`. `Δ* = 2`.
pub fn cycle(n: usize) -> Result<Graph, GraphError> {
    if n < 3 {
        return Err(GraphError::InvalidParameter("cycle: n must be >= 3"));
    }
    let mut b = GraphBuilder::new(n);
    for v in 0..n as u32 {
        b.add_edge(v, (v + 1) % n as u32)?;
    }
    Ok(b.build())
}

/// Complete graph `K_n`. `Δ* = 2` for `n ≥ 3` (Hamiltonian path).
pub fn complete(n: usize) -> Result<Graph, GraphError> {
    if n == 0 {
        return Err(GraphError::InvalidParameter("complete: n must be >= 1"));
    }
    let mut b = GraphBuilder::new(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            b.add_edge(u, v)?;
        }
    }
    Ok(b.build())
}

/// Complete bipartite `K_{a,b}` with sides `0..a` and `a..a+b`.
/// For `a ≤ b`, `Δ* = ⌈(b−1)/a⌉ + 1` (left nodes must absorb the right side).
pub fn complete_bipartite(a: usize, b: usize) -> Result<Graph, GraphError> {
    if a == 0 || b == 0 {
        return Err(GraphError::InvalidParameter(
            "complete_bipartite: both sides must be non-empty",
        ));
    }
    let mut g = GraphBuilder::new(a + b);
    for u in 0..a as u32 {
        for v in a as u32..(a + b) as u32 {
            g.add_edge(u, v)?;
        }
    }
    Ok(g.build())
}

/// `rows × cols` grid, row-major node numbering. `Δ* = 2` when a Hamiltonian
/// path exists (always for grids with `rows, cols ≥ 1`), though finding it is
/// the solver's job.
pub fn grid(rows: usize, cols: usize) -> Result<Graph, GraphError> {
    if rows == 0 || cols == 0 {
        return Err(GraphError::InvalidParameter(
            "grid: rows, cols must be >= 1",
        ));
    }
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1))?;
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c))?;
            }
        }
    }
    Ok(b.build())
}

/// `rows × cols` torus (grid with wraparound). Requires both dims ≥ 3 so the
/// wrap edges are distinct from grid edges.
pub fn torus(rows: usize, cols: usize) -> Result<Graph, GraphError> {
    if rows < 3 || cols < 3 {
        return Err(GraphError::InvalidParameter("torus: dims must be >= 3"));
    }
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            b.add_edge(id(r, c), id(r, (c + 1) % cols))?;
            b.add_edge(id(r, c), id((r + 1) % rows, c))?;
        }
    }
    Ok(b.build())
}

/// `dim`-dimensional hypercube `Q_dim` on `2^dim` nodes. Hamiltonian (Gray
/// code), so `Δ* = 2`.
pub fn hypercube(dim: u32) -> Result<Graph, GraphError> {
    if dim == 0 || dim > 20 {
        return Err(GraphError::InvalidParameter("hypercube: dim in 1..=20"));
    }
    let n = 1usize << dim;
    let mut b = GraphBuilder::new(n);
    for v in 0..n as u32 {
        for bit in 0..dim {
            let u = v ^ (1 << bit);
            if v < u {
                b.add_edge(v, u)?;
            }
        }
    }
    Ok(b.build())
}

/// A hub node `0` connected to all of `1..n`, which also form a ring.
///
/// The canonical hard instance for naive tree construction: the min-ID BFS
/// tree rooted at the hub has degree `n − 1`, yet `Δ* = 2` (drop all but one
/// spoke and use the ring). The degree-reduction module must perform
/// `n − 3` improvements to fix it.
pub fn star_with_ring(n: usize) -> Result<Graph, GraphError> {
    if n < 4 {
        return Err(GraphError::InvalidParameter(
            "star_with_ring: n must be >= 4",
        ));
    }
    let mut b = GraphBuilder::new(n);
    for v in 1..n as u32 {
        b.add_edge(0, v)?;
    }
    for v in 1..n as u32 {
        let w = if v as usize == n - 1 { 1 } else { v + 1 };
        b.add_edge(v, w)?;
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{diameter, is_connected};

    #[test]
    fn path_shape() {
        let g = path(5).unwrap();
        assert_eq!(g.m(), 4);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(diameter(&g), Some(4));
        assert!(path(0).is_err());
        assert_eq!(path(1).unwrap().m(), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(6).unwrap();
        assert_eq!(g.m(), 6);
        assert!(g.nodes().all(|v| g.degree(v) == 2));
        assert!(cycle(2).is_err());
    }

    #[test]
    fn complete_shape() {
        let g = complete(6).unwrap();
        assert_eq!(g.m(), 15);
        assert_eq!(g.min_degree(), 5);
    }

    #[test]
    fn complete_bipartite_shape() {
        let g = complete_bipartite(2, 3).unwrap();
        assert_eq!(g.m(), 6);
        assert_eq!(g.degree(0), 3); // left side sees all of right
        assert_eq!(g.degree(2), 2); // right side sees all of left
        assert!(!g.has_edge(0, 1)); // no intra-side edges
        assert!(complete_bipartite(0, 3).is_err());
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4).unwrap();
        assert_eq!(g.n(), 12);
        // m = rows*(cols-1) + cols*(rows-1) = 3*3 + 4*2 = 17
        assert_eq!(g.m(), 17);
        assert!(is_connected(&g));
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(5), 4); // interior (row 1, col 1)
    }

    #[test]
    fn torus_is_4_regular() {
        let g = torus(3, 5).unwrap();
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert_eq!(g.m(), 2 * 15);
        assert!(torus(2, 5).is_err());
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(4).unwrap();
        assert_eq!(g.n(), 16);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert_eq!(g.m(), 16 * 4 / 2);
        assert_eq!(diameter(&g), Some(4));
        assert!(hypercube(0).is_err());
    }

    #[test]
    fn star_with_ring_shape() {
        let g = star_with_ring(8).unwrap();
        assert_eq!(g.degree(0), 7);
        for v in 1..8u32 {
            assert_eq!(g.degree(v), 3); // hub + two ring neighbors
        }
        assert!(is_connected(&g));
        assert!(star_with_ring(3).is_err());
    }
}
