//! Property test (satellite of the multi-backend round loop): **every**
//! execution backend is bit-exact against the reference loop on **any**
//! scenario the storm can reach.
//!
//! The backend contract is stronger than "same final answer": a backend
//! must request scheduler keys in the canonical order and execute the
//! identical event sequence, so the full [`RunTrace`] — every per-round
//! `ScheduleDigest`, metrics row and judged phase — renders to the same
//! bytes, and the [`ScenarioOutcome`] is field-identical. Here we drive
//! proptest over corpus seeds *and* storm-style mutation chains (the same
//! operator set `ssmdst storm` uses), run each scenario under every
//! backend, and on any divergence report the first divergent trace
//! record plus a delta-debugged minimal `.scn` reproducer.
//!
//! [`RunTrace`]: ssmdst_sim::RunTrace
//! [`ScenarioOutcome`]: ssmdst_scenario::ScenarioOutcome

use proptest::prelude::*;
use ssmdst_scenario::shrink::shrink;
use ssmdst_scenario::{corpus, engine, mutate, Scenario};
use ssmdst_sim::Backend;

/// Does `scn` behave differently under `backend` than under the
/// reference loop? (The shrink predicate: cheap, outcome-only.)
fn diverges(scn: &Scenario, backend: Backend) -> bool {
    let mut reference = scn.clone();
    reference.backend = Backend::Reference;
    let mut candidate = scn.clone();
    candidate.backend = backend;
    engine::run_any(&reference) != engine::run_any(&candidate)
}

/// Run `scn` under every non-reference backend and demand field-identical
/// outcomes and byte-identical traces. On divergence, panic with the
/// first divergent trace record and a shrunk `.scn` reproducer — the
/// debugging artifacts a human needs, not just "assert failed".
fn assert_backends_conform(scn: &Scenario, ctx: &str) {
    let mut reference = scn.clone();
    reference.backend = Backend::Reference;
    let (ref_out, ref_trace) = engine::run_traced_any(&reference);
    for backend in [
        Backend::Batched,
        Backend::Soa,
        Backend::Sharded { shards: 1 },
        Backend::Sharded { shards: 3 },
    ] {
        let mut candidate = scn.clone();
        candidate.backend = backend;
        let (out, trace) = engine::run_traced_any(&candidate);
        // The backend field is fingerprint-neutral, so traces from
        // different backends of the same scenario are directly comparable.
        let trace_diff = ref_trace.first_divergence(&trace);
        if out == ref_out && trace_diff.is_none() && trace.render() == ref_trace.render() {
            continue;
        }
        let first = trace_diff.unwrap_or_else(|| "outcome diverged with identical trace".into());
        let repro = shrink(&candidate, |s| diverges(s, backend))
            .map(|(minimal, _)| minimal.canonical())
            .unwrap_or_else(|| candidate.canonical());
        panic!(
            "backend {backend} diverged from reference ({ctx})\n\
             first divergence: {first}\n\
             --- minimal .scn reproducer ---\n{repro}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any corpus seed, mutated through a short storm-style chain, runs
    /// bit-identically on every backend. Depth 0 is the seed itself, so
    /// the curated corpus is inside the sampled space.
    #[test]
    fn backends_conform_on_storm_reachable_scenarios(
        parent_idx in 0usize..corpus::corpus().len(),
        seed in 0u64..1_000_000,
        depth in 0usize..4,
    ) {
        let mut scenario = corpus::corpus()[parent_idx].clone();
        let mut ops = Vec::new();
        for step in 0..depth {
            let (kind, child) = mutate(&scenario, seed.wrapping_add(step as u64));
            ops.push(kind.label());
            scenario = child;
        }
        let ctx = format!(
            "parent={} seed={} chain=[{}]",
            corpus::corpus()[parent_idx].name,
            seed,
            ops.join(" -> ")
        );
        assert_backends_conform(&scenario, &ctx);
    }
}

/// Non-vacuous floor under the property test: every committed corpus
/// scenario conforms on every backend, deterministically, every run.
#[test]
fn every_corpus_scenario_conforms_on_every_backend() {
    for scenario in corpus::corpus() {
        assert_backends_conform(&scenario, &format!("corpus seed {}", scenario.name));
    }
}
