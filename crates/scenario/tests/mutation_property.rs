//! Property test (satellite of the scenario storm): **every** mutant the
//! storm can generate is a first-class `.scn` artifact.
//!
//! The storm's contract is that an admitted mutant is committable — you
//! can write it to disk, review it, and replay it forever. That holds iff
//! the mutation operators only ever produce scenarios whose canonical
//! `.scn` rendering round-trips through the parser **byte-identically**
//! (render → parse → re-render is the identity on bytes). Here we drive
//! [`ssmdst_scenario::mutate`] from every corpus seed with proptest-drawn
//! mutation seeds and chain depths — including multi-generation chains,
//! where one operator's output (a swapped topology, a stretched horizon)
//! becomes another's input — and check the round trip at every step.

use proptest::prelude::*;
use ssmdst_scenario::{corpus, mutate, scn, MutationKind};

/// Render → parse → re-render must be the identity on bytes, and the
/// parsed value must equal the mutant structurally.
fn assert_scn_roundtrip(
    s: &ssmdst_scenario::Scenario,
    ctx: &str,
) -> Result<(), proptest::TestCaseError> {
    let text = scn::render(s);
    let parsed = scn::parse(&text)
        .unwrap_or_else(|e| panic!("{ctx}: mutant failed to parse: {e}\n--- scn ---\n{text}"));
    prop_assert_eq!(&parsed, s, "{}: parse is not inverse of render", ctx);
    prop_assert_eq!(
        scn::render(&parsed),
        text,
        "{}: re-render is not byte-identical",
        ctx
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single-step property: any corpus parent, any mutation seed → a
    /// byte-identical `.scn` round trip.
    #[test]
    fn every_mutant_roundtrips_through_scn(
        parent_idx in 0usize..corpus::corpus().len(),
        seed in 0u64..1_000_000,
    ) {
        let parent = corpus::corpus()[parent_idx].clone();
        let (kind, child) = mutate(&parent, seed);
        assert_scn_roundtrip(&child, &format!("op={kind} seed={seed}"))?;
    }

    /// Generational property: chains of mutations (each mutant becomes
    /// the next parent, exactly how the storm's corpus grows) round-trip
    /// at every generation.
    #[test]
    fn mutation_chains_roundtrip_at_every_generation(
        parent_idx in 0usize..corpus::corpus().len(),
        seed in 0u64..1_000_000,
        depth in 1usize..12,
    ) {
        let mut current = corpus::corpus()[parent_idx].clone();
        for step in 0..depth {
            let (kind, child) = mutate(&current, seed.wrapping_add(step as u64));
            assert_scn_roundtrip(
                &child,
                &format!("gen={step} op={kind} seed={seed}"),
            )?;
            current = child;
        }
    }
}

/// Deterministic sweep guaranteeing the property test above cannot pass
/// vacuously: every mutation operator is hit at least once, and each hit
/// round-trips.
#[test]
fn every_operator_is_exercised_and_roundtrips() {
    let mut hit = std::collections::BTreeSet::new();
    let parents = corpus::corpus();
    'outer: for seed in 0u64..100_000 {
        let parent = &parents[seed as usize % parents.len()];
        let (kind, child) = mutate(parent, seed);
        assert_scn_roundtrip(&child, &format!("op={kind} seed={seed}")).unwrap();
        hit.insert(kind.label());
        if hit.len() == MutationKind::all().len() {
            break 'outer;
        }
    }
    assert_eq!(
        hit.len(),
        MutationKind::all().len(),
        "operators never exercised: {:?}",
        MutationKind::all()
            .iter()
            .map(|k| k.label())
            .filter(|l| !hit.contains(l))
            .collect::<Vec<_>>()
    );
}
