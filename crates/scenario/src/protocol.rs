//! The protocol registry: what makes the scenario/campaign/replay layer
//! generic over the automaton.
//!
//! A [`Protocol`] bundles everything the engine needs that is *not* pure
//! simulation: how to build the network from a scenario's topology and
//! config, the canonical per-round state projection (used both for
//! quiescence detection and as the replay chain's state witness), and the
//! component-wise phase judge. The engine, campaigns, replay verification
//! and shrinking are written once against this trait; `.scn` files select
//! an implementation through [`crate::spec::ProtocolSpec`] (defaulting to
//! [`Mdst`], so every pre-registry scenario and golden trace is unchanged
//! byte for byte).
//!
//! Two registered protocols:
//!
//! * [`Mdst`] — the paper's self-stabilizing minimum-degree spanning tree
//!   (`ssmdst-core`), judged component-wise by `deg ≤ Δ* + 1`;
//! * [`Flood`] — the simulator's self-stabilizing minimum flood / leader
//!   election ([`ssmdst_sim::protocols::FloodEcho`]), judged by
//!   per-component agreement on the minimum live id. Its presence is the
//!   diversity proof: a workload with a completely different message
//!   alphabet inherits scenarios, record-replay, shrinking and campaigns
//!   without the engine knowing anything about it.

use crate::engine::EngineOpts;
use crate::spec::ConfigSpec;
use ssmdst_core::{build_network, churn, oracle, MdstNode};
use ssmdst_graph::Graph;
use ssmdst_sim::protocols::{flood_projection, Claim, FloodEcho};
use ssmdst_sim::{Automaton, ChurnEvent, Corrupt, Digest, Network, NodeId};

/// What a phase judge reports. Degree-shaped fields are zero/`None` for
/// protocols without a tree notion; `ok` is the protocol's own quality
/// verdict (the engine separately ANDs in convergence).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseJudgment {
    /// Connected components of the live topology at judging time.
    pub components: usize,
    /// Worst per-component quality measure (tree degree for MDST; 0 when
    /// the protocol has no such notion or the check failed).
    pub degree: u32,
    /// Exact optimum of the worst component, when computable.
    pub delta_star: Option<u32>,
    /// Whether every component meets the protocol's quality bar.
    pub ok: bool,
}

impl PhaseJudgment {
    /// The "check could not run / failed structurally" verdict.
    pub fn failed() -> Self {
        PhaseJudgment {
            components: 0,
            degree: 0,
            delta_star: None,
            ok: false,
        }
    }
}

/// A protocol the scenario engine can drive: network construction,
/// canonical projection, and phase judging.
pub trait Protocol {
    /// The node automaton (corruptible, for arbitrary-configuration
    /// starts and fault events).
    type Node: Automaton + Corrupt;

    /// Canonical per-round projection of the global state: the quiescence
    /// detector compares it and the replay chain folds it, so it must
    /// capture everything "stabilized" is supposed to mean.
    type Proj: PartialEq;

    /// Per-run judging state, threaded through every phase judgment of
    /// one scenario execution. For MDST this is the incremental
    /// certified-`Δ*` engine ([`ssmdst_core::churn::DeltaJudge`]) whose
    /// basis survives across churn events; protocols with stateless
    /// judges use `()`.
    type Judge;

    /// Build the network a scenario describes over `g`.
    fn build(&self, g: &Graph, cfg: &ConfigSpec) -> Network<Self::Node>;

    /// Compute the canonical projection.
    fn project(net: &Network<Self::Node>) -> Self::Proj;

    /// Fold the projection into the replay chain. The encoding is part of
    /// each protocol's replay identity and must stay stable — golden
    /// traces pin it.
    fn fold_projection(proj: &Self::Proj, chain: &mut Digest);

    /// Fresh judging state for one run, over the initial live topology.
    fn new_judge(&self, net: &Network<Self::Node>, opts: &EngineOpts) -> Self::Judge;

    /// Feed an applied churn event to the judging state (`net` already
    /// reflects it) so the next [`Protocol::judge`] call is incremental.
    /// Default: stateless judges ignore churn.
    fn observe_churn(_judge: &mut Self::Judge, _net: &Network<Self::Node>, _ev: &ChurnEvent) {}

    /// Judge a stable phase component-wise against the live topology.
    fn judge(
        &self,
        judge: &mut Self::Judge,
        net: &Network<Self::Node>,
        opts: &EngineOpts,
    ) -> PhaseJudgment;

    /// Quality measure of the final configuration when the run ends on a
    /// single live component spanning the whole network (`None` when the
    /// protocol has no tree notion, or no single tree survives).
    fn final_degree(&self, g: &Graph, net: &Network<Self::Node>) -> Option<u32>;
}

/// The paper's protocol: self-stabilizing MDST (`ssmdst-core`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Mdst;

impl Protocol for Mdst {
    type Node = MdstNode;
    type Proj = (Vec<NodeId>, Vec<u32>, Vec<u32>);
    type Judge = churn::DeltaJudge;

    fn build(&self, g: &Graph, cfg: &ConfigSpec) -> Network<MdstNode> {
        build_network(g, cfg.build(g.n()))
    }

    fn project(net: &Network<MdstNode>) -> Self::Proj {
        oracle::projection(net)
    }

    fn fold_projection(proj: &Self::Proj, chain: &mut Digest) {
        // Parents, dmax, distances — the historical encoding the golden
        // traces pin.
        for &p in &proj.0 {
            chain.write_u32(p);
        }
        for &d in &proj.1 {
            chain.write_u32(d);
        }
        for &d in &proj.2 {
            chain.write_u32(d);
        }
    }

    fn new_judge(&self, net: &Network<MdstNode>, opts: &EngineOpts) -> churn::DeltaJudge {
        churn::DeltaJudge::new(net, opts.delta_budget)
    }

    fn observe_churn(judge: &mut churn::DeltaJudge, net: &Network<MdstNode>, ev: &ChurnEvent) {
        judge.observe_churn(net, ev);
    }

    fn judge(
        &self,
        judge: &mut churn::DeltaJudge,
        net: &Network<MdstNode>,
        _opts: &EngineOpts,
    ) -> PhaseJudgment {
        match judge.check(net) {
            Ok(reports) => {
                let worst = reports.iter().max_by_key(|r| r.degree);
                PhaseJudgment {
                    components: reports.len(),
                    degree: worst.map(|r| r.degree).unwrap_or(0),
                    delta_star: worst.and_then(|r| r.delta_star),
                    ok: reports.iter().all(|r| r.within_one),
                }
            }
            Err(_) => PhaseJudgment::failed(),
        }
    }

    fn final_degree(&self, g: &Graph, net: &Network<MdstNode>) -> Option<u32> {
        oracle::current_degree(g, net).filter(|_| net.alive_count() == net.n())
    }
}

/// The simulator's self-stabilizing minimum flood / leader election
/// ([`FloodEcho`]): the registered non-MDST workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Flood;

impl Protocol for Flood {
    type Node = FloodEcho;
    type Proj = Vec<Claim>;
    type Judge = ();

    fn build(&self, g: &Graph, _cfg: &ConfigSpec) -> Network<FloodEcho> {
        // The flood has no ablation axis; every ConfigSpec maps to the one
        // protocol variant (the config line stays meaningful scenario data
        // for MDST only).
        ssmdst_sim::protocols::flood_network(g)
    }

    fn project(net: &Network<FloodEcho>) -> Self::Proj {
        flood_projection(net)
    }

    fn fold_projection(proj: &Self::Proj, chain: &mut Digest) {
        for c in proj {
            chain.write_u32(c.value);
            chain.write_u32(c.dist);
        }
    }

    fn new_judge(&self, _net: &Network<FloodEcho>, _opts: &EngineOpts) {}

    fn judge(
        &self,
        _judge: &mut (),
        net: &Network<FloodEcho>,
        _opts: &EngineOpts,
    ) -> PhaseJudgment {
        // The same live-component traversal the MDST judge uses
        // (`Network::live_components`), so the two judges can never
        // disagree on component structure.
        let comps = net.live_components();
        let ok = comps.iter().all(|comp| {
            let min = comp[0];
            comp.iter().all(|&v| net.node(v).value() == min)
        });
        PhaseJudgment {
            components: comps.len(),
            degree: 0,
            delta_star: None,
            ok,
        }
    }

    fn final_degree(&self, _g: &Graph, _net: &Network<FloodEcho>) -> Option<u32> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmdst_graph::generators::structured::cycle;
    use ssmdst_sim::{ChurnEvent, Scheduler, Session};

    #[test]
    fn flood_judge_tracks_agreement_and_components() {
        let g = cycle(8).unwrap();
        let mut session = Session::from_network(ssmdst_sim::protocols::flood_network(&g))
            .scheduler(Scheduler::Synchronous)
            .horizon(1_000)
            .build();
        let opts = EngineOpts::default();
        #[allow(clippy::let_unit_value)] // exercising the trait path: Flood's Judge is ()
        let mut judge = Flood.new_judge(session.network(), &opts);
        // Before convergence: nodes still claim themselves — not ok.
        let j = Flood.judge(&mut judge, session.network(), &opts);
        assert_eq!(j.components, 1);
        assert!(!j.ok, "initial configuration must not pass the judge");
        let out = session.run_to_quiescence(16, ssmdst_sim::protocols::flood_projection);
        assert!(out.converged());
        let j = Flood.judge(&mut judge, session.network(), &opts);
        assert!(j.ok);
        // Partition into two arcs: two components, each electing its min.
        let _ = session.churn(&ChurnEvent::RemoveEdge(0, 1));
        let _ = session.churn(&ChurnEvent::RemoveEdge(4, 5));
        let out = session.run_to_quiescence(16, ssmdst_sim::protocols::flood_projection);
        assert!(out.converged());
        let j = Flood.judge(&mut judge, session.network(), &opts);
        assert_eq!(j.components, 2);
        assert!(j.ok, "each side agrees on its own minimum");
        // Components are {0,5,6,7} (via the surviving 7–0 edge) and
        // {1,2,3,4}: the arc cut off from node 0 elects node 1.
        assert_eq!(session.network().node(2).value(), 1, "cut arc elects 1");
        assert_eq!(session.network().node(5).value(), 0, "5 still reaches 0");
    }

    #[test]
    fn mdst_judge_matches_reconvergence_check() {
        let g = ssmdst_graph::generators::structured::star_with_ring(8).unwrap();
        let cfg = ConfigSpec::Default;
        let net = Mdst.build(&g, &cfg);
        let mut session = Session::from_network(net)
            .scheduler(Scheduler::Synchronous)
            .horizon(40_000)
            .build();
        let out = session.run_to_quiescence(ssmdst_sim::quiet_window(8), Mdst::project);
        assert!(out.converged());
        let opts = EngineOpts::default();
        let mut judge = Mdst.new_judge(session.network(), &opts);
        let j = Mdst.judge(&mut judge, session.network(), &opts);
        assert!(j.ok);
        assert_eq!(j.components, 1);
        assert!(j.degree <= 3);
        assert_eq!(Mdst.final_degree(&g, session.network()), Some(j.degree));
    }
}
