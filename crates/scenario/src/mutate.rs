//! Seed-deterministic scenario mutation — the storm's search moves.
//!
//! Each operator takes a parent [`Scenario`] and produces a *valid* child:
//! splice/drop/retime churn and fault events, swap the topology family,
//! daemon, protocol or config variant, toggle the corrupt-at-birth mask,
//! and stretch/shrink the horizon. All randomness flows from one explicit
//! seed, so a storm run is replayable: the same `(parent, seed)` pair
//! always yields the same child.
//!
//! Every child passes through [`sanitize`] before it is returned: node ids
//! in churn events and partition cut lists are clamped into the topology's
//! live id range, degenerate self-edges are repaired, and `round:R`
//! timings are clamped into `1..=max_rounds` — so a mutant can never be
//! unparseable or panic the engine, no matter how the operators compose
//! (e.g. a topology swap shrinking `n` under an existing cut list, or a
//! horizon shrink stranding a round-timed event past the cap).

use crate::spec::{
    ConfigSpec, CorruptSpec, EventAction, ProtocolSpec, Scenario, ScenarioEvent, SchedSpec, Timing,
    TopologySpec,
};
use rand::prelude::*;
use rand::rngs::StdRng;
use ssmdst_graph::generators::GraphFamily;
use ssmdst_graph::Graph;
use ssmdst_sim::{ChurnEvent, NodeId};

/// Smallest horizon a mutation may leave behind. Kept far above typical
/// small-instance convergence times so a horizon shrink churns the search
/// space without manufacturing fake "not converged" judge failures.
pub const MIN_HORIZON: u64 = 5_000;

/// Largest horizon a mutation may stretch to.
pub const MAX_HORIZON: u64 = 200_000;

/// Node-count band mutants live in. The ceiling tracks
/// `ssmdst_core::churn::SETTLE_MAX_N`: up to 256 nodes the incremental
/// exact-Δ* engine still *settles* every judged component (certified
/// exact optimum, not just an interval), so topology swaps no longer
/// crush large seed scenarios down to the old branch-and-bound ceiling
/// of 24 — a storm seeded at n = 256 keeps its scale.
const MUTANT_N: (usize, usize) = (4, 256);

/// Cap on a mutant's event-plan length, so generations of splices cannot
/// grow unbounded plans.
const MAX_EVENTS: usize = 8;

/// The mutation operator vocabulary. Labels are stable identifiers used
/// in storm reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationKind {
    /// Insert a churn event (edge remove/insert, crash/rejoin,
    /// partition/heal) at a random plan position.
    SpliceChurn,
    /// Insert a fault burst at a random plan position.
    SpliceFault,
    /// Remove one event from the plan.
    DropEvent,
    /// Flip one event's timing between `stable` and `round:R`.
    RetimeEvent,
    /// Replace the topology with a different family or structured shape.
    SwapTopology,
    /// Replace the daemon (kind and seed).
    SwapDaemon,
    /// Flip the protocol registry axis.
    SwapProtocol,
    /// Replace the protocol-config ablation variant.
    SwapConfig,
    /// Add, remove or reseed the corrupt-at-birth mask.
    ToggleCorrupt,
    /// Double the per-phase horizon (capped at [`MAX_HORIZON`]).
    StretchHorizon,
    /// Halve the per-phase horizon (floored at [`MIN_HORIZON`]).
    ShrinkHorizon,
}

impl MutationKind {
    /// All operators, in stable order.
    pub fn all() -> &'static [MutationKind] {
        use MutationKind::*;
        &[
            SpliceChurn,
            SpliceFault,
            DropEvent,
            RetimeEvent,
            SwapTopology,
            SwapDaemon,
            SwapProtocol,
            SwapConfig,
            ToggleCorrupt,
            StretchHorizon,
            ShrinkHorizon,
        ]
    }

    /// Stable label used in storm reports and tables.
    pub fn label(&self) -> &'static str {
        use MutationKind::*;
        match self {
            SpliceChurn => "splice-churn",
            SpliceFault => "splice-fault",
            DropEvent => "drop-event",
            RetimeEvent => "retime-event",
            SwapTopology => "swap-topology",
            SwapDaemon => "swap-daemon",
            SwapProtocol => "swap-protocol",
            SwapConfig => "swap-config",
            ToggleCorrupt => "toggle-corrupt",
            StretchHorizon => "stretch-horizon",
            ShrinkHorizon => "shrink-horizon",
        }
    }
}

impl std::fmt::Display for MutationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Mutate `parent` under an explicit seed. Deterministic: the same
/// `(parent, seed)` always yields the same `(operator, child)`. The child
/// keeps the parent's name (the storm assigns fresh names on admission)
/// and is always sanitized — it parses, builds and runs.
pub fn mutate(parent: &Scenario, seed: u64) -> (MutationKind, Scenario) {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = parent.topology.build();
    let ops = MutationKind::all();
    let start = rng.random_range(0..ops.len());
    // Rotate through the operator list from a random start until one
    // applies; SpliceChurn always applies once the plan has room, and
    // SwapDaemon/SwapProtocol always apply, so the loop terminates.
    for off in 0..ops.len() {
        let kind = ops[(start + off) % ops.len()];
        if let Some(mut child) = apply(kind, parent, &g, &mut rng) {
            sanitize(&mut child);
            return (kind, child);
        }
    }
    unreachable!("SwapDaemon applies to every scenario");
}

/// Try one operator; `None` means it does not apply to this parent (full
/// or empty event plan, horizon already at its bound, …).
fn apply(kind: MutationKind, parent: &Scenario, g: &Graph, rng: &mut StdRng) -> Option<Scenario> {
    let mut s = parent.clone();
    match kind {
        MutationKind::SpliceChurn => {
            if s.events.len() >= MAX_EVENTS {
                return None;
            }
            let ev = random_churn(g, rng);
            let at = rng.random_range(0..=s.events.len());
            s.events.insert(
                at,
                ScenarioEvent {
                    timing: random_timing(rng, s.stop.max_rounds),
                    action: EventAction::Churn(ev),
                },
            );
        }
        MutationKind::SpliceFault => {
            if s.events.len() >= MAX_EVENTS {
                return None;
            }
            let at = rng.random_range(0..=s.events.len());
            s.events.insert(
                at,
                ScenarioEvent {
                    timing: random_timing(rng, s.stop.max_rounds),
                    action: EventAction::Fault(random_corrupt(rng)),
                },
            );
        }
        MutationKind::DropEvent => {
            if s.events.is_empty() {
                return None;
            }
            let at = rng.random_range(0..s.events.len());
            s.events.remove(at);
        }
        MutationKind::RetimeEvent => {
            if s.events.is_empty() {
                return None;
            }
            let at = rng.random_range(0..s.events.len());
            s.events[at].timing = match s.events[at].timing {
                Timing::Stable => Timing::Round(rng.random_range(1..=400u64)),
                Timing::Round(_) => Timing::Stable,
            };
        }
        MutationKind::SwapTopology => s.topology = random_topology(rng, parent.topology.n_hint()),
        MutationKind::SwapDaemon => {
            let seed = rng.random_range(0..1000u64);
            s.scheduler = match rng.random_range(0..3u32) {
                0 => SchedSpec::Synchronous,
                1 => SchedSpec::RandomAsync { seed },
                _ => SchedSpec::Adversarial { seed },
            };
        }
        MutationKind::SwapProtocol => {
            s.protocol = match s.protocol {
                ProtocolSpec::Mdst => ProtocolSpec::FloodEcho,
                ProtocolSpec::FloodEcho => ProtocolSpec::Mdst,
            };
        }
        MutationKind::SwapConfig => {
            let all = [
                ConfigSpec::Default,
                ConfigSpec::Strict,
                ConfigSpec::NoDeblock,
                ConfigSpec::NoBusyLatch,
            ];
            s.config = all[rng.random_range(0..all.len())];
        }
        MutationKind::ToggleCorrupt => {
            s.init_corrupt = match s.init_corrupt {
                Some(_) => None,
                None => Some(random_corrupt(rng)),
            };
        }
        MutationKind::StretchHorizon => {
            if s.stop.max_rounds >= MAX_HORIZON {
                return None;
            }
            s.stop.max_rounds = (s.stop.max_rounds * 2).min(MAX_HORIZON);
        }
        MutationKind::ShrinkHorizon => {
            if s.stop.max_rounds <= MIN_HORIZON {
                return None;
            }
            s.stop.max_rounds = (s.stop.max_rounds / 2).max(MIN_HORIZON);
        }
    }
    Some(s)
}

/// `stable` most of the time, else a mid-flight `round:R` (kept early:
/// that is where mid-flight faults bite).
fn random_timing(rng: &mut StdRng, horizon: u64) -> Timing {
    if rng.random_bool(0.7) {
        Timing::Stable
    } else {
        Timing::Round(rng.random_range(1..=400u64.min(horizon.max(1))))
    }
}

/// Fractions drawn from a small grid keep `.scn` renderings tidy; seeds
/// are free.
fn random_corrupt(rng: &mut StdRng) -> CorruptSpec {
    const FRACTIONS: [f64; 5] = [0.1, 0.25, 0.5, 0.75, 1.0];
    const DROPS: [f64; 4] = [0.0, 0.25, 0.5, 1.0];
    CorruptSpec {
        fraction: FRACTIONS[rng.random_range(0..FRACTIONS.len())],
        drop: DROPS[rng.random_range(0..DROPS.len())],
        seed: rng.random_range(0..10_000u64),
    }
}

/// One churn event over the *current* topology: edge operands come from
/// the live edge list where one is needed, node ids from `0..n`.
fn random_churn(g: &Graph, rng: &mut StdRng) -> ChurnEvent {
    let n = g.n() as NodeId;
    let node = |rng: &mut StdRng| rng.random_range(0..n);
    let edge = |rng: &mut StdRng| g.edges()[rng.random_range(0..g.edges().len())];
    let cut = |rng: &mut StdRng| -> Vec<(NodeId, NodeId)> {
        let k = rng.random_range(1..=3usize.min(g.m()));
        let mut cut: Vec<(NodeId, NodeId)> = (0..k).map(|_| edge(rng)).collect();
        cut.sort_unstable();
        cut.dedup();
        cut
    };
    match rng.random_range(0..6u32) {
        0 => {
            let (u, v) = edge(rng);
            ChurnEvent::RemoveEdge(u, v)
        }
        1 => {
            let u = node(rng);
            let v = node(rng);
            ChurnEvent::InsertEdge(u, v) // self-pairs repaired by sanitize
        }
        2 => ChurnEvent::CrashNode(node(rng)),
        3 => ChurnEvent::RejoinNode(node(rng)),
        4 => ChurnEvent::Partition(cut(rng)),
        _ => ChurnEvent::Heal(cut(rng)),
    }
}

/// A fresh topology in the mutant band: any generator family, or one of
/// the structured/gadget shapes.
fn random_topology(rng: &mut StdRng, n_hint: usize) -> TopologySpec {
    let n = n_hint.clamp(MUTANT_N.0, MUTANT_N.1);
    let families = GraphFamily::all();
    match rng.random_range(0..5u32) {
        0 => TopologySpec::family(
            families[rng.random_range(0..families.len())],
            n,
            rng.random_range(0..1000u64),
        ),
        1 => TopologySpec::Cycle { n: n.max(3) },
        2 => TopologySpec::StarRing { n: n.max(4) },
        3 => TopologySpec::MultiHub {
            hubs: rng.random_range(2..=3usize),
            spokes: rng.random_range(3..=5usize),
        },
        _ => TopologySpec::CompleteBipartite {
            a: rng.random_range(2..=4usize),
            b: rng.random_range(2..=6usize),
        },
    }
}

/// Repair a scenario in place so it parses, builds and runs:
///
/// * churn node ids (including every pair of a partition/heal cut list)
///   are clamped into the topology's id range by `id % n`;
/// * self-pairs left by clamping (or generated) are repaired to a
///   neighboring id, and cut lists are deduplicated;
/// * `round:R` timings are clamped into `1..=max_rounds` so a horizon
///   shrink can never strand an event past the cap.
///
/// Idempotent; [`mutate`] applies it to every child, and the storm applies
/// it to externally supplied seeds.
pub fn sanitize(s: &mut Scenario) {
    let n = s.topology.build().n() as NodeId;
    let node = |v: NodeId| v % n;
    let pair = |(u, v): (NodeId, NodeId)| -> (NodeId, NodeId) {
        let (u, v) = (node(u), node(v));
        let v = if u == v { (v + 1) % n } else { v };
        (u.min(v), u.max(v))
    };
    let horizon = s.stop.max_rounds;
    for ev in &mut s.events {
        if let Timing::Round(r) = ev.timing {
            ev.timing = Timing::Round(r.clamp(1, horizon));
        }
        if let EventAction::Churn(c) = &mut ev.action {
            match c {
                ChurnEvent::RemoveEdge(u, v) | ChurnEvent::InsertEdge(u, v) => {
                    (*u, *v) = pair((*u, *v));
                }
                ChurnEvent::CrashNode(v) | ChurnEvent::RejoinNode(v) => *v = node(*v),
                ChurnEvent::Partition(cut) | ChurnEvent::Heal(cut) => {
                    for e in cut.iter_mut() {
                        *e = pair(*e);
                    }
                    cut.sort_unstable();
                    cut.dedup();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;
    use crate::scn;

    /// Every event's operands are inside the built topology and every
    /// round timing is inside the horizon.
    fn assert_in_range(s: &Scenario) {
        let n = s.topology.build().n() as NodeId;
        let ok_pair = |&(u, v): &(NodeId, NodeId)| u < n && v < n && u != v;
        for ev in &s.events {
            if let Timing::Round(r) = ev.timing {
                assert!(r >= 1 && r <= s.stop.max_rounds, "round {r} out of range");
            }
            if let EventAction::Churn(c) = &ev.action {
                match c {
                    ChurnEvent::RemoveEdge(u, v) | ChurnEvent::InsertEdge(u, v) => {
                        assert!(ok_pair(&(*u, *v)), "{c} out of range for n={n}")
                    }
                    ChurnEvent::CrashNode(v) | ChurnEvent::RejoinNode(v) => {
                        assert!(*v < n, "{c} out of range for n={n}")
                    }
                    ChurnEvent::Partition(cut) | ChurnEvent::Heal(cut) => {
                        assert!(cut.iter().all(ok_pair), "{c} out of range for n={n}")
                    }
                }
            }
        }
    }

    #[test]
    fn mutation_is_deterministic_per_seed() {
        let parent = corpus::by_name("edge-churn-async").unwrap();
        let (k1, a) = mutate(&parent, 42);
        let (k2, b) = mutate(&parent, 42);
        assert_eq!(k1, k2);
        assert_eq!(a, b, "same (parent, seed) must yield the same child");
        let (_, c) = mutate(&parent, 43);
        // Different seeds overwhelmingly yield different children; this
        // particular pair does (pinned by determinism above).
        assert_ne!(a, c);
    }

    #[test]
    fn every_operator_label_is_stable_and_unique() {
        let mut labels: Vec<&str> = MutationKind::all().iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), MutationKind::all().len());
    }

    /// Long mutation chains stay valid: in-range operands, in-horizon
    /// timings, bounded plans, and `.scn` round trips at every step.
    #[test]
    fn mutation_chains_stay_valid() {
        let mut cur = corpus::by_name("gauntlet-corrupt-churn").unwrap();
        for seed in 0..60u64 {
            let (kind, child) = mutate(&cur, seed);
            assert_in_range(&child);
            assert!(child.events.len() <= MAX_EVENTS, "{kind}: plan grew");
            assert!(
                (MIN_HORIZON..=MAX_HORIZON).contains(&child.stop.max_rounds)
                    || child.stop.max_rounds == cur.stop.max_rounds,
                "{kind}: horizon escaped its band"
            );
            let parsed = scn::parse(&child.canonical())
                .unwrap_or_else(|e| panic!("{kind} child fails to parse: {e}"));
            assert_eq!(parsed, child, "{kind} round trip");
            cur = child;
        }
    }

    /// The raised mutant band: topology swaps preserve large-scale seeds
    /// up to n = 256 (the incremental judge's settling ceiling) instead
    /// of crushing them to the old branch-and-bound limit of 24, while
    /// still clamping unbounded hints into the band.
    #[test]
    fn topology_swaps_preserve_large_scale_seeds() {
        assert_eq!(MUTANT_N, (4, 256), "band tracks churn::SETTLE_MAX_N");
        let large = Scenario::converge(
            "large-seed",
            TopologySpec::Cycle { n: 256 },
            SchedSpec::Synchronous,
            MAX_HORIZON,
        );
        let mut grew_past_old_cap = false;
        for seed in 0..200u64 {
            let (kind, child) = mutate(&large, seed);
            let n = child.topology.n_hint();
            assert!(n <= MUTANT_N.1, "{kind}: mutant escaped the band (n={n})");
            if kind == MutationKind::SwapTopology {
                grew_past_old_cap |= n > 24;
            }
            assert_in_range(&child);
        }
        assert!(
            grew_past_old_cap,
            "no topology swap kept scale past the old n=24 cap"
        );
        // Hints beyond the band still clamp into it.
        let huge = Scenario::converge(
            "huge-seed",
            TopologySpec::Cycle { n: 1000 },
            SchedSpec::Synchronous,
            MAX_HORIZON,
        );
        for seed in 0..50u64 {
            let (kind, child) = mutate(&huge, seed);
            if kind == MutationKind::SwapTopology {
                assert!(child.topology.n_hint() <= MUTANT_N.1, "unclamped swap");
            }
        }
    }

    /// The negative path the clamp fix covers: a topology swap shrinking
    /// `n` under an existing cut list, a horizon shrink stranding a
    /// `round:R` event, and hand-built out-of-range operands — sanitize
    /// must repair all of them into a parseable, runnable scenario.
    #[test]
    fn sanitize_clamps_out_of_range_cuts_and_timings() {
        let mut s = Scenario::converge(
            "hostile",
            TopologySpec::Cycle { n: 5 },
            SchedSpec::Synchronous,
            MIN_HORIZON,
        );
        s.events = vec![
            ScenarioEvent {
                timing: Timing::Round(9_999_999), // far past the horizon
                action: EventAction::Churn(ChurnEvent::Partition(vec![
                    (100, 200), // both ids out of range
                    (7, 7),     // self-pair after any clamp
                    (0, 1),     // fine
                    (5, 6),     // clamps onto (0, 1): dedup must collapse
                ])),
            },
            ScenarioEvent {
                timing: Timing::Round(0), // below the engine's round 1
                action: EventAction::Churn(ChurnEvent::CrashNode(77)),
            },
            ScenarioEvent::stable(EventAction::Churn(ChurnEvent::InsertEdge(3, 3))),
        ];
        sanitize(&mut s);
        assert_in_range(&s);
        let parsed = scn::parse(&s.canonical()).expect("sanitized scenario parses");
        assert_eq!(parsed, s);
        // Sanitize is idempotent.
        let mut again = s.clone();
        sanitize(&mut again);
        assert_eq!(again, s);
        // And the repaired scenario actually runs end to end.
        let out = crate::engine::run_any(&s);
        assert!(!out.phases.is_empty());
    }

    /// Mutants of every corpus entry build and run a few rounds without
    /// panicking — the "no unparseable or panicking scenarios" contract
    /// over the whole seed corpus.
    #[test]
    fn corpus_mutants_always_parse() {
        for parent in corpus::corpus() {
            for seed in 0..8u64 {
                let (kind, child) = mutate(&parent, seed);
                assert_in_range(&child);
                let parsed = scn::parse(&child.canonical())
                    .unwrap_or_else(|e| panic!("{} under {kind} fails to parse: {e}", parent.name));
                assert_eq!(parsed, child);
            }
        }
    }
}
