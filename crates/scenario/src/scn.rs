//! The `.scn` text format: render and parse [`Scenario`] values.
//!
//! Line-based, diffable, commit-friendly. The canonical form (what
//! [`render`] emits) is what [`Scenario::fingerprint`] hashes, and golden
//! `.scn` files are stored canonically so byte comparison works.
//!
//! ```text
//! # ssmdst scenario v1
//! name = edge-churn-async
//! topology = family:gnp-sparse n=12 seed=1
//! scheduler = async:11
//! config = default
//! init = fraction=0.5 drop=0 seed=9
//! stop = max-rounds=40000 quiet=auto
//! event = stable churn -edge(2,5)
//! event = round:120 fault fraction=0.25 drop=0 seed=7
//! ```

use crate::spec::{
    ConfigSpec, CorruptSpec, EventAction, ProtocolSpec, Scenario, ScenarioEvent, SchedSpec,
    StopSpec, Timing, TopologySpec,
};
use ssmdst_graph::generators::GraphFamily;
use ssmdst_sim::{Backend, ChurnEvent, NodeId};

/// Render a scenario in canonical `.scn` form.
pub fn render(s: &Scenario) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    out.push_str("# ssmdst scenario v1\n");
    let _ = writeln!(out, "name = {}", s.name);
    // The default protocol is omitted so pre-registry scenario texts (and
    // their fingerprints and golden traces) stay byte-identical.
    if s.protocol != ProtocolSpec::default() {
        let _ = writeln!(out, "protocol = {}", s.protocol.label());
    }
    // Same omission contract for the execution backend: the default
    // (reference) keeps pre-backend scenario texts byte-identical. The
    // Display form (not the bare family label) round-trips the sharded
    // backend's shard count (`backend = sharded:4`).
    if s.backend != Backend::default() {
        let _ = writeln!(out, "backend = {}", s.backend);
    }
    let _ = writeln!(out, "topology = {}", render_topology(&s.topology));
    let _ = writeln!(out, "scheduler = {}", render_scheduler(&s.scheduler));
    let _ = writeln!(out, "config = {}", render_config(&s.config));
    if let Some(c) = &s.init_corrupt {
        let _ = writeln!(
            out,
            "init = fraction={} drop={} seed={}",
            c.fraction, c.drop, c.seed
        );
    }
    let quiet = match s.stop.quiet {
        None => "auto".to_string(),
        Some(q) => q.to_string(),
    };
    let _ = writeln!(
        out,
        "stop = max-rounds={} quiet={}",
        s.stop.max_rounds, quiet
    );
    for ev in &s.events {
        let timing = match ev.timing {
            Timing::Stable => "stable".to_string(),
            Timing::Round(r) => format!("round:{r}"),
        };
        let action = match &ev.action {
            EventAction::Fault(c) => {
                format!(
                    "fault fraction={} drop={} seed={}",
                    c.fraction, c.drop, c.seed
                )
            }
            EventAction::Churn(c) => format!("churn {}", render_churn(c)),
        };
        let _ = writeln!(out, "event = {timing} {action}");
    }
    out
}

fn render_topology(t: &TopologySpec) -> String {
    match t {
        TopologySpec::Family { family, n, seed } => format!("family:{family} n={n} seed={seed}"),
        TopologySpec::Path { n } => format!("path n={n}"),
        TopologySpec::Cycle { n } => format!("cycle n={n}"),
        TopologySpec::StarRing { n } => format!("star-ring n={n}"),
        TopologySpec::MultiHub { hubs, spokes } => format!("multi-hub hubs={hubs} spokes={spokes}"),
        TopologySpec::CompleteBipartite { a, b } => format!("complete-bipartite a={a} b={b}"),
    }
}

fn render_scheduler(s: &SchedSpec) -> String {
    match s {
        SchedSpec::Synchronous => "sync".to_string(),
        SchedSpec::RandomAsync { seed } => format!("async:{seed}"),
        SchedSpec::Adversarial { seed } => format!("adversarial:{seed}"),
    }
}

fn render_config(c: &ConfigSpec) -> &'static str {
    match c {
        ConfigSpec::Default => "default",
        ConfigSpec::Strict => "strict",
        ConfigSpec::NoDeblock => "no-deblock",
        ConfigSpec::NoBusyLatch => "no-busy-latch",
    }
}

/// Parseable churn rendering. Differs from the [`ChurnEvent`] `Display`
/// form only for partitions/heals, whose full cut list must survive the
/// round trip (`Display` compresses it to `|cut|`).
pub fn render_churn(ev: &ChurnEvent) -> String {
    let cut_list = |cut: &[(NodeId, NodeId)]| {
        cut.iter()
            .map(|(u, v)| format!("{u}-{v}"))
            .collect::<Vec<_>>()
            .join(",")
    };
    match ev {
        ChurnEvent::RemoveEdge(u, v) => format!("-edge({u},{v})"),
        ChurnEvent::InsertEdge(u, v) => format!("+edge({u},{v})"),
        ChurnEvent::CrashNode(v) => format!("crash({v})"),
        ChurnEvent::RejoinNode(v) => format!("rejoin({v})"),
        ChurnEvent::Partition(cut) => format!("partition({})", cut_list(cut)),
        ChurnEvent::Heal(cut) => format!("heal({})", cut_list(cut)),
    }
}

/// Parse the churn rendering produced by [`render_churn`].
pub fn parse_churn(s: &str) -> Result<ChurnEvent, String> {
    let (kind, args) = s
        .split_once('(')
        .and_then(|(k, rest)| rest.strip_suffix(')').map(|a| (k, a)))
        .ok_or_else(|| format!("bad churn event {s:?} (expected kind(args))"))?;
    let node = |a: &str| {
        a.parse::<NodeId>()
            .map_err(|e| format!("bad node id {a:?}: {e}"))
    };
    let pair = |a: &str| -> Result<(NodeId, NodeId), String> {
        let (u, v) = a
            .split_once(',')
            .ok_or_else(|| format!("expected u,v in {a:?}"))?;
        Ok((node(u.trim())?, node(v.trim())?))
    };
    let cut = |a: &str| -> Result<Vec<(NodeId, NodeId)>, String> {
        if a.is_empty() {
            return Ok(Vec::new());
        }
        a.split(',')
            .map(|e| {
                let (u, v) = e
                    .split_once('-')
                    .ok_or_else(|| format!("expected u-v in {e:?}"))?;
                Ok((node(u.trim())?, node(v.trim())?))
            })
            .collect()
    };
    match kind {
        "-edge" => pair(args).map(|(u, v)| ChurnEvent::RemoveEdge(u, v)),
        "+edge" => pair(args).map(|(u, v)| ChurnEvent::InsertEdge(u, v)),
        "crash" => node(args.trim()).map(ChurnEvent::CrashNode),
        "rejoin" => node(args.trim()).map(ChurnEvent::RejoinNode),
        "partition" => cut(args).map(ChurnEvent::Partition),
        "heal" => cut(args).map(ChurnEvent::Heal),
        other => Err(format!("unknown churn kind {other:?}")),
    }
}

/// Parse `.scn` text into a [`Scenario`]. Validates topology parameters
/// (unknown families and out-of-range sizes are parse errors, so
/// [`TopologySpec::build`] cannot panic on a parsed scenario).
pub fn parse(text: &str) -> Result<Scenario, String> {
    let mut name = None;
    let mut protocol = ProtocolSpec::default();
    let mut backend = Backend::default();
    let mut topology = None;
    let mut scheduler = None;
    let mut config = ConfigSpec::Default;
    let mut init_corrupt = None;
    let mut stop = None;
    let mut events = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .map(|(k, v)| (k.trim(), v.trim()))
            .ok_or_else(|| format!("line {}: expected key = value", lineno + 1))?;
        let ctx = |e: String| format!("line {}: {e}", lineno + 1);
        match key {
            "name" => {
                if value.is_empty() || value.contains(char::is_whitespace) {
                    return Err(ctx(format!("name must be one token, got {value:?}")));
                }
                name = Some(value.to_string());
            }
            "protocol" => protocol = ProtocolSpec::parse(value).map_err(ctx)?,
            // An unknown backend is a listed-options parse error, never a
            // silent fall-through to the reference loop.
            "backend" => backend = Backend::parse(value).map_err(ctx)?,
            "topology" => topology = Some(parse_topology(value).map_err(ctx)?),
            "scheduler" => scheduler = Some(parse_scheduler(value).map_err(ctx)?),
            "config" => config = parse_config(value).map_err(ctx)?,
            "init" => init_corrupt = Some(parse_corrupt(value).map_err(ctx)?),
            "stop" => stop = Some(parse_stop(value).map_err(ctx)?),
            "event" => events.push(parse_event(value).map_err(ctx)?),
            other => return Err(format!("line {}: unknown key {other:?}", lineno + 1)),
        }
    }
    Ok(Scenario {
        name: name.ok_or("missing name line")?,
        protocol,
        backend,
        topology: topology.ok_or("missing topology line")?,
        scheduler: scheduler.ok_or("missing scheduler line")?,
        config,
        init_corrupt,
        events,
        stop: stop.ok_or("missing stop line")?,
    })
}

/// Split `k1=v1 k2=v2 …` fields into lookups.
fn fields(s: &str) -> Result<Vec<(&str, &str)>, String> {
    s.split_whitespace()
        .map(|tok| {
            tok.split_once('=')
                .ok_or_else(|| format!("expected key=value, got {tok:?}"))
        })
        .collect()
}

fn get<'a>(fs: &[(&str, &'a str)], key: &str) -> Result<&'a str, String> {
    fs.iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| *v)
        .ok_or_else(|| format!("missing field {key}="))
}

fn int<T: std::str::FromStr>(s: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    s.parse::<T>().map_err(|e| format!("bad number {s:?}: {e}"))
}

fn parse_topology(s: &str) -> Result<TopologySpec, String> {
    let (head, rest) = s.split_once(' ').unwrap_or((s, ""));
    let fs = fields(rest)?;
    let spec = if let Some(label) = head.strip_prefix("family:") {
        if !GraphFamily::all().iter().any(|f| f.label() == label) {
            return Err(format!("unknown graph family {label:?}"));
        }
        let n = int(get(&fs, "n")?)?;
        if n < 4 {
            return Err(format!("family topologies need n >= 4, got {n}"));
        }
        TopologySpec::Family {
            family: label.to_string(),
            n,
            seed: int(get(&fs, "seed")?)?,
        }
    } else {
        match head {
            "path" => {
                let n = int(get(&fs, "n")?)?;
                if n < 2 {
                    return Err(format!("path needs n >= 2, got {n}"));
                }
                TopologySpec::Path { n }
            }
            "cycle" => {
                let n = int(get(&fs, "n")?)?;
                if n < 3 {
                    return Err(format!("cycle needs n >= 3, got {n}"));
                }
                TopologySpec::Cycle { n }
            }
            "star-ring" => {
                let n = int(get(&fs, "n")?)?;
                if n < 4 {
                    return Err(format!("star-ring needs n >= 4, got {n}"));
                }
                TopologySpec::StarRing { n }
            }
            "multi-hub" => {
                let hubs = int(get(&fs, "hubs")?)?;
                let spokes = int(get(&fs, "spokes")?)?;
                if hubs < 2 || spokes < 3 {
                    return Err("multi-hub needs hubs >= 2 and spokes >= 3".to_string());
                }
                TopologySpec::MultiHub { hubs, spokes }
            }
            "complete-bipartite" => {
                let a = int(get(&fs, "a")?)?;
                let b = int(get(&fs, "b")?)?;
                if a == 0 || b == 0 {
                    return Err("complete-bipartite needs a, b >= 1".to_string());
                }
                TopologySpec::CompleteBipartite { a, b }
            }
            other => return Err(format!("unknown topology {other:?}")),
        }
    };
    Ok(spec)
}

fn parse_scheduler(s: &str) -> Result<SchedSpec, String> {
    if s == "sync" {
        return Ok(SchedSpec::Synchronous);
    }
    if let Some(seed) = s.strip_prefix("async:") {
        return Ok(SchedSpec::RandomAsync { seed: int(seed)? });
    }
    if let Some(seed) = s.strip_prefix("adversarial:") {
        return Ok(SchedSpec::Adversarial { seed: int(seed)? });
    }
    Err(format!(
        "unknown scheduler {s:?} (sync | async:SEED | adversarial:SEED)"
    ))
}

fn parse_config(s: &str) -> Result<ConfigSpec, String> {
    match s {
        "default" => Ok(ConfigSpec::Default),
        "strict" => Ok(ConfigSpec::Strict),
        "no-deblock" => Ok(ConfigSpec::NoDeblock),
        "no-busy-latch" => Ok(ConfigSpec::NoBusyLatch),
        other => Err(format!("unknown config {other:?}")),
    }
}

fn parse_corrupt(s: &str) -> Result<CorruptSpec, String> {
    let fs = fields(s)?;
    let frac = |s: &str| {
        s.parse::<f64>()
            .map_err(|e| format!("bad fraction {s:?}: {e}"))
    };
    let fraction = frac(get(&fs, "fraction")?)?;
    let drop = frac(get(&fs, "drop")?)?;
    if !(0.0..=1.0).contains(&fraction) || !(0.0..=1.0).contains(&drop) {
        return Err(format!(
            "fraction/drop must be in 0..=1, got {fraction}/{drop}"
        ));
    }
    Ok(CorruptSpec {
        fraction,
        drop,
        seed: int(get(&fs, "seed")?)?,
    })
}

fn parse_stop(s: &str) -> Result<StopSpec, String> {
    let fs = fields(s)?;
    let quiet = match get(&fs, "quiet")? {
        "auto" => None,
        q => Some(int(q)?),
    };
    Ok(StopSpec {
        max_rounds: int(get(&fs, "max-rounds")?)?,
        quiet,
    })
}

fn parse_event(s: &str) -> Result<ScenarioEvent, String> {
    let (timing_tok, rest) = s
        .split_once(' ')
        .ok_or_else(|| format!("expected TIMING ACTION, got {s:?}"))?;
    let timing = if timing_tok == "stable" {
        Timing::Stable
    } else if let Some(r) = timing_tok.strip_prefix("round:") {
        Timing::Round(int(r)?)
    } else {
        return Err(format!("unknown timing {timing_tok:?} (stable | round:R)"));
    };
    let (kind, args) = rest
        .split_once(' ')
        .ok_or_else(|| format!("expected ACTION args, got {rest:?}"))?;
    let action = match kind {
        "fault" => EventAction::Fault(parse_corrupt(args)?),
        "churn" => EventAction::Churn(parse_churn(args.trim())?),
        other => return Err(format!("unknown event action {other:?}")),
    };
    Ok(ScenarioEvent { timing, action })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_scenario() -> Scenario {
        Scenario {
            name: "everything".into(),
            protocol: ProtocolSpec::Mdst,
            backend: Backend::Reference,
            topology: TopologySpec::Family {
                family: "gnp-sparse".into(),
                n: 12,
                seed: 1,
            },
            scheduler: SchedSpec::Adversarial { seed: 11 },
            config: ConfigSpec::Strict,
            init_corrupt: Some(CorruptSpec {
                fraction: 0.5,
                drop: 1.0,
                seed: 9,
            }),
            events: vec![
                ScenarioEvent::stable(EventAction::Churn(ChurnEvent::RemoveEdge(2, 5))),
                ScenarioEvent {
                    timing: Timing::Round(120),
                    action: EventAction::Fault(CorruptSpec {
                        fraction: 0.25,
                        drop: 0.0,
                        seed: 7,
                    }),
                },
                ScenarioEvent::stable(EventAction::Churn(ChurnEvent::Partition(vec![
                    (0, 1),
                    (4, 5),
                ]))),
                ScenarioEvent::stable(EventAction::Churn(ChurnEvent::Heal(vec![(0, 1), (4, 5)]))),
                ScenarioEvent::stable(EventAction::Churn(ChurnEvent::CrashNode(3))),
                ScenarioEvent::stable(EventAction::Churn(ChurnEvent::RejoinNode(3))),
                ScenarioEvent::stable(EventAction::Churn(ChurnEvent::InsertEdge(2, 5))),
            ],
            stop: StopSpec {
                max_rounds: 40_000,
                quiet: Some(72),
            },
        }
    }

    #[test]
    fn render_parse_round_trips_every_construct() {
        let s = full_scenario();
        let text = render(&s);
        let parsed = parse(&text).expect("round trip");
        assert_eq!(parsed, s);
        assert_eq!(render(&parsed), text, "render is canonical");
    }

    #[test]
    fn every_topology_variant_round_trips() {
        let topos = [
            TopologySpec::Path { n: 6 },
            TopologySpec::Cycle { n: 8 },
            TopologySpec::StarRing { n: 8 },
            TopologySpec::MultiHub { hubs: 2, spokes: 4 },
            TopologySpec::CompleteBipartite { a: 2, b: 6 },
            TopologySpec::Family {
                family: "spider".into(),
                n: 16,
                seed: 3,
            },
        ];
        for t in topos {
            let mut s = Scenario::converge("t", t, SchedSpec::Synchronous, 100);
            s.stop.quiet = None; // exercise quiet=auto
            let parsed = parse(&render(&s)).expect("round trip");
            assert_eq!(parsed, s);
        }
    }

    #[test]
    fn churn_rendering_round_trips_including_cuts() {
        let evs = [
            ChurnEvent::RemoveEdge(1, 2),
            ChurnEvent::InsertEdge(3, 4),
            ChurnEvent::CrashNode(0),
            ChurnEvent::RejoinNode(9),
            ChurnEvent::Partition(vec![]),
            ChurnEvent::Partition(vec![(0, 1)]),
            ChurnEvent::Heal(vec![(0, 1), (2, 3), (10, 20)]),
        ];
        for ev in evs {
            let text = render_churn(&ev);
            assert_eq!(parse_churn(&text).expect("round trip"), ev, "{text}");
        }
    }

    #[test]
    fn parse_rejects_malformed_scenarios() {
        // Structural problems.
        assert!(parse("").is_err(), "empty");
        assert!(parse("name = a\nstop = max-rounds=1 quiet=auto").is_err());
        assert!(parse("garbage").is_err());
        // Unknown family / bad ranges caught at parse time.
        let base = |topo: &str| {
            format!(
                "name = x\ntopology = {topo}\nscheduler = sync\nstop = max-rounds=10 quiet=auto"
            )
        };
        assert!(parse(&base("family:unknown n=8 seed=1")).is_err());
        assert!(parse(&base("family:gnp-sparse n=2 seed=1")).is_err());
        assert!(parse(&base("cycle n=2")).is_err());
        assert!(parse(&base("multi-hub hubs=1 spokes=3")).is_err());
        assert!(parse(&base("complete-bipartite a=0 b=3")).is_err());
        // Bad scheduler / config / event lines.
        let ok_head = "name = x\ntopology = path n=4\n";
        assert!(parse(&format!(
            "{ok_head}scheduler = turbo\nstop = max-rounds=10 quiet=auto"
        ))
        .is_err());
        assert!(parse(&format!(
            "{ok_head}scheduler = sync\nconfig = spicy\nstop = max-rounds=10 quiet=auto"
        ))
        .is_err());
        assert!(parse(&format!(
            "{ok_head}scheduler = sync\nstop = max-rounds=10 quiet=auto\nevent = someday churn crash(1)"
        ))
        .is_err());
        assert!(parse(&format!(
            "{ok_head}scheduler = sync\nstop = max-rounds=10 quiet=auto\nevent = stable churn explode(1)"
        ))
        .is_err());
        assert!(parse(&format!(
            "{ok_head}scheduler = sync\ninit = fraction=1.5 drop=0 seed=1\nstop = max-rounds=10 quiet=auto"
        ))
        .is_err());
        // Unknown backend: a listed-options error, not a silent
        // fall-through to the reference loop.
        let err = parse(&format!(
            "{ok_head}backend = warp\nscheduler = sync\nstop = max-rounds=10 quiet=auto"
        ))
        .unwrap_err();
        assert!(err.contains("\"warp\""), "names the bad backend: {err}");
        assert!(
            err.contains("reference") && err.contains("batched") && err.contains("soa"),
            "lists the options: {err}"
        );
    }

    /// The protocol line round-trips when non-default and is *absent*
    /// from the canonical rendering when default — the byte-compat
    /// contract for pre-registry `.scn` files and fingerprints.
    #[test]
    fn protocol_line_round_trips_and_default_is_omitted() {
        let mdst = Scenario::converge(
            "m",
            TopologySpec::Path { n: 4 },
            SchedSpec::Synchronous,
            100,
        );
        let text = render(&mdst);
        assert!(!text.contains("protocol ="), "default must be omitted");
        assert_eq!(parse(&text).unwrap().protocol, ProtocolSpec::Mdst);

        let mut flood = mdst.clone();
        flood.protocol = ProtocolSpec::FloodEcho;
        let text = render(&flood);
        assert!(text.contains("protocol = flood-echo"), "{text}");
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, flood);
        assert_ne!(
            flood.fingerprint(),
            mdst.fingerprint(),
            "protocol is replay identity"
        );
        // Explicit `protocol = mdst` parses but is not canonical.
        let explicit = "name = m\nprotocol = mdst\ntopology = path n=4\nscheduler = sync\nstop = max-rounds=100 quiet=auto\n";
        assert_eq!(parse(explicit).unwrap(), mdst);
        assert!(parse("name = x\nprotocol = turbo\ntopology = path n=4\nscheduler = sync\nstop = max-rounds=10 quiet=auto").is_err());
    }

    /// The backend line round-trips when non-default and is absent when
    /// default — but unlike `protocol`, the backend is *not* part of the
    /// replay identity: fingerprints ignore it, because every backend
    /// must reproduce the identical trace.
    #[test]
    fn backend_line_round_trips_and_is_fingerprint_neutral() {
        let reference = Scenario::converge(
            "b",
            TopologySpec::Path { n: 4 },
            SchedSpec::Synchronous,
            100,
        );
        let text = render(&reference);
        assert!(!text.contains("backend ="), "default must be omitted");
        assert_eq!(parse(&text).unwrap().backend, Backend::Reference);

        for b in [
            Backend::Batched,
            Backend::Soa,
            Backend::Sharded { shards: 4 },
            Backend::Sharded { shards: 1 },
        ] {
            let mut s = reference.clone();
            s.backend = b;
            let text = render(&s);
            // Display form, so `sharded:4` keeps its count in the text.
            assert!(text.contains(&format!("backend = {b}")), "{text}");
            let parsed = parse(&text).unwrap();
            assert_eq!(parsed, s);
            assert_eq!(
                s.fingerprint(),
                reference.fingerprint(),
                "backend is a mechanism, not replay identity"
            );
        }
        // Explicit `backend = reference` parses but is not canonical.
        let explicit = "name = b\nbackend = reference\ntopology = path n=4\nscheduler = sync\nstop = max-rounds=100 quiet=auto\n";
        assert_eq!(parse(explicit).unwrap(), reference);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# comment\n\nname = c\n# another\ntopology = cycle n=5\n\nscheduler = async:3\nstop = max-rounds=50 quiet=auto\n";
        let s = parse(text).expect("parses");
        assert_eq!(s.name, "c");
        assert_eq!(s.scheduler, SchedSpec::RandomAsync { seed: 3 });
    }
}
