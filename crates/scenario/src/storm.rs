//! The coverage-guided scenario storm: the fuzzing loop the scenario
//! subsystem was missing.
//!
//! The loop is classic greybox fuzzing lifted to whole simulations:
//!
//! 1. **Seed** — run every seed scenario (typically the curated corpus),
//!    folding each run's [`Signature`] into the global [`CoverageMap`];
//! 2. **Mutate** — pick a corpus parent and an operator, both drawn from
//!    a per-exec RNG derived from the storm seed and the exec index
//!    ([`mod@crate::mutate`]), so every mutant is replayable from
//!    `(storm seed, exec)` alone;
//! 3. **Execute** — fan each mutant batch across
//!    [`ssmdst_sim::parallel::run_many`] campaign workers (each run is
//!    single-threaded and deterministic, so worker count never perturbs
//!    results);
//! 4. **Judge** — any run failing the storm's failure [`Predicate`]
//!    (default: a judged phase outside the protocol's quality bar) is
//!    auto-piped through the delta-debugging shrinker into a minimal
//!    committable `.scn` reproducer, and the storm stops;
//! 5. **Admit** — a mutant whose signature contributes at least one
//!    never-seen feature joins the corpus. The corpus grows itself toward
//!    behavioural diversity; everything else is discarded.
//!
//! Mutant generation and admission run sequentially in the driver and
//! `run_many` preserves input order, so the admitted corpus, signatures
//! and any failure are identical for any worker count — the whole storm
//! is replayable from its config.

use crate::coverage::{CoverageMap, Signature};
use crate::engine;
use crate::mutate::{self, MutationKind};
use crate::shrink::{self, Predicate, ShrinkStats};
use crate::spec::Scenario;
use rand::prelude::*;
use rand::rngs::StdRng;
use ssmdst_sim::parallel::run_many;
use std::time::Instant;

/// Storm parameters. Everything that shapes the run is here, so a report
/// is reproducible from `(seeds, config)`.
#[derive(Debug, Clone, Copy)]
pub struct StormConfig {
    /// Master seed: drives parent selection and every mutation.
    pub seed: u64,
    /// Mutant executions to perform (seed-corpus runs not included).
    pub execs: u64,
    /// Campaign worker threads (never affects results, only wall time).
    pub workers: usize,
    /// Mutants generated and fanned out per batch.
    pub batch: usize,
    /// Corpus-size cap: admissions beyond it still count coverage but are
    /// not kept as parents.
    pub max_corpus: usize,
    /// What counts as a judge failure. The default,
    /// [`Predicate::QualityViolation`], fires when any judged phase ends
    /// outside the protocol's quality bar; tests inject stricter
    /// predicates to exercise the auto-shrink path.
    pub failure: Predicate,
}

impl StormConfig {
    /// Canonical config for a given seed and exec budget.
    pub fn new(seed: u64, execs: u64) -> Self {
        StormConfig {
            seed,
            execs,
            workers: 1,
            batch: 16,
            max_corpus: 4096,
            failure: Predicate::QualityViolation,
        }
    }
}

/// One admitted mutant: the novelty it brought and how it was derived.
#[derive(Debug, Clone)]
pub struct Admission {
    /// Exec index that produced it (replay handle: `(storm seed, exec)`).
    pub exec: u64,
    /// Name of the corpus parent it was mutated from.
    pub parent: String,
    /// The operator that produced it.
    pub kind: MutationKind,
    /// The admitted scenario (committable as-is).
    pub scenario: Scenario,
    /// Signature key of its run.
    pub signature: u64,
    /// How many never-seen coverage features it contributed.
    pub new_features: usize,
}

/// A judge failure the storm found, already minimized.
#[derive(Debug, Clone)]
pub struct StormFailure {
    /// Exec index of the failing mutant; `None` when a *seed* scenario
    /// already failed.
    pub exec: Option<u64>,
    /// The failing scenario as executed.
    pub scenario: Scenario,
    /// The delta-debugged minimal reproducer (verified: still fails).
    pub shrunk: Scenario,
    /// Shrink search statistics.
    pub stats: ShrinkStats,
}

/// Everything a storm run produced.
#[derive(Debug, Clone)]
pub struct StormReport {
    /// Seed-corpus size the storm started from.
    pub seeds: usize,
    /// Mutant executions actually performed (may stop short on failure).
    pub execs: u64,
    /// Admitted mutants, in admission order.
    pub admitted: Vec<Admission>,
    /// Final corpus size (seeds + admissions kept as parents).
    pub corpus_size: usize,
    /// Distinct coverage features observed across the whole run.
    pub features: usize,
    /// The failure that stopped the storm, if any.
    pub failure: Option<StormFailure>,
    /// Wall-clock duration of the run in seconds.
    pub elapsed_secs: f64,
}

impl StormReport {
    /// Mutant executions per wall-clock second.
    pub fn execs_per_sec(&self) -> f64 {
        if self.elapsed_secs > 0.0 {
            self.execs as f64 / self.elapsed_secs
        } else {
            0.0
        }
    }
}

/// SplitMix64-style hash deriving the per-exec seed from the storm seed:
/// adjacent exec indices get statistically independent RNG streams.
fn exec_seed(seed: u64, exec: u64) -> u64 {
    let mut z = seed ^ exec.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Run the storm. See the module docs for the loop; `on_admit` fires for
/// every admission in order (live progress for the CLI).
pub fn storm_observed(
    seeds: &[Scenario],
    cfg: &StormConfig,
    mut on_admit: impl FnMut(&Admission),
) -> StormReport {
    assert!(!seeds.is_empty(), "storm needs at least one seed scenario");
    let start = Instant::now(); // lint: allow(no-ambient-entropy) — observation-side timing for the report's elapsed field; never feeds scenario selection or digests
    let mut map = CoverageMap::new();
    let mut corpus: Vec<Scenario> = Vec::new();

    let report = |execs: u64,
                  admitted: Vec<Admission>,
                  corpus_size: usize,
                  features: usize,
                  failure: Option<StormFailure>| StormReport {
        seeds: seeds.len(),
        execs,
        admitted,
        corpus_size,
        features,
        failure,
        elapsed_secs: start.elapsed().as_secs_f64(),
    };

    // Seed phase: establish baseline coverage. A failing seed is a
    // failure of the *committed* corpus and stops the storm immediately.
    let seed_outs = run_many(seeds.to_vec(), cfg.workers, engine::run_any);
    for (scn, out) in seeds.iter().zip(&seed_outs) {
        if cfg.failure.holds(out) {
            let failure = minimize(scn, cfg.failure, None);
            return report(0, Vec::new(), corpus.len(), map.len(), Some(failure));
        }
        map.observe(&Signature::of(out));
        corpus.push(scn.clone());
    }

    // Mutation loop.
    let mut admitted: Vec<Admission> = Vec::new();
    let mut exec = 0u64;
    while exec < cfg.execs {
        let count = cfg.batch.max(1).min((cfg.execs - exec) as usize);
        // Generate the batch sequentially: parent choice and mutation are
        // part of the deterministic storm identity.
        let mut batch = Vec::with_capacity(count);
        for i in 0..count {
            let id = exec + i as u64;
            let mut rng = StdRng::seed_from_u64(exec_seed(cfg.seed, id));
            let parent = &corpus[rng.random_range(0..corpus.len())];
            let (kind, mut child) = mutate::mutate(parent, rng.random());
            child.name = format!("storm-{}-{id}", cfg.seed);
            batch.push((id, parent.name.clone(), kind, child));
        }
        // Execute in parallel, admit sequentially in input order.
        let scns: Vec<Scenario> = batch.iter().map(|(_, _, _, s)| s.clone()).collect();
        let outs = run_many(scns, cfg.workers, engine::run_any);
        exec += count as u64;
        for ((id, parent, kind, child), out) in batch.into_iter().zip(outs) {
            if cfg.failure.holds(&out) {
                let failure = minimize(&child, cfg.failure, Some(id));
                return report(id + 1, admitted, corpus.len(), map.len(), Some(failure));
            }
            let sig = Signature::of(&out);
            let new_features = map.observe(&sig);
            if new_features > 0 && corpus.len() < cfg.max_corpus {
                let admission = Admission {
                    exec: id,
                    parent,
                    kind,
                    scenario: child.clone(),
                    signature: sig.key(),
                    new_features,
                };
                on_admit(&admission);
                admitted.push(admission);
                corpus.push(child);
            }
        }
    }
    report(cfg.execs, admitted, corpus.len(), map.len(), None)
}

/// [`storm_observed`] without a progress hook.
pub fn storm(seeds: &[Scenario], cfg: &StormConfig) -> StormReport {
    storm_observed(seeds, cfg, |_| {})
}

/// One scenario the distiller kept, with the coverage it was kept *for*.
#[derive(Debug, Clone)]
pub struct DistillPick {
    /// The kept scenario.
    pub scenario: Scenario,
    /// Features this pick newly covered at selection time (its greedy
    /// gain; the picks' gains sum to the total feature count).
    pub gain: usize,
}

/// Result of a corpus distillation.
#[derive(Debug, Clone)]
pub struct DistillReport {
    /// Candidate scenarios considered.
    pub candidates: usize,
    /// Distinct coverage features observed across all candidates.
    pub features: usize,
    /// The minimal covering subset, in greedy selection order.
    pub selected: Vec<DistillPick>,
}

/// Distill a scenario corpus down to a greedy minimal subset that still
/// covers **every** coverage feature the full corpus observes.
///
/// Every candidate is executed (in input order over `workers` campaign
/// threads — [`run_many`] preserves order, so worker count never changes
/// the result) and projected onto its [`Signature`]. The classic greedy
/// set-cover heuristic then repeatedly keeps the candidate covering the
/// most still-uncovered features, ties broken toward the earliest
/// candidate, until nothing is uncovered. Fully deterministic: the same
/// candidate list yields the same subset, run to run and across worker
/// counts.
pub fn distill(candidates: &[Scenario], workers: usize) -> DistillReport {
    let outs = run_many(candidates.to_vec(), workers, engine::run_any);
    let sigs: Vec<Signature> = outs.iter().map(Signature::of).collect();
    // Ordered set on purpose (and by R1): `uncovered` is only probed and
    // shrunk, but keeping it iteration-ordered means no future refactor
    // can accidentally let map order leak into pick order.
    let mut uncovered: std::collections::BTreeSet<u64> = sigs
        .iter()
        .flat_map(|s| s.features().iter().copied())
        .collect();
    let features = uncovered.len();
    let mut remaining: Vec<usize> = (0..candidates.len()).collect();
    let mut selected = Vec::new();
    while !uncovered.is_empty() {
        // Strictly-greater comparison over ascending candidate indices:
        // ties go to the earliest candidate, deterministically.
        let mut best: Option<(usize, usize)> = None; // (gain, position)
        for (pos, &i) in remaining.iter().enumerate() {
            let gain = sigs[i]
                .features()
                .iter()
                .filter(|f| uncovered.contains(f))
                .count();
            if gain > 0 && best.map_or(true, |(g, _)| gain > g) {
                best = Some((gain, pos));
            }
        }
        let (gain, pos) = best.expect("uncovered features all came from some candidate"); // lint: allow(no-panic-in-library) — every uncovered feature was contributed by a remaining candidate
        let i = remaining.remove(pos);
        for f in sigs[i].features() {
            uncovered.remove(f);
        }
        selected.push(DistillPick {
            scenario: candidates[i].clone(),
            gain,
        });
    }
    DistillReport {
        candidates: candidates.len(),
        features,
        selected,
    }
}

/// Delta-debug a failing scenario into a minimal verified reproducer.
fn minimize(scn: &Scenario, pred: Predicate, exec: Option<u64>) -> StormFailure {
    let (shrunk, stats) = shrink::shrink(scn, |s| pred.test(s))
        .expect("the scenario failed when executed, so it must fail when re-tested"); // lint: allow(no-panic-in-library) — replay determinism: a failure observed once reproduces
    StormFailure {
        exec,
        scenario: scn.clone(),
        shrunk,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;
    use crate::scn;
    use crate::spec::{SchedSpec, TopologySpec};

    /// Two small, fast seeds; enough to exercise mutation and admission.
    fn seeds() -> Vec<Scenario> {
        vec![
            Scenario::converge(
                "seed-star",
                TopologySpec::StarRing { n: 8 },
                SchedSpec::Synchronous,
                40_000,
            ),
            Scenario::converge(
                "seed-cycle",
                TopologySpec::Cycle { n: 8 },
                SchedSpec::RandomAsync { seed: 3 },
                40_000,
            ),
        ]
    }

    #[test]
    fn storm_grows_the_corpus_and_reports() {
        let cfg = StormConfig::new(7, 10);
        let mut live = 0usize;
        let report = storm_observed(&seeds(), &cfg, |_| live += 1);
        assert_eq!(report.seeds, 2);
        assert_eq!(report.execs, 10);
        assert!(report.failure.is_none(), "healthy protocol: no failures");
        assert!(
            !report.admitted.is_empty(),
            "10 mutations of a 2-seed corpus must surface novelty"
        );
        assert_eq!(live, report.admitted.len(), "progress hook saw each");
        assert_eq!(
            report.corpus_size,
            2 + report.admitted.len(),
            "corpus = seeds + admissions"
        );
        assert!(report.features > 0);
        assert!(report.elapsed_secs > 0.0);
        for a in &report.admitted {
            assert!(a.new_features > 0);
            assert!(a.scenario.name.starts_with("storm-7-"));
            // Every admitted mutant is a committable artifact.
            let parsed = scn::parse(&a.scenario.canonical()).expect("admitted mutant parses");
            assert_eq!(parsed, a.scenario);
        }
    }

    /// The replayability contract: the same `(seeds, config)` yields the
    /// same admitted corpus and signatures — across repeated runs *and*
    /// across worker counts (1 vs 4).
    #[test]
    fn storm_is_deterministic_across_runs_and_worker_counts() {
        let mut cfg = StormConfig::new(11, 8);
        let a = storm(&seeds(), &cfg);
        let b = storm(&seeds(), &cfg);
        cfg.workers = 4;
        let par = storm(&seeds(), &cfg);
        for other in [&b, &par] {
            assert_eq!(a.execs, other.execs);
            assert_eq!(a.corpus_size, other.corpus_size);
            assert_eq!(a.features, other.features);
            assert_eq!(a.admitted.len(), other.admitted.len());
            for (x, y) in a.admitted.iter().zip(&other.admitted) {
                assert_eq!(x.exec, y.exec);
                assert_eq!(x.kind, y.kind);
                assert_eq!(x.parent, y.parent);
                assert_eq!(x.signature, y.signature, "signature determinism");
                assert_eq!(x.new_features, y.new_features);
                assert_eq!(x.scenario, y.scenario);
            }
        }
    }

    /// The auto-shrink path: an injected test-only failure predicate
    /// (every spanning tree has degree ≥ 1) trips on the very first seed
    /// and comes back as a minimal, verified, committable reproducer.
    #[test]
    fn injected_judge_failure_is_auto_shrunk_to_a_repro() {
        let mut cfg = StormConfig::new(3, 50);
        cfg.failure = Predicate::DegreeAtLeast(1);
        let report = storm(&seeds(), &cfg);
        let failure = report.failure.expect("injected predicate must fire");
        assert_eq!(failure.exec, None, "a seed itself trips the predicate");
        assert_eq!(report.execs, 0, "storm stops before mutating");
        assert!(
            failure.shrunk.size() <= failure.scenario.size(),
            "shrunk repro is no larger"
        );
        assert!(
            Predicate::DegreeAtLeast(1).test(&failure.shrunk),
            "repro verified: still fails"
        );
        // The repro is a committable .scn artifact.
        let parsed = scn::parse(&failure.shrunk.canonical()).expect("repro parses");
        assert_eq!(parsed, failure.shrunk);
    }

    /// Same injection, but deep in the mutation loop: seeds pass a
    /// degree-≥-3 bar (star-ring and cycle trees have degree ≤ 3 …), and
    /// the storm must catch the first mutant whose tree reaches it, then
    /// shrink that mutant.
    #[test]
    fn mutant_judge_failure_is_caught_mid_storm() {
        // Cycle seeds converge to degree-2 trees; degree ≥ 3 needs a
        // mutant (e.g. a topology swap) to fire.
        let seeds = vec![Scenario::converge(
            "seed-cycle",
            TopologySpec::Cycle { n: 8 },
            SchedSpec::Synchronous,
            40_000,
        )];
        let mut cfg = StormConfig::new(5, 64);
        cfg.batch = 8;
        cfg.failure = Predicate::DegreeAtLeast(3);
        let report = storm(&seeds, &cfg);
        if let Some(failure) = report.failure {
            let exec = failure.exec.expect("seed passes; a mutant fails");
            assert!(exec < 64);
            assert!(Predicate::DegreeAtLeast(3).test(&failure.shrunk));
            assert!(failure.stats.attempts > 0);
        } else {
            // Statistically improbable but legal: no mutant reached
            // degree 3 in 64 execs. The run must then have completed.
            assert_eq!(report.execs, 64);
        }
    }

    /// Distillation covers every observed feature with a (possibly much)
    /// smaller subset, and is deterministic across repeated runs and
    /// worker counts — the same candidates always distill to the same
    /// picks in the same order.
    #[test]
    fn distill_covers_all_features_deterministically() {
        // Seeds plus a storm's admissions: a corpus with real redundancy.
        let cfg = StormConfig::new(7, 10);
        let report = storm(&seeds(), &cfg);
        let mut candidates = seeds();
        candidates.extend(report.admitted.iter().map(|a| a.scenario.clone()));

        let a = distill(&candidates, 1);
        let b = distill(&candidates, 1);
        let par = distill(&candidates, 4);
        assert_eq!(a.candidates, candidates.len());
        assert!(a.features > 0);
        assert!(!a.selected.is_empty());
        assert!(a.selected.len() <= a.candidates);
        // Greedy gains partition the feature set exactly.
        assert_eq!(a.selected.iter().map(|p| p.gain).sum::<usize>(), a.features);
        // Gains are non-increasing in selection order (greedy invariant).
        for w in a.selected.windows(2) {
            assert!(w[0].gain >= w[1].gain);
        }
        for other in [&b, &par] {
            assert_eq!(a.features, other.features);
            assert_eq!(a.selected.len(), other.selected.len());
            for (x, y) in a.selected.iter().zip(&other.selected) {
                assert_eq!(x.scenario, y.scenario, "distill determinism");
                assert_eq!(x.gain, y.gain);
            }
        }
        // Re-running the distilled subset alone re-observes every feature.
        let outs = run_many(
            a.selected.iter().map(|p| p.scenario.clone()).collect(),
            1,
            engine::run_any,
        );
        let mut map = CoverageMap::new();
        for out in &outs {
            map.observe(&Signature::of(out));
        }
        assert_eq!(map.len(), a.features, "subset still covers everything");
    }

    /// The `BTreeSet` uncovered-feature tracker picks exactly what the
    /// definition demands: an independent greedy re-implementation over
    /// sorted `Vec` feature sets (no set type at all) must select the
    /// identical scenarios with the identical gains — distill's output is
    /// a function of the candidate list, not of the set representation.
    #[test]
    fn distill_selection_matches_a_set_free_reference_greedy() {
        let cfg = StormConfig::new(7, 10);
        let report = storm(&seeds(), &cfg);
        let mut candidates = seeds();
        candidates.extend(report.admitted.iter().map(|a| a.scenario.clone()));

        // Reference greedy: sorted-Vec sets, earliest-candidate tie-break.
        let outs = run_many(candidates.clone(), 1, engine::run_any);
        let sigs: Vec<Vec<u64>> = outs
            .iter()
            .map(|o| {
                let mut f = Signature::of(o).features().to_vec();
                f.sort_unstable();
                f.dedup();
                f
            })
            .collect();
        let mut uncovered: Vec<u64> = sigs.concat();
        uncovered.sort_unstable();
        uncovered.dedup();
        let mut remaining: Vec<usize> = (0..candidates.len()).collect();
        let mut expected: Vec<(usize, usize)> = Vec::new(); // (candidate, gain)
        while !uncovered.is_empty() {
            let mut best: Option<(usize, usize)> = None;
            for (pos, &i) in remaining.iter().enumerate() {
                let gain = sigs[i]
                    .iter()
                    .filter(|f| uncovered.binary_search(f).is_ok())
                    .count();
                if gain > 0 && best.map_or(true, |(g, _)| gain > g) {
                    best = Some((gain, pos));
                }
            }
            let (gain, pos) = best.expect("every uncovered feature has a source");
            let i = remaining.remove(pos);
            uncovered.retain(|f| sigs[i].binary_search(f).is_err());
            expected.push((i, gain));
        }

        let got = distill(&candidates, 1);
        assert_eq!(got.selected.len(), expected.len());
        for (pick, (i, gain)) in got.selected.iter().zip(&expected) {
            assert_eq!(&pick.scenario, &candidates[*i], "pick order changed");
            assert_eq!(pick.gain, *gain, "gain changed");
        }
    }

    #[test]
    fn storm_on_the_committed_corpus_smoke() {
        // The CI smoke job in miniature: a handful of execs over the real
        // corpus, no failures, at least one admission.
        let cfg = StormConfig::new(1, 6);
        let report = storm(&corpus::corpus(), &cfg);
        assert!(report.failure.is_none());
        assert_eq!(report.execs, 6);
    }
}
