//! The scenario executor: phases, component-wise judging, and the chained
//! record-replay digest — protocol-generic, driven through a
//! [`ssmdst_sim::Session`].
//!
//! A scenario's events split the run into **phases**. Phase 0 starts from
//! the (possibly corrupted) initial configuration; each event opens the
//! next phase. `Timing::Stable` events fire once the network reaches
//! quiescence (judged on the protocol's canonical state projection with
//! the canonical confirmation window), `Timing::Round(r)` events fire at
//! absolute round `r` — mid-flight faults. Every stable phase is judged
//! component-wise against the live topology by the scenario's
//! [`Protocol`] (for MDST: per-component spanning tree with degree within
//! one of the component's optimum, via `ssmdst_core::churn`).
//!
//! The engine is a thin orchestrator over a `Session` whose attached
//! observer — the internal `Recorder` — does all cross-cutting work: it folds
//! every scheduler priority key and executed action
//! ([`ssmdst_sim::observer::fold_event`]), the per-round projection, and
//! every applied event into one chained [`Digest`]; records the
//! [`RunTrace`]; and carries the per-phase stop condition (the shared
//! [`ssmdst_sim::QuiescenceGate`], or an absolute round target). Two runs
//! of the same `(Scenario)` value are bit-identical iff their chains
//! agree — that is the replay check [`verify_replay`] performs and the
//! golden-trace CI job enforces.

use crate::protocol::{Flood, Mdst, PhaseJudgment, Protocol};
use crate::spec::{EventAction, ProtocolSpec, Scenario, Timing};
use ssmdst_core::MdstNode;
use ssmdst_graph::SolveBudget;
use ssmdst_sim::observer::{fold_event, observe_rounds, Observer, Stop};
use ssmdst_sim::{
    quiet_window, Action, Digest, Network, QuiescenceGate, RunTrace, Runner, Session, TraceRecord,
};

/// Observation-side knobs. These only affect how phases are *judged* —
/// never the execution or its digest chain, so they are engine parameters,
/// not scenario data.
#[derive(Debug, Clone, Copy)]
pub struct EngineOpts {
    /// Per-component Δ* solver budget for phase judging. `max_nodes: 0`
    /// skips exact solving; the witness lower bound then gives a
    /// conservative `within_one` verdict.
    pub delta_budget: SolveBudget,
}

impl Default for EngineOpts {
    /// Exact solving under the experiment harness's canonical budget, so
    /// scenario-driven tables agree with the pre-scenario ones.
    fn default() -> Self {
        EngineOpts {
            delta_budget: SolveBudget { max_nodes: 500_000 },
        }
    }
}

/// Outcome of one phase (initial convergence, or re-convergence after one
/// event).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseOutcome {
    /// `initial`, or the label of the event that opened the phase.
    pub label: String,
    /// Whether the phase reached quiescence before its round cap. For
    /// `Timing::Round` phases this is whether the target round was reached.
    pub converged: bool,
    /// Rounds from phase start to the converged configuration (the
    /// quiescence confirmation window is excluded when converged).
    pub rounds: u64,
    /// Whether the component-wise check ran (stable-timed and final
    /// phases only; mid-flight phases are not judged).
    pub checked: bool,
    /// Connected components of the live topology at phase end.
    pub components: usize,
    /// Worst component quality measure (tree degree for MDST; 0 when the
    /// check failed, didn't run, or the protocol has no tree notion).
    pub degree: u32,
    /// Exact Δ* of the worst component when the solver budget sufficed.
    pub delta_star: Option<u32>,
    /// Converged and every component within the protocol's quality bar.
    /// Vacuously equal to `converged` for unchecked (mid-flight) phases.
    pub ok: bool,
}

/// Everything measured from one scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub name: String,
    /// Node count of the built instance.
    pub n: usize,
    /// Edge count of the built instance.
    pub m: usize,
    /// One outcome per phase, in order; never empty.
    pub phases: Vec<PhaseOutcome>,
    /// Whether the final phase converged.
    pub converged: bool,
    /// Rounds of the final phase (confirmation window excluded).
    pub conv_round: u64,
    /// Final tree degree when the run ends on a single-component spanning
    /// tree, else `None` (always `None` for tree-less protocols).
    pub final_degree: Option<u32>,
    /// Total messages sent across the whole run.
    pub total_msgs: u64,
    /// Messages by kind: (kind, sent, max size bits).
    pub msgs_by_kind: Vec<(&'static str, u64, usize)>,
    /// Largest message observed, in bits.
    pub max_msg_bits: usize,
    /// Peak number of undelivered messages.
    pub peak_in_flight: usize,
    /// Final chained run digest — the replay identity.
    pub digest: u64,
}

impl ScenarioOutcome {
    /// Whether every phase converged and passed its component check.
    pub fn all_ok(&self) -> bool {
        self.phases.iter().all(|p| p.ok)
    }
}

/// The session observer carrying every cross-cutting concern of a
/// scenario run: the chained replay digest, the trace records, and the
/// per-phase stop condition.
struct Recorder<P: Protocol> {
    chain: Digest,
    records: Vec<TraceRecord>,
    /// Quiescence gate of the current phase (`None` in round-target mode).
    gate: Option<QuiescenceGate<P::Proj>>,
    /// Absolute round target of the current phase, when round-timed.
    until: Option<u64>,
}

impl<P: Protocol> Recorder<P> {
    fn new() -> Self {
        Recorder {
            chain: Digest::new(),
            records: Vec::new(),
            gate: None,
            until: None,
        }
    }

    /// Arm the stop condition for the next phase: quiescence (primed with
    /// the phase-start projection) or an absolute round target.
    fn begin_phase(&mut self, until: Option<u64>, window: u64, initial: P::Proj) {
        self.until = until;
        self.gate = match until {
            None => Some(QuiescenceGate::primed(window, initial)),
            Some(_) => None,
        };
    }

    fn note_init_fault(&mut self, victims: usize) {
        self.chain.write_str("init-fault");
        self.chain.write_u64(victims as u64);
        self.records.push(TraceRecord::Fault { round: 0, victims });
    }

    fn note_fault(&mut self, round: u64, victims: usize) {
        self.chain.write_str("fault");
        self.chain.write_u64(victims as u64);
        self.records.push(TraceRecord::Fault { round, victims });
    }

    fn note_churn(&mut self, round: u64, label: &str) {
        self.chain.write_str("churn");
        self.chain.write_str(label);
        self.records.push(TraceRecord::Topology {
            round,
            event: label.to_string(),
        });
    }

    fn note_phase(&mut self, label: String, rounds: u64) {
        self.records.push(TraceRecord::Phase {
            label,
            rounds,
            digest: self.chain.value(),
        });
    }
}

impl<P: Protocol> Observer<P::Node> for Recorder<P> {
    fn on_event(&mut self, key: u128, idx: u32, action: Action) {
        fold_event(&mut self.chain, key, idx, action);
    }

    fn on_round_end(&mut self, net: &Network<P::Node>, round: u64) -> Stop {
        // Fold the canonical state projection — any state divergence in
        // any round breaks every later digest — then evaluate the phase's
        // stop condition on the same projection.
        let proj = P::project(net);
        P::fold_projection(&proj, &mut self.chain);
        if let Some(target) = self.until {
            if round >= target {
                return Stop::Done;
            }
        } else if let Some(gate) = &mut self.gate {
            if gate.observe(proj) {
                return Stop::Done;
            }
        }
        Stop::Continue
    }
}

/// Run a scenario on an explicit [`Protocol`] implementation — the
/// generic core every public entry point goes through. Returns the
/// outcome, the recorded trace, and the final runner for ad-hoc
/// inspection (state-size oracles, fault-injection follow-ups).
pub fn run_protocol<P: Protocol>(
    proto: &P,
    scn: &Scenario,
    opts: EngineOpts,
    mut obs: impl FnMut(&Network<P::Node>, u64),
) -> (ScenarioOutcome, RunTrace, Runner<P::Node>) {
    let g = scn.topology.build();
    let n = g.n();
    let quiet = scn.stop.quiet.unwrap_or_else(|| quiet_window(n));
    // `scn.stop.max_rounds` is a **per-phase** budget (each
    // re-convergence gets the full allowance, matching the experiment
    // harness's per-event measurement), so it is passed explicitly to
    // every `run_until` in `run_phase` rather than set as the session
    // horizon.
    let mut session = Session::from_network(proto.build(&g, &scn.config))
        .scheduler(scn.scheduler.scheduler())
        .backend(scn.backend)
        .observe(Recorder::<P>::new());

    if let Some(c) = &scn.init_corrupt {
        let victims = session.inject(c.plan());
        session.observer_mut().note_init_fault(victims.len());
    }

    // One judge per run: its state (for MDST, the incremental engine's
    // basis and component cache) survives across phases, fed every churn
    // event so each stable-phase judgment re-solves only what changed.
    let mut judge = proto.new_judge(session.network(), &opts);

    let mut phases: Vec<PhaseOutcome> = Vec::new();
    let mut label = "initial".to_string();
    for ev in &scn.events {
        let until = match ev.timing {
            Timing::Stable => None,
            Timing::Round(r) => Some(r),
        };
        let phase = run_phase(
            proto,
            &mut session,
            &mut judge,
            &mut obs,
            scn.stop.max_rounds,
            quiet,
            &opts,
            label,
            until,
        );
        phases.push(phase);
        label = ev.action.label();
        let round = session.round();
        match &ev.action {
            EventAction::Fault(c) => {
                let victims = session.inject(c.plan());
                session.observer_mut().note_fault(round, victims.len());
            }
            EventAction::Churn(c) => {
                let _ = session.churn(c);
                session.observer_mut().note_churn(round, &label);
                P::observe_churn(&mut judge, session.network(), c);
            }
        }
    }
    let phase = run_phase(
        proto,
        &mut session,
        &mut judge,
        &mut obs,
        scn.stop.max_rounds,
        quiet,
        &opts,
        label,
        None,
    );
    phases.push(phase);

    let last = phases.last().expect("at least one phase"); // lint: allow(no-panic-in-library) — a phase was pushed on the line above
    let final_degree = if last.checked && last.components == 1 && last.degree > 0 {
        Some(last.degree)
    } else {
        proto.final_degree(&g, session.network())
    };
    let metrics = &session.network().metrics;
    let outcome = ScenarioOutcome {
        name: scn.name.clone(),
        n,
        m: g.m(),
        converged: last.converged,
        conv_round: last.rounds,
        final_degree,
        total_msgs: metrics.total_sent,
        msgs_by_kind: metrics
            .kinds()
            .map(|(k, s)| (k, s.sent, s.max_size_bits))
            .collect(),
        max_msg_bits: metrics.max_message_bits(),
        peak_in_flight: metrics.peak_in_flight,
        digest: session.observer().chain.value(),
        phases,
    };
    let (runner, recorder) = session.into_parts();
    let trace = RunTrace {
        fingerprint: scn.fingerprint(),
        records: recorder.records,
        final_digest: recorder.chain.value(),
    };
    (outcome, trace, runner)
}

/// Drive one phase: to quiescence (`until = None`) or to the absolute
/// round `until`, with the [`Recorder`] folding schedule and projection
/// into the chain each round and deciding the stop.
#[allow(clippy::too_many_arguments)]
fn run_phase<P: Protocol>(
    proto: &P,
    session: &mut Session<P::Node, Recorder<P>>,
    judge: &mut P::Judge,
    obs: &mut impl FnMut(&Network<P::Node>, u64),
    max_rounds: u64,
    quiet: u64,
    opts: &EngineOpts,
    label: String,
    until: Option<u64>,
) -> PhaseOutcome {
    let start = session.round();
    session.phase(&label);
    let converged = if until.is_some_and(|target| start >= target) {
        // An absolute-round target earlier phases already ran past fires
        // immediately: a zero-round phase.
        true
    } else {
        let initial = P::project(session.network());
        session.observer_mut().begin_phase(until, quiet, initial);
        let out = session.run_until(
            max_rounds,
            &mut observe_rounds(|net: &Network<P::Node>, round: u64| obs(net, round)),
        );
        out.converged()
    };
    let rounds_used = session.round() - start;
    let rounds = if converged && until.is_none() {
        rounds_used.saturating_sub(quiet)
    } else {
        rounds_used
    };
    // Judge stable-timed phases component-wise; mid-flight phases are in
    // transit by construction and are not judged.
    let (checked, judgment) = if until.is_none() {
        (true, proto.judge(judge, session.network(), opts))
    } else {
        (
            false,
            PhaseJudgment {
                components: 0,
                degree: 0,
                delta_star: None,
                ok: true,
            },
        )
    };
    let phase = PhaseOutcome {
        label,
        converged,
        rounds,
        checked,
        components: judgment.components,
        degree: judgment.degree,
        delta_star: judgment.delta_star,
        ok: converged && judgment.ok,
    };
    session
        .observer_mut()
        .note_phase(phase.label.clone(), phase.rounds);
    phase
}

// ----------------------------------------------------------------------
// Registry dispatch: protocol-generic entry points
// ----------------------------------------------------------------------

/// Run a scenario under whatever protocol it names — the entry point for
/// campaigns, shrinking, the conformance harness and the CLI.
pub fn run_any(scn: &Scenario) -> ScenarioOutcome {
    run_any_opts(scn, EngineOpts::default())
}

/// [`run_any`] with explicit [`EngineOpts`].
pub fn run_any_opts(scn: &Scenario, opts: EngineOpts) -> ScenarioOutcome {
    run_traced_any_opts(scn, opts).0
}

/// Run a scenario under whatever protocol it names, keeping the full
/// [`RunTrace`] for golden-file verification.
pub fn run_traced_any(scn: &Scenario) -> (ScenarioOutcome, RunTrace) {
    run_traced_any_opts(scn, EngineOpts::default())
}

/// [`run_traced_any`] with explicit [`EngineOpts`].
pub fn run_traced_any_opts(scn: &Scenario, opts: EngineOpts) -> (ScenarioOutcome, RunTrace) {
    match scn.protocol {
        ProtocolSpec::Mdst => {
            let (out, trace, _) = run_protocol(&Mdst, scn, opts, |_, _| {});
            (out, trace)
        }
        ProtocolSpec::FloodEcho => {
            let (out, trace, _) = run_protocol(&Flood, scn, opts, |_, _| {});
            (out, trace)
        }
    }
}

// ----------------------------------------------------------------------
// MDST-typed entry points (the historical API; final-runner access)
// ----------------------------------------------------------------------

/// Panic unless the scenario targets the MDST protocol — the MDST-typed
/// entry points hand back a `Runner<MdstNode>` and cannot dispatch.
fn expect_mdst(scn: &Scenario) {
    assert!(
        scn.protocol == ProtocolSpec::Mdst,
        "scenario '{}' targets protocol '{}'; use engine::run_any / run_traced_any",
        scn.name,
        scn.protocol.label()
    );
}

/// Run an MDST scenario. Returns the outcome and the final runner for
/// ad-hoc inspection (state-size oracles, fault-injection follow-ups).
///
/// # Panics
/// Panics if the scenario names a non-MDST protocol; protocol-generic
/// callers use [`run_any`].
pub fn run(scn: &Scenario) -> (ScenarioOutcome, Runner<MdstNode>) {
    let (out, _, runner) = run_traced_observed(scn, |_, _| {});
    (out, runner)
}

/// [`run`] with explicit [`EngineOpts`].
pub fn run_opts(scn: &Scenario, opts: EngineOpts) -> (ScenarioOutcome, Runner<MdstNode>) {
    let (out, _, runner) = run_traced_observed_opts(scn, opts, |_, _| {});
    (out, runner)
}

/// Run an MDST scenario with a per-round observer hook (called after
/// every round with the network and the absolute round number) — what the
/// experiment harness uses for trajectory and concurrency bookkeeping.
pub fn run_observed(
    scn: &Scenario,
    obs: impl FnMut(&Network<MdstNode>, u64),
) -> (ScenarioOutcome, Runner<MdstNode>) {
    let (out, _, runner) = run_traced_observed(scn, obs);
    (out, runner)
}

/// [`run_observed`] with explicit [`EngineOpts`].
pub fn run_observed_opts(
    scn: &Scenario,
    opts: EngineOpts,
    obs: impl FnMut(&Network<MdstNode>, u64),
) -> (ScenarioOutcome, Runner<MdstNode>) {
    let (out, _, runner) = run_traced_observed_opts(scn, opts, obs);
    (out, runner)
}

/// Run an MDST scenario and keep the full [`RunTrace`] for golden-file
/// verification.
pub fn run_traced(scn: &Scenario) -> (ScenarioOutcome, RunTrace) {
    let (out, trace, _) = run_traced_observed(scn, |_, _| {});
    (out, trace)
}

/// Trace + observer + final runner, under default options.
pub fn run_traced_observed(
    scn: &Scenario,
    obs: impl FnMut(&Network<MdstNode>, u64),
) -> (ScenarioOutcome, RunTrace, Runner<MdstNode>) {
    run_traced_observed_opts(scn, EngineOpts::default(), obs)
}

/// The general MDST-typed form: trace + observer + final runner + options.
pub fn run_traced_observed_opts(
    scn: &Scenario,
    opts: EngineOpts,
    obs: impl FnMut(&Network<MdstNode>, u64),
) -> (ScenarioOutcome, RunTrace, Runner<MdstNode>) {
    expect_mdst(scn);
    run_protocol(&Mdst, scn, opts, obs)
}

/// Replay `scn` (under whatever protocol it names) and compare against a
/// recorded trace. `Ok(())` means the re-run reproduced the recording
/// bit-for-bit; `Err` describes the first divergence.
pub fn verify_replay(scn: &Scenario, recorded: &RunTrace) -> Result<(), String> {
    let (_, replayed) = run_traced_any(scn);
    match recorded.first_divergence(&replayed) {
        None => Ok(()),
        Some(d) => Err(format!("replay of '{}' diverged: {d}", scn.name)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ConfigSpec, CorruptSpec, ScenarioEvent, SchedSpec, StopSpec, TopologySpec};
    use ssmdst_graph::generators::GraphFamily;
    use ssmdst_sim::ChurnEvent;

    fn quick_converge(topology: TopologySpec, sched: SchedSpec) -> Scenario {
        Scenario::converge("t", topology, sched, 40_000)
    }

    #[test]
    fn plain_convergence_has_one_ok_phase() {
        let scn = quick_converge(TopologySpec::StarRing { n: 8 }, SchedSpec::Synchronous);
        let (out, _) = run(&scn);
        assert_eq!(out.phases.len(), 1);
        assert!(out.converged);
        assert!(out.all_ok());
        assert_eq!(out.phases[0].label, "initial");
        assert_eq!(out.phases[0].components, 1);
        assert!(out.final_degree.unwrap() <= 3);
        assert!(out.total_msgs > 0);
    }

    #[test]
    fn corrupt_start_still_stabilizes() {
        let mut scn = quick_converge(
            TopologySpec::family(GraphFamily::GnpSparse, 10, 1),
            SchedSpec::Synchronous,
        );
        scn.init_corrupt = Some(CorruptSpec {
            fraction: 1.0,
            drop: 1.0,
            seed: 5,
        });
        let (out, trace) = run_traced(&scn);
        assert!(out.converged, "self-stabilization from garbage");
        assert!(out.all_ok());
        assert!(matches!(
            trace.records.first(),
            Some(TraceRecord::Fault { round: 0, .. })
        ));
    }

    #[test]
    fn churn_events_open_phases_and_are_judged() {
        let mut scn = quick_converge(
            TopologySpec::Cycle { n: 8 },
            SchedSpec::RandomAsync { seed: 3 },
        );
        scn.events = vec![
            ScenarioEvent::stable(EventAction::Churn(ChurnEvent::RemoveEdge(0, 1))),
            ScenarioEvent::stable(EventAction::Churn(ChurnEvent::InsertEdge(0, 1))),
        ];
        let (out, _) = run(&scn);
        assert_eq!(out.phases.len(), 3, "initial + one per event");
        assert!(out.all_ok(), "phases: {:?}", out.phases);
        assert_eq!(out.phases[1].label, "-edge(0,1)");
        // Removing a cycle edge leaves a path: tree forced, degree 2.
        assert_eq!(out.phases[1].degree, 2);
        assert_eq!(out.phases[2].label, "+edge(0,1)");
    }

    #[test]
    fn mid_flight_fault_phase_is_unchecked() {
        let mut scn = quick_converge(TopologySpec::StarRing { n: 8 }, SchedSpec::Synchronous);
        scn.events = vec![ScenarioEvent {
            timing: Timing::Round(3),
            action: EventAction::Fault(CorruptSpec {
                fraction: 0.5,
                drop: 0.0,
                seed: 2,
            }),
        }];
        let (out, _) = run(&scn);
        assert_eq!(out.phases.len(), 2);
        assert!(!out.phases[0].checked, "mid-flight phase is not judged");
        assert_eq!(out.phases[0].rounds, 3);
        assert!(out.phases[1].checked);
        assert!(out.phases[1].ok, "recovers from the mid-flight fault");
    }

    /// An absolute-round target that earlier phases already ran past fires
    /// immediately (zero-round phase), and the trace records the *actual*
    /// application round — the documented `Timing::Round` contract.
    #[test]
    fn already_passed_round_target_fires_immediately() {
        let mut scn = quick_converge(TopologySpec::StarRing { n: 8 }, SchedSpec::Synchronous);
        scn.events = vec![
            ScenarioEvent::stable(EventAction::Churn(ChurnEvent::RemoveEdge(1, 2))),
            ScenarioEvent {
                timing: Timing::Round(1), // long passed once phase 0 stabilized
                action: EventAction::Fault(CorruptSpec {
                    fraction: 0.5,
                    drop: 0.0,
                    seed: 3,
                }),
            },
        ];
        let (out, trace) = run_traced(&scn);
        assert_eq!(out.phases[1].rounds, 0, "target already passed: 0 rounds");
        let fault_round = trace
            .records
            .iter()
            .find_map(|r| match r {
                TraceRecord::Fault { round, .. } => Some(*round),
                _ => None,
            })
            .expect("fault recorded");
        assert!(fault_round > 1, "trace records the actual round, not 1");
        assert!(out.phases[2].converged, "run still recovers");
    }

    #[test]
    fn final_degree_follows_the_live_topology() {
        // A crashed node leaves one live component: its tree degree stands.
        let mut scn = quick_converge(TopologySpec::StarRing { n: 8 }, SchedSpec::Synchronous);
        scn.events = vec![ScenarioEvent::stable(EventAction::Churn(
            ChurnEvent::CrashNode(3),
        ))];
        let (out, _) = run(&scn);
        assert!(out.converged);
        assert!(
            out.final_degree.is_some(),
            "the 7 survivors re-form one spanning tree"
        );
        // An unhealed partition leaves two components: no single tree.
        let mut scn = quick_converge(TopologySpec::Cycle { n: 10 }, SchedSpec::Synchronous);
        scn.events = vec![ScenarioEvent::stable(EventAction::Churn(
            ChurnEvent::Partition(vec![(0, 1), (5, 6)]),
        ))];
        let (out, _) = run(&scn);
        assert!(out.converged);
        assert_eq!(out.phases.last().unwrap().components, 2);
        assert!(out.final_degree.is_none(), "two components, no single tree");
    }

    #[test]
    fn replay_is_bit_exact_and_detects_tampering() {
        let mut scn = quick_converge(
            TopologySpec::family(GraphFamily::GnpSparse, 10, 2),
            SchedSpec::Adversarial { seed: 11 },
        );
        scn.init_corrupt = Some(CorruptSpec {
            fraction: 0.5,
            drop: 0.0,
            seed: 4,
        });
        let (_, recorded) = run_traced(&scn);
        verify_replay(&scn, &recorded).expect("same scenario replays bit-for-bit");
        // A different daemon seed is a different execution.
        let mut other = scn.clone();
        other.scheduler = SchedSpec::Adversarial { seed: 12 };
        let err = verify_replay(&other, &recorded).expect_err("must diverge");
        assert!(err.contains("diverged"), "got: {err}");
        // Tampering with a recorded digest is caught.
        let mut tampered = recorded.clone();
        tampered.final_digest ^= 1;
        assert!(verify_replay(&scn, &tampered).is_err());
    }

    #[test]
    fn ablated_configs_run() {
        for cfg in [
            ConfigSpec::Strict,
            ConfigSpec::NoDeblock,
            ConfigSpec::NoBusyLatch,
        ] {
            let mut scn = quick_converge(TopologySpec::StarRing { n: 8 }, SchedSpec::Synchronous);
            scn.config = cfg;
            let (out, _) = run(&scn);
            assert!(out.converged, "{cfg:?} failed to converge on star-ring");
        }
    }

    #[test]
    fn stop_spec_round_cap_is_respected() {
        let scn = Scenario {
            stop: StopSpec {
                max_rounds: 5,
                quiet: Some(1_000),
            },
            ..quick_converge(TopologySpec::StarRing { n: 8 }, SchedSpec::Synchronous)
        };
        let (out, _) = run(&scn);
        assert!(!out.converged, "cannot confirm quiescence in 5 rounds");
        assert_eq!(out.conv_round, 5);
    }

    // ------------------------------------------------------------------
    // Protocol-generic engine
    // ------------------------------------------------------------------

    /// A non-MDST automaton runs end to end through the same engine:
    /// scenario → phases → judge → bit-exact replay.
    #[test]
    fn flood_scenario_runs_judges_and_replays() {
        let mut scn = quick_converge(
            TopologySpec::Cycle { n: 10 },
            SchedSpec::RandomAsync { seed: 7 },
        );
        scn.protocol = ProtocolSpec::FloodEcho;
        scn.init_corrupt = Some(CorruptSpec {
            fraction: 1.0,
            drop: 0.5,
            seed: 9,
        });
        scn.events = vec![
            ScenarioEvent::stable(EventAction::Churn(ChurnEvent::CrashNode(0))),
            ScenarioEvent::stable(EventAction::Churn(ChurnEvent::RejoinNode(0))),
        ];
        let (out, trace) = run_traced_any(&scn);
        assert_eq!(out.phases.len(), 3);
        assert!(out.all_ok(), "phases: {:?}", out.phases);
        assert!(out.final_degree.is_none(), "flood has no tree notion");
        assert!(out.total_msgs > 0);
        verify_replay(&scn, &trace).expect("flood replay is bit-exact");
        // The scenario round-trips through .scn with its protocol line.
        let reparsed = crate::scn::parse(&scn.canonical()).unwrap();
        assert_eq!(reparsed, scn);
        verify_replay(&reparsed, &trace).expect("parsed scenario replays too");
    }

    /// The same scenario value under the two protocols is two different
    /// executions with two different replay identities.
    #[test]
    fn protocols_have_distinct_replay_identities() {
        let mdst = quick_converge(TopologySpec::StarRing { n: 8 }, SchedSpec::Synchronous);
        let mut flood = mdst.clone();
        flood.protocol = ProtocolSpec::FloodEcho;
        let (a, ta) = run_traced_any(&mdst);
        let (b, tb) = run_traced_any(&flood);
        assert_ne!(a.digest, b.digest);
        assert_ne!(ta.fingerprint, tb.fingerprint);
        assert!(a.all_ok() && b.all_ok());
    }

    /// MDST-typed entry points refuse non-MDST scenarios loudly instead
    /// of silently running the wrong protocol.
    #[test]
    #[should_panic(expected = "use engine::run_any")]
    fn mdst_typed_entry_rejects_flood_scenarios() {
        let mut scn = quick_converge(TopologySpec::Path { n: 4 }, SchedSpec::Synchronous);
        scn.protocol = ProtocolSpec::FloodEcho;
        let _ = run(&scn);
    }
}
