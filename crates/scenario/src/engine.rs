//! The scenario executor: phases, component-wise judging, and the chained
//! record-replay digest.
//!
//! A scenario's events split the run into **phases**. Phase 0 starts from
//! the (possibly corrupted) initial configuration; each event opens the
//! next phase. `Timing::Stable` events fire once the network reaches
//! quiescence (judged on the canonical state projection with the canonical
//! confirmation window), `Timing::Round(r)` events fire at absolute round
//! `r` — mid-flight faults. Every phase is judged component-wise against
//! the live topology (`ssmdst_core::churn`): per-component spanning tree
//! with degree within one of the component's optimum.
//!
//! While running, the engine folds into one chained [`Digest`]:
//! every scheduler priority key and executed action (via
//! [`Runner::step_round_digest`]), the per-round state projection, and
//! every applied event. Two runs of the same `(Scenario)` value are
//! bit-identical iff their chains agree — that is the replay check
//! [`verify_replay`] performs and the golden-trace CI job enforces.

use crate::spec::{EventAction, Scenario, Timing};
use ssmdst_core::{build_network, churn, oracle, MdstNode, NodeId};
use ssmdst_graph::SolveBudget;
use ssmdst_sim::faults::{apply_churn, inject};
use ssmdst_sim::{quiet_window, Digest, Network, RunTrace, Runner, TraceRecord};

/// Observation-side knobs. These only affect how phases are *judged* —
/// never the execution or its digest chain, so they are engine parameters,
/// not scenario data.
#[derive(Debug, Clone, Copy)]
pub struct EngineOpts {
    /// Per-component Δ* solver budget for phase judging. `max_nodes: 0`
    /// skips exact solving; the witness lower bound then gives a
    /// conservative `within_one` verdict.
    pub delta_budget: SolveBudget,
}

impl Default for EngineOpts {
    /// Exact solving under the experiment harness's canonical budget, so
    /// scenario-driven tables agree with the pre-scenario ones.
    fn default() -> Self {
        EngineOpts {
            delta_budget: SolveBudget { max_nodes: 500_000 },
        }
    }
}

/// Outcome of one phase (initial convergence, or re-convergence after one
/// event).
#[derive(Debug, Clone)]
pub struct PhaseOutcome {
    /// `initial`, or the label of the event that opened the phase.
    pub label: String,
    /// Whether the phase reached quiescence before its round cap. For
    /// `Timing::Round` phases this is whether the target round was reached.
    pub converged: bool,
    /// Rounds from phase start to the converged configuration (the
    /// quiescence confirmation window is excluded when converged).
    pub rounds: u64,
    /// Whether the component-wise tree check ran (stable-timed and final
    /// phases only; mid-flight phases are not judged).
    pub checked: bool,
    /// Connected components of the live topology at phase end.
    pub components: usize,
    /// Worst component tree degree (0 when the check failed or didn't run).
    pub degree: u32,
    /// Exact Δ* of the worst component when the solver budget sufficed.
    pub delta_star: Option<u32>,
    /// Converged and every component within one of its optimum. Vacuously
    /// equal to `converged` for unchecked (mid-flight) phases.
    pub ok: bool,
}

/// Everything measured from one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub name: String,
    /// Node count of the built instance.
    pub n: usize,
    /// Edge count of the built instance.
    pub m: usize,
    /// One outcome per phase, in order; never empty.
    pub phases: Vec<PhaseOutcome>,
    /// Whether the final phase converged.
    pub converged: bool,
    /// Rounds of the final phase (confirmation window excluded).
    pub conv_round: u64,
    /// Final tree degree when the run ends on a single-component spanning
    /// tree, else `None`.
    pub final_degree: Option<u32>,
    /// Total messages sent across the whole run.
    pub total_msgs: u64,
    /// Messages by kind: (kind, sent, max size bits).
    pub msgs_by_kind: Vec<(&'static str, u64, usize)>,
    /// Largest message observed, in bits.
    pub max_msg_bits: usize,
    /// Peak number of undelivered messages.
    pub peak_in_flight: usize,
    /// Final chained run digest — the replay identity.
    pub digest: u64,
}

impl ScenarioOutcome {
    /// Whether every phase converged and passed its component check.
    pub fn all_ok(&self) -> bool {
        self.phases.iter().all(|p| p.ok)
    }
}

/// Run a scenario. Returns the outcome and the final runner for ad-hoc
/// inspection (state-size oracles, fault-injection follow-ups).
pub fn run(scn: &Scenario) -> (ScenarioOutcome, Runner<MdstNode>) {
    let (out, _, runner) = run_traced_observed(scn, |_, _| {});
    (out, runner)
}

/// [`run`] with explicit [`EngineOpts`].
pub fn run_opts(scn: &Scenario, opts: EngineOpts) -> (ScenarioOutcome, Runner<MdstNode>) {
    let (out, _, runner) = run_traced_observed_opts(scn, opts, |_, _| {});
    (out, runner)
}

/// Run a scenario with a per-round observer (called after every round with
/// the network and the absolute round number) — the hook the experiment
/// harness uses for trajectory and concurrency bookkeeping.
pub fn run_observed(
    scn: &Scenario,
    obs: impl FnMut(&Network<MdstNode>, u64),
) -> (ScenarioOutcome, Runner<MdstNode>) {
    let (out, _, runner) = run_traced_observed(scn, obs);
    (out, runner)
}

/// [`run_observed`] with explicit [`EngineOpts`].
pub fn run_observed_opts(
    scn: &Scenario,
    opts: EngineOpts,
    obs: impl FnMut(&Network<MdstNode>, u64),
) -> (ScenarioOutcome, Runner<MdstNode>) {
    let (out, _, runner) = run_traced_observed_opts(scn, opts, obs);
    (out, runner)
}

/// Run a scenario and keep the full [`RunTrace`] for golden-file
/// verification.
pub fn run_traced(scn: &Scenario) -> (ScenarioOutcome, RunTrace) {
    let (out, trace, _) = run_traced_observed(scn, |_, _| {});
    (out, trace)
}

/// Trace + observer + final runner, under default options.
pub fn run_traced_observed(
    scn: &Scenario,
    obs: impl FnMut(&Network<MdstNode>, u64),
) -> (ScenarioOutcome, RunTrace, Runner<MdstNode>) {
    run_traced_observed_opts(scn, EngineOpts::default(), obs)
}

/// The general form: trace + observer + final runner + options.
pub fn run_traced_observed_opts(
    scn: &Scenario,
    opts: EngineOpts,
    mut obs: impl FnMut(&Network<MdstNode>, u64),
) -> (ScenarioOutcome, RunTrace, Runner<MdstNode>) {
    let g = scn.topology.build();
    let n = g.n();
    let quiet = scn.stop.quiet.unwrap_or_else(|| quiet_window(n));
    let mut runner = Runner::new(
        build_network(&g, scn.config.build(n)),
        scn.scheduler.scheduler(),
    );
    let mut chain = Digest::new();
    let mut records = Vec::new();

    if let Some(c) = &scn.init_corrupt {
        let victims = inject(runner.network_mut(), c.plan());
        chain.write_str("init-fault");
        chain.write_u64(victims.len() as u64);
        records.push(TraceRecord::Fault {
            round: 0,
            victims: victims.len(),
        });
    }

    let mut phases: Vec<PhaseOutcome> = Vec::new();
    let mut run_and_record = |runner: &mut Runner<MdstNode>,
                              chain: &mut Digest,
                              records: &mut Vec<TraceRecord>,
                              obs: &mut dyn FnMut(&Network<MdstNode>, u64),
                              label: String,
                              until: Option<u64>| {
        let phase = run_phase(
            runner,
            chain,
            obs,
            scn.stop.max_rounds,
            quiet,
            opts.delta_budget,
            label,
            until,
        );
        records.push(TraceRecord::Phase {
            label: phase.label.clone(),
            rounds: phase.rounds,
            digest: chain.value(),
        });
        phases.push(phase);
    };

    let mut label = "initial".to_string();
    for ev in &scn.events {
        let until = match ev.timing {
            Timing::Stable => None,
            Timing::Round(r) => Some(r),
        };
        run_and_record(
            &mut runner,
            &mut chain,
            &mut records,
            &mut obs,
            label,
            until,
        );
        label = ev.action.label();
        let round = runner.round();
        match &ev.action {
            EventAction::Fault(c) => {
                let victims = inject(runner.network_mut(), c.plan());
                chain.write_str("fault");
                chain.write_u64(victims.len() as u64);
                records.push(TraceRecord::Fault {
                    round,
                    victims: victims.len(),
                });
            }
            EventAction::Churn(c) => {
                apply_churn(runner.network_mut(), c);
                chain.write_str("churn");
                chain.write_str(&label);
                records.push(TraceRecord::Topology {
                    round,
                    event: label.clone(),
                });
            }
        }
    }
    run_and_record(&mut runner, &mut chain, &mut records, &mut obs, label, None);

    let last = phases.last().expect("at least one phase");
    let final_degree = if last.checked && last.components == 1 && last.degree > 0 {
        Some(last.degree)
    } else {
        oracle::current_degree(&g, runner.network()).filter(|_| runner.network().alive_count() == n)
    };
    let metrics = &runner.network().metrics;
    let outcome = ScenarioOutcome {
        name: scn.name.clone(),
        n,
        m: g.m(),
        converged: last.converged,
        conv_round: last.rounds,
        final_degree,
        total_msgs: metrics.total_sent,
        msgs_by_kind: metrics
            .kinds()
            .map(|(k, s)| (k, s.sent, s.max_size_bits))
            .collect(),
        max_msg_bits: metrics.max_message_bits(),
        peak_in_flight: metrics.peak_in_flight,
        digest: chain.value(),
        phases,
    };
    let trace = RunTrace {
        fingerprint: scn.fingerprint(),
        records,
        final_digest: chain.value(),
    };
    (outcome, trace, runner)
}

/// Drive one phase: to quiescence (`until = None`) or to the absolute
/// round `until`, folding schedule and projection into the chain each
/// round.
#[allow(clippy::too_many_arguments)]
fn run_phase(
    runner: &mut Runner<MdstNode>,
    chain: &mut Digest,
    obs: &mut dyn FnMut(&Network<MdstNode>, u64),
    max_rounds: u64,
    quiet: u64,
    delta_budget: SolveBudget,
    label: String,
    until: Option<u64>,
) -> PhaseOutcome {
    let start = runner.round();
    let mut last = oracle::projection(runner.network());
    let mut quiet_for = 0u64;
    let converged = loop {
        if let Some(target) = until {
            if runner.round() >= target {
                break true;
            }
        }
        if runner.round() - start >= max_rounds {
            break false;
        }
        runner.step_round_digest(chain);
        obs(runner.network(), runner.round());
        let proj = oracle::projection(runner.network());
        fold_projection(chain, &proj);
        if until.is_none() {
            if proj == last {
                quiet_for += 1;
            } else {
                quiet_for = 0;
                last = proj;
            }
            if quiet_for >= quiet {
                break true;
            }
        }
    };
    let rounds_used = runner.round() - start;
    let rounds = if converged && until.is_none() {
        rounds_used.saturating_sub(quiet)
    } else {
        rounds_used
    };
    // Judge stable-timed phases component-wise; mid-flight phases are in
    // transit by construction and are not judged.
    let (checked, components, degree, delta_star, ok) = if until.is_none() {
        match churn::check_reconvergence(runner.network(), delta_budget) {
            Ok(reports) => {
                let worst = reports.iter().max_by_key(|r| r.degree);
                (
                    true,
                    reports.len(),
                    worst.map(|r| r.degree).unwrap_or(0),
                    worst.and_then(|r| r.delta_star),
                    converged && reports.iter().all(|r| r.within_one),
                )
            }
            Err(_) => (true, 0, 0, None, false),
        }
    } else {
        (false, 0, 0, None, converged)
    };
    PhaseOutcome {
        label,
        converged,
        rounds,
        checked,
        components,
        degree,
        delta_star,
        ok,
    }
}

/// Fold the canonical state projection (parents, dmax, distances) into the
/// chain — any state divergence in any round breaks every later digest.
fn fold_projection(chain: &mut Digest, proj: &(Vec<NodeId>, Vec<u32>, Vec<u32>)) {
    for &p in &proj.0 {
        chain.write_u32(p);
    }
    for &d in &proj.1 {
        chain.write_u32(d);
    }
    for &d in &proj.2 {
        chain.write_u32(d);
    }
}

/// Replay `scn` and compare against a recorded trace. `Ok(())` means the
/// re-run reproduced the recording bit-for-bit; `Err` describes the first
/// divergence.
pub fn verify_replay(scn: &Scenario, recorded: &RunTrace) -> Result<(), String> {
    let (_, replayed) = run_traced(scn);
    match recorded.first_divergence(&replayed) {
        None => Ok(()),
        Some(d) => Err(format!("replay of '{}' diverged: {d}", scn.name)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ConfigSpec, CorruptSpec, ScenarioEvent, SchedSpec, StopSpec, TopologySpec};
    use ssmdst_graph::generators::GraphFamily;
    use ssmdst_sim::ChurnEvent;

    fn quick_converge(topology: TopologySpec, sched: SchedSpec) -> Scenario {
        Scenario::converge("t", topology, sched, 40_000)
    }

    #[test]
    fn plain_convergence_has_one_ok_phase() {
        let scn = quick_converge(TopologySpec::StarRing { n: 8 }, SchedSpec::Synchronous);
        let (out, _) = run(&scn);
        assert_eq!(out.phases.len(), 1);
        assert!(out.converged);
        assert!(out.all_ok());
        assert_eq!(out.phases[0].label, "initial");
        assert_eq!(out.phases[0].components, 1);
        assert!(out.final_degree.unwrap() <= 3);
        assert!(out.total_msgs > 0);
    }

    #[test]
    fn corrupt_start_still_stabilizes() {
        let mut scn = quick_converge(
            TopologySpec::family(GraphFamily::GnpSparse, 10, 1),
            SchedSpec::Synchronous,
        );
        scn.init_corrupt = Some(CorruptSpec {
            fraction: 1.0,
            drop: 1.0,
            seed: 5,
        });
        let (out, trace) = run_traced(&scn);
        assert!(out.converged, "self-stabilization from garbage");
        assert!(out.all_ok());
        assert!(matches!(
            trace.records.first(),
            Some(TraceRecord::Fault { round: 0, .. })
        ));
    }

    #[test]
    fn churn_events_open_phases_and_are_judged() {
        let mut scn = quick_converge(
            TopologySpec::Cycle { n: 8 },
            SchedSpec::RandomAsync { seed: 3 },
        );
        scn.events = vec![
            ScenarioEvent::stable(EventAction::Churn(ChurnEvent::RemoveEdge(0, 1))),
            ScenarioEvent::stable(EventAction::Churn(ChurnEvent::InsertEdge(0, 1))),
        ];
        let (out, _) = run(&scn);
        assert_eq!(out.phases.len(), 3, "initial + one per event");
        assert!(out.all_ok(), "phases: {:?}", out.phases);
        assert_eq!(out.phases[1].label, "-edge(0,1)");
        // Removing a cycle edge leaves a path: tree forced, degree 2.
        assert_eq!(out.phases[1].degree, 2);
        assert_eq!(out.phases[2].label, "+edge(0,1)");
    }

    #[test]
    fn mid_flight_fault_phase_is_unchecked() {
        let mut scn = quick_converge(TopologySpec::StarRing { n: 8 }, SchedSpec::Synchronous);
        scn.events = vec![ScenarioEvent {
            timing: Timing::Round(3),
            action: EventAction::Fault(CorruptSpec {
                fraction: 0.5,
                drop: 0.0,
                seed: 2,
            }),
        }];
        let (out, _) = run(&scn);
        assert_eq!(out.phases.len(), 2);
        assert!(!out.phases[0].checked, "mid-flight phase is not judged");
        assert_eq!(out.phases[0].rounds, 3);
        assert!(out.phases[1].checked);
        assert!(out.phases[1].ok, "recovers from the mid-flight fault");
    }

    /// An absolute-round target that earlier phases already ran past fires
    /// immediately (zero-round phase), and the trace records the *actual*
    /// application round — the documented `Timing::Round` contract.
    #[test]
    fn already_passed_round_target_fires_immediately() {
        let mut scn = quick_converge(TopologySpec::StarRing { n: 8 }, SchedSpec::Synchronous);
        scn.events = vec![
            ScenarioEvent::stable(EventAction::Churn(ChurnEvent::RemoveEdge(1, 2))),
            ScenarioEvent {
                timing: Timing::Round(1), // long passed once phase 0 stabilized
                action: EventAction::Fault(CorruptSpec {
                    fraction: 0.5,
                    drop: 0.0,
                    seed: 3,
                }),
            },
        ];
        let (out, trace) = run_traced(&scn);
        assert_eq!(out.phases[1].rounds, 0, "target already passed: 0 rounds");
        let fault_round = trace
            .records
            .iter()
            .find_map(|r| match r {
                TraceRecord::Fault { round, .. } => Some(*round),
                _ => None,
            })
            .expect("fault recorded");
        assert!(fault_round > 1, "trace records the actual round, not 1");
        assert!(out.phases[2].converged, "run still recovers");
    }

    #[test]
    fn final_degree_follows_the_live_topology() {
        // A crashed node leaves one live component: its tree degree stands.
        let mut scn = quick_converge(TopologySpec::StarRing { n: 8 }, SchedSpec::Synchronous);
        scn.events = vec![ScenarioEvent::stable(EventAction::Churn(
            ChurnEvent::CrashNode(3),
        ))];
        let (out, _) = run(&scn);
        assert!(out.converged);
        assert!(
            out.final_degree.is_some(),
            "the 7 survivors re-form one spanning tree"
        );
        // An unhealed partition leaves two components: no single tree.
        let mut scn = quick_converge(TopologySpec::Cycle { n: 10 }, SchedSpec::Synchronous);
        scn.events = vec![ScenarioEvent::stable(EventAction::Churn(
            ChurnEvent::Partition(vec![(0, 1), (5, 6)]),
        ))];
        let (out, _) = run(&scn);
        assert!(out.converged);
        assert_eq!(out.phases.last().unwrap().components, 2);
        assert!(out.final_degree.is_none(), "two components, no single tree");
    }

    #[test]
    fn replay_is_bit_exact_and_detects_tampering() {
        let mut scn = quick_converge(
            TopologySpec::family(GraphFamily::GnpSparse, 10, 2),
            SchedSpec::Adversarial { seed: 11 },
        );
        scn.init_corrupt = Some(CorruptSpec {
            fraction: 0.5,
            drop: 0.0,
            seed: 4,
        });
        let (_, recorded) = run_traced(&scn);
        verify_replay(&scn, &recorded).expect("same scenario replays bit-for-bit");
        // A different daemon seed is a different execution.
        let mut other = scn.clone();
        other.scheduler = SchedSpec::Adversarial { seed: 12 };
        let err = verify_replay(&other, &recorded).expect_err("must diverge");
        assert!(err.contains("diverged"), "got: {err}");
        // Tampering with a recorded digest is caught.
        let mut tampered = recorded.clone();
        tampered.final_digest ^= 1;
        assert!(verify_replay(&scn, &tampered).is_err());
    }

    #[test]
    fn ablated_configs_run() {
        for cfg in [
            ConfigSpec::Strict,
            ConfigSpec::NoDeblock,
            ConfigSpec::NoBusyLatch,
        ] {
            let mut scn = quick_converge(TopologySpec::StarRing { n: 8 }, SchedSpec::Synchronous);
            scn.config = cfg;
            let (out, _) = run(&scn);
            assert!(out.converged, "{cfg:?} failed to converge on star-ring");
        }
    }

    #[test]
    fn stop_spec_round_cap_is_respected() {
        let scn = Scenario {
            stop: StopSpec {
                max_rounds: 5,
                quiet: Some(1_000),
            },
            ..quick_converge(TopologySpec::StarRing { n: 8 }, SchedSpec::Synchronous)
        };
        let (out, _) = run(&scn);
        assert!(!out.converged, "cannot confirm quiescence in 5 rounds");
        assert_eq!(out.conv_round, 5);
    }
}
