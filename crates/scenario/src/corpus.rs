//! The curated scenario corpus: the regression surface the conformance
//! tests and the CI smoke job sweep.
//!
//! Every entry is small enough to run in a debug-build test yet covers one
//! distinct region of the scenario space — a topology family, a daemon, an
//! arbitrary-configuration start, a churn shape, or a mid-flight fault.
//! Corpus names are stable identifiers: `ssmdst replay` accepts a corpus
//! name anywhere it accepts a `.scn` path.

use crate::spec::{
    CorruptSpec, EventAction, ProtocolSpec, Scenario, ScenarioEvent, SchedSpec, Timing,
    TopologySpec,
};
use ssmdst_graph::generators::GraphFamily;
use ssmdst_sim::{ChurnEvent, TopologyPlan};

/// Default per-phase round cap for corpus entries.
const MAX_ROUNDS: u64 = 60_000;

/// The full corpus, in stable order with unique stable names.
pub fn corpus() -> Vec<Scenario> {
    // Plain convergence (one per daemon) + structured instances with
    // known optima.
    let mut scns = vec![
        Scenario::converge(
            "converge-gnp-sync",
            TopologySpec::family(GraphFamily::GnpSparse, 10, 1),
            SchedSpec::Synchronous,
            MAX_ROUNDS,
        ),
        Scenario::converge(
            "converge-gnp-async",
            TopologySpec::family(GraphFamily::GnpSparse, 10, 1),
            SchedSpec::RandomAsync { seed: 7 },
            MAX_ROUNDS,
        ),
        Scenario::converge(
            "converge-scalefree-adversarial",
            TopologySpec::family(GraphFamily::ScaleFree, 10, 2),
            SchedSpec::Adversarial { seed: 11 },
            MAX_ROUNDS,
        ),
        Scenario::converge(
            "converge-ham-chords",
            TopologySpec::family(GraphFamily::HamiltonianChords, 12, 3),
            SchedSpec::Synchronous,
            MAX_ROUNDS,
        ),
        Scenario::converge(
            "converge-spider",
            TopologySpec::family(GraphFamily::Spider, 12, 1),
            SchedSpec::RandomAsync { seed: 5 },
            MAX_ROUNDS,
        ),
        Scenario::converge(
            "converge-grid",
            TopologySpec::family(GraphFamily::Grid, 9, 1),
            SchedSpec::Synchronous,
            MAX_ROUNDS,
        ),
    ];

    // --- Arbitrary-configuration starts (the paper's Definition 1). ---
    let mut total_reset = Scenario::converge(
        "corrupt-start-total",
        TopologySpec::family(GraphFamily::GnpSparse, 10, 1),
        SchedSpec::Synchronous,
        MAX_ROUNDS,
    );
    total_reset.init_corrupt = Some(CorruptSpec {
        fraction: 1.0,
        drop: 1.0,
        seed: 5,
    });
    scns.push(total_reset);

    let mut partial_garbage = Scenario::converge(
        "corrupt-start-partial-adversarial",
        TopologySpec::family(GraphFamily::GnpDense, 10, 2),
        SchedSpec::Adversarial { seed: 3 },
        MAX_ROUNDS,
    );
    partial_garbage.init_corrupt = Some(CorruptSpec {
        fraction: 0.5,
        drop: 0.0,
        seed: 8,
    });
    scns.push(partial_garbage);

    // --- Stabilize, corrupt, re-stabilize (experiment F2's regime). ---
    let mut recover = Scenario::converge(
        "fault-after-stable",
        TopologySpec::StarRing { n: 8 },
        SchedSpec::Synchronous,
        MAX_ROUNDS,
    );
    recover.events = vec![ScenarioEvent::stable(EventAction::Fault(CorruptSpec {
        fraction: 0.5,
        drop: 0.5,
        seed: 9,
    }))];
    scns.push(recover);

    // --- A mid-flight fault: corruption lands before first convergence. ---
    let mut midflight = Scenario::converge(
        "fault-mid-flight",
        TopologySpec::family(GraphFamily::GnpSparse, 10, 4),
        SchedSpec::RandomAsync { seed: 13 },
        MAX_ROUNDS,
    );
    midflight.events = vec![ScenarioEvent {
        timing: Timing::Round(5),
        action: EventAction::Fault(CorruptSpec {
            fraction: 0.3,
            drop: 0.0,
            seed: 2,
        }),
    }];
    scns.push(midflight);

    // --- Topology churn: edge remove/insert, crash/rejoin, partition. ---
    let mut edge_churn = Scenario::converge(
        "edge-churn-async",
        TopologySpec::Cycle { n: 8 },
        SchedSpec::RandomAsync { seed: 3 },
        MAX_ROUNDS,
    );
    edge_churn.events = vec![
        ScenarioEvent::stable(EventAction::Churn(ChurnEvent::RemoveEdge(0, 1))),
        ScenarioEvent::stable(EventAction::Churn(ChurnEvent::InsertEdge(0, 1))),
    ];
    scns.push(edge_churn);

    let mut crash_rejoin = Scenario::converge(
        "crash-rejoin-star-ring",
        TopologySpec::StarRing { n: 8 },
        SchedSpec::Synchronous,
        MAX_ROUNDS,
    );
    crash_rejoin.events = vec![
        ScenarioEvent::stable(EventAction::Churn(ChurnEvent::CrashNode(3))),
        ScenarioEvent::stable(EventAction::Churn(ChurnEvent::RejoinNode(3))),
    ];
    scns.push(crash_rejoin);

    let mut split_heal = Scenario::converge(
        "partition-heal-cycle",
        TopologySpec::Cycle { n: 10 },
        SchedSpec::Synchronous,
        MAX_ROUNDS,
    );
    let cut = vec![(0, 1), (5, 6)];
    split_heal.events = vec![
        ScenarioEvent::stable(EventAction::Churn(ChurnEvent::Partition(cut.clone()))),
        ScenarioEvent::stable(EventAction::Churn(ChurnEvent::Heal(cut))),
    ];
    scns.push(split_heal);

    // --- The gauntlet: corruption at birth plus seeded mixed churn. ---
    let topo = TopologySpec::family(GraphFamily::GnpSparse, 10, 1);
    let g = topo.build();
    let mut gauntlet = Scenario::converge(
        "gauntlet-corrupt-churn",
        topo,
        SchedSpec::Adversarial { seed: 17 },
        MAX_ROUNDS,
    );
    gauntlet.init_corrupt = Some(CorruptSpec {
        fraction: 1.0,
        drop: 1.0,
        seed: 23,
    });
    gauntlet.events = TopologyPlan::edge_churn(&g, 1, 4)
        .events
        .into_iter()
        .map(|e| ScenarioEvent::stable(EventAction::Churn(e)))
        .collect();
    scns.push(gauntlet);

    // --- Non-MDST workloads: the flood/echo leader election through the
    // --- same scenarios/replay/campaign machinery (protocol registry). ---
    let mut flood = Scenario::converge(
        "flood-echo-leader",
        TopologySpec::family(GraphFamily::GnpSparse, 12, 3),
        SchedSpec::RandomAsync { seed: 5 },
        MAX_ROUNDS,
    );
    flood.protocol = ProtocolSpec::FloodEcho;
    scns.push(flood);

    let mut flood_gauntlet = Scenario::converge(
        "flood-echo-reelect",
        TopologySpec::Cycle { n: 10 },
        SchedSpec::Adversarial { seed: 7 },
        MAX_ROUNDS,
    );
    flood_gauntlet.protocol = ProtocolSpec::FloodEcho;
    flood_gauntlet.init_corrupt = Some(CorruptSpec {
        fraction: 1.0,
        drop: 0.5,
        seed: 13,
    });
    // Crash the elected minimum (ghost-claim flush), then bring it back.
    flood_gauntlet.events = vec![
        ScenarioEvent::stable(EventAction::Churn(ChurnEvent::CrashNode(0))),
        ScenarioEvent::stable(EventAction::Churn(ChurnEvent::RejoinNode(0))),
    ];
    scns.push(flood_gauntlet);

    for text in STORM_HARVEST {
        let scn = crate::scn::parse(text)
            .expect("harvested corpus entries are storm-emitted canonical .scn text"); // lint: allow(no-panic-in-library) — compile-time literals, covered by the round-trip test
        scns.push(scn);
    }

    scns
}

/// Storm-harvested corpus entries: the top coverage-gain survivors of a
/// long fixed-seed storm (`ssmdst storm --seed 7 --execs 1300 --distill`),
/// kept verbatim as the canonical `.scn` text the storm wrote (only the
/// `name` line is rewritten to a stable descriptive identifier; the
/// original storm id is noted per entry). Each one covers coverage
/// features none of the hand-written entries reach.
const STORM_HARVEST: &[&str] = &[
    // storm-7-1145 (+54 features): partial-corrupt multi-hub under an
    // async daemon, hit by partitions, repeated fault bursts, churn and
    // a final total wipe.
    "# ssmdst scenario v1\n\
     name = storm-multihub-gauntlet\n\
     topology = multi-hub hubs=3 spokes=4\n\
     scheduler = async:177\n\
     config = default\n\
     init = fraction=0.5 drop=0 seed=3563\n\
     stop = max-rounds=60000 quiet=auto\n\
     event = round:303 churn partition(5-7)\n\
     event = stable fault fraction=1 drop=0 seed=1488\n\
     event = round:21 churn rejoin(3)\n\
     event = stable fault fraction=0.1 drop=0.5 seed=8028\n\
     event = stable churn +edge(7,8)\n\
     event = round:82 churn crash(5)\n\
     event = round:201 fault fraction=0.25 drop=0 seed=8969\n\
     event = stable fault fraction=1 drop=1 seed=5832\n",
    // storm-7-723 (+38 features): mid-flight fault bursts racing a
    // partition on the synchronous daemon, then crash after recovery.
    "# ssmdst scenario v1\n\
     name = storm-partition-fault-race\n\
     topology = family:gnp-sparse n=10 seed=1\n\
     scheduler = sync\n\
     config = default\n\
     stop = max-rounds=60000 quiet=auto\n\
     event = round:389 churn partition(5-7)\n\
     event = round:9 fault fraction=0.25 drop=1 seed=5170\n\
     event = stable fault fraction=1 drop=0 seed=1488\n\
     event = round:250 fault fraction=0.25 drop=0 seed=2184\n\
     event = round:21 churn rejoin(3)\n\
     event = stable churn crash(5)\n",
    // storm-7-569 (+26 features): a partition cutting a complete
    // bipartite instance, total corruption while split, then crash.
    "# ssmdst scenario v1\n\
     name = storm-bipartite-partition\n\
     topology = complete-bipartite a=4 b=2\n\
     scheduler = async:177\n\
     config = default\n\
     stop = max-rounds=60000 quiet=auto\n\
     event = stable churn partition(1-5)\n\
     event = stable fault fraction=1 drop=0 seed=1488\n\
     event = round:21 churn rejoin(3)\n\
     event = round:172 churn crash(5)\n",
    // storm-7-198 (+12 features): flood-echo leader crash plus a fault
    // burst before the late rejoin (non-MDST churn coverage).
    "# ssmdst scenario v1\n\
     name = storm-flood-echo-crash-burst\n\
     protocol = flood-echo\n\
     topology = cycle n=10\n\
     scheduler = adversarial:7\n\
     config = default\n\
     init = fraction=1 drop=0.5 seed=13\n\
     stop = max-rounds=60000 quiet=auto\n\
     event = stable churn crash(0)\n\
     event = stable fault fraction=0.25 drop=1 seed=6236\n\
     event = round:175 churn rejoin(0)\n",
    // storm-7-1291 (+2 features, unique cycle-n=15 signatures): the full
    // event storm replayed on a larger odd cycle.
    "# ssmdst scenario v1\n\
     name = storm-cycle-event-storm\n\
     topology = cycle n=15\n\
     scheduler = async:177\n\
     config = default\n\
     stop = max-rounds=60000 quiet=auto\n\
     event = round:303 churn partition(5-7)\n\
     event = stable fault fraction=1 drop=0 seed=1488\n\
     event = round:21 churn rejoin(3)\n\
     event = stable fault fraction=0.1 drop=0.5 seed=8028\n\
     event = stable churn +edge(7,8)\n\
     event = round:82 churn crash(5)\n\
     event = round:201 fault fraction=0.25 drop=0 seed=8969\n\
     event = stable fault fraction=1 drop=1 seed=5832\n",
];

/// Look up a corpus entry by its stable name.
pub fn by_name(name: &str) -> Option<Scenario> {
    corpus().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_names_are_unique_and_stable() {
        let scns = corpus();
        assert!(scns.len() >= 12, "corpus should stay broad");
        let mut names: Vec<&str> = scns.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), scns.len(), "duplicate corpus names");
        assert!(by_name("corrupt-start-total").is_some());
        assert!(by_name("no-such-scenario").is_none());
    }

    /// The storm-harvested entries stay in the corpus (they carry
    /// coverage features none of the hand-written entries reach) and
    /// kept their event payloads through the literal → parse path.
    #[test]
    fn storm_harvest_is_present_and_eventful() {
        for name in [
            "storm-multihub-gauntlet",
            "storm-partition-fault-race",
            "storm-bipartite-partition",
            "storm-flood-echo-crash-burst",
            "storm-cycle-event-storm",
        ] {
            let scn = by_name(name).unwrap_or_else(|| panic!("{name} missing"));
            assert!(!scn.events.is_empty(), "{name} lost its events");
        }
        assert_eq!(
            by_name("storm-flood-echo-crash-burst").unwrap().protocol,
            ProtocolSpec::FloodEcho
        );
    }

    #[test]
    fn corpus_round_trips_through_scn_text() {
        for scn in corpus() {
            let text = scn.canonical();
            let parsed = crate::scn::parse(&text)
                .unwrap_or_else(|e| panic!("{} fails to parse: {e}", scn.name));
            assert_eq!(parsed, scn, "{} round trip", scn.name);
        }
    }

    #[test]
    fn gauntlet_has_real_churn_events() {
        let g = by_name("gauntlet-corrupt-churn").unwrap();
        assert!(!g.events.is_empty(), "seeded churn plan must be non-empty");
    }

    /// The corpus covers more than one protocol, and the non-MDST entries
    /// carry their registry line through the `.scn` round trip.
    #[test]
    fn corpus_spans_protocols() {
        let flood: Vec<Scenario> = corpus()
            .into_iter()
            .filter(|s| s.protocol == ProtocolSpec::FloodEcho)
            .collect();
        assert!(flood.len() >= 2, "non-MDST coverage must stay");
        for s in flood {
            assert!(
                s.canonical().contains("protocol = flood-echo"),
                "{}",
                s.name
            );
        }
    }
}
