//! The declarative [`Scenario`] type and its components.
//!
//! A scenario is pure data: everything needed to reconstruct a run
//! bit-for-bit — topology generator and parameters, daemon, protocol
//! config variant, initial-state corruption, a timed event plan, and a
//! stopping condition. All randomness is named by explicit seeds, so
//! `(Scenario)` alone determines the execution.

use ssmdst_graph::generators::{gadgets, structured, GraphFamily};
use ssmdst_graph::Graph;
use ssmdst_sim::faults::FaultPlan;
use ssmdst_sim::{Backend, ChurnEvent, Digest, Scheduler};

/// How the workload graph is generated. Every variant is deterministic
/// (seeded where random) and serializable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologySpec {
    /// One of the harness's [`GraphFamily`] generators, by label.
    Family {
        /// Family label as printed by [`GraphFamily::label`].
        family: String,
        /// Approximate node count (families round to their natural shape).
        n: usize,
        /// Generator seed.
        seed: u64,
    },
    /// A path on `n` nodes.
    Path {
        /// Node count (≥ 2).
        n: usize,
    },
    /// A cycle on `n` nodes.
    Cycle {
        /// Node count (≥ 3).
        n: usize,
    },
    /// Star with a ring over the leaves on `n` nodes.
    StarRing {
        /// Node count (≥ 4).
        n: usize,
    },
    /// The F3 concurrency gadget: `hubs` maximum-degree hubs.
    MultiHub {
        /// Number of hubs (≥ 2).
        hubs: usize,
        /// Spokes per hub (≥ 3).
        spokes: usize,
    },
    /// Complete bipartite graph `K_{a,b}`.
    CompleteBipartite {
        /// Left side size (≥ 1).
        a: usize,
        /// Right side size (≥ 1).
        b: usize,
    },
}

impl TopologySpec {
    /// Convenience constructor for a [`GraphFamily`]-generated topology.
    pub fn family(fam: GraphFamily, n: usize, seed: u64) -> Self {
        TopologySpec::Family {
            family: fam.label().to_string(),
            n,
            seed,
        }
    }

    /// Build the graph this spec describes.
    ///
    /// # Panics
    /// Panics on an unknown family label or out-of-range parameters; specs
    /// parsed from `.scn` text are validated at parse time.
    pub fn build(&self) -> Graph {
        match self {
            TopologySpec::Family { family, n, seed } => {
                let fam = GraphFamily::all()
                    .iter()
                    .find(|f| f.label() == family)
                    // lint: allow(no-panic-in-library) — documented `# Panics`: .scn parsing validates labels before build
                    .unwrap_or_else(|| panic!("unknown graph family '{family}'"));
                fam.generate(*n, *seed)
            }
            TopologySpec::Path { n } => structured::path(*n).expect("path parameters"), // lint: allow(no-panic-in-library) — documented `# Panics`: parse-time validation
            TopologySpec::Cycle { n } => structured::cycle(*n).expect("cycle parameters"), // lint: allow(no-panic-in-library) — documented `# Panics`: parse-time validation
            TopologySpec::StarRing { n } => {
                structured::star_with_ring(*n).expect("star-ring parameters") // lint: allow(no-panic-in-library) — documented `# Panics`: parse-time validation
            }
            TopologySpec::MultiHub { hubs, spokes } => {
                // lint: allow(no-panic-in-library) — documented `# Panics`: parse-time validation
                gadgets::multi_hub(*hubs, *spokes).expect("multi-hub parameters")
            }
            TopologySpec::CompleteBipartite { a, b } => {
                // lint: allow(no-panic-in-library) — documented `# Panics`: parse-time validation
                structured::complete_bipartite(*a, *b).expect("complete-bipartite parameters")
            }
        }
    }

    /// The *requested* node count (families may round it; gadget variants
    /// report their derived count). Used by the shrinker's size metric.
    pub fn n_hint(&self) -> usize {
        match self {
            TopologySpec::Family { n, .. }
            | TopologySpec::Path { n }
            | TopologySpec::Cycle { n }
            | TopologySpec::StarRing { n } => *n,
            TopologySpec::MultiHub { hubs, spokes } => hubs * (1 + spokes),
            TopologySpec::CompleteBipartite { a, b } => a + b,
        }
    }

    /// Smallest `n` this spec can shrink to, when `n` is shrinkable at all.
    pub fn min_n(&self) -> Option<usize> {
        match self {
            TopologySpec::Family { .. } => Some(4),
            TopologySpec::Path { .. } => Some(2),
            TopologySpec::Cycle { .. } => Some(3),
            TopologySpec::StarRing { .. } => Some(4),
            TopologySpec::MultiHub { .. } | TopologySpec::CompleteBipartite { .. } => None,
        }
    }

    /// The same spec with a smaller `n`, when shrinkable.
    pub fn with_n(&self, n: usize) -> Option<TopologySpec> {
        match self {
            TopologySpec::Family { family, seed, .. } => Some(TopologySpec::Family {
                family: family.clone(),
                n,
                seed: *seed,
            }),
            TopologySpec::Path { .. } => Some(TopologySpec::Path { n }),
            TopologySpec::Cycle { .. } => Some(TopologySpec::Cycle { n }),
            TopologySpec::StarRing { .. } => Some(TopologySpec::StarRing { n }),
            TopologySpec::MultiHub { .. } | TopologySpec::CompleteBipartite { .. } => None,
        }
    }
}

/// Which registered protocol a scenario drives — the registry axis that
/// makes the scenario/campaign/replay layer automaton-generic. Defaults
/// to [`ProtocolSpec::Mdst`], and the default is *omitted* from the
/// canonical `.scn` rendering, so every pre-registry scenario text,
/// fingerprint and golden trace is unchanged byte for byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProtocolSpec {
    /// The paper's self-stabilizing MDST (`ssmdst-core`) — the default.
    #[default]
    Mdst,
    /// The simulator's self-stabilizing minimum flood / leader election
    /// ([`ssmdst_sim::protocols::FloodEcho`]).
    FloodEcho,
}

impl ProtocolSpec {
    /// The `.scn` spelling of this protocol.
    pub fn label(&self) -> &'static str {
        match self {
            ProtocolSpec::Mdst => "mdst",
            ProtocolSpec::FloodEcho => "flood-echo",
        }
    }

    /// Parse the `.scn` spelling.
    pub fn parse(s: &str) -> Result<ProtocolSpec, String> {
        match s {
            "mdst" => Ok(ProtocolSpec::Mdst),
            "flood-echo" => Ok(ProtocolSpec::FloodEcho),
            other => Err(format!("unknown protocol {other:?} (mdst | flood-echo)")),
        }
    }
}

/// Daemon choice, serializable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedSpec {
    /// Lockstep rounds.
    Synchronous,
    /// Seeded uniformly random fair interleaving.
    RandomAsync {
        /// Daemon seed.
        seed: u64,
    },
    /// Seeded deterministic unfair-within-round daemon.
    Adversarial {
        /// Daemon seed.
        seed: u64,
    },
}

impl SchedSpec {
    /// The simulator scheduler this spec describes.
    pub fn scheduler(&self) -> Scheduler {
        match *self {
            SchedSpec::Synchronous => Scheduler::Synchronous,
            SchedSpec::RandomAsync { seed } => Scheduler::RandomAsync { seed },
            SchedSpec::Adversarial { seed } => Scheduler::Adversarial { seed },
        }
    }

    /// Short human label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            SchedSpec::Synchronous => "synchronous",
            SchedSpec::RandomAsync { .. } => "random-async",
            SchedSpec::Adversarial { .. } => "adversarial",
        }
    }
}

/// Protocol configuration variant (the ablation axis), serializable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigSpec {
    /// `Config::for_n` — the default gentle configuration.
    Default,
    /// `Config::strict` — the paper's strict R2 distance repair.
    Strict,
    /// `Config::without_deblock` — Deblock module ablated.
    NoDeblock,
    /// `Config::without_busy_latch` — busy latch ablated.
    NoBusyLatch,
}

impl ConfigSpec {
    /// Build the concrete protocol config for an `n`-node instance.
    pub fn build(&self, n: usize) -> ssmdst_core::Config {
        match self {
            ConfigSpec::Default => ssmdst_core::Config::for_n(n),
            ConfigSpec::Strict => ssmdst_core::Config::strict(n),
            ConfigSpec::NoDeblock => ssmdst_core::Config::without_deblock(n),
            ConfigSpec::NoBusyLatch => ssmdst_core::Config::without_busy_latch(n),
        }
    }
}

/// A seeded corruption burst: the transient-fault adversary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorruptSpec {
    /// Fraction of nodes to corrupt (`0.0..=1.0`).
    pub fraction: f64,
    /// Probability each in-flight message is dropped (`1.0` clears all).
    pub drop: f64,
    /// Seed for victim selection and garbage generation.
    pub seed: u64,
}

impl CorruptSpec {
    /// The simulator fault plan this spec describes.
    pub fn plan(&self) -> FaultPlan {
        FaultPlan {
            node_fraction: self.fraction,
            message_drop: self.drop,
            seed: self.seed,
        }
    }

    /// Rendered label used for phase names and trace records.
    pub fn label(&self) -> String {
        format!(
            "fault(fraction={},drop={},seed={})",
            self.fraction, self.drop, self.seed
        )
    }
}

/// When a scenario event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Timing {
    /// After the network reaches quiescence (or the phase round cap).
    Stable,
    /// At the given **absolute** round, converged or not — mid-flight
    /// faults. If earlier phases already ran past this round (e.g. a
    /// preceding `Stable` event took longer than `R`), the event fires
    /// immediately in a zero-round phase; the trace records the actual
    /// round it applied at, so replay and the recorded artifact always
    /// agree even when the declared round was unreachable.
    Round(u64),
}

/// What a scenario event does.
#[derive(Debug, Clone, PartialEq)]
pub enum EventAction {
    /// Corrupt node state / drop messages.
    Fault(CorruptSpec),
    /// Mutate the topology.
    Churn(ChurnEvent),
}

impl EventAction {
    /// Rendered label used for phase names and trace records.
    pub fn label(&self) -> String {
        match self {
            EventAction::Fault(c) => c.label(),
            EventAction::Churn(ev) => ev.to_string(),
        }
    }
}

/// One timed event of a scenario plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioEvent {
    /// When the event fires.
    pub timing: Timing,
    /// What it does.
    pub action: EventAction,
}

impl ScenarioEvent {
    /// A quiescence-gated event (the common case).
    pub fn stable(action: EventAction) -> Self {
        ScenarioEvent {
            timing: Timing::Stable,
            action,
        }
    }
}

/// Stopping condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StopSpec {
    /// Round cap **per phase** (each re-convergence gets the full budget,
    /// matching the experiment harness's per-event measurement).
    pub max_rounds: u64,
    /// Quiescence confirmation window; `None` means the canonical
    /// [`ssmdst_sim::quiet_window`] for the instance size.
    pub quiet: Option<u64>,
}

/// A complete declarative scenario: everything needed to reconstruct one
/// run of the protocol bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (one token, no whitespace) — the artifact id.
    pub name: String,
    /// Which registered protocol the scenario drives.
    pub protocol: ProtocolSpec,
    /// Which round-loop execution backend runs the scenario. Part of the
    /// scenario *data* (rendered in `.scn`, default omitted) but **not**
    /// part of the replay identity: every backend is required to produce
    /// the bit-identical trace, so [`Scenario::fingerprint`] deliberately
    /// ignores it — a trace recorded on any backend verifies against the
    /// same scenario run on any other.
    pub backend: Backend,
    /// Workload topology.
    pub topology: TopologySpec,
    /// Daemon.
    pub scheduler: SchedSpec,
    /// Protocol config variant.
    pub config: ConfigSpec,
    /// Corruption of the initial configuration (arbitrary-configuration
    /// start, per the paper) — applied before round 0.
    pub init_corrupt: Option<CorruptSpec>,
    /// Timed fault / churn plan.
    pub events: Vec<ScenarioEvent>,
    /// Stopping condition.
    pub stop: StopSpec,
}

impl Scenario {
    /// A plain convergence scenario: build the topology, run one phase to
    /// quiescence, no faults, no churn.
    pub fn converge(
        name: impl Into<String>,
        topology: TopologySpec,
        scheduler: SchedSpec,
        max_rounds: u64,
    ) -> Self {
        Scenario {
            name: name.into(),
            protocol: ProtocolSpec::default(),
            backend: Backend::default(),
            topology,
            scheduler,
            config: ConfigSpec::Default,
            init_corrupt: None,
            events: Vec::new(),
            stop: StopSpec {
                max_rounds,
                quiet: None,
            },
        }
    }

    /// Shrinker size metric: lexicographic-ish scalar where node count
    /// dominates, then event count, then initial corruption, then the
    /// bit-length of the horizon. Every individual shrink step reduces
    /// exactly one component, so "strictly smaller" is well-defined.
    pub fn size(&self) -> u64 {
        let horizon_bits = (u64::BITS - self.stop.max_rounds.leading_zeros()) as u64;
        self.topology.n_hint() as u64 * 1_000
            + self.events.len() as u64 * 10
            + if self.init_corrupt.is_some() { 5 } else { 0 }
            + horizon_bits
    }

    /// Digest of the canonical `.scn` text — the identity recorded in
    /// traces so a golden trace can't silently be replayed against an
    /// edited scenario. The execution backend is digested *out*: it is a
    /// mechanism choice, not an execution identity (the conformance
    /// ladder requires every backend to reproduce the reference trace
    /// bit-for-bit), so cross-backend trace comparison — the strongest
    /// conformance statement the harness makes — works directly.
    pub fn fingerprint(&self) -> u64 {
        let mut d = Digest::new();
        if self.backend == Backend::default() {
            d.write_bytes(self.canonical().as_bytes());
        } else {
            let mut neutral = self.clone();
            neutral.backend = Backend::default();
            d.write_bytes(neutral.canonical().as_bytes());
        }
        d.value()
    }

    /// Canonical `.scn` rendering (see [`crate::scn`]).
    pub fn canonical(&self) -> String {
        crate::scn::render(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_spec_builds_the_same_graph_as_the_family() {
        let spec = TopologySpec::family(GraphFamily::GnpSparse, 12, 3);
        assert_eq!(spec.build(), GraphFamily::GnpSparse.generate(12, 3));
        assert_eq!(spec.n_hint(), 12);
    }

    #[test]
    fn structured_specs_build() {
        assert_eq!(TopologySpec::Path { n: 5 }.build().n(), 5);
        assert_eq!(TopologySpec::Cycle { n: 6 }.build().m(), 6);
        assert_eq!(TopologySpec::StarRing { n: 8 }.build().n(), 8);
        assert_eq!(TopologySpec::MultiHub { hubs: 2, spokes: 3 }.build().n(), 8);
        assert_eq!(
            TopologySpec::CompleteBipartite { a: 2, b: 3 }.build().m(),
            6
        );
    }

    #[test]
    fn with_n_shrinks_only_shrinkable_variants() {
        let fam = TopologySpec::family(GraphFamily::Spider, 16, 1);
        assert_eq!(fam.with_n(8).unwrap().n_hint(), 8);
        assert_eq!(fam.min_n(), Some(4));
        let hub = TopologySpec::MultiHub { hubs: 2, spokes: 3 };
        assert_eq!(hub.with_n(4), None);
        assert_eq!(hub.min_n(), None);
    }

    #[test]
    fn size_orders_by_n_then_events_then_corrupt_then_horizon() {
        let base = Scenario::converge(
            "s",
            TopologySpec::Path { n: 10 },
            SchedSpec::Synchronous,
            40_000,
        );
        let mut smaller_n = base.clone();
        smaller_n.topology = TopologySpec::Path { n: 9 };
        assert!(smaller_n.size() < base.size());

        let mut with_event = base.clone();
        with_event
            .events
            .push(ScenarioEvent::stable(EventAction::Churn(
                ChurnEvent::CrashNode(3),
            )));
        assert!(with_event.size() > base.size());
        assert!(smaller_n.size() < with_event.size(), "n dominates events");

        let mut with_corrupt = base.clone();
        with_corrupt.init_corrupt = Some(CorruptSpec {
            fraction: 1.0,
            drop: 1.0,
            seed: 1,
        });
        assert!(with_corrupt.size() > base.size());

        let mut short_horizon = base.clone();
        short_horizon.stop.max_rounds = 20_000;
        assert!(short_horizon.size() < base.size());
    }

    #[test]
    fn fingerprint_tracks_content() {
        let a = Scenario::converge(
            "a",
            TopologySpec::Cycle { n: 8 },
            SchedSpec::RandomAsync { seed: 7 },
            1_000,
        );
        let mut b = a.clone();
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.scheduler = SchedSpec::RandomAsync { seed: 8 };
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
