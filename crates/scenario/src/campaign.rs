//! Campaign runner: fan a scenario grid out over worker threads and
//! aggregate per-scenario metrics into table-ready rows.
//!
//! Every row carries the scenario name and the final chained run digest,
//! so any row of a rendered table is a replayable artifact: re-running the
//! named scenario must reproduce the digest bit-for-bit.

use crate::engine;
use crate::spec::Scenario;
use ssmdst_sim::parallel::run_many;

/// Aggregated result of one campaign scenario.
#[derive(Debug, Clone)]
pub struct CampaignRow {
    /// Scenario name (the replay handle).
    pub name: String,
    /// Daemon label.
    pub scheduler: &'static str,
    /// Node count of the built instance.
    pub n: usize,
    /// Edge count of the built instance.
    pub m: usize,
    /// Whether every phase converged and passed its component check.
    pub ok: bool,
    /// Whether the final phase converged.
    pub converged: bool,
    /// Rounds of the final phase (confirmation window excluded).
    pub rounds: u64,
    /// Final tree degree, when the run ends on a spanning tree.
    pub degree: Option<u32>,
    /// Total messages sent.
    pub total_msgs: u64,
    /// Final chained run digest (replay identity).
    pub digest: u64,
}

/// Run every scenario of the grid on up to `workers` threads (input order
/// preserved; each simulation is single-threaded and deterministic, so
/// parallelism never perturbs a row). Protocol-generic: each scenario
/// runs under whatever protocol it names, so one grid can mix MDST rows
/// with flood/echo rows.
pub fn run_campaign(scenarios: &[Scenario], workers: usize) -> Vec<CampaignRow> {
    run_many(scenarios.to_vec(), workers, |scn| {
        let out = engine::run_any(scn);
        CampaignRow {
            name: out.name.clone(),
            scheduler: scn.scheduler.label(),
            n: out.n,
            m: out.m,
            ok: out.all_ok(),
            converged: out.converged,
            rounds: out.conv_round,
            degree: out.final_degree,
            total_msgs: out.total_msgs,
            digest: out.digest,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{SchedSpec, TopologySpec};

    fn grid() -> Vec<Scenario> {
        let mut scns = Vec::new();
        for (i, sched) in [
            SchedSpec::Synchronous,
            SchedSpec::RandomAsync { seed: 7 },
            SchedSpec::Adversarial { seed: 7 },
        ]
        .into_iter()
        .enumerate()
        {
            scns.push(Scenario::converge(
                format!("grid-{i}"),
                TopologySpec::StarRing { n: 8 },
                sched,
                40_000,
            ));
        }
        scns
    }

    #[test]
    fn campaign_rows_are_ordered_and_deterministic() {
        let scns = grid();
        let rows = run_campaign(&scns, 3);
        assert_eq!(rows.len(), 3);
        for (row, scn) in rows.iter().zip(&scns) {
            assert_eq!(row.name, scn.name, "input order preserved");
            assert!(row.ok, "star-ring converges under every daemon");
            assert!(row.degree.unwrap() <= 3);
        }
        // Parallel execution never perturbs a row: sequential run agrees,
        // digests included.
        let seq = run_campaign(&scns, 1);
        for (a, b) in rows.iter().zip(&seq) {
            assert_eq!(a.digest, b.digest);
            assert_eq!(a.rounds, b.rounds);
        }
        // Different daemons are different executions.
        assert_ne!(rows[0].digest, rows[1].digest);
    }
}
