//! Delta-debugging minimizer lifted to whole simulations.
//!
//! Given a failing scenario and a failure predicate, [`shrink`] searches
//! for a **strictly smaller** scenario (by [`Scenario::size`]) that still
//! fails — proptest-style shrinking, but over `(topology, daemon, faults,
//! churn, horizon)` instead of a single value. Passes, applied to
//! fixpoint:
//!
//! 1. **Events** — ddmin over the timed fault/churn plan: remove chunks of
//!    halving size, then single events;
//! 2. **Node count** — try the topology's minimum `n` first (the biggest
//!    win), then midpoints, then `n - 1`;
//! 3. **Initial corruption** — drop the arbitrary-configuration start;
//! 4. **Horizon** — halve `max_rounds` (floor 64).
//!
//! Every accepted candidate re-runs the full scenario through the engine,
//! so the emitted `.scn` is a verified reproducer, not a guess.

use crate::engine::{self, ScenarioOutcome};
use crate::spec::Scenario;

/// Search statistics: how many candidates were tried and accepted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Candidate scenarios executed.
    pub attempts: usize,
    /// Candidates that still failed and were strictly smaller.
    pub accepted: usize,
}

/// Shrink `original` while `still_fails` holds. Returns `None` when the
/// original does not fail (nothing to reproduce); otherwise the smallest
/// failing scenario found plus search statistics. The result equals the
/// original only when no strictly smaller failing candidate exists.
pub fn shrink(
    original: &Scenario,
    mut still_fails: impl FnMut(&Scenario) -> bool,
) -> Option<(Scenario, ShrinkStats)> {
    if !still_fails(original) {
        return None;
    }
    let mut cur = original.clone();
    let mut stats = ShrinkStats::default();
    // Accept only candidates that are strictly smaller AND still fail.
    let mut accept = |cur: &mut Scenario, cand: Scenario, stats: &mut ShrinkStats| -> bool {
        debug_assert!(cand.size() < cur.size(), "candidate must strictly shrink");
        stats.attempts += 1;
        if still_fails(&cand) {
            *cur = cand;
            stats.accepted += 1;
            true
        } else {
            false
        }
    };
    loop {
        let mut improved = false;
        improved |= shrink_events(&mut cur, &mut accept, &mut stats);
        improved |= shrink_n(&mut cur, &mut accept, &mut stats);
        improved |= shrink_corrupt(&mut cur, &mut accept, &mut stats);
        improved |= shrink_horizon(&mut cur, &mut accept, &mut stats);
        if !improved {
            break;
        }
    }
    Some((cur, stats))
}

type Accept<'a> = dyn FnMut(&mut Scenario, Scenario, &mut ShrinkStats) -> bool + 'a;

/// ddmin over the event plan: chunks of halving size, then singles.
fn shrink_events(cur: &mut Scenario, accept: &mut Accept, stats: &mut ShrinkStats) -> bool {
    let mut improved = false;
    let mut chunk = cur.events.len().div_ceil(2).max(1);
    loop {
        let mut i = 0;
        while i < cur.events.len() {
            let mut cand = cur.clone();
            let hi = (i + chunk).min(cand.events.len());
            cand.events.drain(i..hi);
            if accept(cur, cand, stats) {
                improved = true;
                // Indices shifted down; retry the same position.
            } else {
                i = hi;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk = (chunk / 2).max(1);
    }
    improved
}

/// Shrink the node count: minimum first, then midpoint, then `n - 1`.
fn shrink_n(cur: &mut Scenario, accept: &mut Accept, stats: &mut ShrinkStats) -> bool {
    let Some(min) = cur.topology.min_n() else {
        return false;
    };
    let mut improved = false;
    loop {
        let n = cur.topology.n_hint();
        if n <= min {
            break;
        }
        let mut accepted = false;
        for cand_n in [min, (min + n) / 2, n - 1] {
            if cand_n >= n || cand_n < min {
                continue;
            }
            let mut cand = cur.clone();
            cand.topology = cur.topology.with_n(cand_n).expect("min_n implies with_n"); // lint: allow(no-panic-in-library) — min came from min_n(), so with_n accepts cand_n >= min
            if accept(cur, cand, stats) {
                accepted = true;
                improved = true;
                break;
            }
        }
        if !accepted {
            break;
        }
    }
    improved
}

/// Drop the initial corruption if the failure survives without it.
fn shrink_corrupt(cur: &mut Scenario, accept: &mut Accept, stats: &mut ShrinkStats) -> bool {
    if cur.init_corrupt.is_none() {
        return false;
    }
    let mut cand = cur.clone();
    cand.init_corrupt = None;
    accept(cur, cand, stats)
}

/// Halve the horizon while the failure survives (floor 64 rounds).
fn shrink_horizon(cur: &mut Scenario, accept: &mut Accept, stats: &mut ShrinkStats) -> bool {
    let mut improved = false;
    while cur.stop.max_rounds > 64 {
        let mut cand = cur.clone();
        cand.stop.max_rounds = (cur.stop.max_rounds / 2).max(64);
        if cand.size() >= cur.size() {
            break; // same bit-length; no strict shrink available
        }
        if accept(cur, cand, stats) {
            improved = true;
        } else {
            break;
        }
    }
    improved
}

/// Named failure predicates — the `ssmdst shrink --pred` vocabulary and
/// the conformance harness's machine-checkable failure notions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Predicate {
    /// Some phase failed to reach quiescence before its round cap.
    NotConverged,
    /// The run's final tree degree is at least this value.
    DegreeAtLeast(u32),
    /// Some judged phase ended outside the degree ≤ Δ*+1 guarantee.
    QualityViolation,
}

impl Predicate {
    /// Parse the CLI spelling: `not-converged`, `degree-ge:K`, `quality`.
    pub fn parse(s: &str) -> Result<Predicate, String> {
        if s == "not-converged" {
            return Ok(Predicate::NotConverged);
        }
        if s == "quality" {
            return Ok(Predicate::QualityViolation);
        }
        if let Some(k) = s.strip_prefix("degree-ge:") {
            let k = k
                .parse::<u32>()
                .map_err(|e| format!("bad degree bound {k:?}: {e}"))?;
            return Ok(Predicate::DegreeAtLeast(k));
        }
        Err(format!(
            "unknown predicate {s:?} (not-converged | degree-ge:K | quality)"
        ))
    }

    /// CLI spelling of this predicate.
    pub fn label(&self) -> String {
        match self {
            Predicate::NotConverged => "not-converged".to_string(),
            Predicate::DegreeAtLeast(k) => format!("degree-ge:{k}"),
            Predicate::QualityViolation => "quality".to_string(),
        }
    }

    /// Whether the outcome exhibits this failure.
    pub fn holds(&self, out: &ScenarioOutcome) -> bool {
        match self {
            Predicate::NotConverged => out.phases.iter().any(|p| !p.converged),
            Predicate::DegreeAtLeast(k) => {
                let degree = out
                    .final_degree
                    .or_else(|| out.phases.last().map(|p| p.degree))
                    .unwrap_or(0);
                degree >= *k
            }
            Predicate::QualityViolation => out.phases.iter().any(|p| p.checked && !p.ok),
        }
    }

    /// Run the scenario (under whatever protocol it names) and evaluate
    /// the predicate on its outcome.
    pub fn test(&self, scn: &Scenario) -> bool {
        self.holds(&engine::run_any(scn))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CorruptSpec, EventAction, ScenarioEvent, SchedSpec, TopologySpec};
    use ssmdst_graph::generators::GraphFamily;
    use ssmdst_sim::ChurnEvent;

    #[test]
    fn predicate_parsing_round_trips() {
        for p in [
            Predicate::NotConverged,
            Predicate::DegreeAtLeast(3),
            Predicate::QualityViolation,
        ] {
            assert_eq!(Predicate::parse(&p.label()).unwrap(), p);
        }
        assert!(Predicate::parse("degree-ge:x").is_err());
        assert!(Predicate::parse("whatever").is_err());
    }

    #[test]
    fn shrink_returns_none_when_original_passes() {
        let scn = Scenario::converge(
            "fine",
            TopologySpec::StarRing { n: 8 },
            SchedSpec::Synchronous,
            40_000,
        );
        assert!(shrink(&scn, |s| Predicate::NotConverged.test(s)).is_none());
    }

    /// A spider's spanning tree is the spider itself, so "degree ≥ 3"
    /// fails at every size down to the family minimum — the shrinker must
    /// strip every irrelevant event, the corruption, and the node count.
    #[test]
    fn shrinker_minimizes_a_seeded_failure() {
        let g = GraphFamily::Spider.generate(16, 1);
        let mut plan = ssmdst_sim::TopologyPlan::edge_churn(&g, 2, 3).events;
        plan.push(ChurnEvent::CrashNode(g.n() as u32 - 1));
        plan.push(ChurnEvent::RejoinNode(g.n() as u32 - 1));
        let mut scn = Scenario::converge(
            "spider-deg3",
            TopologySpec::family(GraphFamily::Spider, 16, 1),
            SchedSpec::Synchronous,
            40_000,
        );
        scn.init_corrupt = Some(CorruptSpec {
            fraction: 0.5,
            drop: 0.0,
            seed: 9,
        });
        scn.events = plan
            .into_iter()
            .map(|e| ScenarioEvent::stable(EventAction::Churn(e)))
            .collect();

        let pred = Predicate::DegreeAtLeast(3);
        let (shrunk, stats) = shrink(&scn, |s| pred.test(s)).expect("original fails");
        assert!(shrunk.size() < scn.size(), "strictly smaller");
        assert!(pred.test(&shrunk), "still fails after shrinking");
        assert!(shrunk.events.is_empty(), "irrelevant churn stripped");
        assert!(
            shrunk.init_corrupt.is_none(),
            "irrelevant corruption stripped"
        );
        assert_eq!(shrunk.topology.n_hint(), 4, "n at the family minimum");
        assert!(stats.attempts >= stats.accepted);
        assert!(stats.accepted > 0);
        // The reproducer round-trips through .scn text.
        let parsed = crate::scn::parse(&shrunk.canonical()).unwrap();
        assert_eq!(parsed, shrunk);
    }

    /// Only the one load-bearing event may survive: a crash of the hub's
    /// neighbor is irrelevant, the horizon is not, etc. Here the failure
    /// is "some phase did not converge" forced by a tiny round cap — the
    /// events all shrink away and the horizon floors.
    #[test]
    fn shrinker_floors_horizon_for_not_converged() {
        let mut scn = Scenario::converge(
            "cap",
            TopologySpec::Cycle { n: 8 },
            SchedSpec::Synchronous,
            1_000,
        );
        scn.stop.max_rounds = 20; // cannot confirm quiescence: always fails
        scn.events = vec![ScenarioEvent::stable(EventAction::Churn(
            ChurnEvent::RemoveEdge(0, 1),
        ))];
        let pred = Predicate::NotConverged;
        let (shrunk, _) = shrink(&scn, |s| pred.test(s)).expect("fails");
        assert!(pred.test(&shrunk));
        assert!(shrunk.events.is_empty());
        assert_eq!(shrunk.topology.n_hint(), 3, "cycle minimum");
    }

    /// A minimized scenario is a **fixed point**: running the shrinker on
    /// its own output must change nothing (no pass finds a smaller still-
    /// failing variant, so `shrink` returns the input with zero accepted
    /// candidates — except it returns `None`/identity-stats). This is what
    /// makes a committed reproducer stable: nobody re-running the shrinker
    /// on it can "improve" it into a different artifact.
    #[test]
    fn shrinker_output_is_a_fixed_point() {
        let g = GraphFamily::Spider.generate(12, 1);
        let mut scn = Scenario::converge(
            "fixpoint",
            TopologySpec::family(GraphFamily::Spider, 12, 1),
            SchedSpec::Synchronous,
            40_000,
        );
        scn.init_corrupt = Some(CorruptSpec {
            fraction: 1.0,
            drop: 0.0,
            seed: 3,
        });
        scn.events = ssmdst_sim::TopologyPlan::edge_churn(&g, 1, 5)
            .events
            .into_iter()
            .map(|e| ScenarioEvent::stable(EventAction::Churn(e)))
            .collect();

        let pred = Predicate::DegreeAtLeast(3);
        let (min1, stats1) = shrink(&scn, |s| pred.test(s)).expect("original fails");
        assert!(stats1.accepted > 0, "first pass actually shrank something");

        // Re-shrinking the minimum: every candidate the passes propose
        // passes the predicate, so nothing is accepted and the scenario
        // comes back unchanged. (Runs are deterministic, so the minimum
        // still fails and `shrink` cannot return `None`.)
        let (min2, stats2) = shrink(&min1, |s| pred.test(s)).expect("minimum still fails");
        assert_eq!(min2, min1, "re-shrinking changed the reproducer");
        assert_eq!(stats2.accepted, 0, "re-shrink accepted a candidate");

        // And the fixed point survives a `.scn` round trip, so the
        // *committed* artifact is also a fixed point.
        let parsed = crate::scn::parse(&min1.canonical()).unwrap();
        let (min3, stats3) = shrink(&parsed, |s| pred.test(s)).expect("parsed minimum still fails");
        assert_eq!(min3, parsed);
        assert_eq!(stats3.accepted, 0);
    }
}
