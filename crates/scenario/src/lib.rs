//! # ssmdst-scenario
//!
//! Scenarios as **data**, failures as **one-line reproducers**.
//!
//! BlinPR09's correctness claim is self-stabilization from *arbitrary*
//! initial configurations under transient faults — so the interesting
//! state space is the *scenario* space (which topology, which daemon,
//! which corruption, which churn sequence), not any single run. This crate
//! turns that space into first-class values:
//!
//! * [`Scenario`] ([`spec`]) — a declarative, serializable description of
//!   one complete run: topology generator + parameters, daemon choice,
//!   protocol-config variant, optional corruption of the initial node
//!   state (the paper's arbitrary-configuration start), a timed plan of
//!   fault bursts and topology churn, and a stopping condition. Scenarios
//!   render to and parse from a small line-based `.scn` text format
//!   ([`scn`]), so a failing run is a committable artifact.
//! * [`engine`] — the phase-driven executor: it runs the scenario on the
//!   `ssmdst-core` protocol, re-converging between events, judging each
//!   phase component-wise (degree within one of the optimum) and folding
//!   every scheduler key, executed action, topology event and per-round
//!   state projection into a chained [`ssmdst_sim::Digest`]. Re-running
//!   from `(Scenario, seed)` reproduces the trace **bit-for-bit**; the
//!   rendered [`ssmdst_sim::RunTrace`] is the golden-file format CI
//!   verifies.
//! * [`shrink`] — a delta-debugging minimizer lifted to whole simulations:
//!   given a failing scenario and a failure predicate it searches for a
//!   strictly smaller scenario (fewer fault/churn events, smaller `n`,
//!   no initial corruption, shorter horizon) that still fails, emitting a
//!   commit-ready `.scn` reproducer.
//! * [`campaign`] — fans a scenario grid out over
//!   [`ssmdst_sim::parallel::run_many`] and aggregates convergence /
//!   degree / round / digest metrics into table rows, so every row of an
//!   experiment table is a replayable artifact.
//! * [`corpus`] — the curated scenario corpus exercised by the
//!   conformance tests and the CI smoke job.
//! * [`protocol`] — the protocol registry: the engine, campaigns, replay
//!   and shrinking are written once against the [`Protocol`] trait, and a
//!   `.scn` file selects an implementation with a `protocol = …` line
//!   (default `mdst`, omitted from the canonical rendering for full
//!   backward compatibility). The registered non-MDST workload is the
//!   simulator's self-stabilizing flood/echo leader election.
//! * [`mod@mutate`] / [`coverage`] / [`storm`] — the coverage-guided fuzzing
//!   loop (`ssmdst storm` on the CLI): seed-deterministic mutation
//!   operators over scenarios, behavioural coverage signatures projected
//!   from the data the engine already folds, and the storm driver that
//!   fans mutants over campaign workers, admits only novelty-bearing
//!   mutants (so the corpus grows itself), and auto-shrinks any judge
//!   failure into a committable `.scn` reproducer.
//!
//! Execution goes through [`ssmdst_sim::Session`] with the engine's
//! cross-cutting machinery (digest chain, trace records, phase stop
//! conditions) attached as one composable [`ssmdst_sim::Observer`].

// Library code must not grow bare `.unwrap()`s: use `.expect` with the
// invariant that makes failure unreachable (ssmdst-lint R4 audits the
// reasons). Unit tests keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod campaign;
pub mod corpus;
pub mod coverage;
pub mod engine;
pub mod mutate;
pub mod protocol;
pub mod scn;
pub mod shrink;
pub mod spec;
pub mod storm;

pub use campaign::{run_campaign, CampaignRow};
pub use coverage::{CoverageMap, Signature};
pub use engine::{verify_replay, EngineOpts, PhaseOutcome, ScenarioOutcome};
pub use mutate::{mutate, sanitize, MutationKind};
pub use protocol::{Flood, Mdst, PhaseJudgment, Protocol};
pub use shrink::{Predicate, ShrinkStats};
pub use spec::{
    ConfigSpec, CorruptSpec, EventAction, ProtocolSpec, Scenario, ScenarioEvent, SchedSpec,
    StopSpec, Timing, TopologySpec,
};
pub use storm::{
    distill, Admission, DistillPick, DistillReport, StormConfig, StormFailure, StormReport,
};
