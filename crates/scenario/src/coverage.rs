//! Coverage signatures: the novelty gate of the scenario storm.
//!
//! A [`Signature`] projects one [`ScenarioOutcome`] onto a small set of
//! behavioural **features** — data the engine already folds into the
//! replay chain, bucketed so the projection is stable under noise but
//! separates regimes:
//!
//! * messages-by-kind histogram buckets ([`ssmdst_sim::log2_bucket`] of
//!   each kind's send count — the [`ssmdst_sim::Metrics::kind_buckets`]
//!   projection);
//! * per-phase recovery-round buckets;
//! * per-phase live-component counts and worst degrees;
//! * per-phase outcome shape (converged / checked / ok) and plan length;
//! * final degree and peak in-flight bucket.
//!
//! A [`CoverageMap`] accumulates every feature ever observed; a mutant is
//! **novelty-bearing** iff its signature contributes at least one feature
//! the map has not seen (greybox-fuzzing coverage, with behavioural
//! buckets standing in for branch edges). Only novelty-bearing mutants
//! are admitted to the corpus, so the corpus grows itself toward
//! behavioural diversity instead of piling up near-duplicates.
//!
//! Everything here is a pure function of the outcome, which is itself a
//! deterministic function of the scenario — so signatures are identical
//! across repeated runs and across campaign worker counts.

use crate::engine::ScenarioOutcome;
use ssmdst_sim::{log2_bucket, Digest};
use std::collections::HashSet; // lint: allow(no-unordered-collections) — membership-only coverage probe; features are counted, never iterated

/// Hash one feature: a domain tag plus its coordinates. FNV-1a via the
/// replay [`Digest`], so features are stable across platforms and runs.
fn feature(tag: &str, parts: &[u64]) -> u64 {
    let mut d = Digest::new();
    d.write_str(tag);
    for p in parts {
        d.write_u64(*p);
    }
    d.value()
}

/// The behavioural signature of one scenario run: a sorted, deduplicated
/// feature set plus a single fold of it (the signature *key*, used for
/// reporting and run-to-run comparisons).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    features: Vec<u64>,
}

impl Signature {
    /// Project an outcome onto its signature.
    pub fn of(out: &ScenarioOutcome) -> Signature {
        let mut features = Vec::new();
        // Messages-by-kind histogram buckets.
        for (kind, sent, max_bits) in &out.msgs_by_kind {
            let mut d = Digest::new();
            d.write_str("msgs-kind");
            d.write_str(kind);
            d.write_u64(u64::from(log2_bucket(*sent)));
            features.push(d.value());
            let mut d = Digest::new();
            d.write_str("msgs-bits");
            d.write_str(kind);
            d.write_u64(u64::from(log2_bucket(*max_bits as u64)));
            features.push(d.value());
        }
        features.push(feature(
            "msgs-total",
            &[u64::from(log2_bucket(out.total_msgs))],
        ));
        features.push(feature(
            "peak-in-flight",
            &[u64::from(log2_bucket(out.peak_in_flight as u64))],
        ));
        // Per-phase shape: recovery-round buckets, component counts,
        // degrees, and the converged/checked/ok outcome bits.
        for (i, ph) in out.phases.iter().enumerate() {
            let i = i as u64;
            features.push(feature(
                "phase-rounds",
                &[i, u64::from(log2_bucket(ph.rounds))],
            ));
            features.push(feature("phase-components", &[i, ph.components as u64]));
            features.push(feature("phase-degree", &[i, u64::from(ph.degree)]));
            features.push(feature(
                "phase-outcome",
                &[
                    i,
                    u64::from(ph.converged),
                    u64::from(ph.checked),
                    u64::from(ph.ok),
                ],
            ));
        }
        features.push(feature("phases", &[out.phases.len() as u64]));
        features.push(feature(
            "final-degree",
            &[out.final_degree.map_or(u64::MAX, u64::from)],
        ));
        features.sort_unstable();
        features.dedup();
        Signature { features }
    }

    /// The individual features, sorted.
    pub fn features(&self) -> &[u64] {
        &self.features
    }

    /// One fold of the whole feature set — the signature's identity for
    /// reporting and equality checks across runs.
    pub fn key(&self) -> u64 {
        let mut d = Digest::new();
        for f in &self.features {
            d.write_u64(*f);
        }
        d.value()
    }
}

/// The set of every behavioural feature observed so far — the storm's
/// global coverage state. Membership queries are order-independent, so
/// the map is deterministic however executions are fanned out, as long as
/// observations are applied in a deterministic order.
#[derive(Debug, Default)]
pub struct CoverageMap {
    seen: HashSet<u64>, // lint: allow(no-unordered-collections) — insert/contains/len only; doc above states the order-independence argument
}

impl CoverageMap {
    /// Empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold a signature in. Returns how many of its features were new —
    /// `> 0` means the run was novelty-bearing and its scenario earns a
    /// corpus slot.
    pub fn observe(&mut self, sig: &Signature) -> usize {
        sig.features()
            .iter()
            .filter(|f| self.seen.insert(**f))
            .count()
    }

    /// Total distinct features observed.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;
    use crate::engine;
    use crate::spec::{Scenario, SchedSpec, TopologySpec};

    #[test]
    fn signature_is_deterministic_across_runs() {
        let scn = corpus::by_name("fault-after-stable").unwrap();
        let a = Signature::of(&engine::run_any(&scn));
        let b = Signature::of(&engine::run_any(&scn));
        assert_eq!(a, b);
        assert_eq!(a.key(), b.key());
        assert!(!a.features().is_empty());
    }

    #[test]
    fn different_behaviours_have_different_signatures() {
        let sync = Scenario::converge(
            "a",
            TopologySpec::StarRing { n: 8 },
            SchedSpec::Synchronous,
            40_000,
        );
        let mut cycle = sync.clone();
        cycle.topology = TopologySpec::Cycle { n: 12 };
        let sa = Signature::of(&engine::run_any(&sync));
        let sb = Signature::of(&engine::run_any(&cycle));
        assert_ne!(sa.key(), sb.key());
    }

    #[test]
    fn coverage_map_counts_only_new_features() {
        let scn = corpus::by_name("converge-gnp-sync").unwrap();
        let sig = Signature::of(&engine::run_any(&scn));
        let mut map = CoverageMap::new();
        assert!(map.is_empty());
        let first = map.observe(&sig);
        assert_eq!(first, sig.features().len(), "everything new on first sight");
        assert_eq!(map.observe(&sig), 0, "re-observation adds nothing");
        assert_eq!(map.len(), sig.features().len());
    }
}
