//! Module 2 — maximum-degree computation (paper §3.2.3).
//!
//! A continuous PIF (propagation of information with feedback) over the
//! current tree, entirely piggybacked on `InfoMsg`:
//!
//! * **feedback**: every node recomputes `subtree_max = max(deg, children's
//!   subtree_max)` from its mirrors on every step (see
//!   [`crate::state::NodeState::recompute_derived`]);
//! * **propagation**: the root folds `subtree_max` into `dmax`; every other
//!   node inherits its parent's mirrored `dmax`;
//! * **freeze witness**: `color = degree_stabilized()`. While `dmax` values
//!   disagree anywhere in a neighborhood, `locally_stabilized` is false
//!   there and the reduction module stays frozen, which is how the paper
//!   prevents stale-degree improvements (it toggles `color_tree` on line 5
//!   of Figure 2; the fixpoint is the same: color settles exactly when the
//!   neighborhood's `dmax` has).
//!
//! There is no separate message type: the paper piggybacks the propagation
//! phase on `InfoMsg` and we piggyback the feedback phase too (DESIGN.md,
//! deviation 2). This file therefore only hosts the end-to-end tests of the
//! aggregation; the arithmetic lives in `state.rs`.

#[cfg(test)]
mod tests {
    use crate::config::Config;
    use crate::oracle;
    use ssmdst_graph::generators::{gadgets, structured};
    use ssmdst_sim::{Runner, Scheduler};

    /// After the tree stabilizes, every node's `dmax` equals the true tree
    /// degree.
    #[test]
    fn dmax_converges_to_true_tree_degree() {
        let g = structured::grid(4, 4).unwrap();
        let net = crate::build_network(&g, Config::for_n(16));
        let mut runner = Runner::new(net, Scheduler::Synchronous);
        let out = runner.run_until(300, |net, _| {
            let Some(t) = oracle::try_extract_tree(&g, net) else {
                return false;
            };
            oracle::dmax_agrees(net, t.max_degree())
        });
        assert!(out.converged(), "dmax never matched the real tree degree");
    }

    /// On a star the root is the hub; dmax must reach n−1 at every leaf.
    #[test]
    fn star_dmax_reaches_hub_degree() {
        let g = ssmdst_graph::graph::graph_from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let net = crate::build_network(&g, Config::for_n(5));
        let mut runner = Runner::new(net, Scheduler::Synchronous);
        let out = runner.run_until(100, |net, _| oracle::dmax_agrees(net, 4));
        assert!(out.converged());
    }

    /// dmax tracks *decreases*: corrupt dmax upward everywhere and check it
    /// falls back to the true value (max-aggregations must not be sticky).
    #[test]
    fn dmax_recovers_from_inflated_values() {
        let g = structured::cycle(8).unwrap();
        let net = crate::build_network(&g, Config::for_n(8));
        let mut runner = Runner::new(net, Scheduler::Synchronous);
        let _ = runner.run_until(100, |net, _| oracle::dmax_agrees(net, 2));
        // Inflate.
        for v in 0..8u32 {
            let node = runner.network_mut().node_mut(v);
            node.st.dmax = 9;
            node.st.subtree_max = 9;
        }
        let out = runner.run_until(200, |net, _| oracle::dmax_agrees(net, 2));
        assert!(out.converged(), "inflated dmax never decayed");
    }

    /// color settles to true exactly when the neighborhood dmax agrees.
    #[test]
    fn color_witnesses_dmax_agreement() {
        let g = gadgets::spider(3, 2).unwrap();
        let net = crate::build_network(&g, Config::for_n(7));
        let mut runner = Runner::new(net, Scheduler::RandomAsync { seed: 2 });
        let out = runner.run_until(400, |net, _| {
            net.nodes().iter().all(|a| {
                let s = a.state();
                s.color && s.degree_stabilized()
            })
        });
        assert!(out.converged());
    }

    /// Under the adversarial daemon the PIF still converges (fairness is
    /// all it needs).
    #[test]
    fn dmax_converges_under_adversarial_daemon() {
        let g = structured::grid(3, 3).unwrap();
        let net = crate::build_network(&g, Config::for_n(9));
        let mut runner = Runner::new(net, Scheduler::Adversarial { seed: 13 });
        let out = runner.run_until(400, |net, _| {
            let Some(t) = oracle::try_extract_tree(&g, net) else {
                return false;
            };
            oracle::dmax_agrees(net, t.max_degree())
        });
        assert!(out.converged());
    }
}
