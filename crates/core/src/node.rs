//! The protocol automaton: glue between the simulator and the four modules.

use crate::config::Config;
use crate::messages::{InfoPayload, Msg};
use crate::state::NodeState;
use crate::NodeId;
use rand::Rng;
use ssmdst_sim::{Automaton, Corrupt, Outbox};

/// One node running the self-stabilizing MDST protocol.
///
/// The atomic-step structure follows the paper's Figure 2: `tick` is the
/// `Do forever: send InfoMsg` loop head (plus the spanning-tree rules, which
/// the paper evaluates on every state change), and `receive` dispatches on
/// the message alphabet. Handlers live in the module files:
/// [`crate::spanning_tree`], [`crate::maxdeg`], [`crate::cycle_search`],
/// [`crate::reduction`].
#[derive(Debug, Clone)]
pub struct MdstNode {
    pub(crate) st: NodeState,
    pub(crate) cfg: Config,
}

impl MdstNode {
    /// Fresh node in the post-reset state (self-rooted, empty mirrors).
    pub fn new(id: NodeId, neighbors: &[NodeId], cfg: Config) -> Self {
        let mut st = NodeState::new(id, neighbors);
        st.dist_ceiling = cfg.max_path_len as u32 + 1;
        MdstNode { st, cfg }
    }

    /// Read-only view of the protocol state (oracles, tests, experiments).
    pub fn state(&self) -> &NodeState {
        &self.st
    }

    /// The node's configuration.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Whether the busy latch currently rejects new improvement traffic
    /// (always `false` under ablation A3).
    pub(crate) fn busy_blocked(&self) -> bool {
        self.cfg.enable_busy_latch && self.st.busy > 0
    }

    /// The `InfoMsg` gossip payload advertising current variables.
    pub(crate) fn info_payload(&self) -> InfoPayload {
        InfoPayload {
            root: self.st.root,
            parent: self.st.parent,
            distance: self.st.distance,
            dmax: self.st.dmax,
            deg: self.st.deg,
            subtree_max: self.st.subtree_max,
            color: self.st.color,
        }
    }

    /// Decrement throttle counters (one per tick).
    fn decay_cooldowns(&mut self) {
        for c in self.st.search_cooldown.values_mut() {
            *c = c.saturating_sub(1);
        }
        for c in self.st.deblock_cooldown.values_mut() {
            *c = c.saturating_sub(1);
        }
        self.st.deblock_cooldown.retain(|_, c| *c > 0);
        self.st.busy = self.st.busy.saturating_sub(1);
    }
}

impl Automaton for MdstNode {
    type Msg = Msg;

    fn tick(&mut self, out: &mut Outbox<Msg>) {
        self.decay_cooldowns();
        // Priority order (paper §4): spanning tree first, then degree
        // bookkeeping, then (guarded) cycle searches.
        self.apply_tree_rules();
        self.st.recompute_derived();
        let info = Msg::Info(self.info_payload());
        for i in 0..self.st.neighbors.len() {
            let u = self.st.neighbors[i];
            out.send(u, info.clone());
        }
        self.launch_periodic_searches(out);
    }

    fn receive(&mut self, from: NodeId, msg: Msg, out: &mut Outbox<Msg>) {
        // Messages from non-neighbors can only be simulator misuse; the
        // network enforces locality, so just guard in debug.
        debug_assert!(self.st.is_neighbor(from), "receive from non-neighbor");
        match msg {
            Msg::Info(p) => self.handle_info(from, p),
            Msg::Search {
                init,
                idblock,
                dmax,
                path,
                visited,
                backtrack,
            } => self.handle_search(from, init, idblock, dmax, path, visited, backtrack, out),
            Msg::Remove {
                init,
                deg_max,
                w_idx,
                z_idx,
                cycle,
                dmax,
                dist_a,
                dist_b,
                pos,
            } => self.handle_remove(
                from, init, deg_max, w_idx, z_idx, cycle, dmax, dist_a, dist_b, pos, out,
            ),
            Msg::Flip {
                cycle,
                pos,
                dir,
                end,
                origin,
                anchor_dist,
                anchor,
            } => self.handle_flip(cycle, pos, dir, end, origin, anchor_dist, anchor, out),
            Msg::DistChain {
                cycle,
                pos,
                dir,
                end,
                dist,
            } => self.handle_dist_chain(from, cycle, pos, dir, end, dist, out),
            Msg::DistFlood { dist } => self.handle_dist_flood(from, dist, out),
            Msg::Deblock { idblock, ttl, dmax } => {
                self.handle_deblock(from, idblock, ttl, dmax, out)
            }
        }
    }

    /// The `Do forever` loop of Figure 2 never terminates: a correct node
    /// always has an enabled spontaneous step (its periodic `InfoMsg`
    /// gossip is what keeps mirrors fresh and searches flowing even at
    /// quiescence). The engine's enabled-tick index therefore only shrinks
    /// through crashes, which the network tracks separately.
    fn enabled(&self) -> bool {
        true
    }

    /// Topology churn: refresh the neighbor list and drop every per-
    /// neighbor structure referring to departed neighbors. Anything else —
    /// a parent pointer at a removed neighbor, a root estimate learned
    /// through a now-cut partition, `dmax` computed over the old tree — is
    /// deliberately left stale: to the protocol a topology change is just
    /// one more transient fault, and rules R1/R2 plus the PIF repair it.
    fn on_topology_change(&mut self, neighbors: &[NodeId]) {
        self.st.neighbors = neighbors.to_vec();
        self.st
            .nbr
            .retain(|u, _| neighbors.binary_search(u).is_ok());
        for &u in neighbors {
            self.st
                .nbr
                .entry(u)
                .or_insert_with(|| crate::state::NbrView::unknown(u));
        }
        self.st
            .search_cooldown
            .retain(|u, _| neighbors.binary_search(u).is_ok());
        // Deblock cooldowns are keyed by blocker id (not necessarily a
        // neighbor) and age out on their own; leave them.
        self.apply_tree_rules();
        self.st.recompute_derived();
    }
}

impl Corrupt for MdstNode {
    /// The transient-fault adversary: overwrite every protocol variable and
    /// every mirror with arbitrary (bounded-garbage) values. Bounds keep the
    /// values representable — the adversary of the paper corrupts memory
    /// contents, not the value domains.
    fn corrupt(&mut self, rng: &mut rand::rngs::StdRng) {
        let hi = self
            .st
            .neighbors
            .iter()
            .copied()
            .max()
            .unwrap_or(self.st.id)
            .max(self.st.id)
            + 4;
        let random_node = |rng: &mut rand::rngs::StdRng| rng.random_range(0..hi);
        self.st.root = random_node(rng);
        self.st.parent = if rng.random_bool(0.5) && !self.st.neighbors.is_empty() {
            let i = rng.random_range(0..self.st.neighbors.len());
            self.st.neighbors[i]
        } else if rng.random_bool(0.5) {
            self.st.id
        } else {
            random_node(rng) // possibly a non-neighbor: R2 must fire
        };
        self.st.distance = rng.random_range(0..2 * hi);
        self.st.dmax = rng.random_range(0..hi);
        self.st.deg = rng.random_range(0..hi);
        self.st.subtree_max = rng.random_range(0..hi);
        self.st.color = rng.random_bool(0.5);
        let nbrs = self.st.neighbors.clone();
        for u in nbrs {
            let v = crate::state::NbrView {
                root: random_node(rng),
                parent: random_node(rng),
                distance: rng.random_range(0..2 * hi),
                dmax: rng.random_range(0..hi),
                deg: rng.random_range(0..hi),
                subtree_max: rng.random_range(0..hi),
                color: rng.random_bool(0.5),
            };
            self.st.nbr.insert(u, v);
        }
        for c in self.st.search_cooldown.values_mut() {
            *c = rng.random_range(0..self.cfg.search_period.max(1));
        }
        self.st.deblock_cooldown.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn node() -> MdstNode {
        MdstNode::new(1, &[0, 2], Config::for_n(8))
    }

    #[test]
    fn tick_gossips_to_all_neighbors() {
        let mut n = node();
        let mut out = Outbox::new();
        n.tick(&mut out);
        assert_eq!(out.len(), 2); // one InfoMsg per neighbor, no searches yet
    }

    #[test]
    fn info_payload_reflects_state() {
        let mut n = node();
        n.st.root = 0;
        n.st.distance = 7;
        let p = n.info_payload();
        assert_eq!(p.root, 0);
        assert_eq!(p.distance, 7);
    }

    #[test]
    fn corrupt_changes_state_and_is_deterministic() {
        let mut a = node();
        let mut b = node();
        let mut r1 = rand::rngs::StdRng::seed_from_u64(4);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(4);
        a.corrupt(&mut r1);
        b.corrupt(&mut r2);
        assert_eq!(a.st, b.st);
        // With overwhelming probability the corrupted state differs from
        // fresh (checked via multiple fields).
        let fresh = node();
        assert_ne!(a.st, fresh.st);
    }

    #[test]
    fn corrupted_node_still_ticks() {
        let mut n = node();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        n.corrupt(&mut rng);
        let mut out = Outbox::new();
        n.tick(&mut out); // must not panic on garbage
        assert!(out.len() >= 2);
    }

    #[test]
    fn topology_change_prunes_departed_neighbor_state() {
        let mut n = node(); // neighbors [0, 2]
        n.st.parent = 0;
        n.st.root = 0;
        n.st.distance = 1;
        n.st.search_cooldown.insert(0, 5);
        n.st.search_cooldown.insert(2, 5);
        use ssmdst_sim::Automaton as _;
        n.on_topology_change(&[2]); // neighbor 0 is gone
        assert_eq!(n.state().neighbors, vec![2]);
        assert!(!n.state().nbr.contains_key(&0));
        assert!(!n.state().search_cooldown.contains_key(&0));
        assert!(n.state().search_cooldown.contains_key(&2));
        // The parent pointed at the departed neighbor: the tree rules must
        // have resolved it (here R2 reset then R1 adopted neighbor 2's
        // blank mirror advertising root 2 > ... or stayed self-rooted).
        assert_ne!(n.state().parent, 0);
    }

    #[test]
    fn topology_change_adds_blank_mirrors_for_new_neighbors() {
        let mut n = node(); // neighbors [0, 2]
        use ssmdst_sim::Automaton as _;
        n.on_topology_change(&[0, 2, 3]);
        assert_eq!(n.state().neighbors, vec![0, 2, 3]);
        assert_eq!(
            n.state().nbr.get(&3),
            Some(&crate::state::NbrView::unknown(3))
        );
    }

    #[test]
    fn cooldowns_decay_to_zero_and_prune() {
        let mut n = node();
        n.st.search_cooldown.insert(2, 2);
        n.st.deblock_cooldown.insert(5, 1);
        let mut out = Outbox::new();
        n.tick(&mut out);
        assert_eq!(n.st.search_cooldown[&2], 1);
        assert!(n.st.deblock_cooldown.is_empty()); // pruned at zero
    }
}
