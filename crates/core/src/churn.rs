//! Re-convergence checking under dynamic topology.
//!
//! After a churn event (edge removal/insertion, node crash/rejoin,
//! partition/heal) the constraint set the protocol is fitting has changed,
//! and "converged" must be re-judged against the **current live
//! topology**, which may even be disconnected (mid-partition, or while a
//! cut bridge is down). The checker therefore works component-wise: for
//! every connected component of the alive subgraph it verifies that the
//! parent pointers restrict to a spanning tree of that component and that
//! the tree's degree is within one of the component's optimum `Δ*`
//! (Theorem 2's guarantee, re-established after every perturbation).
//!
//! Optima come from the certified-interval engine
//! ([`ssmdst_exact::IncrementalSolver`]): each component gets a tree
//! achieving `upper` and a [`ssmdst_exact::Witness`] certifying `lower`,
//! and the judge **re-verifies the witness itself** on a subgraph built
//! from the network (never from the solver's own mirror), so a solver bug
//! can only make verdicts conservative, never unsound. The judge is
//! stateful: a [`DeltaJudge`] keeps the engine's basis alive across churn
//! events (fed via [`DeltaJudge::observe_churn`], re-synced defensively on
//! every [`DeltaJudge::check`]), so a long churn chain re-solves only the
//! components each event touched. The branch-and-bound solver
//! ([`ssmdst_graph::exact_mdst`]) remains the engine's settling oracle and
//! the test suite's small-`n` differential reference.

use crate::node::MdstNode;
use crate::NodeId;
use ssmdst_exact::{IncrementalSolver, Solver, Stats};
use ssmdst_graph::{Graph, GraphBuilder, SolveBudget, SpanningTree};
use ssmdst_sim::{ChurnEvent, Network};

/// Largest component the judge's solver settles exactly with the
/// branch-and-bound oracle; above it the verdict is witness-certified
/// (`deg ≤ lower + 1` — sufficient for `deg ≤ Δ* + 1`, never necessary).
/// Covers every storm-mutated scenario size, so quality predicates at
/// small `n` never fail on an open interval.
pub const SETTLE_MAX_N: usize = 256;

/// Verdict for one connected component of the live topology.
#[derive(Debug, Clone)]
pub struct ComponentReport {
    /// Member nodes, original ids, ascending.
    pub nodes: Vec<NodeId>,
    /// Max degree of the re-converged spanning tree of this component.
    pub degree: u32,
    /// Exact `Δ*` of the component, when the solver closed the interval.
    pub delta_star: Option<u32>,
    /// Certified lower bound on `Δ*` (always available).
    pub lower: u32,
    /// Best tree degree the solver achieved (upper bound on `Δ*`).
    pub upper: u32,
    /// Whether the tree degree is certified within one of the optimum:
    /// `degree ≤ Δ* + 1` when exact, else the conservative
    /// `degree ≤ lower + 1`.
    pub within_one: bool,
}

/// Why a network does not currently decompose into per-component trees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChurnError {
    /// A node's parent pointer leaves its own component (stale neighbor).
    ParentOutsideComponent { node: NodeId, parent: NodeId },
    /// A component with no self-rooted node, or more than one.
    BadRootCount { component_min: NodeId, roots: usize },
    /// The parent pointers of a component are cyclic or non-spanning.
    NotATree { component_min: NodeId },
}

impl std::fmt::Display for ChurnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChurnError::ParentOutsideComponent { node, parent } => {
                write!(f, "node {node} parents {parent} outside its component")
            }
            ChurnError::BadRootCount {
                component_min,
                roots,
            } => write!(f, "component of {component_min} has {roots} roots"),
            ChurnError::NotATree { component_min } => {
                write!(f, "component of {component_min} is not a tree")
            }
        }
    }
}

/// The solver configuration a judging budget maps to: the budget bounds
/// the settling oracle's branch-and-bound nodes (`0` disables settling —
/// witness-only judging), capped at [`SETTLE_MAX_N`] vertices.
fn solver_for(budget: SolveBudget) -> Solver {
    Solver::builder()
        .settle_budget(budget.max_nodes)
        .settle_max_n(SETTLE_MAX_N)
        .build()
}

/// Relabel one component to dense ids and build its induced subgraph.
fn induced_subgraph(net: &Network<MdstNode>, comp: &[NodeId]) -> Graph {
    let mut b = GraphBuilder::new(comp.len());
    for (i, &v) in comp.iter().enumerate() {
        for &w in net.neighbors(v) {
            if w > v {
                let j = comp.binary_search(&w).expect("neighbor in component"); // lint: allow(no-panic-in-library) — components partition the graph, so every neighbor is listed
                b.add_edge(i as NodeId, j as NodeId).expect("in range"); // lint: allow(no-panic-in-library) — relabeled ids are dense in 0..comp.len() and w > v dedups
            }
        }
    }
    b.build()
}

/// The stateful component-wise judge: an incremental certified-`Δ*`
/// engine mirroring the live topology, plus the structural tree checks.
///
/// Create one per run ([`DeltaJudge::new`]), feed it every churn event
/// ([`DeltaJudge::observe_churn`]) and judge at each stable phase
/// ([`DeltaJudge::check`]). Only the components an event touched are
/// re-solved; untouched ones are served from the engine's cache. The
/// one-shot [`check_reconvergence`] wraps a fresh judge for callers
/// without a churn chain.
#[derive(Debug, Clone)]
pub struct DeltaJudge {
    inc: IncrementalSolver,
}

impl DeltaJudge {
    /// A judge mirroring `net`'s current live topology, solving under
    /// `budget`: the budget bounds the settling oracle's branch-and-bound
    /// nodes, capped at [`SETTLE_MAX_N`] vertices.
    pub fn new(net: &Network<MdstNode>, budget: SolveBudget) -> Self {
        let mut judge = DeltaJudge {
            inc: IncrementalSolver::new(net.n(), solver_for(budget)),
        };
        judge.sync(net);
        judge
    }

    /// Mirror one applied churn event — `net` must already reflect it (the
    /// post-event topology is the ground truth for insert-type events,
    /// whose network semantics include refusals and deferred rejoin
    /// edges). `O(deg)` per event; keeps the next [`DeltaJudge::check`]
    /// incremental.
    pub fn observe_churn(&mut self, net: &Network<MdstNode>, ev: &ChurnEvent) {
        match ev {
            ChurnEvent::RemoveEdge(u, v) => {
                self.inc.remove_edge(*u, *v);
            }
            ChurnEvent::InsertEdge(u, v) => {
                self.inc.set_edge(*u, *v, has_edge(net, *u, *v));
            }
            ChurnEvent::CrashNode(v) => {
                self.inc.crash(*v);
            }
            ChurnEvent::RejoinNode(v) => {
                let nbrs: Vec<NodeId> = net.neighbors(*v).to_vec();
                self.inc.rejoin(*v, &nbrs);
            }
            ChurnEvent::Partition(cut) => {
                for &(u, v) in cut {
                    self.inc.remove_edge(u, v);
                }
            }
            ChurnEvent::Heal(cut) => {
                for &(u, v) in cut {
                    self.inc.set_edge(u, v, has_edge(net, u, v));
                }
            }
        }
    }

    /// Engine work counters — how much of the judging so far was served
    /// incrementally (cache hits / warm starts / cold starts / pivots).
    pub fn stats(&self) -> Stats {
        self.inc.stats()
    }

    /// Re-sync the mirror to the network by diffing aliveness and sorted
    /// adjacency. A no-op scan when [`DeltaJudge::observe_churn`] saw
    /// every event; the safety net that keeps verdicts sound when a
    /// driver mutated topology behind the judge's back.
    fn sync(&mut self, net: &Network<MdstNode>) {
        let n = net.n().min(self.inc.n());
        for v in 0..n as NodeId {
            let live = net.is_alive(v);
            if live != self.inc.is_alive(v) {
                if live {
                    self.inc.rejoin(v, &[]);
                } else {
                    self.inc.crash(v);
                }
            }
            if !live {
                continue;
            }
            // Two-pointer diff of the upper-half adjacencies (both sorted
            // ascending); only genuine differences touch the mirror.
            let want = net.neighbors(v).iter().copied().filter(|&w| w > v);
            let have: Vec<NodeId> = self.inc.neighbors(v).filter(|&w| w > v).collect();
            let mut have = have.into_iter().peekable();
            for w in want {
                loop {
                    match have.peek() {
                        Some(&h) if h < w => {
                            self.inc.remove_edge(v, h);
                            have.next();
                        }
                        Some(&h) if h == w => {
                            have.next();
                            break;
                        }
                        _ => {
                            self.inc.insert_edge(v, w);
                            break;
                        }
                    }
                }
            }
            for h in have {
                self.inc.remove_edge(v, h);
            }
        }
    }

    /// Judge the network: every live component must carry a spanning tree
    /// (via the protocol's parent pointers) whose degree is certified
    /// within one of the component's `Δ*`. Untouched components are
    /// served from the engine's cache; dirty ones re-solve from their
    /// repaired basis.
    pub fn check(&mut self, net: &Network<MdstNode>) -> Result<Vec<ComponentReport>, ChurnError> {
        self.sync(net);
        let sols = self.inc.solve_all();
        let comps = net.live_components();
        debug_assert_eq!(
            comps.len(),
            sols.len(),
            "mirror/network component structure diverged after sync"
        );
        let mut reports = Vec::with_capacity(comps.len());
        for (comp, sol) in comps.into_iter().zip(sols) {
            debug_assert_eq!(comp, sol.members, "component membership diverged");
            let sub = induced_subgraph(net, &comp);
            // Map parent pointers into the dense relabeling.
            let mut parents = vec![0 as NodeId; comp.len()];
            let mut roots = Vec::new();
            for (i, &v) in comp.iter().enumerate() {
                let p = net.node(v).state().parent;
                if p == v {
                    roots.push(i as NodeId);
                    parents[i] = i as NodeId;
                } else {
                    let Ok(j) = comp.binary_search(&p) else {
                        return Err(ChurnError::ParentOutsideComponent { node: v, parent: p });
                    };
                    parents[i] = j as NodeId;
                }
            }
            let &[root] = roots.as_slice() else {
                return Err(ChurnError::BadRootCount {
                    component_min: comp[0],
                    roots: roots.len(),
                });
            };
            let Ok(tree) = SpanningTree::from_parents(&sub, root, parents) else {
                return Err(ChurnError::NotATree {
                    component_min: comp[0],
                });
            };
            let degree = tree.max_degree();
            // Independent certification: re-derive the witness bound on
            // the network-built subgraph (one BFS). The solver's `lower`
            // is only trusted when its certificate checks out here — a
            // settled component's witness certifies `lower − 1`, the
            // settling oracle closed the last gap.
            let cert = sol.witness.certifies(&sub);
            let trusted = cert >= sol.lower.saturating_sub(u32::from(sol.settled));
            let (delta_star, lower) = if trusted {
                (sol.delta_star(), sol.lower)
            } else {
                (None, cert)
            };
            let within_one = match delta_star {
                Some(d) => degree <= d + 1,
                None => degree <= lower + 1,
            };
            reports.push(ComponentReport {
                nodes: comp,
                degree,
                delta_star,
                lower,
                upper: sol.upper,
                within_one,
            });
        }
        Ok(reports)
    }
}

/// Whether `{u, v}` is currently an edge of the live topology.
fn has_edge(net: &Network<MdstNode>, u: NodeId, v: NodeId) -> bool {
    (u as usize) < net.n() && net.neighbors(u).binary_search(&v).is_ok()
}

/// Check that the network has re-converged to per-component spanning trees
/// within one of each component's optimal degree. Intended to be called at
/// quiescence, after each churn event of a [`ssmdst_sim::TopologyPlan`].
///
/// One-shot form: builds a fresh [`DeltaJudge`] (cold solve of every
/// component). Drivers judging repeatedly across a churn chain keep a
/// judge alive instead. `budget` bounds the settling oracle per component;
/// pass `SolveBudget { max_nodes: 0 }` to skip settling entirely (the
/// witness lower bound then gives a conservative verdict).
pub fn check_reconvergence(
    net: &Network<MdstNode>,
    budget: SolveBudget,
) -> Result<Vec<ComponentReport>, ChurnError> {
    DeltaJudge::new(net, budget).check(net)
}

/// Convenience: `true` iff every component is a tree within one of its
/// optimum. The detailed [`check_reconvergence`] form is what experiments
/// report; this is the test predicate.
pub fn reconverged_within_one(net: &Network<MdstNode>, budget: SolveBudget) -> bool {
    check_reconvergence(net, budget)
        .map(|rs| rs.iter().all(|r| r.within_one))
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::oracle;
    use ssmdst_graph::generators::structured;
    use ssmdst_graph::{exact_mdst, ExactMdst};
    use ssmdst_sim::faults::apply_churn;
    use ssmdst_sim::{Runner, Scheduler};

    fn budget() -> SolveBudget {
        SolveBudget { max_nodes: 500_000 }
    }

    fn converge(runner: &mut Runner<MdstNode>, max_rounds: u64) {
        let out = runner.run_to_quiescence(max_rounds, 96, oracle::projection);
        assert!(out.converged(), "no quiescence within {max_rounds}");
    }

    #[test]
    fn static_converged_network_passes() {
        let g = structured::star_with_ring(8).unwrap();
        let net = crate::build_network(&g, Config::for_n(8));
        let mut runner = Runner::new(net, Scheduler::Synchronous);
        converge(&mut runner, 20_000);
        let reports = check_reconvergence(runner.network(), budget()).unwrap();
        assert_eq!(reports.len(), 1);
        assert!(reports[0].within_one);
        assert_eq!(reports[0].nodes.len(), 8);
        assert_eq!(reports[0].delta_star, Some(2)); // ring ⇒ path tree
        assert_eq!(reports[0].upper, 2);
    }

    #[test]
    fn fresh_network_fails_with_many_roots() {
        let g = structured::path(4).unwrap();
        let net = crate::build_network(&g, Config::for_n(4));
        // Everyone self-rooted: 4 roots in one component.
        let err = check_reconvergence(&net, budget()).unwrap_err();
        assert!(matches!(err, ChurnError::BadRootCount { roots: 4, .. }));
    }

    #[test]
    fn partitioned_network_is_judged_per_component() {
        let g = structured::cycle(8).unwrap();
        let net = crate::build_network(&g, Config::for_n(8));
        let mut runner = Runner::new(net, Scheduler::Synchronous);
        converge(&mut runner, 20_000);
        // Cut the cycle into two 4-paths.
        apply_churn(
            runner.network_mut(),
            &ChurnEvent::Partition(vec![(0, 7), (3, 4)]),
        );
        converge(&mut runner, 20_000);
        let reports = check_reconvergence(runner.network(), budget()).unwrap();
        assert_eq!(reports.len(), 2, "two components while partitioned");
        for r in &reports {
            assert_eq!(r.nodes.len(), 4);
            assert!(r.within_one, "component {:?} degree {}", r.nodes, r.degree);
        }
    }

    #[test]
    fn crashed_node_is_excluded_from_judgment() {
        let g = structured::cycle(6).unwrap();
        let net = crate::build_network(&g, Config::for_n(6));
        let mut runner = Runner::new(net, Scheduler::Synchronous);
        converge(&mut runner, 20_000);
        apply_churn(runner.network_mut(), &ChurnEvent::CrashNode(3));
        converge(&mut runner, 20_000);
        let reports = check_reconvergence(runner.network(), budget()).unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].nodes.len(), 5, "crashed node not judged");
        assert!(!reports[0].nodes.contains(&3));
        assert!(reports[0].within_one);
    }

    /// The engine's per-component `Δ*` agrees with the branch-and-bound
    /// oracle on the judge's own induced subgraphs — the small-`n`
    /// differential that pins the rewired judge to the legacy one.
    #[test]
    fn judge_delta_star_matches_branch_and_bound() {
        let g = structured::star_with_ring(10).unwrap();
        let net = crate::build_network(&g, Config::for_n(10));
        let mut runner = Runner::new(net, Scheduler::Synchronous);
        converge(&mut runner, 20_000);
        apply_churn(runner.network_mut(), &ChurnEvent::RemoveEdge(0, 1));
        converge(&mut runner, 20_000);
        let reports = check_reconvergence(runner.network(), budget()).unwrap();
        for r in &reports {
            let sub = induced_subgraph(runner.network(), &r.nodes);
            match exact_mdst(&sub, budget()) {
                ExactMdst::Exact { delta_star, .. } => {
                    assert_eq!(r.delta_star, Some(delta_star), "comp {:?}", r.nodes);
                }
                ExactMdst::Bounded { .. } => panic!("budget must settle n ≤ 10"),
            }
        }
    }

    /// A judge fed events stays bit-identical in outcome to a fresh judge
    /// built from scratch at every step of a churn chain.
    #[test]
    fn incremental_judge_tracks_one_shot_judge_across_churn() {
        let g = structured::star_with_ring(9).unwrap();
        let net = crate::build_network(&g, Config::for_n(9));
        let mut runner = Runner::new(net, Scheduler::Synchronous);
        converge(&mut runner, 20_000);
        let mut judge = DeltaJudge::new(runner.network(), budget());
        let chain = [
            ChurnEvent::RemoveEdge(1, 2),
            ChurnEvent::CrashNode(4),
            ChurnEvent::InsertEdge(1, 2),
            ChurnEvent::RejoinNode(4),
        ];
        for ev in &chain {
            apply_churn(runner.network_mut(), ev);
            judge.observe_churn(runner.network(), ev);
            converge(&mut runner, 20_000);
            let inc = judge.check(runner.network()).unwrap();
            let scratch = check_reconvergence(runner.network(), budget()).unwrap();
            assert_eq!(inc.len(), scratch.len(), "after {ev}");
            for (a, b) in inc.iter().zip(&scratch) {
                assert_eq!(a.nodes, b.nodes, "after {ev}");
                assert_eq!(a.degree, b.degree, "after {ev}");
                assert_eq!(a.delta_star, b.delta_star, "after {ev}");
                assert_eq!(a.within_one, b.within_one, "after {ev}");
            }
        }
        let stats = judge.stats();
        assert!(
            stats.warm_starts + stats.cache_hits > 0,
            "chain stayed incremental: {stats:?}"
        );
    }

    /// A judge that missed events (driver churned behind its back) still
    /// judges the actual network — the defensive re-sync.
    #[test]
    fn unobserved_churn_is_resynced_before_judging() {
        let g = structured::cycle(8).unwrap();
        let net = crate::build_network(&g, Config::for_n(8));
        let mut runner = Runner::new(net, Scheduler::Synchronous);
        converge(&mut runner, 20_000);
        let mut judge = DeltaJudge::new(runner.network(), budget());
        // Partition without telling the judge.
        apply_churn(
            runner.network_mut(),
            &ChurnEvent::Partition(vec![(0, 7), (3, 4)]),
        );
        converge(&mut runner, 20_000);
        let reports = judge.check(runner.network()).unwrap();
        assert_eq!(reports.len(), 2, "sync picked up the partition");
        assert!(reports.iter().all(|r| r.within_one));
    }
}
