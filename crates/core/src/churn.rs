//! Re-convergence checking under dynamic topology.
//!
//! After a churn event (edge removal/insertion, node crash/rejoin,
//! partition/heal) the constraint set the protocol is fitting has changed,
//! and "converged" must be re-judged against the **current live
//! topology**, which may even be disconnected (mid-partition, or while a
//! cut bridge is down). The checker therefore works component-wise: for
//! every connected component of the alive subgraph it verifies that the
//! parent pointers restrict to a spanning tree of that component and that
//! the tree's degree is within one of the component's optimum `Δ*`
//! (Theorem 2's guarantee, re-established after every perturbation).
//!
//! Optima are computed with the exact solver ([`exact_mdst`]) under a
//! budget; when the budget is exhausted the Fürer–Raghavachari-style
//! witness lower bound stands in and the verdict is conservative
//! (`deg ≤ lower + 1` is *sufficient* for `deg ≤ Δ* + 1`, never
//! necessary).

use crate::node::MdstNode;
use crate::NodeId;
use ssmdst_graph::{exact_mdst, Graph, GraphBuilder, SolveBudget, SpanningTree};
use ssmdst_sim::Network;

/// Verdict for one connected component of the live topology.
#[derive(Debug, Clone)]
pub struct ComponentReport {
    /// Member nodes, original ids, ascending.
    pub nodes: Vec<NodeId>,
    /// Max degree of the re-converged spanning tree of this component.
    pub degree: u32,
    /// Exact `Δ*` of the component, when the solver budget sufficed.
    pub delta_star: Option<u32>,
    /// Witness lower bound on `Δ*` (always available).
    pub lower: u32,
    /// Whether the tree degree is certified within one of the optimum:
    /// `degree ≤ Δ* + 1` when exact, else the conservative
    /// `degree ≤ lower + 1`.
    pub within_one: bool,
}

/// Why a network does not currently decompose into per-component trees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChurnError {
    /// A node's parent pointer leaves its own component (stale neighbor).
    ParentOutsideComponent { node: NodeId, parent: NodeId },
    /// A component with no self-rooted node, or more than one.
    BadRootCount { component_min: NodeId, roots: usize },
    /// The parent pointers of a component are cyclic or non-spanning.
    NotATree { component_min: NodeId },
}

impl std::fmt::Display for ChurnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChurnError::ParentOutsideComponent { node, parent } => {
                write!(f, "node {node} parents {parent} outside its component")
            }
            ChurnError::BadRootCount {
                component_min,
                roots,
            } => write!(f, "component of {component_min} has {roots} roots"),
            ChurnError::NotATree { component_min } => {
                write!(f, "component of {component_min} is not a tree")
            }
        }
    }
}

/// Relabel one component to dense ids and build its induced subgraph.
fn induced_subgraph(net: &Network<MdstNode>, comp: &[NodeId]) -> Graph {
    let mut b = GraphBuilder::new(comp.len());
    for (i, &v) in comp.iter().enumerate() {
        for &w in net.neighbors(v) {
            if w > v {
                let j = comp.binary_search(&w).expect("neighbor in component"); // lint: allow(no-panic-in-library) — components partition the graph, so every neighbor is listed
                b.add_edge(i as NodeId, j as NodeId).expect("in range"); // lint: allow(no-panic-in-library) — relabeled ids are dense in 0..comp.len() and w > v dedups
            }
        }
    }
    b.build()
}

/// Check that the network has re-converged to per-component spanning trees
/// within one of each component's optimal degree. Intended to be called at
/// quiescence, after each churn event of a [`ssmdst_sim::TopologyPlan`].
///
/// `budget` bounds the exact `Δ*` computation per component; pass
/// `SolveBudget { max_nodes: 0 }` to skip exact solving entirely (the
/// witness lower bound is then used for a conservative verdict).
pub fn check_reconvergence(
    net: &Network<MdstNode>,
    budget: SolveBudget,
) -> Result<Vec<ComponentReport>, ChurnError> {
    let mut reports = Vec::new();
    for comp in net.live_components() {
        let sub = induced_subgraph(net, &comp);
        // Map parent pointers into the dense relabeling.
        let mut parents = vec![0 as NodeId; comp.len()];
        let mut roots = Vec::new();
        for (i, &v) in comp.iter().enumerate() {
            let p = net.node(v).state().parent;
            if p == v {
                roots.push(i as NodeId);
                parents[i] = i as NodeId;
            } else {
                let Ok(j) = comp.binary_search(&p) else {
                    return Err(ChurnError::ParentOutsideComponent { node: v, parent: p });
                };
                parents[i] = j as NodeId;
            }
        }
        let &[root] = roots.as_slice() else {
            return Err(ChurnError::BadRootCount {
                component_min: comp[0],
                roots: roots.len(),
            });
        };
        let Ok(tree) = SpanningTree::from_parents(&sub, root, parents) else {
            return Err(ChurnError::NotATree {
                component_min: comp[0],
            });
        };
        let degree = tree.max_degree();
        let exact = exact_mdst(&sub, budget);
        let delta_star = exact.delta_star();
        let lower = exact.lower();
        let within_one = match delta_star {
            Some(d) => degree <= d + 1,
            None => degree <= lower + 1,
        };
        reports.push(ComponentReport {
            nodes: comp,
            degree,
            delta_star,
            lower,
            within_one,
        });
    }
    Ok(reports)
}

/// Convenience: `true` iff every component is a tree within one of its
/// optimum. The detailed [`check_reconvergence`] form is what experiments
/// report; this is the test predicate.
pub fn reconverged_within_one(net: &Network<MdstNode>, budget: SolveBudget) -> bool {
    check_reconvergence(net, budget)
        .map(|rs| rs.iter().all(|r| r.within_one))
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::oracle;
    use ssmdst_graph::generators::structured;
    use ssmdst_sim::faults::{apply_churn, ChurnEvent};
    use ssmdst_sim::{Runner, Scheduler};

    fn budget() -> SolveBudget {
        SolveBudget { max_nodes: 500_000 }
    }

    fn converge(runner: &mut Runner<MdstNode>, max_rounds: u64) {
        let out = runner.run_to_quiescence(max_rounds, 96, oracle::projection);
        assert!(out.converged(), "no quiescence within {max_rounds}");
    }

    #[test]
    fn static_converged_network_passes() {
        let g = structured::star_with_ring(8).unwrap();
        let net = crate::build_network(&g, Config::for_n(8));
        let mut runner = Runner::new(net, Scheduler::Synchronous);
        converge(&mut runner, 20_000);
        let reports = check_reconvergence(runner.network(), budget()).unwrap();
        assert_eq!(reports.len(), 1);
        assert!(reports[0].within_one);
        assert_eq!(reports[0].nodes.len(), 8);
        assert_eq!(reports[0].delta_star, Some(2)); // ring ⇒ path tree
    }

    #[test]
    fn fresh_network_fails_with_many_roots() {
        let g = structured::path(4).unwrap();
        let net = crate::build_network(&g, Config::for_n(4));
        // Everyone self-rooted: 4 roots in one component.
        let err = check_reconvergence(&net, budget()).unwrap_err();
        assert!(matches!(err, ChurnError::BadRootCount { roots: 4, .. }));
    }

    #[test]
    fn partitioned_network_is_judged_per_component() {
        let g = structured::cycle(8).unwrap();
        let net = crate::build_network(&g, Config::for_n(8));
        let mut runner = Runner::new(net, Scheduler::Synchronous);
        converge(&mut runner, 20_000);
        // Cut the cycle into two 4-paths.
        apply_churn(
            runner.network_mut(),
            &ChurnEvent::Partition(vec![(0, 7), (3, 4)]),
        );
        converge(&mut runner, 20_000);
        let reports = check_reconvergence(runner.network(), budget()).unwrap();
        assert_eq!(reports.len(), 2, "two components while partitioned");
        for r in &reports {
            assert_eq!(r.nodes.len(), 4);
            assert!(r.within_one, "component {:?} degree {}", r.nodes, r.degree);
        }
    }

    #[test]
    fn crashed_node_is_excluded_from_judgment() {
        let g = structured::cycle(6).unwrap();
        let net = crate::build_network(&g, Config::for_n(6));
        let mut runner = Runner::new(net, Scheduler::Synchronous);
        converge(&mut runner, 20_000);
        apply_churn(runner.network_mut(), &ChurnEvent::CrashNode(3));
        converge(&mut runner, 20_000);
        let reports = check_reconvergence(runner.network(), budget()).unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].nodes.len(), 5, "crashed node not judged");
        assert!(!reports[0].nodes.contains(&3));
        assert!(reports[0].within_one);
    }
}
