//! The protocol's message alphabet (paper §3.1 "Messages").
//!
//! | Paper message | Here | Purpose |
//! |---|---|---|
//! | `InfoMsg` | [`Msg::Info`] | gossip local variables to neighbors |
//! | `Search` | [`Msg::Search`] | DFS token discovering a fundamental cycle |
//! | `Remove` | [`Msg::Remove`] | delete a tree edge at a max-degree node |
//! | `Remove` (continuation) / `Back` / `Reverse` | [`Msg::Flip`] | re-orient parents along the reversed cycle arc |
//! | `Deblock` | [`Msg::Deblock`] | flood asking a blocking node's subtree for help |
//! | `UpdateDist` | [`Msg::DistChain`], [`Msg::DistFlood`] | repair distances after a reversal |
//!
//! Sizes are accounted in bits with the paper's convention that IDs,
//! degrees and distances cost `⌈log₂ n⌉` bits; the `path` lists make
//! `Search`/`Remove` the `O(n log n)` messages of the paper's buffer-length
//! analysis (experiment F5 measures exactly this).

use crate::NodeId;
use ssmdst_sim::Message;

/// Payload of the periodic `InfoMsg` gossip: the sender's variables as
/// mirrored by [`crate::state::NbrView`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InfoPayload {
    /// Sender's root estimate.
    pub root: NodeId,
    /// Sender's parent pointer.
    pub parent: NodeId,
    /// Sender's distance estimate.
    pub distance: u32,
    /// Sender's `dmax`.
    pub dmax: u32,
    /// Sender's tree degree.
    pub deg: u32,
    /// Sender's PIF feedback value.
    pub subtree_max: u32,
    /// Sender's color bit.
    pub color: bool,
}

/// One hop of a search path: `(node, its tree degree when visited)`.
pub type PathEntry = (NodeId, u32);

/// Protocol messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    /// Periodic gossip of local variables (the send/receive-atomicity
    /// refresh).
    Info(InfoPayload),

    /// DFS token looking for the fundamental cycle of the non-tree edge
    /// `{init.0, init.1}` (`init.0` is the lower-ID initiator).
    Search {
        /// `(initiator a, target b)` endpoints of the non-tree edge.
        init: (NodeId, NodeId),
        /// Blocking node this search works for, with the remaining deblock
        /// recursion budget (`None` for plain searches).
        idblock: Option<(NodeId, u8)>,
        /// `dmax` snapshot at launch; any hop seeing a different local
        /// `dmax` discards the token as stale.
        dmax: u32,
        /// DFS stack: tree path from the initiator to the current holder,
        /// with each node's degree at visit time.
        path: Vec<PathEntry>,
        /// All nodes ever visited (DFS "marked" set, carried in the token
        /// so nodes stay stateless w.r.t. searches).
        visited: Vec<NodeId>,
        /// Whether this hop is a backtrack return to the stack top.
        backtrack: bool,
    },

    /// Commit request: swap non-tree edge `{init.0, init.1}` in and tree
    /// edge `target` out. Travels from the cycle-closing endpoint across
    /// the non-tree edge and then along the cycle to the target edge.
    Remove {
        /// `(a, b)` endpoints of the edge being inserted.
        init: (NodeId, NodeId),
        /// Required tree degree of the commit node at commit time
        /// (freshness: a stale request must not fire).
        deg_max: u32,
        /// Index into `cycle` of the maximum-degree node `w`. The message
        /// commits *at `w` itself* so the degree check reads fresh local
        /// state, never a (possibly stale) neighbor mirror.
        w_idx: usize,
        /// Index of the cycle-neighbor of `w` whose shared tree edge is
        /// deleted (`w_idx ± 1`).
        z_idx: usize,
        /// Full cycle node sequence `[a, ..., b]` (tree path endpoints
        /// inclusive).
        cycle: Vec<NodeId>,
        /// `dmax` snapshot at launch.
        dmax: u32,
        /// Distance of `a` (stamped by `a` as the message passes it).
        dist_a: u32,
        /// Distance of `b` (stamped at launch).
        dist_b: u32,
        /// Index into `cycle` of the node this hop is addressed to.
        pos: usize,
    },

    /// Parent re-orientation along the reversed cycle arc after a commit
    /// (the paper's `Remove`-continuation / `Back` / `Reverse` family).
    /// Must always run to completion — dropping it would partition the
    /// tree, so it carries no freshness guards.
    Flip {
        /// Cycle node sequence (same vector as the `Remove`).
        cycle: Vec<NodeId>,
        /// Index of the addressee in `cycle`.
        pos: usize,
        /// Walk direction: `+1` (toward `b`) or `-1` (toward `a`).
        dir: i8,
        /// Index at which the flip stops (the inserted-edge endpoint).
        end: usize,
        /// First index of the flipped arc (the cut-adjacent node); the
        /// distance-repair chain walks back from `end` to here.
        origin: usize,
        /// Distance of the node the stop index will attach to (so the
        /// terminal node can set its distance immediately).
        anchor_dist: u32,
        /// The node the terminal endpoint adopts as parent (the other
        /// inserted-edge endpoint).
        anchor: NodeId,
    },

    /// Distance repair along a freshly flipped arc; each recipient adopts
    /// `dist + 1`, floods [`Msg::DistFlood`] into its off-path subtrees,
    /// and forwards the chain.
    DistChain {
        /// Cycle node sequence.
        cycle: Vec<NodeId>,
        /// Addressee index in `cycle`.
        pos: usize,
        /// Walk direction along the cycle.
        dir: i8,
        /// Last index to update (inclusive).
        end: usize,
        /// Sender's (already corrected) distance.
        dist: u32,
    },

    /// Subtree distance flood: recipient adopts `dist + 1` and forwards to
    /// its children.
    DistFlood {
        /// Sender's distance.
        dist: u32,
    },

    /// Flood announcing that `idblock` (tree degree `deg`, which is
    /// `dmax − 1`) blocks an improvement; receivers launch searches on
    /// `idblock`'s behalf and forward the flood through the tree.
    Deblock {
        /// The blocking node.
        idblock: NodeId,
        /// Remaining recursion budget for nested deblocking.
        ttl: u8,
        /// `dmax` snapshot at emission.
        dmax: u32,
    },
}

/// `⌈log₂ n⌉`, floored at 1 bit.
fn id_bits(n: usize) -> usize {
    (usize::BITS - n.max(2).saturating_sub(1).leading_zeros()) as usize
}

impl Message for Msg {
    fn kind(&self) -> &'static str {
        match self {
            Msg::Info(_) => "InfoMsg",
            Msg::Search { .. } => "Search",
            Msg::Remove { .. } => "Remove",
            Msg::Flip { .. } => "Flip",
            Msg::DistChain { .. } => "DistChain",
            Msg::DistFlood { .. } => "DistFlood",
            Msg::Deblock { .. } => "Deblock",
        }
    }

    fn size_bits(&self, n: usize) -> usize {
        let b = id_bits(n);
        match self {
            // root, parent, distance, dmax, deg, subtree_max + color bit
            Msg::Info(_) => 6 * b + 1,
            Msg::Search {
                path,
                visited,
                idblock,
                ..
            } => {
                // init edge + dmax + optional idblock + flags
                2 * b
                    + b
                    + idblock.map(|_| b).unwrap_or(1)
                    + path.len() * 2 * b
                    + visited.len() * b
                    + 1
            }
            Msg::Remove { cycle, .. } => {
                // init + deg_max + dmax + two distances + three indices +
                // cycle
                2 * b + b + b + 2 * b + 3 * b + cycle.len() * b
            }
            Msg::Flip { cycle, .. } => 4 * b + 2 + b + cycle.len() * b,
            Msg::DistChain { cycle, .. } => 3 * b + 2 + cycle.len() * b,
            Msg::DistFlood { .. } => b,
            Msg::Deblock { .. } => 2 * b + 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info() -> Msg {
        Msg::Info(InfoPayload {
            root: 0,
            parent: 0,
            distance: 0,
            dmax: 0,
            deg: 0,
            subtree_max: 0,
            color: false,
        })
    }

    #[test]
    fn kinds_are_distinct_labels() {
        let msgs = [
            info(),
            Msg::Search {
                init: (0, 1),
                idblock: None,
                dmax: 0,
                path: vec![],
                visited: vec![],
                backtrack: false,
            },
            Msg::Remove {
                init: (0, 1),
                deg_max: 3,
                w_idx: 1,
                z_idx: 2,
                cycle: vec![],
                dmax: 3,
                dist_a: 0,
                dist_b: 0,
                pos: 0,
            },
            Msg::Flip {
                cycle: vec![],
                pos: 0,
                dir: 1,
                end: 0,
                origin: 0,
                anchor_dist: 0,
                anchor: 0,
            },
            Msg::DistChain {
                cycle: vec![],
                pos: 0,
                dir: 1,
                end: 0,
                dist: 0,
            },
            Msg::DistFlood { dist: 0 },
            Msg::Deblock {
                idblock: 0,
                ttl: 1,
                dmax: 2,
            },
        ];
        let mut kinds: Vec<_> = msgs.iter().map(|m| m.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), 7);
    }

    #[test]
    fn info_size_is_o_log_n() {
        let m = info();
        assert_eq!(m.size_bits(16), 6 * 4 + 1);
        assert_eq!(m.size_bits(1 << 20), 6 * 20 + 1);
    }

    #[test]
    fn search_size_grows_linearly_with_path() {
        let short = Msg::Search {
            init: (0, 1),
            idblock: None,
            dmax: 2,
            path: vec![(0, 1)],
            visited: vec![0],
            backtrack: false,
        };
        let long = Msg::Search {
            init: (0, 1),
            idblock: None,
            dmax: 2,
            path: (0..50).map(|i| (i, 1)).collect(),
            visited: (0..50).collect(),
            backtrack: false,
        };
        let (s, l) = (short.size_bits(64), long.size_bits(64));
        assert!(l > s);
        // Linear in list lengths: 49 extra path entries (2b each) + 49
        // extra visited entries (b each), b = 6.
        assert_eq!(l - s, 49 * (2 * 6) + 49 * 6);
    }

    #[test]
    fn id_bits_floors_at_one() {
        assert_eq!(id_bits(1), 1);
        assert_eq!(id_bits(2), 1);
        assert_eq!(id_bits(3), 2);
        assert_eq!(id_bits(1024), 10);
    }
}
