//! Module 1 — self-stabilizing spanning tree (paper §3.2.1).
//!
//! A simplification of Afek–Kutten–Yung: the tree roots itself at the
//! minimum node ID through two rules evaluated on every atomic step:
//!
//! * **R1 `correction_parent`** — if coherent but a neighbor advertises a
//!   smaller root, adopt the best such neighbor as parent;
//! * **R2 `correction_root`** — if the local state is incoherent (parent not
//!   a neighbor, root mismatch with parent, phantom root, or — in strict
//!   mode — distance mismatch), reset to a self-rooted singleton.
//!
//! The *gentle* variant (default, ablation A1) repairs a pure distance
//! mismatch in place instead of resetting; both variants are
//! self-stabilizing, but gentle avoids tearing down the tree after every
//! deliberate parent reversal performed by the reduction module.

use crate::messages::InfoPayload;
use crate::node::MdstNode;
use crate::state::NbrView;
use crate::NodeId;

impl MdstNode {
    /// Ingest an `InfoMsg`: refresh the mirror, then re-evaluate the tree
    /// rules and the derived degree variables (paper's `Update_State`).
    pub(crate) fn handle_info(&mut self, from: NodeId, p: InfoPayload) {
        if !self.st.is_neighbor(from) {
            return;
        }
        self.st.nbr.insert(
            from,
            NbrView {
                root: p.root,
                parent: p.parent,
                distance: p.distance,
                dmax: p.dmax,
                deg: p.deg,
                subtree_max: p.subtree_max,
                color: p.color,
            },
        );
        self.apply_tree_rules();
        self.st.recompute_derived();
    }

    /// Rules R2 then R1 (R1 is guarded by coherence, as in the paper).
    pub(crate) fn apply_tree_rules(&mut self) {
        // Distances are bounded by the network size (config's path cap): a
        // distance beyond it can only come from a parent cycle, whose
        // members pump each other's distances up by one per step under the
        // gentle repair. The ceiling converts that livelock into an R2
        // reset, which breaks the cycle (strict mode breaks it directly via
        // the distance-incoherence reset).
        let ceiling = self.st.dist_ceiling;
        if self.cfg.strict_distance_reset {
            // The paper's rule, with its own freezing discipline: a node in
            // the middle of an orientation reversal (`Reverse_Aux` "waits
            // and treats only InfoMsg") must not reset on the transient
            // distance incoherence the reversal itself creates. Parent
            // incoherence always resets.
            let fire = if self.st.busy > 0 {
                !self.st.coherent_parent()
            } else {
                self.st.new_root_candidate_strict()
            };
            if fire {
                // R2: create_new_root(v) — the paper's rule verbatim.
                self.st.root = self.st.id;
                self.st.parent = self.st.id;
                self.st.distance = 0;
            }
        } else {
            // Gentle cascade containment: when the parent link itself is
            // fine but the parent's *root* changed (e.g. a far-away reset
            // re-rooted the component), follow the parent's root instead of
            // resetting — this keeps the carefully reduced tree structure
            // intact across transient root perturbations. Reset only when
            // the parent link is unusable or the advertised root/distance
            // is implausible (fake roots circulating in parent cycles have
            // climbing distances; the ceiling kills them).
            let p = self.st.parent;
            let reset = if p == self.st.id {
                self.st.root != self.st.id
            } else if !self.st.is_neighbor(p) {
                true
            } else {
                let pv = self.st.view(p);
                let follow_ok = pv.root <= self.st.id && pv.distance < ceiling;
                if follow_ok {
                    if self.st.root != pv.root {
                        self.st.root = pv.root;
                        self.st.distance = pv.distance.saturating_add(1);
                    }
                    false
                } else {
                    true
                }
            };
            if reset || self.st.distance > ceiling || self.st.root > self.st.id {
                self.st.root = self.st.id;
                self.st.parent = self.st.id;
                self.st.distance = 0;
            } else if !self.st.coherent_distance() {
                // Distance-only repair: trust the parent's advertised value.
                if self.st.parent == self.st.id {
                    self.st.distance = 0;
                } else {
                    self.st.distance = self.st.view(self.st.parent).distance.saturating_add(1);
                }
            }
        }
        // R1: adopt the neighbor advertising the smallest plausible root
        // (ties by ID); candidates with out-of-range distances are fake.
        if let Some(best) = self.st.adoptable_parent() {
            let v = self.st.view(best);
            self.st.root = v.root;
            self.st.parent = best;
            self.st.distance = v.distance.saturating_add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::messages::Msg;
    use crate::oracle;
    use ssmdst_graph::generators::structured;
    use ssmdst_sim::{Network, Runner, Scheduler};

    fn info(root: NodeId, parent: NodeId, distance: u32) -> InfoPayload {
        InfoPayload {
            root,
            parent,
            distance,
            dmax: 0,
            deg: 0,
            subtree_max: 0,
            color: false,
        }
    }

    #[test]
    fn adopts_smaller_root_from_neighbor() {
        let mut n = MdstNode::new(5, &[2, 7], Config::for_n(8));
        n.handle_info(2, info(0, 0, 3));
        assert_eq!(n.state().root, 0);
        assert_eq!(n.state().parent, 2);
        assert_eq!(n.state().distance, 4);
    }

    #[test]
    fn prefers_smallest_root_then_smallest_id() {
        let mut n = MdstNode::new(5, &[2, 7], Config::for_n(8));
        // Install both mirrors advertising the same root, then evaluate the
        // rules once: the tie must break toward the smaller neighbor ID.
        n.st.nbr.insert(
            7,
            crate::state::NbrView {
                root: 1,
                parent: 1,
                distance: 0,
                ..crate::state::NbrView::unknown(7)
            },
        );
        n.st.nbr.insert(
            2,
            crate::state::NbrView {
                root: 1,
                parent: 1,
                distance: 0,
                ..crate::state::NbrView::unknown(2)
            },
        );
        n.apply_tree_rules();
        assert_eq!(n.state().parent, 2);
        assert_eq!(n.state().root, 1);
    }

    #[test]
    fn r2_fires_on_non_neighbor_parent() {
        let mut n = MdstNode::new(5, &[2, 7], Config::for_n(8));
        n.st.parent = 3; // not a neighbor
        n.st.root = 3;
        n.apply_tree_rules();
        // R2 resets to a self-root, then R1 immediately adopts neighbor 2
        // whose (blank) mirror advertises root 2 < 5.
        assert_eq!(n.state().root, 2);
        assert_eq!(n.state().parent, 2);
        assert_eq!(n.state().distance, 1);
    }

    #[test]
    fn r2_fires_on_phantom_root() {
        let mut n = MdstNode::new(5, &[2, 7], Config::for_n(8));
        n.st.parent = 5;
        n.st.root = 1; // claims to be rooted at 1 while self-parented
        n.apply_tree_rules();
        // The phantom root 1 is gone: reset to 5, then R1 adopts neighbor 2.
        assert_eq!(n.state().root, 2);
        assert_ne!(n.state().root, 1);
    }

    #[test]
    fn gentle_mode_repairs_distance_without_reset() {
        let mut n = MdstNode::new(5, &[2], Config::for_n(8));
        n.handle_info(2, info(0, 0, 3));
        assert_eq!(n.state().distance, 4);
        n.st.distance = 99;
        n.apply_tree_rules();
        assert_eq!(n.state().parent, 2, "no reset");
        assert_eq!(n.state().distance, 4, "repaired in place");
    }

    #[test]
    fn strict_mode_resets_on_distance_mismatch() {
        let mut n = MdstNode::new(5, &[2], Config::strict(8));
        n.handle_info(2, info(0, 0, 3));
        n.st.distance = 99;
        n.apply_tree_rules();
        // R2 reset, then R1 immediately re-adopts neighbor 2 (root 0 is
        // still better) — with a now-correct distance.
        assert_eq!(n.state().root, 0);
        assert_eq!(n.state().distance, 4);
    }

    /// End-to-end: the spanning-tree module alone forms a BFS-like tree
    /// rooted at node 0 on a ring.
    #[test]
    fn ring_forms_min_rooted_spanning_tree() {
        let g = structured::cycle(9).unwrap();
        let net: Network<MdstNode> = crate::build_network(&g, Config::for_n(9));
        let mut runner = Runner::new(net, Scheduler::Synchronous);
        let out = runner.run_until(200, |net, _| oracle::try_extract_tree(&g, net).is_some());
        assert!(out.converged(), "tree never formed");
        let t = oracle::try_extract_tree(&g, runner.network()).unwrap();
        assert_eq!(t.root(), 0);
    }

    /// The tree module must also recover when every node starts corrupted.
    #[test]
    fn recovers_from_total_corruption() {
        let g = structured::grid(3, 3).unwrap();
        let net = crate::build_network(&g, Config::for_n(9));
        let mut runner = Runner::new(net, Scheduler::RandomAsync { seed: 1 });
        ssmdst_sim::faults::inject(
            runner.network_mut(),
            ssmdst_sim::faults::FaultPlan::total(7),
        );
        let out = runner.run_until(500, |net, _| {
            oracle::try_extract_tree(&g, net).is_some() && oracle::all_tree_stabilized(net)
        });
        assert!(out.converged(), "no recovery from corruption");
    }

    /// InfoMsg from an unexpected sender is ignored gracefully.
    #[test]
    fn info_from_non_neighbor_ignored() {
        let mut n = MdstNode::new(5, &[2], Config::for_n(8));
        let before = n.state().clone();
        // Simulate a (bogus) delivery from node 9.
        match (Msg::Info(info(0, 0, 0)), 9u32) {
            (Msg::Info(p), from) => n.handle_info(from, p),
            _ => unreachable!(),
        }
        assert_eq!(n.state().root, before.root);
        assert_eq!(n.state().nbr.len(), before.nbr.len());
    }
}
