//! Centralized observation of the distributed state — used by tests,
//! convergence detection and the experiment harness, never by the protocol.

use crate::node::MdstNode;
use crate::NodeId;
use ssmdst_graph::{Graph, SpanningTree};
use ssmdst_sim::Network;

/// The parent pointer of every node.
pub fn parents(net: &Network<MdstNode>) -> Vec<NodeId> {
    net.nodes().iter().map(|a| a.state().parent).collect()
}

/// The `dmax` estimate of every node.
pub fn dmaxes(net: &Network<MdstNode>) -> Vec<u32> {
    net.nodes().iter().map(|a| a.state().dmax).collect()
}

/// Quiescence projection: the tree structure, the degree estimates and the
/// distances. When this is unchanged for long enough, the protocol has
/// stabilized (searches keep flowing but are pure reads). Distances are
/// included so that a parent cycle — whose distances climb forever under
/// the gentle repair until the R2 ceiling breaks it — can never look
/// quiescent.
pub fn projection(net: &Network<MdstNode>) -> (Vec<NodeId>, Vec<u32>, Vec<u32>) {
    let dists = net.nodes().iter().map(|a| a.state().distance).collect();
    (parents(net), dmaxes(net), dists)
}

/// Extract the global structure as a [`SpanningTree`] if the parent
/// pointers currently describe one (single self-rooted node, parent edges
/// real, acyclic, spanning).
pub fn try_extract_tree(g: &Graph, net: &Network<MdstNode>) -> Option<SpanningTree> {
    let ps = parents(net);
    let mut root = None;
    for (v, &p) in ps.iter().enumerate() {
        if p == v as NodeId {
            if root.is_some() {
                return None; // two roots
            }
            root = Some(v as NodeId);
        }
    }
    SpanningTree::from_parents(g, root?, ps).ok()
}

/// Whether every node's spanning-tree layer is stabilized.
pub fn all_tree_stabilized(net: &Network<MdstNode>) -> bool {
    net.nodes().iter().all(|a| a.state().tree_stabilized())
}

/// Whether every node is fully locally stabilized (tree + degree + color).
pub fn all_locally_stabilized(net: &Network<MdstNode>) -> bool {
    net.nodes().iter().all(|a| a.state().locally_stabilized())
}

/// Whether every node's `dmax` equals `expect`.
pub fn dmax_agrees(net: &Network<MdstNode>, expect: u32) -> bool {
    net.nodes().iter().all(|a| a.state().dmax == expect)
}

/// The maximum tree degree of the current global structure, if it is a tree.
pub fn current_degree(g: &Graph, net: &Network<MdstNode>) -> Option<u32> {
    try_extract_tree(g, net).map(|t| t.max_degree())
}

/// Measured per-node memory in bits, under the paper's encoding
/// conventions (IDs, degrees and distances cost `⌈log₂ n⌉` bits; booleans
/// one bit). Counts the paper's variables, the δ neighbor mirrors of the
/// send/receive model, and this implementation's throttle counters — the
/// whole resident protocol state, measured live rather than derived from a
/// formula (experiment T4).
pub fn state_bits(node: &MdstNode, n: usize) -> usize {
    let b = (usize::BITS - n.max(2).saturating_sub(1).leading_zeros()) as usize;
    let s = node.state();
    // root, parent, distance, dmax, deg, subtree_max + color.
    let own = 6 * b + 1;
    let mirrors = s.nbr.len() * (6 * b + 1);
    // Throttles: per-edge search cooldowns, per-blocker deblock cooldowns,
    // busy counter, launch counter (bounded by the period ≈ n, so b bits).
    let throttles = s.search_cooldown.len() * 2 * b + s.deblock_cooldown.len() * 2 * b + 2 * b;
    own + mirrors + throttles
}

/// Maximum measured per-node state over the network (bits).
pub fn max_state_bits(net: &Network<MdstNode>) -> usize {
    let n = net.n();
    net.nodes()
        .iter()
        .map(|a| state_bits(a, n))
        .max()
        .unwrap_or(0)
}

/// Legitimacy predicate of Definition 1 instantiated for the MDST spec:
/// the global state is a spanning tree, every node is locally stabilized,
/// and every node's `dmax` equals the true tree degree.
pub fn is_legitimate(g: &Graph, net: &Network<MdstNode>) -> bool {
    let Some(t) = try_extract_tree(g, net) else {
        return false;
    };
    all_locally_stabilized(net) && dmax_agrees(net, t.max_degree())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use ssmdst_graph::generators::structured;
    use ssmdst_sim::{Runner, Scheduler};

    #[test]
    fn fresh_network_is_not_a_tree() {
        let g = structured::path(4).unwrap();
        let net = crate::build_network(&g, Config::for_n(4));
        // Everyone self-rooted: four roots, no tree.
        assert!(try_extract_tree(&g, &net).is_none());
        assert!(!is_legitimate(&g, &net));
    }

    #[test]
    fn converged_path_is_legitimate() {
        let g = structured::path(5).unwrap();
        let net = crate::build_network(&g, Config::for_n(5));
        let mut runner = Runner::new(net, Scheduler::Synchronous);
        let out = runner.run_until(200, |net, _| is_legitimate(&g, net));
        assert!(out.converged());
        let t = try_extract_tree(&g, runner.network()).unwrap();
        assert_eq!(t.root(), 0);
        assert_eq!(t.max_degree(), 2);
        assert_eq!(current_degree(&g, runner.network()), Some(2));
    }

    #[test]
    fn projection_is_stable_after_convergence() {
        let g = structured::cycle(6).unwrap();
        let net = crate::build_network(&g, Config::for_n(6));
        let mut runner = Runner::new(net, Scheduler::Synchronous);
        let _ = runner.run_until(200, |net, _| is_legitimate(&g, net));
        let p1 = projection(runner.network());
        let _ = runner.run_until(50, |_, _| false);
        let p2 = projection(runner.network());
        assert_eq!(p1, p2);
    }

    #[test]
    fn two_roots_is_not_a_tree() {
        let g = structured::path(3).unwrap();
        let mut net = crate::build_network(&g, Config::for_n(3));
        // Manually wire: 0 self-rooted, 1 child of 0, 2 self-rooted.
        net.node_mut(1).st.parent = 0;
        assert!(try_extract_tree(&g, &net).is_none());
    }
}
