//! Protocol configuration and ablation switches.

/// Tunables of the protocol. Every deviation knob corresponds to an ablation
/// in DESIGN.md (A1, A2) or a throttle with a paper-faithful default.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Ticks between successive `Search` launches for the same non-tree
    /// edge. The paper's do-forever loop relaunches continuously; a period
    /// keeps simulated traffic finite without changing reachable
    /// configurations. Should scale like Θ(n) so a token finishes (a DFS
    /// over the tree takes ≤ 2(n−1) hops) before its successor starts.
    pub search_period: u32,

    /// Ablation **A1**: `true` replays the paper's strict rule R2 — any
    /// distance incoherence makes the node a new-root candidate and resets
    /// it. `false` (default) repairs a pure distance incoherence in place
    /// (`distance ← distance_parent + 1`), which is also self-stabilizing
    /// and avoids tearing the tree down after every edge reversal.
    pub strict_distance_reset: bool,

    /// Ablation **A2**: enable the `Deblock` module. Without it the
    /// protocol stops at the first blocked configuration and the
    /// `Δ* + 1` guarantee degrades (measurably, see experiment A2).
    pub enable_deblock: bool,

    /// Recursion budget carried by `Deblock` chains (the paper's recursive
    /// deblocking; the budget bounds churn from corrupted chains).
    pub deblock_ttl: u8,

    /// Ticks a node ignores repeated `Deblock` floods for the same blocking
    /// node (throttle; floods are idempotent).
    pub deblock_cooldown: u32,

    /// Hard cap on path/visited lists carried in messages. Anything longer
    /// is corrupt by definition (a tree path has ≤ n nodes) and is dropped.
    pub max_path_len: usize,

    /// Ablation **A3**: the busy latch serializing overlapping
    /// improvements. Disabling it re-exposes the flip-crossing hazard
    /// (crossing reversal arcs corrupt the tree and trigger re-election
    /// storms); the experiment quantifies the damage.
    pub enable_busy_latch: bool,
}

impl Config {
    /// Default configuration scaled for an `n`-node network.
    pub fn for_n(n: usize) -> Self {
        Config {
            search_period: (2 * n as u32).max(8),
            strict_distance_reset: false,
            enable_deblock: true,
            deblock_ttl: 8,
            deblock_cooldown: (2 * n as u32).max(8),
            max_path_len: n + 1,
            enable_busy_latch: true,
        }
    }

    /// Paper-strict variant (ablation A1).
    pub fn strict(n: usize) -> Self {
        Config {
            strict_distance_reset: true,
            ..Config::for_n(n)
        }
    }

    /// Deblock disabled (ablation A2).
    pub fn without_deblock(n: usize) -> Self {
        Config {
            enable_deblock: false,
            ..Config::for_n(n)
        }
    }

    /// Busy latch disabled (ablation A3).
    pub fn without_busy_latch(n: usize) -> Self {
        Config {
            enable_busy_latch: false,
            ..Config::for_n(n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_scale_with_n() {
        let c = Config::for_n(50);
        assert_eq!(c.search_period, 100);
        assert_eq!(c.max_path_len, 51);
        assert!(c.enable_deblock);
        assert!(!c.strict_distance_reset);
    }

    #[test]
    fn small_n_gets_floors() {
        let c = Config::for_n(2);
        assert!(c.search_period >= 8);
        assert!(c.deblock_cooldown >= 8);
    }

    #[test]
    fn ablation_constructors() {
        assert!(Config::strict(10).strict_distance_reset);
        assert!(!Config::without_deblock(10).enable_deblock);
        assert!(!Config::without_deblock(10).strict_distance_reset);
    }
}
