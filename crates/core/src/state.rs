//! Per-node protocol state and the paper's predicates (§3.1).
//!
//! In the send/receive atomicity model every node keeps a *mirror* of each
//! neighbor's variables ([`NbrView`]), refreshed by `InfoMsg`; all predicates
//! are evaluated against the mirrors, never against live remote state.

use crate::NodeId;
use std::collections::BTreeMap;

/// Mirrored copy of one neighbor's advertised variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NbrView {
    /// Neighbor's root estimate.
    pub root: NodeId,
    /// Neighbor's parent pointer.
    pub parent: NodeId,
    /// Neighbor's distance-to-root estimate.
    pub distance: u32,
    /// Neighbor's `dmax` (tree max-degree estimate).
    pub dmax: u32,
    /// Neighbor's own tree degree.
    pub deg: u32,
    /// Neighbor's aggregated subtree max degree (PIF feedback value).
    pub subtree_max: u32,
    /// Neighbor's color bit (dmax-agreement witness).
    pub color: bool,
}

impl NbrView {
    /// A blank mirror used before the first `InfoMsg` arrives (and by the
    /// corruption adversary).
    pub fn unknown(of: NodeId) -> Self {
        NbrView {
            root: of,
            parent: of,
            distance: 0,
            dmax: 0,
            deg: 0,
            subtree_max: 0,
            color: false,
        }
    }
}

/// The local variables of the paper (§3.1) plus derived values and
/// throttling counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeState {
    /// This node's identifier (also its unique ID for tie-breaking).
    pub id: NodeId,
    /// Sorted neighbor list, kept in sync with the live topology by the
    /// simulator's topology-change hook (edge churn, crashes, rejoins).
    pub neighbors: Vec<NodeId>,

    // ------ the paper's variables ------
    /// `root_v`: ID of the believed tree root.
    pub root: NodeId,
    /// `parent_v`: parent pointer (== `id` iff self-rooted).
    pub parent: NodeId,
    /// `distance_v`: hop distance to the root along parents.
    pub distance: u32,
    /// `dmax_v`: local estimate of `deg(T)`.
    pub dmax: u32,
    /// `deg_v`: own tree degree (derived from parents, cached).
    pub deg: u32,
    /// `color_tree_v`: true iff `dmax` agreed with all mirrors when last
    /// recomputed.
    pub color: bool,
    /// PIF feedback: max tree degree in this node's subtree (incl. self).
    pub subtree_max: u32,

    /// Distance ceiling (≈ n + 2): a valid tree never produces distances at
    /// or above it, so root claims carried with such distances are fake
    /// (they can only originate in parent cycles) and must not be adopted.
    pub dist_ceiling: u32,

    // ------ mirrors ------
    /// Neighbor mirrors, keyed by neighbor id.
    pub nbr: BTreeMap<NodeId, NbrView>,

    // ------ throttles (not part of the verified state) ------
    /// Remaining ticks before re-launching a `Search` per non-tree neighbor.
    pub search_cooldown: BTreeMap<NodeId, u32>,
    /// Remaining ticks ignoring repeated `Deblock` floods per blocking id.
    pub deblock_cooldown: BTreeMap<NodeId, u32>,
    /// Remaining ticks during which this node refuses to relay *new*
    /// `Remove` requests because an improvement is already moving through
    /// it. Serializes overlapping improvements (whose flips would otherwise
    /// cross and corrupt the tree) while leaving vertex-disjoint
    /// improvements fully concurrent — the paper's concurrency claim.
    pub busy: u32,
    /// Search launches performed so far; feeds the deterministic cooldown
    /// jitter that de-synchronizes retries (a perfectly periodic retry
    /// schedule can replay the same improvement collision forever under
    /// the synchronous daemon).
    pub launch_counter: u64,
}

impl NodeState {
    /// Fresh post-reset state: self-rooted, no tree edges believed.
    pub fn new(id: NodeId, neighbors: &[NodeId]) -> Self {
        NodeState {
            id,
            neighbors: neighbors.to_vec(),
            root: id,
            parent: id,
            distance: 0,
            dmax: 0,
            deg: 0,
            color: false,
            subtree_max: 0,
            dist_ceiling: u32::MAX,
            nbr: neighbors
                .iter()
                .map(|&u| (u, NbrView::unknown(u)))
                .collect(),
            search_cooldown: BTreeMap::new(),
            deblock_cooldown: BTreeMap::new(),
            busy: 0,
            launch_counter: 0,
        }
    }

    /// Mirror of neighbor `u` (blank if somehow missing — mirrors of
    /// non-neighbors are never consulted).
    pub fn view(&self, u: NodeId) -> NbrView {
        self.nbr.get(&u).copied().unwrap_or(NbrView::unknown(u))
    }

    /// Whether `u` is a topological neighbor.
    pub fn is_neighbor(&self, u: NodeId) -> bool {
        self.neighbors.binary_search(&u).is_ok()
    }

    // ---------- the paper's predicates (§3.1) ----------

    /// `is_tree_edge(v, u)`: `{v,u}` is a tree edge iff either end points
    /// its parent at the other.
    pub fn is_tree_edge(&self, u: NodeId) -> bool {
        self.is_neighbor(u) && (self.parent == u || self.view(u).parent == self.id)
    }

    /// Children according to the mirrors: neighbors whose parent is me.
    pub fn children(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.neighbors
            .iter()
            .copied()
            .filter(move |&u| self.view(u).parent == self.id)
    }

    /// `better_parent(v)`: some neighbor advertises a strictly smaller root
    /// *with a plausible distance*. The distance filter rejects fake roots
    /// circulating in parent cycles, whose distances grow without bound —
    /// without it, rule R1 re-adopts a cycle partner the moment R2 resets
    /// a member, and the cycle never dies.
    pub fn better_parent(&self) -> bool {
        self.adoptable_parent().is_some()
    }

    /// The best adoptable parent candidate (smallest advertised root, ties
    /// by ID) whose root beats ours and whose distance is in range.
    pub fn adoptable_parent(&self) -> Option<NodeId> {
        self.neighbors
            .iter()
            .copied()
            .filter(|&u| {
                let v = self.view(u);
                v.root < self.root && v.distance < self.dist_ceiling
            })
            .min_by_key(|&u| (self.view(u).root, u))
    }

    /// `coherent_parent(v)`: parent is me or a neighbor with my root.
    pub fn coherent_parent(&self) -> bool {
        if self.parent == self.id {
            // A self-rooted node must claim its own ID as root, and must not
            // believe a root larger than itself (it could do better alone).
            // These two guards close the classic phantom-root hole of
            // min-ID election under arbitrary corruption.
            self.root == self.id
        } else {
            self.is_neighbor(self.parent)
                && self.root == self.view(self.parent).root
                && self.root <= self.id
        }
    }

    /// `coherent_distance(v)`: distance is parent's + 1 (0 when self-rooted).
    pub fn coherent_distance(&self) -> bool {
        if self.parent == self.id {
            self.distance == 0
        } else {
            self.distance == self.view(self.parent).distance.saturating_add(1)
        }
    }

    /// `new_root_candidate(v)` — rule R2's guard (strict form).
    pub fn new_root_candidate_strict(&self) -> bool {
        !self.coherent_parent() || !self.coherent_distance()
    }

    /// Gentle form: distance incoherence alone is repairable in place.
    pub fn new_root_candidate_gentle(&self) -> bool {
        !self.coherent_parent()
    }

    /// `tree_stabilized(v)` under the gentle rule: no better parent, parent
    /// coherent, and every neighbor shares my root (the last conjunct makes
    /// the predicate `false` while the min-root flood is still in progress,
    /// which is what freezes the reduction module during tree churn).
    pub fn tree_stabilized(&self) -> bool {
        !self.better_parent()
            && self.coherent_parent()
            && self.coherent_distance()
            && self
                .neighbors
                .iter()
                .all(|&u| self.view(u).root == self.root)
    }

    /// `degree_stabilized(v)`: all mirrors agree with my `dmax`.
    pub fn degree_stabilized(&self) -> bool {
        self.neighbors
            .iter()
            .all(|&u| self.view(u).dmax == self.dmax)
    }

    /// `color_stabilized(v)`: all mirrors carry my color bit.
    pub fn color_stabilized(&self) -> bool {
        self.neighbors
            .iter()
            .all(|&u| self.view(u).color == self.color)
    }

    /// `locally_stabilized(v)` — the freeze guard for modules 3 and 4.
    pub fn locally_stabilized(&self) -> bool {
        self.tree_stabilized() && self.degree_stabilized() && self.color_stabilized()
    }

    /// Recompute the derived variables (`deg`, `subtree_max`, `dmax`,
    /// `color`) from own pointers and mirrors. Called after every mirror or
    /// parent update; cheap (O(δ)).
    pub fn recompute_derived(&mut self) {
        self.deg = self
            .neighbors
            .iter()
            .filter(|&&u| self.parent == u || self.view(u).parent == self.id)
            .count() as u32;
        // PIF feedback: fold children's subtree_max with own degree.
        let mut sub = self.deg;
        for c in self
            .neighbors
            .iter()
            .copied()
            .filter(|&u| self.view(u).parent == self.id)
        {
            sub = sub.max(self.view(c).subtree_max);
        }
        self.subtree_max = sub;
        // PIF propagation: the root folds, everyone else inherits.
        self.dmax = if self.parent == self.id {
            self.subtree_max
        } else {
            self.view(self.parent).dmax
        };
        self.color = self.degree_stabilized();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 3-node path 0 - 1 - 2 viewed from node 1, with a coherent tree
    /// rooted at 0.
    fn mid_node() -> NodeState {
        let mut s = NodeState::new(1, &[0, 2]);
        s.root = 0;
        s.parent = 0;
        s.distance = 1;
        s.nbr.insert(
            0,
            NbrView {
                root: 0,
                parent: 0,
                distance: 0,
                dmax: 2,
                deg: 1,
                subtree_max: 2,
                color: true,
            },
        );
        s.nbr.insert(
            2,
            NbrView {
                root: 0,
                parent: 1,
                distance: 2,
                dmax: 2,
                deg: 1,
                subtree_max: 1,
                color: true,
            },
        );
        s.dmax = 2;
        s.color = true;
        s
    }

    #[test]
    fn fresh_state_is_self_rooted() {
        let s = NodeState::new(3, &[1, 5]);
        assert_eq!(s.root, 3);
        assert_eq!(s.parent, 3);
        assert!(s.coherent_parent());
        assert!(s.coherent_distance());
        assert_eq!(s.deg, 0);
    }

    #[test]
    fn tree_edges_from_both_directions() {
        let s = mid_node();
        assert!(s.is_tree_edge(0)); // my parent
        assert!(s.is_tree_edge(2)); // 2's parent is me
        assert!(!s.is_tree_edge(7)); // not even a neighbor
        assert_eq!(s.children().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn coherent_mid_node_is_stabilized() {
        let mut s = mid_node();
        s.recompute_derived();
        assert_eq!(s.deg, 2);
        assert_eq!(s.subtree_max, 2); // max(own 2, child's 1)
        assert_eq!(s.dmax, 2); // inherited from parent mirror
        assert!(s.tree_stabilized());
        assert!(s.degree_stabilized());
        assert!(s.locally_stabilized());
    }

    #[test]
    fn better_parent_detected() {
        let mut s = mid_node();
        s.root = 1; // believes a worse root than neighbor 0's
        s.parent = 1;
        s.distance = 0;
        assert!(s.better_parent());
        assert!(!s.tree_stabilized());
    }

    #[test]
    fn phantom_root_guard() {
        // Self-rooted node claiming a root that is not its own ID.
        let mut s = NodeState::new(4, &[1]);
        s.root = 0; // phantom: no neighbor advertises 0 either
        assert!(!s.coherent_parent());
        assert!(s.new_root_candidate_strict());
        assert!(s.new_root_candidate_gentle());
    }

    #[test]
    fn root_larger_than_own_id_is_incoherent() {
        let mut s = NodeState::new(1, &[0, 2]);
        s.root = 5;
        s.parent = 2;
        s.nbr.insert(
            2,
            NbrView {
                root: 5,
                ..NbrView::unknown(2)
            },
        );
        // Parent agrees on root 5, but 1 < 5 means 1 would be a better root.
        assert!(!s.coherent_parent());
    }

    #[test]
    fn distance_incoherence_gentle_vs_strict() {
        let mut s = mid_node();
        s.distance = 7; // wrong (parent is at 0)
        assert!(!s.coherent_distance());
        assert!(s.new_root_candidate_strict());
        assert!(!s.new_root_candidate_gentle()); // parent still fine
    }

    #[test]
    fn dmax_disagreement_clears_color_and_freeze() {
        let mut s = mid_node();
        let mut v = s.view(2);
        v.dmax = 5;
        s.nbr.insert(2, v);
        s.recompute_derived();
        assert!(!s.degree_stabilized());
        assert!(!s.color);
        assert!(!s.locally_stabilized());
    }

    #[test]
    fn root_folds_subtree_max() {
        // Node 0 as root of the 3-path, child 1 reporting subtree_max 2.
        let mut s = NodeState::new(0, &[1]);
        s.nbr.insert(
            1,
            NbrView {
                root: 0,
                parent: 0,
                distance: 1,
                dmax: 0,
                deg: 2,
                subtree_max: 2,
                color: true,
            },
        );
        s.recompute_derived();
        assert_eq!(s.deg, 1);
        assert_eq!(s.subtree_max, 2);
        assert_eq!(s.dmax, 2); // root: dmax = subtree_max
    }

    #[test]
    fn view_of_unknown_neighbor_is_blank() {
        let s = NodeState::new(0, &[1]);
        assert_eq!(s.view(9), NbrView::unknown(9));
    }
}
