//! # ssmdst-core
//!
//! The self-stabilizing minimum-degree spanning tree (MDST) protocol of
//! Blin, Gradinariu Potop-Butucaru & Rovedakis, IPDPS 2009, as a
//! message-passing automaton for `ssmdst-sim`.
//!
//! Starting from an **arbitrary configuration** (corrupted variables,
//! corrupted neighbor mirrors, garbage in flight), the protocol converges to
//! a spanning tree `T` with `deg(T) ≤ Δ* + 1`, where `Δ*` is the optimal
//! (NP-hard) degree. Four cooperating modules, in priority order:
//!
//! 1. **Spanning tree** ([`spanning_tree`]) — min-root-ID BFS-style tree via
//!    rules R1 (`correction_parent`) / R2 (`correction_root`); all other
//!    modules freeze until the neighborhood is tree-stabilized.
//! 2. **Maximum degree** ([`maxdeg`]) — a continuous PIF over the tree:
//!    `subtree_max` aggregates up, the root folds it into `dmax`, `dmax`
//!    floods down, all piggybacked on `InfoMsg`. The `color` bit witnesses
//!    local `dmax` agreement and freezes the reduction while the degree
//!    information is in flux.
//! 3. **Fundamental cycles** ([`cycle_search`]) — each non-tree edge's
//!    lower-ID endpoint periodically launches a DFS token (`Search`) across
//!    tree edges; the token closes the cycle at the other endpoint.
//! 4. **Degree reduction** ([`reduction`]) — `Action_on_Cycle` classifies
//!    the closed cycle; improving edges trigger the `Remove`/flip/
//!    `UpdateDist` swap choreography; blocking endpoints trigger `Deblock`
//!    floods that recursively lower blocker degrees.
//!
//! The [`oracle`] module gives centralized views used by tests and the
//! experiment harness (never by the protocol itself): tree extraction,
//! legitimacy predicates, quiescence projections. The [`churn`] module
//! re-judges convergence against the *current* live topology after
//! dynamic-topology faults — component-wise spanning trees within one of
//! each component's optimum.

// Library code must not grow bare `.unwrap()`s: use `.expect` with the
// invariant that makes failure unreachable (ssmdst-lint R4 audits the
// reasons). Unit tests keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod churn;
pub mod config;
pub mod cycle_search;
pub mod maxdeg;
pub mod messages;
pub mod node;
pub mod oracle;
pub mod reduction;
pub mod spanning_tree;
pub mod state;

pub use config::Config;
pub use messages::Msg;
pub use node::MdstNode;
pub use state::{NbrView, NodeState};

/// Node identifier (dense index, doubling as the unique ID the paper's
/// tie-breaks use).
pub type NodeId = u32;

/// Build a ready-to-run network of MDST automata over `g` with coherent
/// (but arbitrary-tree-free) initial states: every node starts as its own
/// root, as after a total reset. For adversarial initial states, corrupt the
/// network afterwards with `ssmdst_sim::faults`.
pub fn build_network(g: &ssmdst_graph::Graph, config: Config) -> ssmdst_sim::Network<MdstNode> {
    ssmdst_sim::Network::from_graph(g, |v, nbrs| MdstNode::new(v, nbrs, config.clone()))
}
