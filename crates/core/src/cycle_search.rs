//! Module 3 — fundamental-cycle detection (paper §3.2.2, Figure 3).
//!
//! For every non-tree edge `{a, b}` with `ID_a < ID_b`, the initiator `a`
//! periodically launches a `Search` token that performs a DFS over *tree
//! edges only*, carrying the DFS stack (`path`, with each node's degree) and
//! the visited set. The token either reaches `b` — closing the fundamental
//! cycle, `b` then runs `Action_on_Cycle` (see [`crate::reduction`]) — or
//! exhausts the tree and dies (the tree changed under it; the periodic
//! relaunch retries).
//!
//! Staleness discipline: every hop requires the holder to be
//! `locally_stabilized` with the token's `dmax` snapshot; otherwise the
//! token is dropped. Nothing is committed by a search, so dropping is safe
//! (DESIGN.md deviation 4).

use crate::messages::{Msg, PathEntry};
use crate::node::MdstNode;
use crate::NodeId;
use ssmdst_sim::Outbox;

/// Deterministic splitmix-style jitter for search retry de-synchronization.
fn jitter(id: NodeId, edge_to: NodeId, counter: u64) -> u32 {
    let mut z = (id as u64) << 40 ^ (edge_to as u64) << 20 ^ counter;
    z = z.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    (z ^ (z >> 31)) as u32
}

impl MdstNode {
    /// Launch `Search` tokens for due non-tree edges (called from `tick`).
    pub(crate) fn launch_periodic_searches(&mut self, out: &mut Outbox<Msg>) {
        if !self.st.locally_stabilized() || self.st.dmax < 3 {
            // dmax < 3 means the tree is already a path (or tiny): by
            // Eq. 1 no improvement can exist, so searching is pure waste.
            // (dmax == 2 cycles would need endpoints of degree 0.)
            return;
        }
        let period = self.cfg.search_period;
        let id = self.st.id;
        let nbrs = self.st.neighbors.clone();
        for u in nbrs {
            if id >= u || self.st.is_tree_edge(u) {
                continue; // not the initiator, or not a non-tree edge
            }
            // Staggered first launch: spread token storms across the period.
            let stagger = (id.wrapping_mul(31).wrapping_add(u)) % period.max(1);
            let counter = self.st.launch_counter;
            let cd = self.st.search_cooldown.entry(u).or_insert(stagger);
            if *cd > 0 {
                continue;
            }
            // Deterministic jitter: retries must not be perfectly periodic,
            // or the synchronous daemon replays the same improvement
            // collision forever.
            *cd = period + jitter(id, u, counter) % (period / 2 + 1);
            self.st.launch_counter = counter + 1;
            self.start_search(u, None, out);
        }
    }

    /// Begin a DFS for the non-tree edge `{self, target}`; `idblock`
    /// carries the blocking-node context for Deblock-triggered searches.
    pub(crate) fn start_search(
        &mut self,
        target: NodeId,
        idblock: Option<(NodeId, u8)>,
        out: &mut Outbox<Msg>,
    ) {
        let s = &self.st;
        // First hop: the smallest tree neighbor (deterministic DFS order).
        let Some(first) = s
            .neighbors
            .iter()
            .copied()
            .filter(|&u| s.is_tree_edge(u))
            .min()
        else {
            return; // no tree edges yet
        };
        out.send(
            first,
            Msg::Search {
                init: (s.id, target),
                idblock,
                dmax: s.dmax,
                path: vec![(s.id, s.deg)],
                visited: vec![s.id],
                backtrack: false,
            },
        );
    }

    /// One DFS hop (receive side).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn handle_search(
        &mut self,
        from: NodeId,
        init: (NodeId, NodeId),
        idblock: Option<(NodeId, u8)>,
        dmax: u32,
        mut path: Vec<PathEntry>,
        mut visited: Vec<NodeId>,
        backtrack: bool,
        out: &mut Outbox<Msg>,
    ) {
        let s = &self.st;
        // Staleness and sanity guards; a dropped token is re-launched by the
        // initiator's periodic cooldown. Busy nodes are in the middle of an
        // improvement: cycles crossing them must not be measured now.
        if !s.locally_stabilized()
            || s.dmax != dmax
            || (self.cfg.enable_busy_latch && s.busy > 0)
            || path.len() > self.cfg.max_path_len
            || visited.len() > self.cfg.max_path_len
            || path.is_empty()
        {
            return;
        }
        if s.id == init.1 {
            // Cycle closed. Require: arrived over a tree edge, `{a, b}` is
            // still a non-tree edge, and the path indeed starts at `a`.
            if !s.is_tree_edge(from)
                || !s.is_neighbor(init.0)
                || s.is_tree_edge(init.0)
                || path.first().map(|e| e.0) != Some(init.0)
                || path.last().map(|e| e.0) != Some(from)
            {
                return;
            }
            self.action_on_cycle(init, idblock, path, out);
            return;
        }
        if backtrack {
            // A backtrack returns the token to the current stack top.
            if path.last().map(|e| e.0) != Some(s.id) {
                return; // corrupt token
            }
        } else {
            if visited.contains(&s.id) || !s.is_tree_edge(from) {
                return; // duplicate delivery or non-tree traversal: drop
            }
            path.push((s.id, s.deg));
            visited.push(s.id);
        }
        self.advance_search(init, idblock, dmax, path, visited, out);
    }

    /// Forward the token to the next unvisited tree neighbor, or backtrack.
    fn advance_search(
        &mut self,
        init: (NodeId, NodeId),
        idblock: Option<(NodeId, u8)>,
        dmax: u32,
        mut path: Vec<PathEntry>,
        visited: Vec<NodeId>,
        out: &mut Outbox<Msg>,
    ) {
        let s = &self.st;
        let next = s
            .neighbors
            .iter()
            .copied()
            .filter(|&u| s.is_tree_edge(u) && !visited.contains(&u))
            .min();
        match next {
            Some(u) => out.send(
                u,
                Msg::Search {
                    init,
                    idblock,
                    dmax,
                    path,
                    visited,
                    backtrack: false,
                },
            ),
            None => {
                // Dead end: pop self, return the token to the new stack top.
                path.pop();
                if let Some(&(prev, _)) = path.last() {
                    if s.is_neighbor(prev) {
                        out.send(
                            prev,
                            Msg::Search {
                                init,
                                idblock,
                                dmax,
                                path,
                                visited,
                                backtrack: true,
                            },
                        );
                    }
                }
                // Stack empty: the whole tree was searched without finding
                // the target — the tree changed mid-flight. Token dies.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::Config;
    use crate::messages::Msg;
    use crate::oracle;
    use ssmdst_graph::generators::structured;
    use ssmdst_sim::{Message, Runner, Scheduler};

    /// On a square (4-cycle) the protocol forms a tree and the non-tree
    /// edge's search closes its fundamental cycle — observable as Search
    /// traffic reaching the target and (here, with no degree-3 node on the
    /// cycle... there is: the BFS tree of a square has a degree-2 root; no
    /// improvement) simply dying out without state changes.
    #[test]
    fn searches_run_and_tree_stays_stable_on_cycle_graph() {
        let g = structured::cycle(6).unwrap();
        let net = crate::build_network(&g, Config::for_n(6));
        let mut runner = Runner::new(net, Scheduler::Synchronous);
        let out = runner.run_until(150, |net, _| {
            oracle::try_extract_tree(&g, net).is_some() && oracle::all_locally_stabilized(net)
        });
        assert!(out.converged());
        let t_before = oracle::try_extract_tree(&g, runner.network()).unwrap();
        let _ = runner.run_until(100, |_, _| false);
        let t_after = oracle::try_extract_tree(&g, runner.network()).unwrap();
        // A cycle graph's tree is a Hamiltonian path: optimal, never changed.
        assert_eq!(t_before.edge_set(), t_after.edge_set());
    }

    /// Search tokens are emitted only by the lower-ID endpoint and only for
    /// non-tree edges, and carry the launch-time dmax.
    #[test]
    fn search_tokens_emitted_with_dmax_snapshot() {
        let g = structured::star_with_ring(6).unwrap();
        let net = crate::build_network(&g, Config::for_n(6));
        let mut runner = Runner::new(net, Scheduler::Synchronous);
        // Run until some Search messages have been sent.
        let out = runner.run_until(400, |net, _| net.metrics.kind("Search").sent > 0);
        assert!(out.converged(), "no searches were ever launched");
    }

    /// dmax < 3 suppresses searching entirely (no improvement can exist).
    #[test]
    fn no_search_traffic_on_paths() {
        let g = structured::path(8).unwrap();
        let net = crate::build_network(&g, Config::for_n(8));
        let mut runner = Runner::new(net, Scheduler::Synchronous);
        let _ = runner.run_until(200, |_, _| false);
        assert_eq!(runner.network().metrics.kind("Search").sent, 0);
    }

    /// Tokens die on stale dmax (unit-level check).
    #[test]
    fn stale_token_is_dropped() {
        use ssmdst_sim::Outbox;
        let mut n = crate::MdstNode::new(1, &[0, 2], Config::for_n(4));
        // Make node 1 stabilized-ish with dmax 3.
        n.st.root = 0;
        n.st.parent = 0;
        n.st.distance = 1;
        for (&u, view) in n.st.nbr.clone().iter() {
            let mut v = *view;
            v.root = 0;
            v.dmax = 3;
            if u == 0 {
                v.parent = 0;
                v.distance = 0;
            } else {
                v.parent = 1;
                v.distance = 2;
            }
            n.st.nbr.insert(u, v);
        }
        n.st.recompute_derived();
        n.st.dmax = 3;
        let mut out = Outbox::new();
        n.handle_search(
            0,
            (0, 3),
            None,
            99, // stale snapshot
            vec![(0, 1)],
            vec![0],
            false,
            &mut out,
        );
        assert!(out.is_empty(), "stale token must be dropped");
    }

    /// A token whose path exceeds the cap (corruption) is dropped.
    #[test]
    fn oversized_token_is_dropped() {
        use ssmdst_sim::Outbox;
        let mut n = crate::MdstNode::new(1, &[0, 2], Config::for_n(4));
        let mut out = Outbox::new();
        let huge: Vec<_> = (0..100).map(|i| (i, 1)).collect();
        n.handle_search(0, (0, 3), None, 0, huge, vec![0], false, &mut out);
        assert!(out.is_empty());
    }

    /// Search messages dominate message size, matching the O(n log n) claim.
    #[test]
    fn search_is_the_largest_message_kind() {
        let m = Msg::Search {
            init: (0, 1),
            idblock: None,
            dmax: 3,
            path: (0..20).map(|i| (i, 2)).collect(),
            visited: (0..20).collect(),
            backtrack: false,
        };
        let info = Msg::Info(crate::messages::InfoPayload {
            root: 0,
            parent: 0,
            distance: 0,
            dmax: 0,
            deg: 0,
            subtree_max: 0,
            color: false,
        });
        assert!(m.size_bits(32) > info.size_bits(32));
    }
}
