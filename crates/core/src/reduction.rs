//! Module 4 — degree reduction (paper §3.2.4, Figures 1, 2, 4, 5).
//!
//! When a `Search` token closes the fundamental cycle of `{a, b}` at `b`,
//! `Action_on_Cycle` classifies it:
//!
//! * the cycle interior contains a node `w` with `deg(w) = dmax` and the
//!   endpoints satisfy `max(deg(a), deg(b)) ≤ dmax − 2` (Eq. 1) → `{a, b}`
//!   is an **improving edge**: a `Remove` travels the cycle to delete a tree
//!   edge at `w`, the reversed arc is re-oriented (`Flip`), and distances
//!   are repaired (`DistChain`/`DistFlood`);
//! * an endpoint has degree exactly `dmax − 1` → it is **blocking**; a
//!   `Deblock` flood asks the tree to lower the blocker's degree first
//!   (searches re-launched with `idblock`; cycles through the blocker with
//!   light endpoints then improve it);
//! * otherwise the cycle is useless and nothing happens.
//!
//! Commit discipline (DESIGN.md deviation 5): everything up to the moment
//! the `Remove` reaches the target edge is freely droppable (freshness
//! guards at every hop); from the commit on, the `Flip`/`DistChain` choreo-
//! graphy runs unguarded to completion, exactly as the paper requires
//! ("otherwise the tree partitions").

use crate::messages::{Msg, PathEntry};
use crate::node::MdstNode;
use crate::NodeId;
use ssmdst_sim::Outbox;

impl MdstNode {
    /// `Action_on_Cycle` (paper Figure 1, lines 5–21), executed at the
    /// cycle-closing endpoint `b == self` with `path = [a, p1, …, p_last]`
    /// the tree path from `a` to `b`'s tree-predecessor.
    pub(crate) fn action_on_cycle(
        &mut self,
        init: (NodeId, NodeId),
        idblock: Option<(NodeId, u8)>,
        path: Vec<PathEntry>,
        out: &mut Outbox<Msg>,
    ) {
        let dmax = self.st.dmax;
        if dmax < 3 || path.len() < 2 {
            return; // nothing improvable / degenerate cycle
        }
        let deg_a = path[0].1;
        let deg_b = self.st.deg;
        let ends_max = deg_a.max(deg_b);
        // Interior of the cycle: everything on the tree path except `a`
        // (b is the closer and also an endpoint).
        let interior = &path[1..];
        match idblock {
            None => {
                let Some(&(_, d_int)) = interior.iter().max_by_key(|&&(id, d)| (d, id)) else {
                    return;
                };
                if d_int != dmax {
                    return; // no max-degree node on this cycle
                }
                if ends_max + 2 <= dmax {
                    // Improving edge (Eq. 1): target the min-ID interior
                    // node of maximum degree, as the paper does.
                    let w = interior
                        .iter()
                        .filter(|&&(_, d)| d == dmax)
                        .map(|&(id, _)| id)
                        .min()
                        .expect("d_int == dmax implies a witness"); // lint: allow(no-panic-in-library) — this branch is taken only when an interior node hits dmax
                    self.send_remove(init, dmax, w, &path, out);
                } else if ends_max + 1 == dmax && self.cfg.enable_deblock {
                    self.start_deblock(init, deg_a, deg_b, self.cfg.deblock_ttl, out);
                }
            }
            Some((idb, ttl)) => {
                // Deblock context: the cycle must route through the blocking
                // node with its blocking degree still current.
                let Some(&(_, d_idb)) = interior.iter().find(|&&(id, _)| id == idb) else {
                    return;
                };
                if d_idb + 1 != dmax {
                    return; // no longer blocking (someone already fixed it)
                }
                if ends_max + 1 < dmax {
                    // Paper line 19: endpoints strictly below dmax − 1.
                    self.send_remove(init, dmax - 1, idb, &path, out);
                } else if ends_max + 1 == dmax && ttl > 0 && self.cfg.enable_deblock {
                    self.start_deblock(init, deg_a, deg_b, ttl - 1, out);
                }
            }
        }
    }

    /// Emit a `Remove` for the cycle of `init = {a, b}` targeting a tree
    /// edge incident to `w` (paper's `Improve`, Figure 1 lines 26–27).
    fn send_remove(
        &mut self,
        init: (NodeId, NodeId),
        deg_max: u32,
        w: NodeId,
        path: &[PathEntry],
        out: &mut Outbox<Msg>,
    ) {
        // Full cycle node order: [a, p1, …, p_last, b].
        let mut cycle: Vec<NodeId> = path.iter().map(|&(id, _)| id).collect();
        cycle.push(self.st.id);
        let Some(i) = cycle.iter().position(|&x| x == w) else {
            return;
        };
        if i == 0 || i + 1 == cycle.len() {
            return; // endpoints are never valid targets
        }
        if self.busy_blocked() {
            return; // an improvement already runs through this node
        }
        self.st.busy = cycle.len() as u32 + 4;
        // Choose which side of `w` to cut: prefer the higher-degree
        // neighbor on the cycle (spreads the relief), ties toward higher ID.
        let deg_at = |idx: usize| -> u32 {
            if idx < path.len() {
                path[idx].1
            } else {
                self.st.deg
            }
        };
        let left_key = (deg_at(i - 1), cycle[i - 1]);
        let right_key = (deg_at(i + 1), cycle[i + 1]);
        let z_idx = if left_key >= right_key { i - 1 } else { i + 1 };
        out.send(
            init.0,
            Msg::Remove {
                init,
                deg_max,
                w_idx: i,
                z_idx,
                cycle,
                dmax: self.st.dmax,
                dist_a: 0, // stamped by `a` on first hop
                dist_b: self.st.distance,
                pos: 0,
            },
        );
    }

    /// `Remove` hop (paper Figure 2, lines 3–14): relay with freshness
    /// guards until the maximum-degree node `w`, then commit there.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn handle_remove(
        &mut self,
        _from: NodeId,
        init: (NodeId, NodeId),
        deg_max: u32,
        w_idx: usize,
        z_idx: usize,
        cycle: Vec<NodeId>,
        dmax: u32,
        mut dist_a: u32,
        dist_b: u32,
        pos: usize,
        out: &mut Outbox<Msg>,
    ) {
        // Structural sanity (corruption guards): w is interior, z adjacent.
        if cycle.len() < 3
            || cycle.len() > self.cfg.max_path_len + 1
            || pos >= cycle.len()
            || w_idx == 0
            || w_idx + 1 >= cycle.len()
            || (z_idx != w_idx - 1 && z_idx != w_idx + 1)
            || cycle[pos] != self.st.id
            || pos > w_idx
        {
            return;
        }
        // Freshness: any change in dmax or local instability aborts the
        // improvement before commit (paper: stale Removes are discarded).
        // The busy latch additionally rejects a second improvement while
        // one is already moving through this node — overlapping flips
        // would cross and corrupt the tree, costing a full re-election.
        if !self.st.locally_stabilized() || self.st.dmax != dmax || self.busy_blocked() {
            return;
        }
        self.st.busy = cycle.len() as u32 + 4;
        if pos == 0 {
            // We are `a`: the inserted edge must still be a non-tree edge.
            if self.st.is_tree_edge(init.1) || !self.st.is_neighbor(init.1) {
                return;
            }
            dist_a = self.st.distance;
        }
        if pos == w_idx {
            self.commit_remove(init, deg_max, w_idx, z_idx, cycle, dist_a, dist_b, out);
            return;
        }
        let next = cycle[pos + 1];
        if !self.st.is_tree_edge(next) {
            return; // path edge vanished: stale
        }
        out.send(
            next,
            Msg::Remove {
                init,
                deg_max,
                w_idx,
                z_idx,
                cycle,
                dmax,
                dist_a,
                dist_b,
                pos: pos + 1,
            },
        );
    }

    /// Commit point (`target_remove` in the paper), executed at the
    /// maximum-degree node `w = cycle[w_idx]` itself: its *own* (fresh)
    /// degree must still be `deg_max`; then the tree edge `{w, z}` is
    /// deleted and the cut component re-anchored on the inserted edge.
    #[allow(clippy::too_many_arguments)]
    fn commit_remove(
        &mut self,
        init: (NodeId, NodeId),
        deg_max: u32,
        w_idx: usize,
        z_idx: usize,
        cycle: Vec<NodeId>,
        dist_a: u32,
        dist_b: u32,
        out: &mut Outbox<Msg>,
    ) {
        let z = cycle[z_idx];
        let s = &self.st;
        if !s.is_neighbor(z) || !s.is_tree_edge(z) {
            return;
        }
        // Degree freshness on *local* state — the whole point of
        // committing at w (a stale mirror must never fire a swap).
        if s.deg != deg_max {
            return;
        }
        let k = cycle.len() - 1; // index of b
        let (a, b) = init;
        if z_idx == w_idx + 1 {
            if s.parent == z {
                // Removing my parent edge: the cut component is my side,
                // [0..=w_idx], containing `a`. Re-root it at `a`: reverse
                // the arc w → a; `a` re-anchors on `b`.
                let prev = cycle[w_idx - 1];
                if !s.is_neighbor(prev) {
                    return;
                }
                self.st.parent = prev;
                self.st.recompute_derived();
                out.send(
                    prev,
                    Msg::Flip {
                        cycle,
                        pos: w_idx - 1,
                        dir: -1,
                        end: 0,
                        origin: w_idx,
                        anchor_dist: dist_b,
                        anchor: b,
                    },
                );
            } else if s.view(z).parent == s.id {
                // Removing my child edge toward b's side: the cut component
                // is [w_idx+1..=k], containing `b`. Re-root it at `b`.
                out.send(
                    z,
                    Msg::Flip {
                        cycle,
                        pos: w_idx + 1,
                        dir: 1,
                        end: k,
                        origin: w_idx + 1,
                        anchor_dist: dist_a,
                        anchor: a,
                    },
                );
            }
        } else {
            // z = cycle[w_idx - 1]: the mirrored cases.
            if s.parent == z {
                // Removing my parent edge toward a's side: the cut
                // component is [w_idx..=k], containing `b` (and me).
                // Re-root it at `b`: I flip toward b first.
                let next = cycle[w_idx + 1];
                if !s.is_neighbor(next) {
                    return;
                }
                self.st.parent = next;
                self.st.recompute_derived();
                out.send(
                    next,
                    Msg::Flip {
                        cycle,
                        pos: w_idx + 1,
                        dir: 1,
                        end: k,
                        origin: w_idx,
                        anchor_dist: dist_a,
                        anchor: a,
                    },
                );
            } else if s.view(z).parent == s.id {
                // Removing my child edge toward a's side: the cut component
                // is [0..=w_idx-1], containing `a`. Re-root it at `a`.
                out.send(
                    z,
                    Msg::Flip {
                        cycle,
                        pos: w_idx - 1,
                        dir: -1,
                        end: 0,
                        origin: w_idx - 1,
                        anchor_dist: dist_b,
                        anchor: b,
                    },
                );
            }
        }
        // Neither orientation holds: the edge is already gone — stale, drop.
    }

    /// `Flip` hop: unconditional parent re-orientation along the reversed
    /// arc (paper's `Reverse_Orientation`; runs to completion).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn handle_flip(
        &mut self,
        cycle: Vec<NodeId>,
        pos: usize,
        dir: i8,
        end: usize,
        origin: usize,
        anchor_dist: u32,
        anchor: NodeId,
        out: &mut Outbox<Msg>,
    ) {
        // `origin` is the cut-adjacent end of the flipped arc: the walk
        // position always lies between `end` (terminal) and `origin`.
        if !flip_indices_valid(&cycle, pos, dir, end, self.cfg.max_path_len)
            || cycle[pos] != self.st.id
            || origin >= cycle.len()
            || !in_arc(pos as i32, end as i32, origin as i32)
        {
            return;
        }
        // A flip in progress makes this region off-limits to new Removes.
        self.st.busy = self.st.busy.max(cycle.len() as u32 + 4);
        if pos == end {
            // Terminal endpoint of the inserted edge: adopt the anchor.
            if !self.st.is_neighbor(anchor) {
                return; // corrupt; stabilization will clean up
            }
            self.st.parent = anchor;
            self.st.distance = anchor_dist.saturating_add(1);
            self.st.recompute_derived();
            // Repair distances back along the flipped arc (terminal → cut-
            // adjacent origin), flooding each node's off-arc subtree.
            let back = -(dir as i32);
            let chain_pos = pos as i32 + back;
            let has_chain = in_arc(chain_pos, pos as i32, origin as i32) && origin != pos;
            if has_chain {
                let nxt = cycle[chain_pos as usize];
                if self.st.is_neighbor(nxt) {
                    out.send(
                        nxt,
                        Msg::DistChain {
                            cycle: cycle.clone(),
                            pos: chain_pos as usize,
                            dir: back as i8,
                            end: origin,
                            dist: self.st.distance,
                        },
                    );
                }
            }
            let exclude = if has_chain {
                vec![cycle[chain_pos as usize]]
            } else {
                vec![]
            };
            self.flood_dist_to_children(&exclude, out);
            return;
        }
        // Interior flip: each arc node adopts the next node toward the
        // terminal, because the terminal is the new local root of the cut
        // component.
        let toward_terminal = (pos as i32 + dir as i32) as usize;
        let next_parent = cycle[toward_terminal];
        if !self.st.is_neighbor(next_parent) {
            return; // corrupt cycle vector; stabilization will clean up
        }
        self.st.parent = next_parent;
        self.st.recompute_derived();
        out.send(
            next_parent,
            Msg::Flip {
                cycle,
                pos: toward_terminal,
                dir,
                end,
                origin,
                anchor_dist,
                anchor,
            },
        );
    }

    /// `DistChain` hop: adopt the corrected distance and keep walking the
    /// flipped arc (paper's `UpdateDist` along the reversed path).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn handle_dist_chain(
        &mut self,
        from: NodeId,
        cycle: Vec<NodeId>,
        pos: usize,
        dir: i8,
        end: usize,
        dist: u32,
        out: &mut Outbox<Msg>,
    ) {
        if !flip_indices_valid(&cycle, pos, dir, end, self.cfg.max_path_len)
            || cycle[pos] != self.st.id
        {
            return;
        }
        if self.st.parent == from {
            self.st.distance = dist.saturating_add(1);
            self.st.recompute_derived();
        }
        let mut exclude = vec![from];
        if pos != end {
            let nxt_i = (pos as i32 + dir as i32) as usize;
            let nxt = cycle[nxt_i];
            if self.st.is_neighbor(nxt) {
                out.send(
                    nxt,
                    Msg::DistChain {
                        cycle: cycle.clone(),
                        pos: nxt_i,
                        dir,
                        end,
                        dist: self.st.distance,
                    },
                );
                exclude.push(nxt);
            }
        }
        self.flood_dist_to_children(&exclude, out);
    }

    /// `DistFlood`: child-side distance repair (subtree flood).
    pub(crate) fn handle_dist_flood(&mut self, from: NodeId, dist: u32, out: &mut Outbox<Msg>) {
        if self.st.parent != from {
            return; // only meaningful coming from my parent
        }
        let new = dist.saturating_add(1);
        if self.st.distance == new {
            return; // nothing changed: stop the flood here
        }
        self.st.distance = new;
        self.flood_dist_to_children(&[from], out);
    }

    /// Send `DistFlood` to all (mirror-)children except `exclude`.
    fn flood_dist_to_children(&self, exclude: &[NodeId], out: &mut Outbox<Msg>) {
        for u in self.st.children() {
            if !exclude.contains(&u) {
                out.send(
                    u,
                    Msg::DistFlood {
                        dist: self.st.distance,
                    },
                );
            }
        }
    }

    /// Start the deblocking of a blocking endpoint (paper Figure 1,
    /// `Deblock`, lines 28–30): the higher-degree blocked endpoint
    /// broadcasts; if the remote endpoint `a` is the blocker, it is told to.
    fn start_deblock(
        &mut self,
        init: (NodeId, NodeId),
        deg_a: u32,
        deg_b: u32,
        ttl: u8,
        out: &mut Outbox<Msg>,
    ) {
        let dmax = self.st.dmax;
        if deg_b + 1 == dmax {
            // I (b) am blocking: flood my tree neighborhood (throttled so a
            // search storm does not re-flood every period).
            let my_id = self.st.id;
            if self.st.deblock_cooldown.get(&my_id).copied().unwrap_or(0) == 0 {
                self.st
                    .deblock_cooldown
                    .insert(my_id, self.cfg.deblock_cooldown);
                self.broadcast_deblock(my_id, None, ttl, out);
            }
        }
        if deg_a + 1 == dmax && deg_a >= deg_b {
            // Tell `a` (over the physical non-tree link) to deblock itself.
            out.send(
                init.0,
                Msg::Deblock {
                    idblock: init.0,
                    ttl,
                    dmax,
                },
            );
        }
    }

    /// Receive a `Deblock` flood (paper Figure 2 line 22 + `Broadcast`).
    pub(crate) fn handle_deblock(
        &mut self,
        from: NodeId,
        idblock: NodeId,
        ttl: u8,
        dmax: u32,
        out: &mut Outbox<Msg>,
    ) {
        if !self.cfg.enable_deblock
            || !self.st.locally_stabilized()
            || self.st.dmax != dmax
            || self.st.dmax < 3
        {
            return;
        }
        // Throttle repeated floods for the same blocker.
        if self.st.deblock_cooldown.get(&idblock).copied().unwrap_or(0) > 0 {
            return;
        }
        self.st
            .deblock_cooldown
            .insert(idblock, self.cfg.deblock_cooldown);
        if idblock == self.st.id {
            // I am the blocker being notified (endpoint case): broadcast.
            self.broadcast_deblock(self.st.id, Some(from), ttl, out);
            return;
        }
        self.broadcast_deblock(idblock, Some(from), ttl, out);
        // Work on the blocker's behalf: search my non-tree edges with the
        // blocking context attached.
        let id = self.st.id;
        let nbrs = self.st.neighbors.clone();
        for u in nbrs {
            if id < u && !self.st.is_tree_edge(u) && u != idblock {
                self.start_search(u, Some((idblock, ttl)), out);
            }
        }
    }

    /// Forward a `Deblock` over all tree edges except `skip` (tree flood).
    fn broadcast_deblock(
        &mut self,
        idblock: NodeId,
        skip: Option<NodeId>,
        ttl: u8,
        out: &mut Outbox<Msg>,
    ) {
        let dmax = self.st.dmax;
        let nbrs = self.st.neighbors.clone();
        for u in nbrs {
            if Some(u) == skip || !self.st.is_tree_edge(u) {
                continue;
            }
            out.send(u, Msg::Deblock { idblock, ttl, dmax });
        }
    }
}

/// Shared index validation for `Flip`/`DistChain` walks.
fn flip_indices_valid(cycle: &[NodeId], pos: usize, dir: i8, end: usize, cap: usize) -> bool {
    if cycle.len() < 2 || cycle.len() > cap + 1 || pos >= cycle.len() || end >= cycle.len() {
        return false;
    }
    match dir {
        1 => pos <= end,
        -1 => pos >= end,
        _ => false,
    }
}

/// Whether `x` lies on the inclusive walk from `from_` to `to`.
fn in_arc(x: i32, from_: i32, to: i32) -> bool {
    if from_ <= to {
        (from_..=to).contains(&x)
    } else {
        (to..=from_).contains(&x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::oracle;
    use ssmdst_graph::generators::structured;
    use ssmdst_sim::{Runner, Scheduler};

    #[test]
    fn flip_indices_validation() {
        let cyc = vec![0u32, 1, 2, 3];
        assert!(flip_indices_valid(&cyc, 1, 1, 3, 10));
        assert!(flip_indices_valid(&cyc, 2, -1, 0, 10));
        assert!(!flip_indices_valid(&cyc, 3, 1, 2, 10)); // pos past end
        assert!(!flip_indices_valid(&cyc, 0, -1, 2, 10));
        assert!(!flip_indices_valid(&cyc, 9, 1, 3, 10)); // out of range
        assert!(!flip_indices_valid(&cyc, 1, 0, 3, 10)); // bad dir
        assert!(!flip_indices_valid(&cyc, 1, 1, 3, 2)); // over cap
    }

    #[test]
    fn in_arc_both_orientations() {
        assert!(in_arc(2, 0, 3));
        assert!(in_arc(2, 3, 0));
        assert!(!in_arc(4, 0, 3));
        assert!(in_arc(0, 0, 0));
    }

    /// The flagship end-to-end test: on star-with-ring the BFS-ish tree has
    /// hub degree n−1 and the reduction must drive it down to ≤ 3 (Δ*+1).
    #[test]
    fn star_with_ring_degree_collapses() {
        let n = 8;
        let g = structured::star_with_ring(n).unwrap();
        let net = crate::build_network(&g, Config::for_n(n));
        let mut runner = Runner::new(net, Scheduler::Synchronous);
        let out = runner.run_until(6000, |net, _| {
            oracle::try_extract_tree(&g, net)
                .map(|t| t.max_degree() <= 3)
                .unwrap_or(false)
        });
        assert!(
            out.converged(),
            "hub degree stuck at {:?}",
            oracle::try_extract_tree(&g, runner.network()).map(|t| t.max_degree())
        );
    }

    /// After reduction stabilizes the structure must still be a spanning
    /// tree with consistent dmax everywhere.
    #[test]
    fn reduction_preserves_tree_invariants() {
        let g = structured::star_with_ring(8).unwrap();
        let net = crate::build_network(&g, Config::for_n(8));
        let mut runner = Runner::new(net, Scheduler::Synchronous);
        let _ = runner.run_until(6000, |net, _| {
            oracle::try_extract_tree(&g, net)
                .map(|t| t.max_degree() <= 3)
                .unwrap_or(false)
        });
        // Let it settle, then validate global invariants.
        let settle = runner.run_to_quiescence(4000, 64, oracle::projection);
        assert!(settle.converged());
        let t = oracle::try_extract_tree(&g, runner.network()).expect("spanning tree");
        t.validate(&g).unwrap();
        assert!(oracle::dmax_agrees(runner.network(), t.max_degree()));
    }

    /// With Deblock disabled (ablation A2) the protocol still terminates
    /// and still produces a spanning tree (possibly of higher degree).
    #[test]
    fn without_deblock_still_stabilizes() {
        let g = structured::star_with_ring(8).unwrap();
        let net = crate::build_network(&g, Config::without_deblock(8));
        let mut runner = Runner::new(net, Scheduler::Synchronous);
        let out = runner.run_to_quiescence(8000, 64, oracle::projection);
        assert!(out.converged());
        let t = oracle::try_extract_tree(&g, runner.network()).expect("tree");
        t.validate(&g).unwrap();
    }

    /// A Remove with a stale dmax snapshot must be dropped before commit.
    #[test]
    fn stale_remove_is_dropped() {
        let mut n = crate::MdstNode::new(1, &[0, 2], Config::for_n(4));
        let mut out = Outbox::new();
        n.handle_remove(
            0,
            (0, 3),
            3,
            1,
            2,
            vec![0, 1, 2, 3],
            99, // stale
            0,
            0,
            1,
            &mut out,
        );
        assert!(out.is_empty());
    }

    /// Corrupt Remove geometry (pos past commit node) is dropped.
    #[test]
    fn corrupt_remove_geometry_dropped() {
        let mut n = crate::MdstNode::new(2, &[1, 3], Config::for_n(4));
        let mut out = Outbox::new();
        n.handle_remove(1, (0, 3), 3, 1, 2, vec![0, 1, 2, 3], 0, 0, 0, 2, &mut out);
        assert!(out.is_empty());
    }

    /// A z index not adjacent to w is corrupt and dropped.
    #[test]
    fn corrupt_z_index_dropped() {
        let mut n = crate::MdstNode::new(1, &[0, 2], Config::for_n(4));
        let mut out = Outbox::new();
        n.handle_remove(0, (0, 3), 3, 1, 3, vec![0, 1, 2, 3], 0, 0, 0, 1, &mut out);
        assert!(out.is_empty());
    }

    /// Build a stabilized middle node of a path 0-1-2 with dmax 3 so that
    /// deblock/flip handlers can be unit-tested in isolation.
    fn stabilized_mid() -> crate::MdstNode {
        let mut n = crate::MdstNode::new(1, &[0, 2], Config::for_n(4));
        n.st.root = 0;
        n.st.parent = 0;
        n.st.distance = 1;
        for (u, parent, distance) in [(0u32, 0u32, 0u32), (2, 1, 2)] {
            n.st.nbr.insert(
                u,
                crate::state::NbrView {
                    root: 0,
                    parent,
                    distance,
                    dmax: 3,
                    deg: 1,
                    subtree_max: 2,
                    color: true,
                },
            );
        }
        n.st.recompute_derived();
        n.st.dmax = 3;
        n.st.color = true;
        n
    }

    #[test]
    fn deblock_flood_forwards_over_tree_edges() {
        let mut n = stabilized_mid();
        let mut out = Outbox::new();
        n.handle_deblock(0, 9, 2, 3, &mut out);
        // Forwarded to the other tree neighbor (2); node 1 initiates no
        // search (no non-tree edges here).
        assert_eq!(out.len(), 1);
        let drained = out.messages().to_vec();
        assert_eq!(drained[0].0, 2);
        assert!(matches!(
            drained[0].1,
            Msg::Deblock {
                idblock: 9,
                ttl: 2,
                ..
            }
        ));
    }

    #[test]
    fn deblock_is_throttled_per_blocker() {
        let mut n = stabilized_mid();
        let mut out = Outbox::new();
        n.handle_deblock(0, 9, 2, 3, &mut out);
        assert_eq!(out.len(), 1);
        let mut out2 = Outbox::new();
        n.handle_deblock(0, 9, 2, 3, &mut out2);
        assert!(out2.is_empty(), "repeat flood must be throttled");
        // A different blocker is not throttled.
        let mut out3 = Outbox::new();
        n.handle_deblock(0, 7, 2, 3, &mut out3);
        assert_eq!(out3.len(), 1);
    }

    #[test]
    fn deblock_dropped_when_stale_or_disabled() {
        let mut n = stabilized_mid();
        let mut out = Outbox::new();
        n.handle_deblock(0, 9, 2, 99, &mut out); // stale dmax
        assert!(out.is_empty());
        let mut n = stabilized_mid();
        n.cfg.enable_deblock = false;
        let mut out = Outbox::new();
        n.handle_deblock(0, 9, 2, 3, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn dist_flood_only_from_parent_and_stops_at_fixpoint() {
        let mut n = stabilized_mid();
        let mut out = Outbox::new();
        // From non-parent: ignored.
        n.handle_dist_flood(2, 7, &mut out);
        assert!(out.is_empty());
        assert_eq!(n.st.distance, 1);
        // From parent: adopt and forward to child 2.
        n.handle_dist_flood(0, 7, &mut out);
        assert_eq!(n.st.distance, 8);
        assert_eq!(out.len(), 1);
        // Same value again: fixpoint, no re-flood (loop guard).
        let mut out2 = Outbox::new();
        n.handle_dist_flood(0, 7, &mut out2);
        assert!(out2.is_empty());
    }

    #[test]
    fn flip_interior_reorients_and_forwards() {
        let mut n = stabilized_mid();
        let mut out = Outbox::new();
        // Cycle [0,1,2,3] reversed toward index 0; node 1 at pos 1.
        n.handle_flip(vec![0, 1, 2, 3], 1, -1, 0, 2, 5, 3, &mut out);
        assert_eq!(n.st.parent, 0, "interior flip adopts the next-to-terminal");
        let drained = out.messages().to_vec();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].0, 0);
        assert!(matches!(drained[0].1, Msg::Flip { pos: 0, .. }));
        assert!(n.st.busy > 0, "flip marks the region busy");
    }

    #[test]
    fn flip_terminal_adopts_anchor_and_starts_chain() {
        let mut n = stabilized_mid();
        let mut out = Outbox::new();
        // Terminal at pos==end==1, arc origin 2 lies beyond: chain goes to 2.
        // Anchor must be a neighbor (0 here).
        n.handle_flip(vec![2, 1, 2], 1, -1, 1, 2, 9, 0, &mut out);
        assert_eq!(n.st.parent, 0);
        assert_eq!(n.st.distance, 10);
        let drained = out.messages().to_vec();
        assert!(drained
            .iter()
            .any(|(to, m)| *to == 2 && matches!(m, Msg::DistChain { .. })));
    }

    #[test]
    fn flip_with_non_neighbor_anchor_is_dropped() {
        let mut n = stabilized_mid();
        let before = n.st.parent;
        let mut out = Outbox::new();
        n.handle_flip(vec![9, 1], 1, -1, 1, 1, 4, 9, &mut out);
        assert_eq!(n.st.parent, before);
        assert!(out.is_empty());
    }
}
