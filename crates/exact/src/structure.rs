//! The mutable spanning-tree structure behind the solver: flat parent /
//! depth / child-thread arrays in the network-simplex style.
//!
//! [`ssmdst_graph::SpanningTree`] is the *validated, immutable-ish* view
//! the oracle and baselines use; its `swap` rebuilds children lists and is
//! `O(n)` per pivot. This structure is the solver-grade analogue: every
//! array is flat `u32`, the basis cycle of a non-tree edge is walked in
//! `O(1)` per step via depth-matched parent climbs, and a pivot (insert a
//! non-tree edge, remove a tree edge on its cycle) costs
//! `O(path + re-hung subtree)` — the intrusive first-child/next-sibling
//! threading gives each subtree as a pointer walk, so only the re-hung
//! vertices are relabeled.

use ssmdst_graph::{Graph, NodeId};

/// Sentinel for "no node" in the threading arrays.
pub const NONE: u32 = u32::MAX;

/// A rooted spanning tree over a CSR [`Graph`]'s vertex set, stored as
/// flat arrays with intrusive depth-first threading.
#[derive(Debug, Clone)]
pub struct SpanningTreeStructure {
    root: u32,
    /// `parent[root] == root`; every entry is a tree edge endpoint.
    parent: Vec<u32>,
    /// Depth from the root (root = 0); kept exact across pivots.
    depth: Vec<u32>,
    /// Tree degree of each vertex; kept exact across pivots.
    deg: Vec<u32>,
    /// Head of each vertex's child list (`NONE` for leaves).
    first_child: Vec<u32>,
    /// Next sibling in the parent's child list (`NONE` at the tail).
    next_sib: Vec<u32>,
    /// Previous sibling (`NONE` at the head) — O(1) unlink on pivot.
    prev_sib: Vec<u32>,
    /// Scratch stack for subtree relabeling (kept to avoid re-allocation).
    stack: Vec<u32>,
    /// Scratch buffer the cycle walk writes into (see [`Self::tree_path`]).
    path: Vec<u32>,
}

impl SpanningTreeStructure {
    /// Build from a parent vector whose edges form a spanning tree rooted
    /// at `root` (`parent[root] == root`). The caller guarantees
    /// well-formedness (the solver builds these from BFS or from the
    /// incremental forest, both already validated); debug builds verify.
    pub fn from_parents(root: NodeId, parent: &[NodeId]) -> Self {
        let n = parent.len();
        let mut st = SpanningTreeStructure {
            root,
            parent: parent.to_vec(),
            depth: vec![0; n],
            deg: vec![0; n],
            first_child: vec![NONE; n],
            next_sib: vec![NONE; n],
            prev_sib: vec![NONE; n],
            stack: Vec::new(),
            path: Vec::new(),
        };
        debug_assert_eq!(parent[root as usize], root, "root must self-parent");
        for v in 0..n as u32 {
            if v != root {
                let p = st.parent[v as usize];
                debug_assert_ne!(p, v, "non-root self-parent");
                st.deg[v as usize] += 1;
                st.deg[p as usize] += 1;
                st.link_child(p, v);
            }
        }
        st.relabel_depths(root, 0);
        st
    }

    /// Build the BFS tree of a connected graph, rooted at 0.
    pub fn from_bfs(g: &Graph) -> Self {
        let parents = ssmdst_graph::traversal::bfs_tree(g, 0);
        debug_assert!(
            !parents.contains(&u32::MAX),
            "from_bfs requires a connected graph"
        );
        Self::from_parents(0, &parents)
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.parent.len()
    }

    /// The root vertex.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Parent of `v` (the root parents itself).
    #[inline]
    pub fn parent(&self, v: NodeId) -> NodeId {
        self.parent[v as usize]
    }

    /// Borrow the raw parent vector.
    #[inline]
    pub fn parents(&self) -> &[NodeId] {
        &self.parent
    }

    /// Depth of `v` below the root.
    #[inline]
    pub fn depth(&self, v: NodeId) -> u32 {
        self.depth[v as usize]
    }

    /// Tree degree of `v` — maintained incrementally, O(1).
    #[inline]
    pub fn deg(&self, v: NodeId) -> u32 {
        self.deg[v as usize]
    }

    /// Borrow all tree degrees.
    #[inline]
    pub fn degs(&self) -> &[u32] {
        &self.deg
    }

    /// `deg(T) = max_v deg_T(v)`.
    pub fn max_degree(&self) -> u32 {
        self.deg.iter().copied().max().unwrap_or(0)
    }

    /// Whether `{u, v}` is a tree edge — O(1) parent-pointer check.
    #[inline]
    pub fn is_tree_edge(&self, u: NodeId, v: NodeId) -> bool {
        u != v && (self.parent[u as usize] == v || self.parent[v as usize] == u)
    }

    /// The basis cycle of non-tree edge `{u, v}`, minus the edge itself:
    /// the tree path `u ..= v` through the LCA, walked with depth-matched
    /// parent climbs (O(1) per step, O(cycle) total). The returned slice
    /// lives in an internal scratch buffer and is invalidated by the next
    /// structural call.
    pub fn tree_path(&mut self, u: NodeId, v: NodeId) -> &[u32] {
        self.path.clear();
        let (mut a, mut b) = (u, v);
        self.path.push(a);
        // `down` collects the b-side in reverse; reuse of `stack` scratch.
        self.stack.clear();
        self.stack.push(b);
        while self.depth[a as usize] > self.depth[b as usize] {
            a = self.parent[a as usize];
            self.path.push(a);
        }
        while self.depth[b as usize] > self.depth[a as usize] {
            b = self.parent[b as usize];
            self.stack.push(b);
        }
        while a != b {
            a = self.parent[a as usize];
            self.path.push(a);
            b = self.parent[b as usize];
            self.stack.push(b);
        }
        // `path` ends at the LCA; append the b-side, skipping its LCA copy.
        self.stack.pop();
        while let Some(x) = self.stack.pop() {
            self.path.push(x);
        }
        &self.path
    }

    /// Pivot: insert non-tree edge `{u, v}` and remove tree edge `{w, z}`,
    /// which must lie on the basis cycle of `{u, v}`. The subtree cut off
    /// by the removal is re-rooted at whichever of `u`/`v` it contains and
    /// re-hung under the other endpoint; only that subtree is relabeled.
    pub fn pivot(&mut self, (u, v): (NodeId, NodeId), (w, z): (NodeId, NodeId)) {
        debug_assert!(self.is_tree_edge(w, z), "pivot: removed edge not in tree");
        debug_assert!(!self.is_tree_edge(u, v), "pivot: inserted edge in tree");
        // Child side of the removed edge roots the detached subtree B.
        let b_root = if self.parent[w as usize] == z { w } else { z };
        self.unlink_child(self.parent[b_root as usize], b_root);
        self.parent[b_root as usize] = b_root;
        // The inserted endpoint inside B (reaches b_root by parent walks).
        let (inside, outside) = if self.reaches(u, b_root) {
            (u, v)
        } else {
            debug_assert!(self.reaches(v, b_root), "pivot: edge not on cycle");
            (v, u)
        };
        // Re-root B at `inside`: reverse the parent chain inside → b_root.
        // Two passes — unlink every chain link while the sibling pointers
        // still describe the old child lists, then relink in reverse
        // (link_child rewrites the sibling data the unlink pass consumes).
        let mut cur = inside;
        while cur != b_root {
            let p = self.parent[cur as usize];
            self.unlink_child(p, cur);
            cur = p;
        }
        let mut prev = inside;
        let mut cur = self.parent[inside as usize];
        while prev != b_root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = prev;
            self.link_child(prev, cur);
            prev = cur;
            cur = next;
        }
        // Hang B under `outside` and fix bookkeeping.
        self.parent[inside as usize] = outside;
        self.link_child(outside, inside);
        self.deg[w as usize] -= 1;
        self.deg[z as usize] -= 1;
        self.deg[u as usize] += 1;
        self.deg[v as usize] += 1;
        let base = self.depth[outside as usize] + 1;
        self.relabel_depths(inside, base);
    }

    /// Depth-first walk of the subtree rooted at `top`, in threading
    /// order, invoking `f` on every vertex (including `top`).
    pub fn for_subtree(&mut self, top: NodeId, mut f: impl FnMut(NodeId)) {
        let mut stack = std::mem::take(&mut self.stack);
        stack.clear();
        stack.push(top);
        while let Some(x) = stack.pop() {
            f(x);
            let mut c = self.first_child[x as usize];
            while c != NONE {
                stack.push(c);
                c = self.next_sib[c as usize];
            }
        }
        self.stack = stack;
    }

    /// Whether following parents from `x` reaches `stop`.
    fn reaches(&self, mut x: NodeId, stop: NodeId) -> bool {
        loop {
            if x == stop {
                return true;
            }
            let p = self.parent[x as usize];
            if p == x {
                return false;
            }
            x = p;
        }
    }

    /// Push `c` onto `p`'s child list (O(1)).
    fn link_child(&mut self, p: NodeId, c: NodeId) {
        let head = self.first_child[p as usize];
        self.next_sib[c as usize] = head;
        self.prev_sib[c as usize] = NONE;
        if head != NONE {
            self.prev_sib[head as usize] = c;
        }
        self.first_child[p as usize] = c;
    }

    /// Remove `c` from `p`'s child list (O(1) via sibling links).
    fn unlink_child(&mut self, p: NodeId, c: NodeId) {
        let prev = self.prev_sib[c as usize];
        let next = self.next_sib[c as usize];
        if prev == NONE {
            self.first_child[p as usize] = next;
        } else {
            self.next_sib[prev as usize] = next;
        }
        if next != NONE {
            self.prev_sib[next as usize] = prev;
        }
        self.next_sib[c as usize] = NONE;
        self.prev_sib[c as usize] = NONE;
    }

    /// Set `depth[top] = base` and relabel its subtree via the threading.
    fn relabel_depths(&mut self, top: NodeId, base: u32) {
        let mut stack = std::mem::take(&mut self.stack);
        stack.clear();
        self.depth[top as usize] = base;
        stack.push(top);
        while let Some(x) = stack.pop() {
            let d = self.depth[x as usize] + 1;
            let mut c = self.first_child[x as usize];
            while c != NONE {
                self.depth[c as usize] = d;
                stack.push(c);
                c = self.next_sib[c as usize];
            }
        }
        self.stack = stack;
    }

    /// Full consistency audit against a host graph — test support; O(n²)
    /// worst case, never called on the solve path.
    #[cfg(test)]
    pub fn validate(&self, g: &Graph) {
        let n = self.n();
        assert_eq!(n, g.n());
        assert_eq!(self.parent[self.root as usize], self.root);
        assert_eq!(self.depth[self.root as usize], 0);
        let mut deg = vec![0u32; n];
        for v in 0..n as u32 {
            if v == self.root {
                continue;
            }
            let p = self.parent[v as usize];
            assert!(g.has_edge(v, p), "parent edge {v}-{p} missing in graph");
            assert_eq!(self.depth[v as usize], self.depth[p as usize] + 1);
            deg[v as usize] += 1;
            deg[p as usize] += 1;
        }
        assert_eq!(deg, self.deg, "degree cache out of sync");
        // Child threading mirrors the parent vector exactly.
        let mut seen = vec![false; n];
        let mut stack = vec![self.root];
        let mut count = 0;
        while let Some(x) = stack.pop() {
            assert!(!seen[x as usize], "threading cycle at {x}");
            seen[x as usize] = true;
            count += 1;
            let mut c = self.first_child[x as usize];
            while c != NONE {
                assert_eq!(self.parent[c as usize], x, "thread/parent mismatch");
                stack.push(c);
                c = self.next_sib[c as usize];
            }
        }
        assert_eq!(count, n, "threading does not span");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmdst_graph::generators::{random, structured};
    use ssmdst_graph::SpanningTree;

    #[test]
    fn bfs_build_matches_reference_tree() {
        let g = structured::grid(4, 4).unwrap();
        let st = SpanningTreeStructure::from_bfs(&g);
        let reference = SpanningTree::from_bfs(&g, 0).unwrap();
        assert_eq!(st.parents(), reference.parents());
        for v in 0..g.n() as u32 {
            assert_eq!(st.depth(v), reference.depth(v), "depth of {v}");
        }
        st.validate(&g);
    }

    #[test]
    fn tree_path_is_the_fundamental_cycle() {
        let g = structured::cycle(9).unwrap();
        let mut st = SpanningTreeStructure::from_bfs(&g);
        let reference = SpanningTree::from_bfs(&g, 0).unwrap();
        // The one non-tree edge of a cycle's BFS tree closes the full ring.
        let (u, v) = g
            .edges()
            .iter()
            .copied()
            .find(|&(u, v)| !st.is_tree_edge(u, v))
            .unwrap();
        assert_eq!(st.tree_path(u, v), &reference.fundamental_cycle_path(u, v));
    }

    #[test]
    fn pivot_matches_reference_swap() {
        let g = random::gnp_connected(12, 0.4, 7);
        let mut st = SpanningTreeStructure::from_bfs(&g);
        let mut reference = SpanningTree::from_bfs(&g, 0).unwrap();
        let mut pivots = 0;
        for &(u, v) in g.edges() {
            if st.is_tree_edge(u, v) {
                continue;
            }
            // Remove the cycle edge entering the path's second vertex.
            let path = st.tree_path(u, v).to_vec();
            let (w, z) = (path[0], path[1]);
            st.pivot((u, v), (w, z));
            reference.swap((u, v), (w, z));
            st.validate(&g);
            assert_eq!(st.parents(), reference.parents(), "after pivot {u}-{v}");
            for x in 0..g.n() as u32 {
                assert_eq!(st.depth(x), reference.depth(x));
                assert_eq!(st.deg(x), reference.degree_of(x));
            }
            pivots += 1;
            if pivots >= 8 {
                break;
            }
        }
        assert!(pivots >= 4, "instance too sparse to exercise pivots");
    }

    #[test]
    fn subtree_walk_visits_exactly_the_subtree() {
        let g = structured::star_with_ring(8).unwrap();
        let mut st = SpanningTreeStructure::from_bfs(&g);
        let mut whole = Vec::new();
        let root = st.root();
        st.for_subtree(root, |v| whole.push(v));
        whole.sort_unstable();
        assert_eq!(whole, (0..g.n() as u32).collect::<Vec<_>>());
    }
}
