//! Incremental re-solve: keep a basis (spanning forest) alive across
//! churn and warm-start the solver from it instead of solving from
//! scratch after every event.
//!
//! The [`IncrementalSolver`] mirrors the live topology as sorted
//! adjacency sets plus a global parent forest — the last solved basis.
//! Churn events ([`IncrementalSolver::insert_edge`],
//! [`IncrementalSolver::remove_edge`], [`IncrementalSolver::crash`],
//! [`IncrementalSolver::rejoin`]) update the mirror in `O(deg)`, clear
//! only the forest links the event invalidated, and mark the touched
//! vertices dirty. [`IncrementalSolver::solve_all`] then walks the live
//! components: untouched components are served from the per-component
//! cache; dirty ones have their forest repaired (re-root + link through
//! the lexicographically smallest crossing edges) and are re-solved from
//! that warm basis, falling back to a cold BFS start only when churn
//! shredded the component's forest entirely. Solved trees are written
//! back as the next basis, so long churn chains stay incremental
//! throughout.
//!
//! Everything is keyed and iterated in ascending vertex order
//! (`BTreeSet`/`BTreeMap`, sorted member lists), so replays are
//! bit-deterministic regardless of event history representation.

use std::collections::{BTreeMap, BTreeSet};

use crate::solve::{Solution, Solver};
use crate::structure::NONE;
use crate::witness::Witness;
use ssmdst_graph::{GraphBuilder, NodeId, UnionFind};

/// The certified solve of one live component, in **component-local**
/// vertex ids (indices into [`CompSolution::members`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompSolution {
    /// Original vertex ids of the component, ascending.
    pub members: Vec<NodeId>,
    /// Certified lower bound on the component's `Δ*`.
    pub lower: u32,
    /// Achieved tree degree (upper bound on `Δ*`).
    pub upper: u32,
    /// Component-local parent vector of the solved tree.
    pub tree: Vec<NodeId>,
    /// Component-local root of the solved tree.
    pub root: NodeId,
    /// Component-local lower-bound certificate (use
    /// [`Witness::relabeled`] with `members` for original ids).
    pub witness: Witness,
    /// Whether the final lower-bound step came from the branch-and-bound
    /// settling oracle (the witness then certifies one less than `lower`).
    pub settled: bool,
}

impl CompSolution {
    /// Whether the component's `Δ*` is known exactly.
    pub fn exact(&self) -> bool {
        self.lower == self.upper
    }

    /// `Δ*` when the interval is closed.
    pub fn delta_star(&self) -> Option<u32> {
        self.exact().then_some(self.lower)
    }

    /// The certificate translated to original vertex ids.
    pub fn witness_original(&self) -> Witness {
        self.witness.relabeled(&self.members)
    }
}

/// Work counters — how much of the last [`IncrementalSolver::solve_all`]
/// run was served incrementally.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Components answered straight from the cache.
    pub cache_hits: u64,
    /// Components re-solved from a repaired prior basis.
    pub warm_starts: u64,
    /// Components re-solved from a fresh BFS tree.
    pub cold_starts: u64,
    /// Improvement pivots performed across all solves.
    pub pivots: u64,
}

/// Incremental certified-`Δ*` engine over a churning topology.
#[derive(Debug, Clone)]
pub struct IncrementalSolver {
    solver: Solver,
    alive: Vec<bool>,
    adj: Vec<BTreeSet<NodeId>>,
    /// Last solved basis: global parent forest (`NONE` = root or dead).
    basis: Vec<NodeId>,
    /// Vertices touched by churn since the last `solve_all`.
    dirty: BTreeSet<NodeId>,
    /// Per-component cache, keyed by smallest member id.
    cache: BTreeMap<NodeId, CompSolution>,
    stats: Stats,
}

impl IncrementalSolver {
    /// An engine over `n` vertices with no edges, all alive.
    pub fn new(n: usize, solver: Solver) -> Self {
        IncrementalSolver {
            solver,
            alive: vec![true; n],
            adj: vec![BTreeSet::new(); n],
            basis: vec![NONE; n],
            dirty: (0..n as u32).collect(),
            cache: BTreeMap::new(),
            stats: Stats::default(),
        }
    }

    /// An engine seeded from a static graph (all vertices alive).
    pub fn from_graph(g: &ssmdst_graph::Graph, solver: Solver) -> Self {
        let mut inc = IncrementalSolver::new(g.n(), solver);
        for &(u, v) in g.edges() {
            inc.insert_edge(u, v);
        }
        inc
    }

    /// Universe size (including crashed vertices).
    pub fn n(&self) -> usize {
        self.alive.len()
    }

    /// Whether `v` is currently live.
    pub fn is_alive(&self, v: NodeId) -> bool {
        (v as usize) < self.alive.len() && self.alive[v as usize]
    }

    /// Current neighbor set of `v` in the mirror (ascending).
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adj[v as usize].iter().copied()
    }

    /// Work counters accumulated since construction.
    pub fn stats(&self) -> Stats {
        self.stats
    }

    fn in_range(&self, u: NodeId, v: NodeId) -> bool {
        (u as usize) < self.alive.len() && (v as usize) < self.alive.len() && u != v
    }

    /// Mirror an edge insertion. Returns whether the mirror changed
    /// (`false` for self-loops, out-of-range ids, crashed endpoints or
    /// already-present edges — matching the simulator's semantics).
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if !self.in_range(u, v) || !self.alive[u as usize] || !self.alive[v as usize] {
            return false;
        }
        if !self.adj[u as usize].insert(v) {
            return false;
        }
        self.adj[v as usize].insert(u);
        // The forest is linked lazily at solve time; just mark dirty.
        self.dirty.insert(u);
        self.dirty.insert(v);
        true
    }

    /// Mirror an edge removal. Returns whether the mirror changed.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if !self.in_range(u, v) || !self.adj[u as usize].remove(&v) {
            return false;
        }
        self.adj[v as usize].remove(&u);
        if self.basis[u as usize] == v {
            self.basis[u as usize] = NONE;
        }
        if self.basis[v as usize] == u {
            self.basis[v as usize] = NONE;
        }
        self.dirty.insert(u);
        self.dirty.insert(v);
        true
    }

    /// Sync one edge of the mirror to an externally observed presence —
    /// the convenient driver when following a network's ground truth.
    pub fn set_edge(&mut self, u: NodeId, v: NodeId, present: bool) -> bool {
        if present {
            self.insert_edge(u, v)
        } else {
            self.remove_edge(u, v)
        }
    }

    /// Mirror a crash: the vertex leaves the topology with all incident
    /// edges. Returns whether the mirror changed.
    pub fn crash(&mut self, v: NodeId) -> bool {
        if (v as usize) >= self.alive.len() || !self.alive[v as usize] {
            return false;
        }
        let nbrs: Vec<NodeId> = self.adj[v as usize].iter().copied().collect();
        for w in nbrs {
            self.adj[w as usize].remove(&v);
            if self.basis[w as usize] == v {
                self.basis[w as usize] = NONE;
            }
            self.dirty.insert(w);
        }
        self.adj[v as usize].clear();
        self.basis[v as usize] = NONE;
        self.alive[v as usize] = false;
        self.dirty.insert(v);
        true
    }

    /// Mirror a rejoin: the vertex comes back with edges to the given
    /// still-live neighbors. Returns whether the mirror changed.
    pub fn rejoin(&mut self, v: NodeId, neighbors: &[NodeId]) -> bool {
        if (v as usize) >= self.alive.len() || self.alive[v as usize] {
            return false;
        }
        self.alive[v as usize] = true;
        self.basis[v as usize] = NONE;
        self.dirty.insert(v);
        for &w in neighbors {
            self.insert_edge(v, w);
        }
        true
    }

    /// Solve every live component, incrementally: cached where untouched,
    /// warm-started from the repaired basis where dirty. Results come in
    /// ascending order of smallest member id; the solved trees become the
    /// next basis.
    pub fn solve_all(&mut self) -> Vec<CompSolution> {
        let n = self.alive.len();
        // Live components of the mirror.
        let mut uf = UnionFind::new(n);
        for v in 0..n as u32 {
            for &w in self.adj[v as usize].iter() {
                if w > v {
                    uf.union(v, w);
                }
            }
        }
        let mut by_rep: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        for v in 0..n as u32 {
            if self.alive[v as usize] {
                let r = uf.find(v);
                by_rep.entry(r).or_default().push(v);
            }
        }
        // Union-find representatives are rank-chosen, not minimal; re-key
        // by smallest member so results order matches the simulator's
        // `live_components` (and the cache key is stable across churn).
        let groups: BTreeMap<NodeId, Vec<NodeId>> =
            by_rep.into_values().map(|ms| (ms[0], ms)).collect();
        let mut out = Vec::with_capacity(groups.len());
        let mut next_cache = BTreeMap::new();
        for members in groups.into_values() {
            let key = members[0]; // ascending by construction
            let clean = !members.iter().any(|v| self.dirty.contains(v));
            if clean {
                if let Some(cached) = self.cache.remove(&key) {
                    if cached.members == members {
                        self.stats.cache_hits += 1;
                        out.push(cached.clone());
                        next_cache.insert(key, cached);
                        continue;
                    }
                }
            }
            let sol = self.solve_component(&members);
            // Write the solved tree back as the new basis.
            for (i, &v) in sol.members.iter().enumerate() {
                let p = sol.tree[i];
                self.basis[v as usize] = if p == NONE {
                    NONE
                } else {
                    sol.members[p as usize]
                };
            }
            out.push(sol.clone());
            next_cache.insert(key, sol);
        }
        self.cache = next_cache;
        self.dirty.clear();
        out
    }

    /// Solve one component: build the induced subgraph, repair the prior
    /// basis into a spanning tree of it (or fall back to BFS), run the
    /// solver.
    fn solve_component(&mut self, members: &[NodeId]) -> CompSolution {
        let local = |v: NodeId| -> u32 {
            members
                .binary_search(&v)
                .expect("member lookup: component lists are exhaustive") as u32 // lint: allow(no-panic-in-library) — `members` is the union-find component of every vertex it touches
        };
        let mut b = GraphBuilder::new(members.len());
        for (i, &v) in members.iter().enumerate() {
            for &w in self.adj[v as usize].iter() {
                if w > v {
                    b.add_edge(i as u32, local(w))
                        .expect("mirror adjacency is in-range and loop-free"); // lint: allow(no-panic-in-library) — insert_edge rejects self-loops and out-of-range ids at the mirror boundary
                }
            }
        }
        let sub = b.build();
        let solution = match self.repair_basis(members, &local) {
            Some((root, parents)) => {
                self.stats.warm_starts += 1;
                self.solver.solve_from(&sub, root, &parents)
            }
            None => {
                self.stats.cold_starts += 1;
                self.solver.solve(&sub)
            }
        };
        self.stats.pivots += solution.pivots;
        let Solution {
            lower,
            upper,
            root,
            tree,
            witness,
            settled,
            ..
        } = solution;
        CompSolution {
            members: members.to_vec(),
            lower,
            upper,
            tree,
            root,
            witness,
            settled,
        }
    }

    /// Try to repair the stored basis into a spanning tree of the
    /// component (component-local ids). Valid forest links are kept;
    /// fragments are re-rooted and linked through the smallest crossing
    /// mirror edges. Returns `None` when no usable links survive a
    /// cheaper full rebuild.
    fn repair_basis(
        &self,
        members: &[NodeId],
        local: &dyn Fn(NodeId) -> u32,
    ) -> Option<(NodeId, Vec<NodeId>)> {
        let k = members.len();
        if k <= 1 {
            return Some((0, vec![NONE; k]));
        }
        // Collect surviving links: parent must be a live member and the
        // edge must still exist in the mirror.
        let mut parents = vec![NONE; k];
        let mut kept = 0usize;
        for (i, &v) in members.iter().enumerate() {
            let p = self.basis[v as usize];
            if p != NONE && self.adj[v as usize].contains(&p) && members.binary_search(&p).is_ok() {
                parents[i] = local(p);
                kept += 1;
            }
        }
        if kept * 2 < k {
            return None; // mostly shredded — BFS rebuild is cheaper
        }
        // The surviving links form a forest (they were a forest before
        // churn and we only removed links), unless a rejoin recycled ids
        // into a stale cycle; verify acyclicity while grouping fragments.
        let mut uf = UnionFind::new(k);
        for (i, &p) in parents.iter().enumerate() {
            if p != NONE && !uf.union(i as u32, p) {
                return None; // stale cycle — basis unusable
            }
        }
        // Link fragments through the smallest crossing edges, re-rooting
        // the absorbed fragment onto its crossing endpoint.
        if uf.components() > 1 {
            for (i, &v) in members.iter().enumerate() {
                for &w in self.adj[v as usize].iter() {
                    if w < v {
                        continue;
                    }
                    let j = local(w);
                    if uf.find(i as u32) != uf.find(j) {
                        reroot(&mut parents, j);
                        parents[j as usize] = i as u32;
                        uf.union(i as u32, j);
                    }
                }
            }
            if uf.components() > 1 {
                return None; // mirror disagrees with grouping — rebuild
            }
        }
        let root = parents
            .iter()
            .position(|&p| p == NONE)
            .expect("a finite forest has a root") as u32; // lint: allow(no-panic-in-library) — the union above verified acyclicity, so some vertex has no parent
        parents[root as usize] = root; // self-parent, the tree-structure convention
        Some((root, parents))
    }
}

/// Reverse the parent chain above `v` so that `v` becomes the root of
/// its fragment.
fn reroot(parents: &mut [NodeId], v: NodeId) {
    let mut cur = v;
    let mut prev = NONE;
    while cur != NONE {
        let next = parents[cur as usize];
        parents[cur as usize] = prev;
        prev = cur;
        cur = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmdst_graph::generators::{random, structured};
    use ssmdst_graph::graph::graph_from_edges;

    fn engine(g: &ssmdst_graph::Graph) -> IncrementalSolver {
        IncrementalSolver::from_graph(g, Solver::default())
    }

    #[test]
    fn static_solve_matches_direct_solver() {
        let g = random::gnp_connected(20, 0.2, 5);
        let mut inc = engine(&g);
        let sols = inc.solve_all();
        assert_eq!(sols.len(), 1);
        let direct = Solver::default().solve(&g);
        assert_eq!(sols[0].lower, direct.lower);
        assert_eq!(sols[0].upper, direct.upper);
        assert!(sols[0].witness.verify(&g), "local ids == original here");
    }

    #[test]
    fn untouched_components_hit_the_cache() {
        // Two disjoint cycles; churn only the second.
        let mut edges = Vec::new();
        for i in 0..5u32 {
            edges.push((i, (i + 1) % 5));
        }
        for i in 0..5u32 {
            edges.push((5 + i, 5 + (i + 1) % 5));
        }
        let g = graph_from_edges(10, &edges);
        let mut inc = engine(&g);
        let first = inc.solve_all();
        assert_eq!(first.len(), 2);
        let before = inc.stats();
        inc.remove_edge(5, 6);
        let second = inc.solve_all();
        let after = inc.stats();
        assert_eq!(after.cache_hits, before.cache_hits + 1, "cycle 0 cached");
        assert_eq!(second.len(), 2);
        assert_eq!(second[0], first[0], "untouched component is bit-equal");
        assert_eq!(second[1].upper, 2, "second cycle became a path");
    }

    #[test]
    fn reroot_reverses_a_chain() {
        // 0 ← 1 ← 2 ← 3 (parents point left); re-root at 3.
        let mut parents = vec![NONE, 0, 1, 2];
        reroot(&mut parents, 3);
        assert_eq!(parents, vec![1, 2, 3, NONE]);
    }

    #[test]
    fn crash_and_rejoin_round_trip() {
        let g = structured::star_with_ring(8).unwrap();
        let mut inc = engine(&g);
        let base = inc.solve_all();
        assert_eq!(base.len(), 1);
        let nbrs: Vec<NodeId> = inc.neighbors(0).collect();
        assert!(inc.crash(0));
        assert!(!inc.crash(0), "double crash is a no-op");
        let crashed = inc.solve_all();
        assert!(crashed.iter().all(|c| !c.members.contains(&0)));
        assert!(inc.rejoin(0, &nbrs));
        let back = inc.solve_all();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].members.len(), 8);
        assert_eq!(back[0].lower, base[0].lower);
        assert_eq!(back[0].upper, base[0].upper);
    }

    #[test]
    fn edge_churn_chain_tracks_scratch_solves() {
        let g = random::gnp_connected(16, 0.25, 11);
        let mut inc = engine(&g);
        inc.solve_all();
        // Remove a batch of edges, insert some back, compare each step
        // against a from-scratch engine on the same mirror.
        let edges: Vec<(NodeId, NodeId)> = g.edges().to_vec();
        for (step, &(u, v)) in edges.iter().take(6).enumerate() {
            if step % 2 == 0 {
                inc.remove_edge(u, v);
            } else {
                inc.insert_edge(u, v);
            }
            let incs = inc.solve_all();
            let mut scratch = IncrementalSolver::new(inc.n(), Solver::default());
            for x in 0..inc.n() as u32 {
                for w in inc.neighbors(x) {
                    scratch.insert_edge(x, w);
                }
            }
            let scr = scratch.solve_all();
            // Both paths settle small components exactly, so the
            // certified outcome must be bit-identical (trees/witnesses
            // may legitimately differ between warm and cold starts).
            assert_eq!(incs.len(), scr.len(), "step {step}");
            for (a, b) in incs.iter().zip(&scr) {
                assert_eq!(a.members, b.members, "step {step}");
                assert_eq!((a.lower, a.upper), (b.lower, b.upper), "step {step}");
                assert!(a.exact() && b.exact(), "step {step}: small n settles");
            }
        }
        assert!(inc.stats().warm_starts > 0, "chain must warm-start");
    }

    #[test]
    fn out_of_range_and_degenerate_events_are_rejected() {
        let g = structured::path(4).unwrap();
        let mut inc = engine(&g);
        assert!(!inc.insert_edge(0, 0), "self loop");
        assert!(!inc.insert_edge(0, 99), "out of range");
        assert!(!inc.remove_edge(0, 3), "absent edge");
        assert!(!inc.rejoin(1, &[]), "rejoin of a live vertex");
        inc.crash(2);
        assert!(!inc.insert_edge(1, 2), "edge to a crashed vertex");
    }
}
