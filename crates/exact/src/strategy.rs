//! Pluggable pivot selection — which eligible improvement a search phase
//! applies, in the network-simplex tradition of swappable pivot rules.
//!
//! Every strategy is a pure function of the deterministic candidate
//! stream (eligible improvements are always enumerated in ascending edge
//! id) plus the builder's seed, so solver runs are replayable: the same
//! `(graph, start tree, strategy, seed)` always performs the same pivots.

use ssmdst_graph::NodeId;

/// One eligible improvement found by a search phase: insert a non-tree
/// edge, remove a tree edge incident to a maximum-degree vertex on its
/// basis cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Improvement {
    /// Index of the inserted edge in the graph's canonical edge list
    /// (ascending — the deterministic tie-breaker).
    pub edge: u32,
    /// The inserted non-tree edge `{u, v}`.
    pub insert: (NodeId, NodeId),
    /// The degree-`k` vertex this improvement relieves.
    pub target: NodeId,
    /// The removed tree edge (incident to `target`, on the basis cycle).
    pub remove: (NodeId, NodeId),
    /// Heuristic gain: `k − max(deg(u), deg(v))` — how much headroom the
    /// inserted edge's endpoints have. Larger is better.
    pub gain: u32,
}

/// Pivot rule selection, chosen through the solver builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Pivot {
    /// Apply the first eligible improvement (lowest edge id). Cheapest
    /// per phase: enumeration stops at the first hit.
    #[default]
    FirstEligible,
    /// Enumerate the whole phase and apply the improvement with maximal
    /// [`Improvement::gain`] (ties: lowest edge id).
    BestEligible,
    /// Network-simplex block search: scan a window of `block` candidates
    /// starting at a rotating cursor (seeded by the builder), apply the
    /// best inside the window. Balances phase cost against pivot quality.
    CandidateList {
        /// Window size (clamped to ≥ 1).
        block: u32,
    },
}

/// Instantiated pivot rule state (the cursor of a candidate list lives
/// across phases).
#[derive(Debug, Clone)]
pub(crate) struct PivotState {
    rule: Pivot,
    cursor: u32,
}

impl PivotState {
    pub(crate) fn new(rule: Pivot, seed: u64, m: usize) -> Self {
        let cursor = if m == 0 { 0 } else { (seed % m as u64) as u32 };
        PivotState { rule, cursor }
    }

    /// Whether enumeration may stop at the first eligible improvement.
    pub(crate) fn first_only(&self) -> bool {
        matches!(self.rule, Pivot::FirstEligible)
    }

    /// Choose one improvement from a non-empty candidate list (ascending
    /// edge id). Deterministic.
    pub(crate) fn pick(&mut self, eligible: &[Improvement]) -> Improvement {
        debug_assert!(!eligible.is_empty());
        match self.rule {
            Pivot::FirstEligible => eligible[0],
            Pivot::BestEligible => best_of(eligible),
            Pivot::CandidateList { block } => {
                let block = block.max(1) as usize;
                // The window is the first `block` candidates at or after
                // the cursor, wrapping past the end of the edge order.
                let start = eligible
                    .iter()
                    .position(|imp| imp.edge >= self.cursor)
                    .unwrap_or(0);
                let window: Vec<Improvement> = eligible
                    .iter()
                    .cycle()
                    .skip(start)
                    .take(block.min(eligible.len()))
                    .copied()
                    .collect();
                let chosen = best_of(&window);
                self.cursor = chosen.edge + 1;
                chosen
            }
        }
    }
}

/// Max gain, ties broken toward the lowest edge id.
fn best_of(cands: &[Improvement]) -> Improvement {
    let mut best = cands[0];
    for &c in &cands[1..] {
        if c.gain > best.gain || (c.gain == best.gain && c.edge < best.edge) {
            best = c;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn imp(edge: u32, gain: u32) -> Improvement {
        Improvement {
            edge,
            insert: (0, 1),
            target: 2,
            remove: (2, 3),
            gain,
        }
    }

    #[test]
    fn first_eligible_takes_the_lowest_edge() {
        let mut s = PivotState::new(Pivot::FirstEligible, 0, 10);
        assert!(s.first_only());
        assert_eq!(s.pick(&[imp(3, 1), imp(5, 9)]).edge, 3);
    }

    #[test]
    fn best_eligible_maximizes_gain_with_stable_ties() {
        let mut s = PivotState::new(Pivot::BestEligible, 0, 10);
        assert_eq!(s.pick(&[imp(3, 1), imp(5, 9), imp(7, 9)]).edge, 5);
    }

    #[test]
    fn candidate_list_rotates_its_cursor() {
        let mut s = PivotState::new(Pivot::CandidateList { block: 2 }, 0, 10);
        let cands = [imp(1, 1), imp(4, 5), imp(8, 3)];
        // Window from edge 0: {1, 4} → picks 4; cursor advances past it.
        assert_eq!(s.pick(&cands).edge, 4);
        // Window from edge 5: {8, wraps to 1} → gain 3 beats gain 1.
        assert_eq!(s.pick(&cands).edge, 8);
    }

    #[test]
    fn candidate_list_seed_sets_the_start() {
        let mut s = PivotState::new(Pivot::CandidateList { block: 1 }, 8, 10);
        let cands = [imp(1, 1), imp(4, 5), imp(8, 3)];
        assert_eq!(s.pick(&cands).edge, 8, "seeded cursor starts at edge 8");
    }
}
