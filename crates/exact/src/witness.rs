//! Checkable lower-bound certificates for `Δ*`.
//!
//! A [`Witness`] is a blocking vertex set `S` plus the bound it claims:
//! removing `S` from the graph leaves `c` components, every spanning tree
//! needs `c + |S| − 1` edges incident to `S`, so some vertex of `S` has
//! tree degree at least `⌈(c + |S| − 1) / |S|⌉` (the Fürer–Raghavachari
//! forest argument, the same structure as
//! [`ssmdst_graph::lower_bound::vertex_removal_bound`]). The empty set
//! carries the floor bounds that need no removal argument (`1` with an
//! edge, `2` once `n ≥ 3`: a spanning tree on three or more vertices has
//! an internal vertex).
//!
//! The point of the type is that verification is **independent of the
//! search** that produced it: [`Witness::verify`] re-derives the bound
//! with one BFS over the graph, so a judge never has to trust the
//! solver's improvement loop — only a count of connected components.

use ssmdst_graph::{lower_bound, Graph, NodeId};

/// A certified lower bound on the optimal spanning-tree degree `Δ*`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// The blocking set `S`, strictly ascending (empty for floor bounds).
    set: Vec<NodeId>,
    /// The bound this witness claims: `Δ* ≥ claimed`.
    claimed: u32,
}

impl Witness {
    /// The floor witness for an `n`-vertex connected graph: claims `0`,
    /// `1` or `2` with an empty set.
    pub fn floor(n: usize) -> Witness {
        Witness {
            set: Vec::new(),
            claimed: floor_bound(n),
        }
    }

    /// A removal-set witness. The set is sorted and deduplicated; the
    /// claim is whatever the caller derived (use [`Witness::verify`] to
    /// check it against a graph).
    pub fn removal_set(mut set: Vec<NodeId>, claimed: u32) -> Witness {
        set.sort_unstable();
        set.dedup();
        Witness { set, claimed }
    }

    /// The blocking set `S` (empty for floor witnesses), ascending.
    pub fn set(&self) -> &[NodeId] {
        &self.set
    }

    /// The claimed lower bound on `Δ*`.
    pub fn claimed(&self) -> u32 {
        self.claimed
    }

    /// Recompute the bound this witness's set actually certifies on `g`
    /// (independent of whatever search produced it): the removal formula
    /// for a non-empty set, the connectivity floor for an empty one.
    pub fn certifies(&self, g: &Graph) -> u32 {
        if self.set.is_empty() {
            floor_bound(g.n())
        } else {
            // The floor still holds; a removal set can only strengthen it.
            lower_bound::vertex_removal_bound(g, &self.set).max(floor_bound(g.n()))
        }
    }

    /// Independent re-verification: does the set certify at least the
    /// claim on `g`? One BFS; no trust in the producing search.
    pub fn verify(&self, g: &Graph) -> bool {
        self.set.iter().all(|&v| (v as usize) < g.n()) && self.certifies(g) >= self.claimed
    }

    /// Translate a component-local witness back to original vertex ids.
    pub fn relabeled(&self, map: &[NodeId]) -> Witness {
        Witness {
            set: self.set.iter().map(|&v| map[v as usize]).collect(),
            claimed: self.claimed,
        }
    }
}

/// The trivial connectivity floor on `Δ*` for an `n`-vertex connected
/// graph: any spanning tree on `n ≥ 3` vertices has an internal vertex.
pub(crate) fn floor_bound(n: usize) -> u32 {
    match n {
        0 | 1 => 0,
        2 => 1,
        _ => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmdst_graph::generators::{gadgets, structured};
    use ssmdst_graph::graph::graph_from_edges;

    #[test]
    fn floor_witness_verifies_on_any_graph() {
        for n in [1usize, 2, 3, 8] {
            let g = structured::path(n.max(2)).unwrap();
            assert!(Witness::floor(g.n()).verify(&g));
        }
    }

    #[test]
    fn star_center_certifies_its_degree() {
        let g = graph_from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let w = Witness::removal_set(vec![0], 5);
        assert!(w.verify(&g));
        assert_eq!(w.certifies(&g), 5);
        // An inflated claim fails verification.
        assert!(!Witness::removal_set(vec![0], 6).verify(&g));
    }

    #[test]
    fn spider_hub_witness() {
        let g = gadgets::spider(4, 3).unwrap();
        assert!(Witness::removal_set(vec![0], 4).verify(&g));
    }

    #[test]
    fn relabeling_maps_into_original_ids() {
        let g = graph_from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let local = Witness::removal_set(vec![0], 3);
        let mapped = local.relabeled(&[7, 9, 11, 13]);
        assert_eq!(mapped.set(), &[7]);
        assert_eq!(mapped.claimed(), 3);
        let _ = g;
    }

    #[test]
    fn out_of_range_set_fails_closed() {
        let g = structured::path(4).unwrap();
        assert!(!Witness::removal_set(vec![99], 1).verify(&g));
    }
}
