//! The certified-interval solver: local improvement over the
//! [`SpanningTreeStructure`] plus an independently checkable lower-bound
//! witness, with optional exact settling at small `n`.
//!
//! Computing `Δ*` is NP-hard, so "exact at scale" means **certified
//! interval**: the solver returns a tree of degree `U` and a [`Witness`]
//! certifying `Δ* ≥ L`, with `U ≤ L + 1` at every improvement fixpoint
//! (the Fürer–Raghavachari phase theorem: when no single swap relieves a
//! maximum-degree vertex, the still-blocked vertex set certifies
//! `Δ* ≥ k − 1`). A judge that accepts `deg ≤ L + 1` is therefore sound
//! (`L ≤ Δ*`) and — whenever `L = Δ*` — complete.
//!
//! The improvement phase mirrors Fürer–Raghavachari's forest argument
//! directly: mark every vertex of degree `≥ k − 1`, grow a union-find
//! forest over the unmarked tree edges, and process non-tree edges whose
//! endpoints lie in different forest components. The basis cycle of such
//! an edge must pass through a marked vertex; if one has degree `k` the
//! edge is an **improvement** (swap it in, drop a cycle edge at the hot
//! vertex — degree `k` count strictly decreases), otherwise every marked
//! cycle vertex has degree `k − 1` and is **unmarked** (it could be
//! relieved on demand), merging the cycle into one component. At the
//! fixpoint the still-marked set is the blocking witness. Which
//! improvement is applied per phase is the pluggable [`Pivot`] rule.
//!
//! Settling: when the interval is still open (`L < U`) and the instance
//! is small enough, the branch-and-bound decision oracle
//! ([`ssmdst_graph::has_spanning_tree_with_max_degree`]) either produces
//! a strictly better tree (adopt it, keep improving) or proves `Δ* = U`.
//! This is what makes the engine bit-exact against
//! [`ssmdst_graph::exact_mdst`] on every small instance while staying
//! witness-only (and fast) at `n = 10k+`.

use crate::strategy::{Improvement, Pivot, PivotState};
use crate::structure::SpanningTreeStructure;
use crate::witness::{floor_bound, Witness};
use ssmdst_graph::{
    has_spanning_tree_with_max_degree, lower_bound, Graph, NodeId, SolveBudget, UnionFind,
};

/// A certified solve result: `lower ≤ Δ* ≤ upper`, with `tree` achieving
/// `upper` and `witness` certifying `lower` (up to settling, see
/// [`Solution::settled`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    /// Certified lower bound on `Δ*`.
    pub lower: u32,
    /// Achieved upper bound: the max degree of `tree`.
    pub upper: u32,
    /// Root of the witnessing spanning tree.
    pub root: NodeId,
    /// Parent vector of the witnessing spanning tree.
    pub tree: Vec<NodeId>,
    /// The checkable lower-bound certificate. `witness.claimed()` equals
    /// `lower` unless the decision oracle settled the last gap, in which
    /// case it certifies `lower − 1` and `settled` is set.
    pub witness: Witness,
    /// Whether the final `lower` step came from the branch-and-bound
    /// decision oracle rather than the removal-set witness.
    pub settled: bool,
    /// Pivots applied by the improvement loop (solver work measure).
    pub pivots: u64,
}

impl Solution {
    /// Whether `Δ*` is known exactly.
    pub fn exact(&self) -> bool {
        self.lower == self.upper
    }

    /// `Δ*` when the interval is closed.
    pub fn delta_star(&self) -> Option<u32> {
        self.exact().then_some(self.lower)
    }
}

/// Configured solver. Build via [`Solver::builder`]; every knob is
/// deterministic, so equal configurations replay equal solves.
#[derive(Debug, Clone)]
pub struct Solver {
    pivot: Pivot,
    seed: u64,
    settle_budget: u64,
    settle_max_n: usize,
    improve_cap: u64,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::builder().build()
    }
}

/// Builder for [`Solver`] — strategy selection lives here.
#[derive(Debug, Clone)]
pub struct SolverBuilder {
    pivot: Pivot,
    seed: u64,
    settle_budget: u64,
    settle_max_n: usize,
    improve_cap: u64,
}

impl SolverBuilder {
    /// Select the pivot rule (default [`Pivot::FirstEligible`]).
    pub fn pivot(mut self, pivot: Pivot) -> Self {
        self.pivot = pivot;
        self
    }

    /// Seed for seed-sensitive strategies (the candidate-list cursor).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Branch-and-bound node budget for settling open intervals
    /// (`0` disables settling entirely).
    pub fn settle_budget(mut self, budget: u64) -> Self {
        self.settle_budget = budget;
        self
    }

    /// Largest `n` the settling oracle is invoked on; above it the solver
    /// stays witness-only (default 64).
    pub fn settle_max_n(mut self, n: usize) -> Self {
        self.settle_max_n = n;
        self
    }

    /// Safety cap on improvement pivots (default effectively unbounded —
    /// the potential argument terminates the loop on its own).
    pub fn improve_cap(mut self, cap: u64) -> Self {
        self.improve_cap = cap;
        self
    }

    /// Finalize.
    pub fn build(self) -> Solver {
        Solver {
            pivot: self.pivot,
            seed: self.seed,
            settle_budget: self.settle_budget,
            settle_max_n: self.settle_max_n,
            improve_cap: self.improve_cap,
        }
    }
}

/// Result of one improvement phase.
enum Phase {
    /// A pivot was applied; the tree changed.
    Applied,
    /// Fixpoint: no eligible improvement; the still-marked blocking set.
    Blocked(Vec<NodeId>),
}

impl Solver {
    /// Start building a solver.
    pub fn builder() -> SolverBuilder {
        SolverBuilder {
            pivot: Pivot::FirstEligible,
            seed: 0,
            settle_budget: 500_000,
            settle_max_n: 64,
            improve_cap: u64::MAX,
        }
    }

    /// Solve a connected graph from a cold (BFS) start.
    ///
    /// # Panics
    /// Panics if `g` is empty or disconnected (no spanning tree exists).
    pub fn solve(&self, g: &Graph) -> Solution {
        assert!(g.n() >= 1, "exact::solve: empty graph");
        if g.n() == 1 {
            return trivial_solution(0);
        }
        let parents = ssmdst_graph::traversal::bfs_tree(g, 0);
        assert!(
            !parents.contains(&u32::MAX),
            "exact::solve: disconnected graph"
        );
        self.solve_from(g, 0, &parents)
    }

    /// Solve starting from an existing spanning tree of `g` — the warm
    /// start the incremental engine uses after repairing its forest. The
    /// parent vector must describe a valid spanning tree rooted at `root`.
    pub fn solve_from(&self, g: &Graph, root: NodeId, parents: &[NodeId]) -> Solution {
        let n = g.n();
        if n <= 1 {
            return trivial_solution(root);
        }
        let mut st = SpanningTreeStructure::from_parents(root, parents);
        let mut ps = PivotState::new(self.pivot, self.seed, g.m());
        let mut pivots = 0u64;
        let cut = best_cut_bound(g);
        let mut settled = false;
        let (lower, witness) = loop {
            let blocking = self.improve(g, &mut st, &mut ps, &mut pivots);
            let k = st.max_degree();
            // Best set-certifiable bound: floor < articulation < blocking.
            let mut w = Witness::floor(n);
            if let Some((v, c)) = cut {
                if c > w.claimed() {
                    w = Witness::removal_set(vec![v], c);
                }
            }
            if let Some(set) = blocking {
                let b = lower_bound::vertex_removal_bound(g, &set);
                if b > w.claimed() {
                    w = Witness::removal_set(set, b);
                }
            }
            debug_assert!(w.verify(g), "produced witness must self-verify");
            debug_assert!(w.claimed() <= k, "lower bound above achieved degree");
            if w.claimed() >= k {
                break (k, w);
            }
            // Open interval: settle on small instances, else certify what
            // the witness gives (`k − 1` at a true fixpoint).
            if self.settle_budget > 0 && n <= self.settle_max_n {
                let budget = SolveBudget {
                    max_nodes: self.settle_budget,
                };
                match has_spanning_tree_with_max_degree(g, k - 1, budget) {
                    Some(Some(better)) => {
                        // A strictly better tree exists: adopt and keep
                        // improving (k strictly decreases, so this loop
                        // terminates).
                        st = SpanningTreeStructure::from_parents(better.root(), better.parents());
                        continue;
                    }
                    Some(None) => {
                        settled = true;
                        break (k, w);
                    }
                    None => break (w.claimed(), w),
                }
            } else {
                break (w.claimed(), w);
            }
        };
        Solution {
            lower,
            upper: st.max_degree(),
            root: st.root(),
            tree: st.parents().to_vec(),
            witness,
            settled,
            pivots,
        }
    }

    /// Run improvement phases until a fixpoint (or the pivot cap).
    /// Returns the blocking set of the final phase, or `None` when the
    /// tree already meets the connectivity floor (nothing to certify
    /// beyond it).
    fn improve(
        &self,
        g: &Graph,
        st: &mut SpanningTreeStructure,
        ps: &mut PivotState,
        pivots: &mut u64,
    ) -> Option<Vec<NodeId>> {
        let floor = floor_bound(st.n());
        loop {
            let k = st.max_degree();
            if k <= floor {
                return None;
            }
            if *pivots >= self.improve_cap {
                // Cap hit: certify from the current marked set (sound —
                // the witness bound is recomputed independently).
                return Some(marked_set(st, k));
            }
            match run_phase(g, st, ps, k, pivots) {
                Phase::Applied => continue,
                Phase::Blocked(set) => return Some(set),
            }
        }
    }
}

/// All vertices of tree degree `≥ k − 1` (the phase's initial marking).
fn marked_set(st: &SpanningTreeStructure, k: u32) -> Vec<NodeId> {
    (0..st.n() as u32).filter(|&v| st.deg(v) >= k - 1).collect()
}

/// One Fürer–Raghavachari phase at degree target `k`: either applies one
/// pivot chosen by the strategy, or reaches the phase fixpoint and
/// returns the blocking set.
fn run_phase(
    g: &Graph,
    st: &mut SpanningTreeStructure,
    ps: &mut PivotState,
    k: u32,
    pivots: &mut u64,
) -> Phase {
    let n = st.n();
    let root = st.root();
    let mut marked = vec![false; n];
    for v in 0..n as u32 {
        marked[v as usize] = st.deg(v) >= k - 1;
    }
    // Forest components of T − marked.
    let mut uf = UnionFind::new(n);
    for v in 0..n as u32 {
        if v != root {
            let p = st.parent(v);
            if !marked[v as usize] && !marked[p as usize] {
                uf.union(v, p);
            }
        }
    }
    let mut path_buf: Vec<u32> = Vec::new();
    let mut eligible: Vec<Improvement> = Vec::new();
    loop {
        let mut merged = false;
        eligible.clear();
        for (e, &(u, v)) in g.edges().iter().enumerate() {
            if st.is_tree_edge(u, v)
                || marked[u as usize]
                || marked[v as usize]
                || uf.find(u) == uf.find(v)
            {
                continue;
            }
            // The basis cycle crosses two forest components, so it passes
            // through at least one marked vertex.
            path_buf.clear();
            path_buf.extend_from_slice(st.tree_path(u, v));
            let hot = path_buf
                .iter()
                .position(|&x| marked[x as usize] && st.deg(x) == k);
            if let Some(i) = hot {
                // Relieve the degree-k vertex: swap `{u,v}` in, drop the
                // cycle edge between it and its path predecessor (`i ≥ 1`
                // because `u` is unmarked).
                let w = path_buf[i];
                let imp = Improvement {
                    edge: e as u32,
                    insert: (u, v),
                    target: w,
                    remove: (w, path_buf[i - 1]),
                    gain: k - st.deg(u).max(st.deg(v)),
                };
                if ps.first_only() {
                    st.pivot(imp.insert, imp.remove);
                    *pivots += 1;
                    return Phase::Applied;
                }
                eligible.push(imp);
            } else {
                // Every marked cycle vertex has degree k − 1: each could
                // be relieved by this very edge if it ever mattered, so
                // unmark them and fuse the cycle into one component.
                for &x in &path_buf {
                    marked[x as usize] = false;
                }
                for win in path_buf.windows(2) {
                    uf.union(win[0], win[1]);
                }
                merged = true;
            }
        }
        if !eligible.is_empty() {
            let imp = ps.pick(&eligible);
            st.pivot(imp.insert, imp.remove);
            *pivots += 1;
            return Phase::Applied;
        }
        if !merged {
            break;
        }
    }
    Phase::Blocked(
        (0..n as u32)
            .filter(|&v| marked[v as usize])
            .collect::<Vec<_>>(),
    )
}

/// Best singleton cut bound via articulation points: one iterative DFS
/// yields `c(G − v)` for every vertex; the removal formula for `S = {v}`
/// is exactly that component count. Returns the best `(v, c)` with
/// `c ≥ 3` (the floor already certifies 2), smallest `v` on ties.
fn best_cut_bound(g: &Graph) -> Option<(NodeId, u32)> {
    let n = g.n();
    if n < 3 {
        return None;
    }
    const UNSET: u32 = u32::MAX;
    let mut disc = vec![0u32; n]; // 0 = unvisited, timestamps from 1
    let mut low = vec![0u32; n];
    let mut parent = vec![UNSET; n];
    let mut split_children = vec![0u32; n];
    let mut root_children = 0u32;
    let mut timer = 1u32;
    disc[0] = 1;
    low[0] = 1;
    timer += 1;
    let mut stack: Vec<(u32, usize)> = vec![(0, 0)];
    while let Some(&mut (v, ref mut idx)) = stack.last_mut() {
        let nbrs = g.neighbors(v);
        if *idx < nbrs.len() {
            let w = nbrs[*idx];
            *idx += 1;
            if disc[w as usize] == 0 {
                parent[w as usize] = v;
                disc[w as usize] = timer;
                low[w as usize] = timer;
                timer += 1;
                stack.push((w, 0));
            } else if w != parent[v as usize] {
                low[v as usize] = low[v as usize].min(disc[w as usize]);
            }
        } else {
            stack.pop();
            let p = parent[v as usize];
            if p == UNSET {
                continue;
            }
            low[p as usize] = low[p as usize].min(low[v as usize]);
            if p == 0 {
                root_children += 1;
            } else if low[v as usize] >= disc[p as usize] {
                split_children[p as usize] += 1;
            }
        }
    }
    let mut best: Option<(NodeId, u32)> = None;
    for v in 0..n as u32 {
        let c = if v == 0 {
            root_children
        } else {
            1 + split_children[v as usize]
        };
        if c >= 3 && best.map(|(_, bc)| c > bc).unwrap_or(true) {
            best = Some((v, c));
        }
    }
    best
}

fn trivial_solution(root: NodeId) -> Solution {
    Solution {
        lower: 0,
        upper: 0,
        root,
        tree: vec![root],
        witness: Witness::floor(1),
        settled: false,
        pivots: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmdst_graph::generators::{gadgets, random, structured};
    use ssmdst_graph::graph::graph_from_edges;
    use ssmdst_graph::{exact_mdst, SpanningTree};

    fn check(g: &Graph, solver: &Solver) -> Solution {
        let sol = solver.solve(g);
        assert!(sol.lower <= sol.upper, "interval inverted");
        assert!(sol.witness.verify(g), "witness must re-verify");
        let t = SpanningTree::from_parents(g, sol.root, sol.tree.clone()).expect("valid tree");
        assert_eq!(t.max_degree(), sol.upper, "upper must be achieved");
        sol
    }

    #[test]
    fn agrees_with_branch_and_bound_on_named_instances() {
        let instances: Vec<Graph> = vec![
            structured::path(6).unwrap(),
            structured::cycle(7).unwrap(),
            structured::complete(7).unwrap(),
            structured::star_with_ring(8).unwrap(),
            structured::grid(3, 3).unwrap(),
            structured::complete_bipartite(2, 5).unwrap(),
            graph_from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]),
            gadgets::spider(4, 2).unwrap(),
            gadgets::spider(3, 3).unwrap(),
            gadgets::double_broom(3, 2).unwrap(),
            gadgets::hamiltonian_with_chords(12, 15, 0),
        ];
        let solver = Solver::default();
        for g in &instances {
            let sol = check(g, &solver);
            let ds = exact_mdst(g, SolveBudget::default())
                .delta_star()
                .expect("small instance");
            assert!(sol.exact(), "settled small instance must be exact");
            assert_eq!(sol.delta_star(), Some(ds), "n={} m={}", g.n(), g.m());
        }
    }

    #[test]
    fn interval_width_is_at_most_one_without_settling() {
        // The FR phase theorem, empirically: witness-only solves certify
        // within one of the achieved tree everywhere.
        let solver = Solver::builder().settle_budget(0).build();
        for seed in 0..20 {
            let g = random::gnp_connected(16, 0.25, seed);
            let sol = check(&g, &solver);
            assert!(
                sol.upper - sol.lower <= 1,
                "seed {seed}: [{}, {}]",
                sol.lower,
                sol.upper
            );
        }
    }

    #[test]
    fn all_pivot_rules_reach_equal_exact_optima() {
        for seed in 0..10 {
            let g = random::gnp_connected(14, 0.3, seed);
            let mut results = Vec::new();
            for pivot in [
                Pivot::FirstEligible,
                Pivot::BestEligible,
                Pivot::CandidateList { block: 4 },
            ] {
                let solver = Solver::builder().pivot(pivot).seed(seed).build();
                let sol = check(&g, &solver);
                assert!(sol.exact());
                results.push(sol.lower);
            }
            assert!(
                results.windows(2).all(|w| w[0] == w[1]),
                "strategies disagree on Δ*: {results:?}"
            );
        }
    }

    #[test]
    fn solver_runs_are_replayable() {
        let g = random::gnp_connected(18, 0.25, 3);
        let solver = Solver::builder()
            .pivot(Pivot::CandidateList { block: 3 })
            .seed(42)
            .build();
        let a = solver.solve(&g);
        let b = solver.solve(&g);
        assert_eq!(a, b, "same configuration must replay identically");
    }

    #[test]
    fn warm_start_settles_to_the_same_bounds() {
        let g = random::gnp_connected(15, 0.3, 9);
        let solver = Solver::default();
        let cold = solver.solve(&g);
        // Warm-start from a deliberately bad star-ish DFS tree.
        let t = SpanningTree::from_bfs(&g, (g.n() - 1) as u32).unwrap();
        let warm = solver.solve_from(&g, t.root(), t.parents());
        assert_eq!(cold.lower, warm.lower);
        assert_eq!(cold.upper, warm.upper);
        assert!(warm.witness.verify(&g));
    }

    #[test]
    fn star_needs_no_settling() {
        let g = graph_from_edges(7, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6)]);
        let solver = Solver::builder().settle_budget(0).build();
        let sol = check(&g, &solver);
        assert_eq!(sol.delta_star(), Some(6));
        assert_eq!(sol.witness.set(), &[0], "hub is the witness");
        assert!(!sol.settled);
    }

    #[test]
    fn articulation_bound_finds_the_spider_hub() {
        let g = gadgets::spider(5, 2).unwrap();
        assert_eq!(best_cut_bound(&g), Some((0, 5)));
        let g = structured::cycle(8).unwrap();
        assert_eq!(best_cut_bound(&g), None, "no articulation in a cycle");
    }

    #[test]
    fn trivial_sizes() {
        let g = ssmdst_graph::GraphBuilder::new(1).build();
        let sol = Solver::default().solve(&g);
        assert_eq!(sol.delta_star(), Some(0));
        let g = graph_from_edges(2, &[(0, 1)]);
        let sol = Solver::default().solve(&g);
        assert_eq!(sol.delta_star(), Some(1));
    }
}
