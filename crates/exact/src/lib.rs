//! # ssmdst-exact
//!
//! The fast certified-`Δ*` engine: a network-simplex-style spanning-tree
//! structure, a Fürer–Raghavachari improvement loop with pluggable pivot
//! rules, independently checkable lower-bound witnesses, and an
//! incremental re-solve API that keeps the basis alive across churn.
//!
//! `Δ*` (the minimum over spanning trees of the maximum degree) is
//! NP-hard, so the engine's contract is a **certified interval**: every
//! solve returns a tree achieving `upper` and a [`Witness`] certifying
//! `Δ* ≥ lower`, with `upper ≤ lower + 1` guaranteed at improvement
//! fixpoints and `lower = upper` (exactness) whenever the small-`n`
//! settling oracle closes the gap. Judges verify the witness themselves
//! — one BFS — so a solver bug can only make verdicts conservative,
//! never unsound.
//!
//! Layers:
//!
//! * [`structure`] — [`SpanningTreeStructure`]: flat parent/depth/
//!   child-threading arrays with `O(cycle)` basis walks and `O(subtree)`
//!   pivots, the mutable tree the improvement loop lives on.
//! * [`witness`] — [`Witness`]: blocking-set certificates with
//!   search-independent verification.
//! * [`strategy`] — [`Pivot`]: first-eligible / best-eligible /
//!   candidate-list pivot rules, seed-deterministic.
//! * [`solve`] — [`Solver`] / [`Solution`]: the certified solve, cold
//!   ([`Solver::solve`]) or warm ([`Solver::solve_from`]).
//! * [`incremental`] — [`IncrementalSolver`]: mirror churn events,
//!   repair the basis, re-solve only dirty components with warm starts
//!   and a per-component cache.
//!
//! ```
//! use ssmdst_exact::{Pivot, Solver};
//! let g = ssmdst_graph::generators::structured::star_with_ring(8).unwrap();
//! let sol = Solver::builder().pivot(Pivot::BestEligible).build().solve(&g);
//! assert_eq!(sol.delta_star(), Some(2));
//! assert!(sol.witness.verify(&g));
//! ```

// Library code must not grow bare `.unwrap()`s: use `.expect` with the
// invariant that makes failure unreachable (ssmdst-lint R4 audits the
// reasons). Unit tests keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod incremental;
pub mod solve;
pub mod strategy;
pub mod structure;
pub mod witness;

pub use incremental::{CompSolution, IncrementalSolver, Stats};
pub use solve::{Solution, Solver, SolverBuilder};
pub use strategy::{Improvement, Pivot};
pub use structure::{SpanningTreeStructure, NONE};
pub use witness::Witness;
