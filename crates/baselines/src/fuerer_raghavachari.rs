//! Sequential Fürer–Raghavachari local improvement — the `Δ* + 1`
//! approximation the paper's distributed algorithm emulates (its references
//! [8, 9]).
//!
//! The implementation follows the improvement/blocking structure rather than
//! FR's original forest bookkeeping:
//!
//! * an **improvement** for a node `w` of tree degree `t` is a non-tree edge
//!   `e = {u, v}` whose fundamental cycle contains `w` and whose endpoints
//!   satisfy `max(deg(u), deg(v)) ≤ t − 2` (paper Eq. 1). Swapping `e` with
//!   a cycle edge incident to `w` lowers `deg(w)` by one without creating a
//!   new degree-`t` node;
//! * an endpoint of degree exactly `t − 1` is **blocking**; the algorithm
//!   recursively tries to lower the blocker first (the paper's `Deblock`),
//!   exactly mirroring FR's "eventually non-blocking" cascade;
//! * the outer loop targets maximum-degree nodes until none is reducible.
//!
//! Termination: every applied swap moves a unit of degree from a node of
//! degree `t` to two endpoints of degree `≤ t − 2`, strictly decreasing the
//! potential `Φ(T) = Σ_v 3^{deg_T(v)}`; recursion only ever applies such
//! swaps. When the loop stops, no maximum-degree node is eventually
//! non-blocking, which is FR Theorem 1's hypothesis — hence
//! `deg(T) ≤ Δ* + 1`. The test suite checks that bound against the exact
//! solver on every generator family.

use ssmdst_graph::{Graph, NodeId, SpanningTree};
use std::collections::HashSet;

/// Statistics from an [`fr_mdst`] run, used by the T5/F3 experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrStats {
    /// Edge swaps applied (direct and cascade).
    pub swaps: u64,
    /// Outer phases (each reduces the count of maximum-degree nodes, or is
    /// the final failed sweep).
    pub phases: u64,
    /// Deepest `Deblock`-style recursion observed.
    pub max_cascade_depth: u32,
}

/// Run FR local improvement from `initial` until no maximum-degree node can
/// be reduced. Returns the improved tree and run statistics.
pub fn fr_mdst(g: &Graph, initial: SpanningTree) -> (SpanningTree, FrStats) {
    let mut t = initial;
    let mut stats = FrStats::default();
    loop {
        stats.phases += 1;
        let deg = t.degrees();
        let k = *deg.iter().max().expect("non-empty tree"); // lint: allow(no-panic-in-library) — a SpanningTree has n >= 1 nodes by construction
        if k <= 2 {
            // A Hamiltonian path: nothing can be better than 2 (n >= 3).
            return (t, stats);
        }
        let targets: Vec<NodeId> = t.max_degree_nodes();
        let mut any = false;
        for w in targets {
            // The tree changes as we go; re-check `w` is still max degree.
            if t.degree_of(w) < k {
                continue;
            }
            let mut visited = HashSet::new();
            if try_reduce(g, &mut t, w, 0, &mut visited, &mut stats) {
                any = true;
            }
        }
        if !any {
            return (t, stats);
        }
    }
}

/// Try to reduce `deg(w)` by one via a direct improvement or a blocking
/// cascade. `visited` prevents re-entering the same blocker within one
/// top-level attempt.
fn try_reduce(
    g: &Graph,
    t: &mut SpanningTree,
    w: NodeId,
    depth: u32,
    visited: &mut HashSet<NodeId>,
    stats: &mut FrStats,
) -> bool {
    if !visited.insert(w) {
        return false;
    }
    stats.max_cascade_depth = stats.max_cascade_depth.max(depth);
    let target_deg = t.degree_of(w);
    if target_deg < 2 {
        return false; // nothing to gain: leaves cannot be reduced
    }
    // Pass 1: direct improvements.
    let mut blocked_candidates: Vec<(NodeId, NodeId)> = Vec::new();
    for &(u, v) in g.edges() {
        if t.is_tree_edge(u, v) || u == w || v == w {
            continue;
        }
        let path = t.tree_path(u, v);
        if !path.contains(&w) {
            continue;
        }
        let du = t.degree_of(u);
        let dv = t.degree_of(v);
        if du.max(dv) + 2 <= target_deg {
            apply_swap(t, (u, v), w, &path);
            stats.swaps += 1;
            return true;
        }
        if du.max(dv) + 1 == target_deg {
            blocked_candidates.push((u, v));
        }
    }
    // Pass 2: cascade through blocking endpoints (FR's eventually
    // non-blocking chains; the paper's Deblock).
    if depth as usize >= g.n() {
        return false;
    }
    for (u, v) in blocked_candidates {
        if t.is_tree_edge(u, v) {
            continue; // an earlier cascade may have inserted it
        }
        // Re-check the cycle still passes through w.
        let path = t.tree_path(u, v);
        if !path.contains(&w) {
            continue;
        }
        for b in [u, v] {
            if t.degree_of(b) + 1 != target_deg {
                continue;
            }
            if !try_reduce(g, t, b, depth + 1, visited, stats) {
                continue;
            }
            // b's degree dropped; the edge may now be improving for w.
            if t.is_tree_edge(u, v) {
                break;
            }
            let path = t.tree_path(u, v);
            if !path.contains(&w) {
                break;
            }
            let du = t.degree_of(u);
            let dv = t.degree_of(v);
            if du.max(dv) + 2 <= t.degree_of(w) {
                apply_swap(t, (u, v), w, &path);
                stats.swaps += 1;
                return true;
            }
        }
    }
    false
}

/// Swap non-tree edge `e` with a cycle edge incident to `w`, choosing the
/// neighbor on the path (either side works; we take the higher-degree side
/// to spread load, breaking ties by ID as the paper does).
fn apply_swap(t: &mut SpanningTree, e: (NodeId, NodeId), w: NodeId, path: &[NodeId]) {
    let i = path.iter().position(|&x| x == w).expect("w on path"); // lint: allow(no-panic-in-library) — caller found w as an interior node of this cycle path
    let left = if i > 0 { Some(path[i - 1]) } else { None };
    let right = if i + 1 < path.len() {
        Some(path[i + 1])
    } else {
        None
    };
    let z = match (left, right) {
        (Some(a), Some(b)) => {
            let (da, db) = (t.degree_of(a), t.degree_of(b));
            if (da, a) >= (db, b) {
                a
            } else {
                b
            }
        }
        (Some(a), None) => a,
        (None, Some(b)) => b,
        (None, None) => unreachable!("w is interior to a cycle path"),
    };
    t.swap(e, (w, z));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple_trees::{bfs_spanning_tree, random_spanning_tree};
    use ssmdst_graph::generators::{gadgets, structured, GraphFamily};
    use ssmdst_graph::{exact_mdst, SolveBudget};

    fn check_within_one(g: &Graph, t: &SpanningTree) {
        let res = exact_mdst(g, SolveBudget::default());
        let ds = res.delta_star().expect("test instance solvable");
        assert!(
            t.max_degree() <= ds + 1,
            "FR degree {} exceeds Δ*+1 = {}",
            t.max_degree(),
            ds + 1
        );
        t.validate(g).unwrap();
    }

    #[test]
    fn star_with_ring_reduced_to_near_optimal() {
        let g = structured::star_with_ring(12).unwrap();
        let t0 = bfs_spanning_tree(&g, 0).unwrap();
        assert_eq!(t0.max_degree(), 11);
        let (t, stats) = fr_mdst(&g, t0);
        assert!(t.max_degree() <= 3, "got {}", t.max_degree());
        assert!(stats.swaps >= 8);
        check_within_one(&g, &t);
    }

    #[test]
    fn within_one_on_all_families_small() {
        for fam in GraphFamily::all() {
            let g = fam.generate(14, 11);
            let t0 = bfs_spanning_tree(&g, 0).unwrap();
            let (t, _) = fr_mdst(&g, t0);
            check_within_one(&g, &t);
        }
    }

    #[test]
    fn within_one_from_random_initial_trees() {
        for seed in 0..5 {
            let g = gadgets::hamiltonian_with_chords(14, 20, seed);
            let t0 = random_spanning_tree(&g, seed).unwrap();
            let (t, _) = fr_mdst(&g, t0);
            assert!(t.max_degree() <= 3, "seed {seed}: {}", t.max_degree());
        }
    }

    #[test]
    fn forced_spider_cannot_improve() {
        let g = gadgets::spider(4, 2).unwrap();
        let t0 = bfs_spanning_tree(&g, 0).unwrap();
        let (t, stats) = fr_mdst(&g, t0);
        // The hub's edges are bridges: no swaps exist at all.
        assert_eq!(t.max_degree(), 4);
        assert_eq!(stats.swaps, 0);
    }

    #[test]
    fn complete_graph_reaches_degree_two_or_three() {
        let g = structured::complete(10).unwrap();
        let t0 = bfs_spanning_tree(&g, 0).unwrap(); // star, degree 9
        let (t, _) = fr_mdst(&g, t0);
        assert!(t.max_degree() <= 3, "got {}", t.max_degree());
    }

    #[test]
    fn stats_phases_positive_and_tree_stable_on_rerun() {
        let g = structured::grid(4, 4).unwrap();
        let t0 = bfs_spanning_tree(&g, 0).unwrap();
        let (t1, s1) = fr_mdst(&g, t0);
        assert!(s1.phases >= 1);
        // Running again from the fixed point must be a no-op.
        let (t2, s2) = fr_mdst(&g, t1.clone());
        assert_eq!(t1.edge_set(), t2.edge_set());
        assert_eq!(s2.swaps, 0);
    }
}
