//! Serialized-improvement emulation of the Blin–Butelle distributed MDST
//! (the paper's reference \[3\]).
//!
//! \[3\] maintains fragment membership information and performs improvements
//! *one at a time* — after each swap the fragment bookkeeping must be
//! globally refreshed before the next improvement starts. The IPDPS 2009
//! paper's key comparative claim is that its fundamental-cycle approach can
//! instead reduce **all** maximum-degree nodes concurrently in one wave.
//!
//! We emulate \[3\] at phase granularity: each *phase* performs exactly one
//! improvement (one swap) and then pays a full refresh. The concurrent
//! protocol's phase count is compared against this in experiment F3. This is
//! a behavioural model, not a message-level port of \[3\] (whose full GHS-style
//! machinery is out of scope); DESIGN.md records the substitution.

use crate::fuerer_raghavachari::FrStats;
use ssmdst_graph::{Graph, NodeId, SpanningTree};
use std::collections::HashSet;

/// Outcome of the serialized run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerializedStats {
    /// Improvement phases executed (== swaps, by construction).
    pub phases: u64,
    /// Rounds charged: each phase costs `O(diameter)` for the refresh plus
    /// `O(cycle length)` for the swap; we charge `refresh_cost` per phase.
    pub charged_rounds: u64,
}

/// Run one-improvement-per-phase local search to the same fixed point as
/// [`crate::fr_mdst`], charging `refresh_cost` rounds per phase (callers
/// pass the graph diameter or `n`).
pub fn serialized_mdst(
    g: &Graph,
    initial: SpanningTree,
    refresh_cost: u64,
) -> (SpanningTree, SerializedStats) {
    let mut t = initial;
    let mut stats = SerializedStats::default();
    loop {
        if !one_improvement(g, &mut t) {
            return (t, stats);
        }
        stats.phases += 1;
        stats.charged_rounds += refresh_cost;
    }
}

/// Apply a single improvement (direct or one-level cascade) to some
/// maximum-degree node; `true` if a swap happened.
fn one_improvement(g: &Graph, t: &mut SpanningTree) -> bool {
    let k = t.max_degree();
    if k <= 2 {
        return false;
    }
    for w in t.max_degree_nodes() {
        let mut visited = HashSet::new();
        let mut stats = FrStats::default();
        if reduce_once(g, t, w, 0, &mut visited, &mut stats) {
            return true;
        }
    }
    false
}

/// One reduction attempt for `w` — same cascade as the FR baseline but
/// stopping after the first successful swap chain.
fn reduce_once(
    g: &Graph,
    t: &mut SpanningTree,
    w: NodeId,
    depth: u32,
    visited: &mut HashSet<NodeId>,
    stats: &mut FrStats,
) -> bool {
    // Reuse the FR cascade by delegating to its (private) logic via a local
    // re-implementation kept intentionally identical in guard structure.
    if !visited.insert(w) {
        return false;
    }
    let target_deg = t.degree_of(w);
    if target_deg < 2 {
        return false;
    }
    let mut blocked: Vec<(NodeId, NodeId)> = Vec::new();
    for &(u, v) in g.edges() {
        if t.is_tree_edge(u, v) || u == w || v == w {
            continue;
        }
        let path = t.tree_path(u, v);
        if !path.contains(&w) {
            continue;
        }
        let (du, dv) = (t.degree_of(u), t.degree_of(v));
        if du.max(dv) + 2 <= target_deg {
            swap_at(t, (u, v), w, &path);
            stats.swaps += 1;
            return true;
        }
        if du.max(dv) + 1 == target_deg {
            blocked.push((u, v));
        }
    }
    if depth as usize >= g.n() {
        return false;
    }
    for (u, v) in blocked {
        if t.is_tree_edge(u, v) {
            continue;
        }
        let path = t.tree_path(u, v);
        if !path.contains(&w) {
            continue;
        }
        for b in [u, v] {
            if t.degree_of(b) + 1 != target_deg {
                continue;
            }
            if !reduce_once(g, t, b, depth + 1, visited, stats) {
                continue;
            }
            if t.is_tree_edge(u, v) {
                break;
            }
            let path = t.tree_path(u, v);
            if !path.contains(&w) {
                break;
            }
            if t.degree_of(u).max(t.degree_of(v)) + 2 <= t.degree_of(w) {
                swap_at(t, (u, v), w, &path);
                stats.swaps += 1;
                return true;
            }
        }
    }
    false
}

fn swap_at(t: &mut SpanningTree, e: (NodeId, NodeId), w: NodeId, path: &[NodeId]) {
    let i = path.iter().position(|&x| x == w).expect("w on path"); // lint: allow(no-panic-in-library) — caller found w as an interior node of this cycle path
    let left = if i > 0 { Some(path[i - 1]) } else { None };
    let right = if i + 1 < path.len() {
        Some(path[i + 1])
    } else {
        None
    };
    let z = match (left, right) {
        (Some(a), Some(b)) => {
            if (t.degree_of(a), a) >= (t.degree_of(b), b) {
                a
            } else {
                b
            }
        }
        (Some(a), None) => a,
        (None, Some(b)) => b,
        (None, None) => unreachable!(),
    };
    t.swap(e, (w, z));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple_trees::bfs_spanning_tree;
    use ssmdst_graph::generators::structured;

    #[test]
    fn serialized_reaches_low_degree() {
        let g = structured::star_with_ring(12).unwrap();
        let t0 = bfs_spanning_tree(&g, 0).unwrap();
        let (t, stats) = serialized_mdst(&g, t0, 10);
        assert!(t.max_degree() <= 3);
        assert!(stats.phases >= 8);
        assert_eq!(stats.charged_rounds, stats.phases * 10);
        t.validate(&g).unwrap();
    }

    #[test]
    fn phase_count_equals_swap_count_semantics() {
        // Every phase performs exactly one swap: phases == number of
        // improvements needed, which for star-with-ring is hub_degree - Δ*-ish.
        let g = structured::star_with_ring(10).unwrap();
        let t0 = bfs_spanning_tree(&g, 0).unwrap();
        let before = t0.max_degree();
        let (t, stats) = serialized_mdst(&g, t0, 1);
        assert!(stats.phases as u32 >= before - t.max_degree());
    }

    #[test]
    fn fixed_point_matches_fr_quality() {
        let g = structured::complete(9).unwrap();
        let t0 = bfs_spanning_tree(&g, 0).unwrap();
        let (t_ser, _) = serialized_mdst(&g, t0.clone(), 1);
        let (t_fr, _) = crate::fr_mdst(&g, t0);
        // Both must land within one of optimal (Δ* = 2 for K_9).
        assert!(t_ser.max_degree() <= 3);
        assert!(t_fr.max_degree() <= 3);
    }

    #[test]
    fn no_improvement_on_path() {
        let g = structured::path(8).unwrap();
        let t0 = bfs_spanning_tree(&g, 0).unwrap();
        let (t, stats) = serialized_mdst(&g, t0, 5);
        assert_eq!(stats.phases, 0);
        assert_eq!(t.max_degree(), 2);
    }
}
