//! # ssmdst-baselines
//!
//! Baseline algorithms the experiment suite compares the self-stabilizing
//! protocol against:
//!
//! * [`fuerer_raghavachari`] — the sequential `Δ* + 1` local-improvement
//!   algorithm (FR, SODA'92 / J.Alg.'94) that the paper's distributed
//!   protocol emulates. Gold standard for final tree quality.
//! * [`fragment`] — a phase-level emulation of the Blin–Butelle distributed
//!   MDST (the paper's \[3\]), which serializes improvements; used to
//!   quantify the concurrency advantage the paper claims (experiment F3).
//! * [`simple_trees`] — BFS / DFS / random / greedy spanning trees: the
//!   naive baselines and initial trees.

// Library code must not grow bare `.unwrap()`s: use `.expect` with the
// invariant that makes failure unreachable (ssmdst-lint R4 audits the
// reasons). Unit tests keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod fragment;
pub mod fuerer_raghavachari;
pub mod simple_trees;

pub use fragment::{serialized_mdst, SerializedStats};
pub use fuerer_raghavachari::{fr_mdst, FrStats};
pub use simple_trees::{
    best_of_random, bfs_spanning_tree, dfs_spanning_tree, greedy_min_degree_tree,
    random_spanning_tree, wilson_spanning_tree,
};
