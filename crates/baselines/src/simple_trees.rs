//! Naive spanning-tree baselines: BFS, random (Kruskal on shuffled edges),
//! DFS and a greedy degree-aware heuristic.
//!
//! These are the "arbitrary spanning trees" the degree-reduction module
//! starts from, and the comparison points for experiment T5: the gap between
//! `deg(BFS tree)` and `deg(MDST)` is exactly what the paper's algorithm
//! closes.

use rand::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ssmdst_graph::{Graph, GraphError, NodeId, SpanningTree, UnionFind};

/// BFS spanning tree rooted at `root` — what the paper's spanning-tree
/// module (rules R1/R2) converges to when `root` is the minimum ID.
pub fn bfs_spanning_tree(g: &Graph, root: NodeId) -> Result<SpanningTree, GraphError> {
    SpanningTree::from_bfs(g, root)
}

/// Uniform-ish random spanning tree: Kruskal over a shuffled edge list.
/// (Not exactly uniform over all spanning trees, but unbiased enough to act
/// as an "arbitrary initial tree".)
pub fn random_spanning_tree(g: &Graph, seed: u64) -> Result<SpanningTree, GraphError> {
    if g.n() == 0 {
        return Err(GraphError::Empty);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(NodeId, NodeId)> = g.edges().to_vec();
    edges.shuffle(&mut rng);
    let mut uf = UnionFind::new(g.n());
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); g.n()];
    for (u, v) in edges {
        if uf.union(u, v) {
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
    }
    if uf.components() != 1 {
        return Err(GraphError::Disconnected);
    }
    parents_from_adj(g, &adj, 0)
}

/// Depth-first spanning tree rooted at `root`: tends to produce long paths
/// (low degree) on dense graphs — a surprisingly strong naive baseline.
pub fn dfs_spanning_tree(g: &Graph, root: NodeId) -> Result<SpanningTree, GraphError> {
    if g.n() == 0 {
        return Err(GraphError::Empty);
    }
    let mut parent = vec![u32::MAX; g.n()];
    // Parents are assigned at *pop* time: that is what makes this a true
    // DFS tree (long paths) rather than a BFS-like star on dense graphs.
    let mut stack = vec![(root, root)];
    while let Some((v, p)) = stack.pop() {
        if parent[v as usize] != u32::MAX {
            continue;
        }
        parent[v as usize] = p;
        for &w in g.neighbors(v).iter().rev() {
            if parent[w as usize] == u32::MAX {
                stack.push((w, v));
            }
        }
    }
    if parent.contains(&u32::MAX) {
        return Err(GraphError::Disconnected);
    }
    SpanningTree::from_parents(g, root, parent)
}

/// Greedy degree-aware tree: Kruskal, but always take the candidate edge
/// whose endpoints currently have the smallest combined tree degree.
/// A classic heuristic that often lands within 1–2 of `Δ*` without any
/// improvement machinery; used as a "cheap competitor" in T5.
pub fn greedy_min_degree_tree(g: &Graph, seed: u64) -> Result<SpanningTree, GraphError> {
    if g.n() == 0 {
        return Err(GraphError::Empty);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut uf = UnionFind::new(g.n());
    let mut deg = vec![0u32; g.n()];
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); g.n()];
    let mut remaining: Vec<(NodeId, NodeId)> = g.edges().to_vec();
    remaining.shuffle(&mut rng); // random tie-breaking
    let mut picked = 0usize;
    while picked + 1 < g.n() {
        // Pick the usable edge minimizing (max endpoint degree, sum).
        let mut best: Option<(usize, (u32, u32))> = None;
        for (i, &(u, v)) in remaining.iter().enumerate() {
            if uf.find(u) == uf.find(v) {
                continue;
            }
            let du = deg[u as usize];
            let dv = deg[v as usize];
            let key = (du.max(dv), du + dv);
            if best.map(|(_, bk)| key < bk).unwrap_or(true) {
                best = Some((i, key));
            }
        }
        let Some((i, _)) = best else {
            return Err(GraphError::Disconnected);
        };
        let (u, v) = remaining.swap_remove(i);
        uf.union(u, v);
        deg[u as usize] += 1;
        deg[v as usize] += 1;
        adj[u as usize].push(v);
        adj[v as usize].push(u);
        picked += 1;
    }
    parents_from_adj(g, &adj, 0)
}

/// Exactly-uniform random spanning tree via Wilson's algorithm
/// (loop-erased random walks). Unlike [`random_spanning_tree`] (shuffled
/// Kruskal, biased toward low-degree shapes on dense graphs), Wilson
/// samples uniformly over *all* spanning trees — the statistically honest
/// "arbitrary initial tree" for averaged experiments.
pub fn wilson_spanning_tree(g: &Graph, seed: u64) -> Result<SpanningTree, GraphError> {
    if g.n() == 0 {
        return Err(GraphError::Empty);
    }
    let n = g.n();
    let mut rng = StdRng::seed_from_u64(seed);
    let root: NodeId = 0;
    let mut in_tree = vec![false; n];
    let mut parent = vec![u32::MAX; n];
    in_tree[root as usize] = true;
    parent[root as usize] = root;
    // `next[v]` is the current successor recorded by the random walk; the
    // loop erasure happens implicitly because later visits overwrite it.
    let mut next = vec![u32::MAX; n];
    for start in 0..n as u32 {
        if in_tree[start as usize] {
            continue;
        }
        // Random walk from `start` until the tree is hit.
        let mut v = start;
        let mut steps = 0usize;
        while !in_tree[v as usize] {
            let nbrs = g.neighbors(v);
            if nbrs.is_empty() {
                return Err(GraphError::Disconnected);
            }
            let w = nbrs[rng.random_range(0..nbrs.len())];
            next[v as usize] = w;
            v = w;
            steps += 1;
            if steps > 200 * n * n {
                // Cover-time safeguard; only reachable on disconnected
                // inputs (the walk can never hit the tree).
                return Err(GraphError::Disconnected);
            }
        }
        // Replay the loop-erased walk into the tree.
        let mut v = start;
        while !in_tree[v as usize] {
            let w = next[v as usize];
            parent[v as usize] = w;
            in_tree[v as usize] = true;
            v = w;
        }
    }
    SpanningTree::from_parents(g, root, parent)
}

/// Best-of-k random trees: the cheapest randomized baseline — draw `k`
/// random spanning trees and keep the one with the smallest maximum degree.
/// Quantifies how much of the MDST problem pure sampling solves (it
/// improves quickly for tiny `k`, then plateaus well above `Δ* + 1` on
/// graphs whose good trees are rare — see the unit tests).
pub fn best_of_random(g: &Graph, k: usize, seed: u64) -> Result<SpanningTree, GraphError> {
    if k == 0 {
        return Err(GraphError::InvalidParameter(
            "best_of_random: k must be >= 1",
        ));
    }
    let mut best: Option<SpanningTree> = None;
    for i in 0..k {
        let t = random_spanning_tree(g, seed.wrapping_add(i as u64))?;
        if best
            .as_ref()
            .map(|b| t.max_degree() < b.max_degree())
            .unwrap_or(true)
        {
            best = Some(t);
        }
    }
    Ok(best.expect("k >= 1")) // lint: allow(no-panic-in-library) — loop above runs at least once, so best was set
}

/// Root an undirected tree adjacency at `root` into a [`SpanningTree`].
fn parents_from_adj(
    g: &Graph,
    adj: &[Vec<NodeId>],
    root: NodeId,
) -> Result<SpanningTree, GraphError> {
    let mut parent = vec![u32::MAX; g.n()];
    parent[root as usize] = root;
    let mut stack = vec![root];
    while let Some(v) = stack.pop() {
        for &w in &adj[v as usize] {
            if parent[w as usize] == u32::MAX {
                parent[w as usize] = v;
                stack.push(w);
            }
        }
    }
    if parent.contains(&u32::MAX) {
        return Err(GraphError::Disconnected);
    }
    SpanningTree::from_parents(g, root, parent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmdst_graph::generators::{gadgets, structured};

    #[test]
    fn bfs_tree_on_star_ring_has_hub_degree() {
        let g = structured::star_with_ring(10).unwrap();
        let t = bfs_spanning_tree(&g, 0).unwrap();
        // BFS from the hub keeps all spokes: the pathological case.
        assert_eq!(t.max_degree(), 9);
    }

    #[test]
    fn random_tree_is_valid_and_seeded() {
        let g = gadgets::hamiltonian_with_chords(20, 25, 3);
        let a = random_spanning_tree(&g, 5).unwrap();
        let b = random_spanning_tree(&g, 5).unwrap();
        a.validate(&g).unwrap();
        assert_eq!(a.edge_set(), b.edge_set());
        let c = random_spanning_tree(&g, 6).unwrap();
        assert_ne!(a.edge_set(), c.edge_set());
    }

    #[test]
    fn dfs_tree_on_complete_graph_is_a_path() {
        let g = structured::complete(8).unwrap();
        let t = dfs_spanning_tree(&g, 0).unwrap();
        assert_eq!(t.max_degree(), 2);
        t.validate(&g).unwrap();
    }

    #[test]
    fn greedy_tree_beats_bfs_on_star_ring() {
        let g = structured::star_with_ring(12).unwrap();
        let bfs = bfs_spanning_tree(&g, 0).unwrap();
        let greedy = greedy_min_degree_tree(&g, 1).unwrap();
        greedy.validate(&g).unwrap();
        assert!(greedy.max_degree() < bfs.max_degree());
        assert!(greedy.max_degree() <= 3);
    }

    #[test]
    fn disconnected_graph_is_rejected() {
        let g = ssmdst_graph::graph::graph_from_edges(4, &[(0, 1), (2, 3)]);
        assert!(random_spanning_tree(&g, 0).is_err());
        assert!(dfs_spanning_tree(&g, 0).is_err());
        assert!(greedy_min_degree_tree(&g, 0).is_err());
    }

    #[test]
    fn wilson_tree_is_valid_and_seeded() {
        let g = structured::star_with_ring(12).unwrap();
        let a = wilson_spanning_tree(&g, 3).unwrap();
        let b = wilson_spanning_tree(&g, 3).unwrap();
        a.validate(&g).unwrap();
        assert_eq!(a.edge_set(), b.edge_set());
        let c = wilson_spanning_tree(&g, 4).unwrap();
        assert_ne!(a.edge_set(), c.edge_set());
    }

    #[test]
    fn wilson_on_cycle_graph_is_near_uniform() {
        // C_5 has exactly 5 spanning trees (drop any one edge). Over many
        // seeds every tree must appear — a coarse uniformity smoke test.
        let g = structured::cycle(5).unwrap();
        let mut seen = std::collections::HashSet::new();
        for seed in 0..200u64 {
            let t = wilson_spanning_tree(&g, seed).unwrap();
            seen.insert(t.edge_set());
        }
        assert_eq!(seen.len(), 5, "missed some spanning trees of C_5");
    }

    #[test]
    fn wilson_rejects_disconnected() {
        let g = ssmdst_graph::graph::graph_from_edges(4, &[(0, 1), (2, 3)]);
        assert!(wilson_spanning_tree(&g, 0).is_err());
    }

    #[test]
    fn best_of_random_improves_with_k() {
        let g = structured::complete(10).unwrap();
        let one = best_of_random(&g, 1, 7).unwrap();
        let many = best_of_random(&g, 50, 7).unwrap();
        assert!(many.max_degree() <= one.max_degree());
        many.validate(&g).unwrap();
        assert!(best_of_random(&g, 0, 7).is_err());
    }

    #[test]
    fn all_baselines_span_the_same_node_set() {
        let g = structured::grid(4, 4).unwrap();
        for t in [
            bfs_spanning_tree(&g, 0).unwrap(),
            random_spanning_tree(&g, 2).unwrap(),
            dfs_spanning_tree(&g, 3).unwrap(),
            greedy_min_degree_tree(&g, 4).unwrap(),
        ] {
            t.validate(&g).unwrap();
            assert_eq!(t.edge_set().len(), 15);
        }
    }
}
