//! Exit-code and output contract of the `ssmdst-lint` binary: 0 clean,
//! 1 findings, 2 usage/I-O error — the semantics the CI gate relies on.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ssmdst-lint"))
}

#[test]
fn check_on_the_workspace_exits_zero() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let out = bin().args(["check", root]).output().expect("binary runs");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "lint found findings:\n{text}");
    assert!(text.contains("0 finding(s)"), "{text}");
}

#[test]
fn seeded_violations_exit_one_with_file_line_diagnostics() {
    // Stage a miniature workspace under target/tmp: one digest-crate
    // library file violating R1, R2 and R4 on known lines.
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("seeded-violations");
    let src_dir = dir.join("crates/sim/src");
    std::fs::create_dir_all(&src_dir).expect("staging dir");
    std::fs::write(
        src_dir.join("lib.rs"),
        "use std::collections::HashMap;\n\
         pub fn t() -> std::time::Instant { std::time::Instant::now() }\n\
         pub fn u(o: Option<u32>) -> u32 { o.unwrap() }\n",
    )
    .expect("staged file");
    let root = dir.to_str().expect("utf8 path");

    let out = bin().args(["check", root]).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("crates/sim/src/lib.rs:1: R1"), "{text}");
    assert!(text.contains("crates/sim/src/lib.rs:2: R2"), "{text}");
    assert!(text.contains("crates/sim/src/lib.rs:3: R4"), "{text}");

    let out = bin()
        .args(["check", "--json", root])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"code\": \"R1\""), "{json}");
    assert!(json.contains("\"line\": 3"), "{json}");
    assert!(json.contains("\"clean\": false"), "{json}");
}

#[test]
fn usage_errors_exit_two() {
    let out = bin()
        .args(["check", "--frobnicate"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));

    let out = bin().output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));

    let out = bin()
        .args(["no-such-command"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn rules_lists_the_full_table() {
    let out = bin().args(["rules"]).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    for label in [
        "R1",
        "R2",
        "R3",
        "R4",
        "R5",
        "no-unordered-collections",
        "annotation-hygiene",
    ] {
        assert!(text.contains(label), "missing {label}:\n{text}");
    }
}
