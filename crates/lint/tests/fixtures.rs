//! Fixture-driven conformance for the rule engine.
//!
//! Every `.rs` file under `tests/fixtures/` carries a first-line directive
//!
//! ```text
//! // lint-fixture: crate=<name> kind=<library|bin|example|test>
//! ```
//!
//! and annotates each expected finding with a `// expect: <codes>` marker
//! on the offending line (or `// expect-next: <codes>` on the line above,
//! for lines that already carry a lint annotation). The harness lints each
//! fixture under its declared class and asserts the finding set matches
//! the markers *exactly* — seeded violations must all surface, and the
//! hostile-negative corpus (no markers) must stay silent.
//!
//! The workspace walker skips any directory named `fixtures`, so these
//! files never pollute a real `ssmdst-lint check` run.

use ssmdst_lint::{lint_source, FileClass, TargetKind};
use std::path::{Path, PathBuf};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Parse the first-line `// lint-fixture:` directive into a [`FileClass`].
fn parse_directive(src: &str, path: &Path) -> FileClass {
    let first = src.lines().next().unwrap_or_default();
    let rest = first
        .strip_prefix("// lint-fixture:")
        .unwrap_or_else(|| panic!("{}: missing lint-fixture directive", path.display()));
    let mut crate_name = None;
    let mut kind = None;
    for part in rest.split_whitespace() {
        if let Some(v) = part.strip_prefix("crate=") {
            crate_name = Some(v.to_string());
        } else if let Some(v) = part.strip_prefix("kind=") {
            kind = Some(match v {
                "library" => TargetKind::Library,
                "bin" => TargetKind::Bin,
                "example" => TargetKind::Example,
                "test" => TargetKind::Test,
                other => panic!("{}: unknown kind `{other}`", path.display()),
            });
        }
    }
    FileClass::new(
        &crate_name.unwrap_or_else(|| panic!("{}: directive lacks crate=", path.display())),
        kind.unwrap_or_else(|| panic!("{}: directive lacks kind=", path.display())),
    )
}

/// Collect the `(line, code)` pairs the fixture's markers promise, with
/// multiplicity (a line may expect the same code twice).
fn expectations(src: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        let lineno = i as u32 + 1;
        if let Some(pos) = line.find("// expect-next:") {
            for code in line[pos + "// expect-next:".len()..].split_whitespace() {
                out.push((lineno + 1, code.to_string()));
            }
        } else if let Some(pos) = line.find("// expect:") {
            for code in line[pos + "// expect:".len()..].split_whitespace() {
                out.push((lineno, code.to_string()));
            }
        }
    }
    out.sort();
    out
}

fn fixture_paths() -> Vec<PathBuf> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(fixture_dir())
        .expect("fixtures directory exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("rs"))
        .collect();
    paths.sort();
    paths
}

#[test]
fn every_fixture_produces_exactly_its_annotated_findings() {
    let paths = fixture_paths();
    assert!(
        paths.len() >= 6,
        "expected the full fixture corpus, found {} files",
        paths.len()
    );
    for path in paths {
        let src = std::fs::read_to_string(&path).expect("readable fixture");
        let class = parse_directive(&src, &path);
        let out = lint_source(&class, &src).expect("fixture lexes");
        let mut got: Vec<(u32, String)> = out
            .findings
            .iter()
            .map(|f| (f.line, f.rule.code().to_string()))
            .collect();
        got.sort();
        let want = expectations(&src);
        assert_eq!(
            got,
            want,
            "finding set mismatch in {} (got vs annotated)",
            path.display()
        );
    }
}

#[test]
fn fixtures_with_reasoned_allows_have_them_honored() {
    for name in ["r1_unordered.rs", "r2_entropy.rs", "r4_panic.rs"] {
        let path = fixture_dir().join(name);
        let src = std::fs::read_to_string(&path).expect("readable fixture");
        let class = parse_directive(&src, &path);
        let out = lint_source(&class, &src).expect("fixture lexes");
        assert!(
            out.suppressions_honored >= 1,
            "{name}: the sanctioned-escape-hatch example should be masked"
        );
    }
}

#[test]
fn the_hostile_negative_corpus_is_silent() {
    let path = fixture_dir().join("hostile_negative.rs");
    let src = std::fs::read_to_string(&path).expect("readable fixture");
    let class = parse_directive(&src, &path);
    let out = lint_source(&class, &src).expect("hostile fixture lexes");
    assert!(
        out.findings.is_empty(),
        "quoted/commented tokens misread as code: {:?}",
        out.findings
    );
}

/// The tool lints itself: the workspace this crate ships in must be clean,
/// and the walk must actually cover it (guard against a broken walker
/// reporting a vacuous pass).
#[test]
fn the_workspace_tree_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = ssmdst_lint::check_tree(&root).expect("workspace walk succeeds");
    assert!(
        report.clean(),
        "workspace has findings:\n{}",
        ssmdst_lint::report::render_text(&report)
    );
    assert!(
        report.files_scanned >= 90,
        "walker covered only {} files — skip rules too broad?",
        report.files_scanned
    );
    assert!(
        report.suppressions_honored >= 50,
        "only {} suppressions honored — annotations not being parsed?",
        report.suppressions_honored
    );
}
