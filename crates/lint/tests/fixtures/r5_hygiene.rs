// lint-fixture: crate=graph kind=library
//! Seeded R5 violations: the suppressions themselves are audited, so an
//! excuse that no longer excuses anything is an error of its own.

// A suppression that masks nothing is stale.
// expect-next: R5
// lint: allow(no-unordered-collections) — nothing here to mask any more
pub fn stale() {}

// A suppression without a reason does not suppress — the finding and the
// hygiene violation both surface.
pub fn missing_reason(o: Option<u32>) -> u32 {
    // expect-next: R4 R5
    o.unwrap() // lint: allow(no-panic-in-library)
}

// Unknown rule names are flagged, not silently ignored.
// expect-next: R5
// lint: allow(no-such-rule) — the rule table has no such entry
pub fn unknown_rule() {}

// A typo in the verb is caught rather than treated as prose.
// expect-next: R5
// lint: alow(no-panic-in-library) — typo in the verb
pub fn typo() {}

// A hot-path opener with no block to govern is dead weight.
// expect-next: R5
// lint: hot-path
