// lint-fixture: crate=bench kind=library
//! Seeded R2 violations: ambient entropy and wall-clock reads. R2 applies
//! to every non-test target — legitimacy is expressed only through a
//! reasoned allow, never by location.

use std::time::Instant;

pub fn elapsed_ms() -> u128 {
    let start = Instant::now(); // expect: R2
    start.elapsed().as_millis()
}

pub fn wall_clock_seed() -> u64 {
    let t = std::time::SystemTime::now(); // expect: R2
    t.duration_since(std::time::UNIX_EPOCH).unwrap_or_default().as_secs()
}

pub fn thread_seeded() -> u64 {
    let mut r = rand::thread_rng(); // expect: R2
    r.next_u64()
}

pub fn ambient_draw() -> u64 {
    rand::random() // expect: R2
}

// Observation-side timing is fine when the excuse is written down.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, u128) {
    let start = Instant::now(); // lint: allow(no-ambient-entropy) — observation-side timing for the returned measurement; never feeds simulation state
    let out = f();
    (out, start.elapsed().as_nanos())
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_time_itself() {
        let _ = std::time::Instant::now();
    }
}
