// lint-fixture: crate=core kind=library
//! Seeded R4 violations: panic-capable calls in non-test library code.

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap() // expect: R4
}

pub fn must(o: Option<u32>) -> u32 {
    o.expect("always some") // expect: R4
}

pub fn boom(flag: bool) {
    if flag {
        panic!("kaboom"); // expect: R4
    }
}

pub fn later() {
    todo!() // expect: R4
}

// A reasoned expect names the invariant that makes failure unreachable.
pub fn masked(o: Option<u32>) -> u32 {
    o.expect("set by the constructor") // lint: allow(no-panic-in-library) — constructor initializes this field before any caller can observe it
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_are_fine_in_test_code() {
        let _ = Some(1u32).unwrap();
        let _: u32 = "7".parse().expect("digit");
    }
}
