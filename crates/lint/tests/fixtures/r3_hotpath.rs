// lint-fixture: crate=sim kind=library
//! Seeded R3 violations: allocation-capable calls inside an opted-in
//! `lint: hot-path` region. The rule is opt-in — identical calls outside
//! any region are fine.

// lint: hot-path
pub fn hot(xs: &[u32], out: &mut Vec<u32>) -> u64 {
    let scratch: Vec<u32> = Vec::new(); // expect: R3
    let label = format!("{} items", xs.len()); // expect: R3
    let copy = xs.to_vec(); // expect: R3
    let doubled: Vec<u32> = xs.iter().map(|x| x * 2).collect(); // expect: R3
    let boxed = Box::new(xs.len()); // expect: R3
    let owned = label.to_string(); // expect: R3
    let cloned = copy.clone(); // expect: R3
    let grown = vec![0u32; 4]; // expect: R3
    out.push(scratch.len() as u32);
    (doubled.len() + cloned.len() + grown.len() + owned.len() + *boxed) as u64
}

// Outside the region: the meter is opt-in, so nothing fires.
pub fn cold(xs: &[u32]) -> Vec<u32> {
    let mut v = xs.to_vec();
    v.push(0);
    v
}

// Reusing warmed buffers inside a region is the sanctioned pattern.
// lint: hot-path
pub fn hot_and_clean(xs: &[u32], buf: &mut Vec<u32>) -> usize {
    buf.clear();
    buf.extend_from_slice(xs);
    buf.len()
}
