// lint-fixture: crate=sim kind=library
//! Seeded R1 violations: unordered collections in a digest-relevant crate.
//! (Fixtures are lexed, not compiled — the walker skips this directory.)

use std::collections::HashMap; // expect: R1
use std::collections::HashSet; // expect: R1
use std::collections::BTreeMap; // ordered cousin: no finding

pub fn histogram(xs: &[u32]) -> HashMap<u32, u32> { // expect: R1
    let mut m = HashMap::new(); // expect: R1
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}

pub fn ordered(xs: &[u32]) -> BTreeMap<u32, u32> {
    xs.iter().map(|&x| (x, x)).collect()
}

// A reasoned membership-only probe is the sanctioned escape hatch.
pub fn has_dup(xs: &[u64]) -> bool {
    let mut seen: HashSet<u64> = HashSet::new(); // lint: allow(no-unordered-collections) — membership-only probe; never iterated
    xs.iter().any(|&x| !seen.insert(x))
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_is_exempt() {
        let _ = HashMap::<u32, u32>::new();
    }
}
