// lint-fixture: crate=sim kind=library
//! Hostile negatives: every banned token below is quoted, commented, or
//! otherwise not real code. A lexer that cuts corners on strings, raw
//! strings, nested comments, or lifetimes reports all of them; the
//! correct answer is zero findings.

/// Doc comments may discuss `HashMap`, `Instant::now()`, `rand::random()`
/// and `panic!()` freely — prose is not code.
pub fn quoted_tokens() -> &'static str {
    "use std::collections::HashMap; rand::thread_rng().unwrap()"
}

pub fn raw_strings() -> &'static str {
    r#"let m: HashMap<u32, u32> = HashMap::new(); // vec![] format!()"#
}

pub fn raw_hashes() -> &'static str {
    r##"nested r#"SystemTime::now()"# stays one literal"##
}

/* Block comments nest in Rust: /* panic!("inner") */ and the outer
   comment keeps absorbing HashSet::new() until its own terminator. */
pub fn lifetimes<'a>(x: &'a u32) -> &'a u32 {
    let _not_a_lifetime = 'h'; // char literal, not the lifetime 'h
    x
}

pub fn byte_strings() -> (&'static [u8], u8) {
    (b"HashMap in bytes \"quoted\"", b'\'')
}

pub fn r_is_an_ident() -> u32 {
    let r = 1u32; // a variable named `r`, not a raw-string prefix
    let r#type = r; // raw identifier
    r#type
}

pub fn strings_with_escapes() -> String {
    let s = String::from("escaped quote \" then Instant::now() and todo!()");
    s
}
