//! CLI for `ssmdst-lint`.
//!
//! ```text
//! ssmdst-lint check [--json] [ROOT]   lint the workspace (default ROOT: .)
//! ssmdst-lint rules                   print the rule table
//! ```
//!
//! Exit codes (CI semantics): `0` clean, `1` findings, `2` usage or I/O
//! error. Diagnostics go to stdout; errors to stderr.

use ssmdst_lint::{check_tree, report, ALL_RULES};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: ssmdst-lint <check [--json] [ROOT] | rules>";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => {
            let mut json = false;
            let mut root: Option<PathBuf> = None;
            for a in &args[1..] {
                match a.as_str() {
                    "--json" => json = true,
                    flag if flag.starts_with('-') => {
                        eprintln!("unknown flag `{flag}` (options: --json)");
                        return ExitCode::from(2);
                    }
                    path if root.is_none() => root = Some(PathBuf::from(path)),
                    extra => {
                        eprintln!("unexpected argument `{extra}`\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            let root = root.unwrap_or_else(|| PathBuf::from("."));
            match check_tree(&root) {
                Ok(rep) => {
                    if json {
                        print!("{}", report::render_json(&rep));
                    } else {
                        print!("{}", report::render_text(&rep));
                    }
                    if rep.clean() {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::from(1)
                    }
                }
                Err(e) => {
                    eprintln!("ssmdst-lint: {e}");
                    ExitCode::from(2)
                }
            }
        }
        Some("rules") => {
            for r in ALL_RULES {
                println!("{:>2} {:26} {}", r.code(), r.name(), r.contract());
            }
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command `{other}` (options: check, rules)\n{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
