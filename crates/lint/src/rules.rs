//! The rule set: five contracts this repository already enforces
//! dynamically (conformance ladder, alloc meter, replay goldens), made
//! checkable at the source line that would break them.

/// One of the enforced contracts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// **R1** — `HashMap`/`HashSet` banned in digest-relevant crates
    /// (`sim`, `scenario`, `core`, `graph`): unordered iteration feeds
    /// traces, and one stray iteration silently breaks bit-exact replay.
    NoUnorderedCollections,
    /// **R2** — `Instant::now`, `SystemTime`, `thread_rng`,
    /// `rand::random` banned in non-test code: all randomness and time
    /// must be explicit-seed or annotated observation-side.
    NoAmbientEntropy,
    /// **R3** — allocation-capable calls banned inside regions annotated
    /// `// lint: hot-path` (the static complement of
    /// `tests/zero_alloc.rs`).
    ZeroAllocHotPath,
    /// **R4** — `unwrap`/`expect`/`panic!`/`todo!` banned in non-test
    /// library code: fallible paths return listed-options errors.
    NoPanicInLibrary,
    /// **R5** — every `// lint: allow(rule)` needs a `— reason`, must
    /// name a real rule, and must actually mask a finding (stale
    /// suppressions are themselves violations).
    AnnotationHygiene,
}

/// All rules, in report order.
pub const ALL_RULES: [Rule; 5] = [
    Rule::NoUnorderedCollections,
    Rule::NoAmbientEntropy,
    Rule::ZeroAllocHotPath,
    Rule::NoPanicInLibrary,
    Rule::AnnotationHygiene,
];

impl Rule {
    /// Short code (`R1` … `R5`).
    pub fn code(self) -> &'static str {
        match self {
            Rule::NoUnorderedCollections => "R1",
            Rule::NoAmbientEntropy => "R2",
            Rule::ZeroAllocHotPath => "R3",
            Rule::NoPanicInLibrary => "R4",
            Rule::AnnotationHygiene => "R5",
        }
    }

    /// Kebab-case name, as used inside `// lint: allow(<name>)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoUnorderedCollections => "no-unordered-collections",
            Rule::NoAmbientEntropy => "no-ambient-entropy",
            Rule::ZeroAllocHotPath => "zero-alloc-hot-path",
            Rule::NoPanicInLibrary => "no-panic-in-library",
            Rule::AnnotationHygiene => "annotation-hygiene",
        }
    }

    /// One-line statement of the contract, for `ssmdst-lint rules`.
    pub fn contract(self) -> &'static str {
        match self {
            Rule::NoUnorderedCollections => {
                "no HashMap/HashSet in digest-relevant crates (sim, scenario, core, graph): \
                 unordered iteration feeds traces and breaks bit-exact replay"
            }
            Rule::NoAmbientEntropy => {
                "no Instant::now / SystemTime / thread_rng / rand::random outside tests: \
                 randomness and time must be explicit-seed or annotated observation-side"
            }
            Rule::ZeroAllocHotPath => {
                "no allocation-capable calls (Vec::new, vec!, format!, to_string, collect, \
                 Box::new, clone, ...) inside `// lint: hot-path` regions"
            }
            Rule::NoPanicInLibrary => {
                "no unwrap/expect/panic!/todo! in non-test library code: fallible paths \
                 return listed-options errors"
            }
            Rule::AnnotationHygiene => {
                "every `// lint: allow(rule)` carries a `\u{2014} reason`, names a real rule, \
                 and masks at least one live finding"
            }
        }
    }

    /// Resolve an `allow(<name>)` rule name. `AnnotationHygiene` itself is
    /// deliberately not suppressible.
    pub fn parse(name: &str) -> Option<Rule> {
        ALL_RULES
            .into_iter()
            .filter(|r| *r != Rule::AnnotationHygiene)
            .find(|r| r.name() == name)
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.code(), self.name())
    }
}

/// One diagnostic: a rule violated at a line, with the offending token
/// and a message saying what to do instead.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// 1-based source line.
    pub line: u32,
    /// The token (or annotation) that triggered the finding.
    pub token: String,
    /// What is wrong and what the fix is.
    pub message: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_codes_are_unique_and_round_trip() {
        for (i, r) in ALL_RULES.into_iter().enumerate() {
            for s in ALL_RULES.into_iter().skip(i + 1) {
                assert_ne!(r.code(), s.code());
                assert_ne!(r.name(), s.name());
            }
            if r != Rule::AnnotationHygiene {
                assert_eq!(Rule::parse(r.name()), Some(r));
            }
        }
        assert_eq!(Rule::parse("annotation-hygiene"), None, "not suppressible");
        assert_eq!(Rule::parse("nonsense"), None);
    }
}
