//! `ssmdst-lint` — contract-enforcing static analysis for this workspace.
//!
//! The repository's load-bearing guarantees are *behavioural*: bit-exact
//! per-seed replay digests across three backends, a zero-allocation
//! steady-state round loop, explicit-seed-only randomness, and
//! listed-options errors instead of panics. Each is enforced dynamically
//! (conformance ladder, counting allocator, golden traces) — which means
//! a violation is caught only after it executes. This crate is the static
//! complement: an offline, dependency-free pass with a hand-rolled Rust
//! lexer ([`lexer`]) and a rule engine ([`engine`]) that walks every
//! workspace `.rs` file and flags, at its source line, code that *would*
//! break a contract:
//!
//! | code | rule | contract it guards |
//! |------|------|--------------------|
//! | R1 | `no-unordered-collections` | bit-exact replay (PR 4/7 conformance ladder) |
//! | R2 | `no-ambient-entropy` | explicit-seed determinism (PR 1) |
//! | R3 | `zero-alloc-hot-path` | the alloc meter (`tests/zero_alloc.rs`, PR 3) |
//! | R4 | `no-panic-in-library` | listed-options errors (PR 7 CLI/scn conventions) |
//! | R5 | `annotation-hygiene` | the suppressions themselves |
//!
//! Violations that are genuinely fine carry a reasoned suppression:
//!
//! ```text
//! let start = Instant::now(); // lint: allow(no-ambient-entropy) — observation-side timing
//! ```
//!
//! and R5 guarantees the excuse stays honest: no reason, unknown rule, or
//! a suppression that no longer masks anything is itself a violation.
//!
//! The tool lints itself (this crate is part of the walked workspace), is
//! fixture-tested against a committed corpus of seeded-violation and
//! hostile-negative files (`tests/fixtures/`), and gates CI: `ssmdst-lint
//! check` exits 0 only on a clean tree.

// Library code must not grow bare `.unwrap()`s: use `.expect` with the
// invariant that makes failure unreachable (ssmdst-lint R4 audits the
// reasons). Unit tests keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;

pub use engine::{check_tree, classify, lint_source, FileClass, Report, TargetKind};
pub use lexer::{lex, LexError, Lexed};
pub use rules::{Finding, Rule, ALL_RULES};
