//! Rendering: human-readable `file:line` diagnostics and a `--json`
//! report in the same rows-plus-summary shape as the `bench-delta`
//! artifacts, so CI can archive and diff lint runs like bench runs.

use crate::engine::Report;
use std::fmt::Write as _;

/// Human-readable diagnostics, one `file:line: CODE name: message` per
/// finding, followed by a one-line summary.
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    for file in &report.files {
        for f in &file.findings {
            let _ = writeln!(
                out,
                "{}:{}: {} {}: `{}` \u{2014} {}",
                file.path,
                f.line,
                f.rule.code(),
                f.rule.name(),
                f.token,
                f.message
            );
        }
    }
    let _ = writeln!(
        out,
        "ssmdst-lint: {} finding(s) in {} file(s) \u{2014} {} file(s) scanned, {} suppression(s) honored",
        report.total_findings(),
        report.files.len(),
        report.files_scanned,
        report.suppressions_honored
    );
    out
}

/// JSON report: a `findings` row array plus scan summary fields.
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"tool\": \"ssmdst-lint\",");
    let _ = writeln!(out, "  \"files_scanned\": {},", report.files_scanned);
    let _ = writeln!(
        out,
        "  \"suppressions_honored\": {},",
        report.suppressions_honored
    );
    let _ = writeln!(out, "  \"clean\": {},", report.clean());
    out.push_str("  \"findings\": [");
    let mut first = true;
    for file in &report.files {
        for f in &file.findings {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    {{\"rule\": \"{}\", \"code\": \"{}\", \"file\": \"{}\", \"line\": {}, \"token\": \"{}\", \"message\": \"{}\"}}",
                f.rule.name(),
                f.rule.code(),
                escape(&file.path),
                f.line,
                escape(&f.token),
                escape(&f.message)
            );
        }
    }
    if !first {
        out.push('\n');
        out.push_str("  ");
    }
    out.push_str("]\n}\n");
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::FileReport;
    use crate::rules::{Finding, Rule};

    fn sample() -> Report {
        Report {
            files_scanned: 3,
            suppressions_honored: 2,
            files: vec![FileReport {
                path: "crates/sim/src/x.rs".into(),
                findings: vec![Finding {
                    rule: Rule::NoUnorderedCollections,
                    line: 7,
                    token: "HashSet".into(),
                    message: "say \"no\"".into(),
                }],
            }],
        }
    }

    #[test]
    fn text_has_file_line_rows_and_a_summary() {
        let text = render_text(&sample());
        assert!(text.contains("crates/sim/src/x.rs:7: R1 no-unordered-collections"));
        assert!(text.contains("1 finding(s) in 1 file(s)"));
        assert!(text.contains("3 file(s) scanned, 2 suppression(s) honored"));
    }

    #[test]
    fn json_is_escaped_and_row_shaped() {
        let json = render_json(&sample());
        assert!(json.contains("\"rule\": \"no-unordered-collections\""));
        assert!(json.contains("\"line\": 7"));
        assert!(json.contains("say \\\"no\\\""));
        assert!(json.contains("\"clean\": false"));
        // Empty report renders an empty array, still valid JSON.
        let empty = render_json(&Report::default());
        assert!(empty.contains("\"findings\": []"));
        assert!(empty.contains("\"clean\": true"));
    }
}
