//! The rule engine: classify a file, lex it, compute `#[cfg(test)]` and
//! hot-path regions, apply the token rules, then honor (and audit)
//! suppressions.
//!
//! # Scope model
//!
//! Every workspace `.rs` file is classified by path into a crate plus a
//! [`TargetKind`]; each rule declares which classes it patrols:
//!
//! | rule | library | bin | example | test code (incl. `#[cfg(test)]`) |
//! |------|---------|-----|---------|----------------------------------|
//! | R1 no-unordered-collections | digest crates only | digest crates only | — | — |
//! | R2 no-ambient-entropy       | ✓ | ✓ | ✓ | — |
//! | R3 zero-alloc-hot-path      | ✓ | ✓ | ✓ | ✓ (regions are opt-in) |
//! | R4 no-panic-in-library      | ✓ | — | — | — |
//! | R5 annotation-hygiene       | ✓ | ✓ | ✓ | ✓ |
//!
//! `vendor/` (offline shims for external crates) and fixture corpora
//! (any directory named `fixtures`) are excluded from the walk entirely.
//!
//! # Annotation grammar
//!
//! Plain line comments only (doc comments never trigger):
//!
//! ```text
//! lint: hot-path                     -- opens an R3 region at the next `{`
//! lint: allow(<rule-name>) — <reason>   -- suppresses <rule-name> findings
//! ```
//!
//! An `allow` masks findings on its own line (trailing form) and on the
//! next line that holds a code token (standalone form). The reason is
//! mandatory (`—` or `--` separator), the rule name must be real, and a
//! suppression that masks nothing is itself an R5 finding — annotations
//! can never outlive the violation they excuse.

use crate::lexer::{self, Comment, LexError, TokKind, Token};
use crate::rules::{Finding, Rule};
use std::path::{Path, PathBuf};

/// Crates whose iteration order feeds replay digests (R1's blast radius).
pub const DIGEST_CRATES: [&str; 5] = ["sim", "scenario", "core", "graph", "exact"];

/// What kind of build target a file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetKind {
    /// Library code (`crates/*/src`, the facade `src/lib.rs`).
    Library,
    /// A binary (`src/bin`, `crates/*/src/bin`, a `main.rs`).
    Bin,
    /// An example (`examples/`).
    Example,
    /// Test or bench code (`tests/`, `benches/`).
    Test,
}

/// Where a file sits in the workspace — the input to rule scoping.
#[derive(Debug, Clone)]
pub struct FileClass {
    /// Workspace crate the file belongs to (`"sim"`, `"lint"`,
    /// `"ssmdst"` for the facade).
    pub crate_name: String,
    /// Target kind.
    pub kind: TargetKind,
}

impl FileClass {
    /// Construct a class directly (fixture harnesses use this).
    pub fn new(crate_name: &str, kind: TargetKind) -> Self {
        FileClass {
            crate_name: crate_name.to_string(),
            kind,
        }
    }

    fn digest_crate(&self) -> bool {
        DIGEST_CRATES.contains(&self.crate_name.as_str())
    }
}

/// Classify a workspace-relative path. `None` means the file is out of
/// scope (vendored shims, fixture corpora, unknown top-level layout).
pub fn classify(rel: &Path) -> Option<FileClass> {
    let parts: Vec<&str> = rel.iter().filter_map(|c| c.to_str()).collect();
    let (crate_name, rest): (&str, &[&str]) = match parts.split_first()? {
        (&"crates", rest) => {
            let (name, inner) = rest.split_first()?;
            (*name, inner)
        }
        (&"src", rest) => ("ssmdst", rest),
        (&"tests", _) => return Some(FileClass::new("ssmdst", TargetKind::Test)),
        (&"examples", _) => return Some(FileClass::new("ssmdst", TargetKind::Example)),
        _ => return None,
    };
    if rest.contains(&"fixtures") {
        return None;
    }
    let kind = if rest.contains(&"tests") || rest.contains(&"benches") {
        TargetKind::Test
    } else if rest.contains(&"examples") {
        TargetKind::Example
    } else if rest.contains(&"bin") || rest.last() == Some(&"main.rs") {
        TargetKind::Bin
    } else {
        TargetKind::Library
    };
    Some(FileClass::new(crate_name, kind))
}

/// Result of linting one file.
#[derive(Debug, Default)]
pub struct LintOutcome {
    /// Surviving findings, in line order.
    pub findings: Vec<Finding>,
    /// Suppressions that masked at least one finding.
    pub suppressions_honored: usize,
}

/// Inclusive line ranges, kept sorted by construction.
#[derive(Debug, Default)]
struct Regions(Vec<(u32, u32)>);

impl Regions {
    fn contains(&self, line: u32) -> bool {
        self.0.iter().any(|&(s, e)| s <= line && line <= e)
    }
}

struct Suppression {
    rule: Rule,
    /// Line of the annotation comment itself.
    line: u32,
    /// Lines it masks: its own plus the next code-bearing line.
    masks: [u32; 2],
    used: bool,
}

/// Lint one file's source under a class. Lex errors are returned, not
/// panicked — a file the lexer cannot finish is reported and skipped.
pub fn lint_source(class: &FileClass, src: &str) -> Result<LintOutcome, LexError> {
    let lexed = lexer::lex(src)?;
    let test_regions = cfg_test_regions(&lexed.tokens);
    let mut findings: Vec<Finding> = Vec::new();
    let (hot_regions, mut suppressions) =
        parse_annotations(&lexed.comments, &lexed.tokens, &mut findings);

    scan_tokens(
        class,
        &lexed.tokens,
        &test_regions,
        &hot_regions,
        &mut findings,
    );

    // Apply suppressions, then audit them: anything unused is stale.
    let mut kept: Vec<Finding> = Vec::new();
    for f in findings {
        if f.rule == Rule::AnnotationHygiene {
            kept.push(f);
            continue;
        }
        // Credit every suppression whose window covers the finding, not
        // just the first: on consecutive annotated lines the previous
        // line's annotation also reaches this one, and crediting only it
        // would leave this line's own annotation looking stale.
        let mut masked = false;
        for s in suppressions
            .iter_mut()
            .filter(|s| s.rule == f.rule && s.masks.contains(&f.line))
        {
            s.used = true;
            masked = true;
        }
        if !masked {
            kept.push(f);
        }
    }
    let mut honored = 0usize;
    for s in &suppressions {
        if s.used {
            honored += 1;
        } else {
            kept.push(Finding {
                rule: Rule::AnnotationHygiene,
                line: s.line,
                token: format!("allow({})", s.rule.name()),
                message: format!(
                    "stale suppression: no {} finding on line {} or the next code line \
                     \u{2014} remove the annotation",
                    s.rule.code(),
                    s.line
                ),
            });
        }
    }
    kept.sort_by_key(|f| (f.line, f.rule));
    Ok(LintOutcome {
        findings: kept,
        suppressions_honored: honored,
    })
}

/// Find `#[cfg(test)]` attributes and extend each over the item it gates
/// (to the matching `}` of the first block, or to a `;` for block-less
/// items like gated `use` declarations).
fn cfg_test_regions(tokens: &[Token]) -> Regions {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if is_cfg_test_attr(tokens, i) {
            let start = tokens[i].line;
            let mut depth = 0usize;
            let mut end = start;
            let mut j = i + 7; // past `# [ cfg ( test ) ]`
            while j < tokens.len() {
                let t = &tokens[j];
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth = depth.saturating_sub(1);
                            if depth == 0 {
                                end = t.line;
                                break;
                            }
                        }
                        ";" if depth == 0 => {
                            end = t.line;
                            break;
                        }
                        _ => {}
                    }
                }
                end = t.line;
                j += 1;
            }
            regions.push((start, end));
            i = j;
        }
        i += 1;
    }
    Regions(regions)
}

fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    let texts = ["#", "[", "cfg", "(", "test", ")", "]"];
    tokens.len() >= i + texts.len()
        && texts
            .iter()
            .zip(&tokens[i..])
            .all(|(want, tok)| tok.text == *want)
}

/// Parse lint annotations out of plain line comments: hot-path region
/// openers and suppressions. Grammar violations become R5 findings here.
fn parse_annotations(
    comments: &[Comment],
    tokens: &[Token],
    findings: &mut Vec<Finding>,
) -> (Regions, Vec<Suppression>) {
    let mut hot = Vec::new();
    let mut sups = Vec::new();
    for c in comments {
        if c.doc || c.block {
            continue;
        }
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim();
        if let Some(tail) = rest.strip_prefix("hot-path") {
            if !(tail.is_empty() || tail.starts_with(' ') || tail.starts_with('\u{2014}')) {
                findings.push(hygiene(c.line, rest, "unrecognized lint annotation"));
                continue;
            }
            match brace_region_after(tokens, c.line) {
                Some(region) => hot.push(region),
                None => findings.push(hygiene(
                    c.line,
                    "hot-path",
                    "hot-path annotation is not followed by a `{ ... }` block",
                )),
            }
            continue;
        }
        if let Some(tail) = rest.strip_prefix("allow(") {
            let Some(close) = tail.find(')') else {
                findings.push(hygiene(c.line, rest, "malformed allow: missing `)`"));
                continue;
            };
            let name = tail[..close].trim();
            let after = tail[close + 1..].trim_start();
            let Some(rule) = Rule::parse(name) else {
                findings.push(hygiene(
                    c.line,
                    rest,
                    "allow names no known rule (see `ssmdst-lint rules`)",
                ));
                continue;
            };
            let reason = after
                .strip_prefix('\u{2014}')
                .or_else(|| after.strip_prefix("--"))
                .map(str::trim)
                .unwrap_or("");
            if reason.is_empty() {
                findings.push(hygiene(
                    c.line,
                    rest,
                    "suppression requires a reason: `lint: allow(rule) \u{2014} why`",
                ));
                continue;
            }
            let next_code = tokens
                .iter()
                .map(|t| t.line)
                .find(|&l| l > c.line)
                .unwrap_or(c.line);
            sups.push(Suppression {
                rule,
                line: c.line,
                masks: [c.line, next_code],
                used: false,
            });
            continue;
        }
        findings.push(hygiene(c.line, rest, "unrecognized lint annotation"));
    }
    (Regions(hot), sups)
}

fn hygiene(line: u32, token: &str, msg: &str) -> Finding {
    Finding {
        rule: Rule::AnnotationHygiene,
        line,
        token: token.to_string(),
        message: msg.to_string(),
    }
}

/// The `{ … }` region opened by the first `{` at or after `line`.
fn brace_region_after(tokens: &[Token], line: u32) -> Option<(u32, u32)> {
    let open = tokens
        .iter()
        .position(|t| t.line >= line && t.kind == TokKind::Punct && t.text == "{")?;
    let mut depth = 0usize;
    for t in &tokens[open..] {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some((line, t.line));
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// Token-level scans for R1–R4.
fn scan_tokens(
    class: &FileClass,
    tokens: &[Token],
    test_regions: &Regions,
    hot_regions: &Regions,
    findings: &mut Vec<Finding>,
) {
    let in_test_code = |line: u32| class.kind == TargetKind::Test || test_regions.contains(line);
    let r1_scope = class.digest_crate() && class.kind != TargetKind::Example;
    let r4_scope = class.kind == TargetKind::Library;

    let ident = |i: usize| -> Option<&Token> { tokens.get(i).filter(|t| t.kind == TokKind::Ident) };
    let punct_at = |i: usize, c: &str| -> bool {
        tokens
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == c)
    };
    // `i` names the ident position; the two tokens before must be `::`.
    let path_prefixed = |i: usize, seg: &str| -> bool {
        i >= 3
            && punct_at(i - 1, ":")
            && punct_at(i - 2, ":")
            && ident(i - 3).is_some_and(|t| t.text == seg)
    };

    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let line = t.line;
        let test_here = in_test_code(line);

        // R1 — unordered collections in digest-relevant crates.
        if r1_scope && !test_here && (t.text == "HashMap" || t.text == "HashSet") {
            findings.push(Finding {
                rule: Rule::NoUnorderedCollections,
                line,
                token: t.text.clone(),
                message: format!(
                    "`{}` in digest-relevant crate `{}`: unordered iteration feeds traces; \
                     use BTreeMap/BTreeSet or a sorted Vec",
                    t.text, class.crate_name
                ),
            });
        }

        // R2 — ambient entropy / wall-clock.
        if !test_here {
            let hit = match t.text.as_str() {
                "Instant" => (punct_at(i + 1, ":")
                    && punct_at(i + 2, ":")
                    && ident(i + 3).is_some_and(|n| n.text == "now"))
                .then(|| "Instant::now".to_string()),
                "SystemTime" => Some("SystemTime".to_string()),
                "thread_rng" => Some("thread_rng".to_string()),
                "random" if path_prefixed(i, "rand") => Some("rand::random".to_string()),
                _ => None,
            };
            if let Some(token) = hit {
                findings.push(Finding {
                    rule: Rule::NoAmbientEntropy,
                    line,
                    token,
                    message: "ambient entropy/wall-clock: thread seeds and clocks are not \
                              replayable; derive from an explicit seed, or annotate \
                              observation-side timing with a reasoned allow"
                        .to_string(),
                });
            }
        }

        // R3 — allocation-capable calls inside opted-in hot-path regions.
        if hot_regions.contains(line) {
            let method_alloc = matches!(
                t.text.as_str(),
                "clone" | "to_string" | "to_vec" | "to_owned" | "collect"
            ) && punct_at(i.wrapping_sub(1), ".");
            let ctor_alloc = matches!(t.text.as_str(), "new" | "with_capacity")
                && ["Vec", "Box", "String", "VecDeque", "BTreeMap", "BTreeSet"]
                    .iter()
                    .any(|owner| path_prefixed(i, owner));
            let macro_alloc = matches!(t.text.as_str(), "vec" | "format") && punct_at(i + 1, "!");
            if method_alloc || ctor_alloc || macro_alloc {
                findings.push(Finding {
                    rule: Rule::ZeroAllocHotPath,
                    line,
                    token: t.text.clone(),
                    message: format!(
                        "`{}` can allocate inside a `lint: hot-path` region; reuse a \
                         warmed buffer (the dynamic meter is tests/zero_alloc.rs)",
                        t.text
                    ),
                });
            }
        }

        // R4 — panic-capable calls in library code.
        if r4_scope && !test_here {
            let method_panic =
                matches!(t.text.as_str(), "unwrap" | "expect") && punct_at(i.wrapping_sub(1), ".");
            let macro_panic = matches!(t.text.as_str(), "panic" | "todo") && punct_at(i + 1, "!");
            if method_panic || macro_panic {
                findings.push(Finding {
                    rule: Rule::NoPanicInLibrary,
                    line,
                    token: t.text.clone(),
                    message: format!(
                        "`{}` in library code: return a listed-options error, or allow \
                         with the invariant that makes this unreachable",
                        t.text
                    ),
                });
            }
        }
    }
}

/// One linted file with its surviving findings.
#[derive(Debug)]
pub struct FileReport {
    /// Workspace-relative path.
    pub path: String,
    /// Findings, in line order. Never empty in a [`Report`].
    pub findings: Vec<Finding>,
}

/// A whole-tree lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Files lexed and scanned.
    pub files_scanned: usize,
    /// Suppressions that masked a live finding, across all files.
    pub suppressions_honored: usize,
    /// Files with findings, in path order.
    pub files: Vec<FileReport>,
}

impl Report {
    /// Total findings across all files.
    pub fn total_findings(&self) -> usize {
        self.files.iter().map(|f| f.findings.len()).sum()
    }

    /// Whether the tree is clean.
    pub fn clean(&self) -> bool {
        self.files.is_empty()
    }
}

/// Directories never descended into: build output, vendored shims for
/// external crates, committed seeded-violation corpora, VCS metadata.
const SKIP_DIRS: [&str; 5] = ["target", "vendor", "fixtures", ".git", "node_modules"];

/// Walk a workspace root and lint every in-scope `.rs` file.
pub fn check_tree(root: &Path) -> Result<Report, String> {
    let mut files = Vec::new();
    collect_rs_files(root, Path::new(""), &mut files)?;
    files.sort();
    if files.is_empty() {
        return Err(format!(
            "no .rs files found under {} \u{2014} is this the workspace root?",
            root.display()
        ));
    }
    let mut report = Report::default();
    for rel in files {
        let Some(class) = classify(&rel) else {
            continue;
        };
        let path = root.join(&rel);
        let src = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let outcome =
            lint_source(&class, &src).map_err(|e| format!("{rel_str}: lex error: {e}"))?;
        report.files_scanned += 1;
        report.suppressions_honored += outcome.suppressions_honored;
        if !outcome.findings.is_empty() {
            report.files.push(FileReport {
                path: rel_str,
                findings: outcome.findings,
            });
        }
    }
    Ok(report)
}

fn collect_rs_files(root: &Path, rel: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let dir = root.join(rel);
    let entries = std::fs::read_dir(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let name_os = entry.file_name();
        let name = name_os.to_string_lossy();
        let child = rel.join(&*name_os);
        let ftype = entry
            .file_type()
            .map_err(|e| format!("{}: {e}", entry.path().display()))?;
        if ftype.is_dir() {
            if SKIP_DIRS.contains(&&*name) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &child, out)?;
        } else if name.ends_with(".rs") {
            out.push(child);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib(crate_name: &str) -> FileClass {
        FileClass::new(crate_name, TargetKind::Library)
    }

    fn codes(class: &FileClass, src: &str) -> Vec<(String, u32)> {
        lint_source(class, src)
            .expect("lexes")
            .findings
            .into_iter()
            .map(|f| (f.rule.code().to_string(), f.line))
            .collect()
    }

    #[test]
    fn classify_maps_the_workspace_layout() {
        let k = |p: &str| classify(Path::new(p)).map(|c| (c.crate_name, c.kind));
        assert_eq!(
            k("crates/sim/src/runner.rs"),
            Some(("sim".into(), TargetKind::Library))
        );
        assert_eq!(
            k("crates/sim/tests/fabric.rs"),
            Some(("sim".into(), TargetKind::Test))
        );
        assert_eq!(
            k("crates/bench/src/bin/backends.rs"),
            Some(("bench".into(), TargetKind::Bin))
        );
        assert_eq!(
            k("crates/bench/benches/round.rs"),
            Some(("bench".into(), TargetKind::Test))
        );
        assert_eq!(
            k("src/lib.rs"),
            Some(("ssmdst".into(), TargetKind::Library))
        );
        assert_eq!(
            k("src/bin/ssmdst.rs"),
            Some(("ssmdst".into(), TargetKind::Bin))
        );
        assert_eq!(
            k("tests/zero_alloc.rs"),
            Some(("ssmdst".into(), TargetKind::Test))
        );
        assert_eq!(
            k("examples/quickstart.rs"),
            Some(("ssmdst".into(), TargetKind::Example))
        );
        assert_eq!(k("vendor/rand/src/lib.rs"), None, "vendor is out of scope");
        assert_eq!(k("crates/lint/tests/fixtures/r1.rs"), None);
    }

    #[test]
    fn r1_fires_only_in_digest_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(codes(&lib("sim"), src), [("R1".to_string(), 1)]);
        assert!(codes(&lib("lint"), src).is_empty());
        assert!(codes(&lib("baselines"), src).is_empty());
        assert!(
            codes(&FileClass::new("sim", TargetKind::Test), src).is_empty(),
            "test code is exempt"
        );
    }

    #[test]
    fn cfg_test_regions_exempt_r1_and_r4() {
        let src = "\
pub fn f() -> u32 { 1 }\n\
#[cfg(test)]\n\
mod tests {\n\
    use std::collections::HashMap;\n\
    #[test]\n\
    fn t() { let m: HashMap<u32, u32> = HashMap::new(); m.get(&1).unwrap(); }\n\
}\n";
        assert!(codes(&lib("sim"), src).is_empty());
        // …but the same tokens *before* the region still fire.
        let bad = format!("use std::collections::HashSet;\n{src}");
        assert_eq!(codes(&lib("sim"), &bad), [("R1".to_string(), 1)]);
    }

    #[test]
    fn cfg_test_on_a_single_item_ends_at_the_semicolon() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nuse std::collections::HashSet;\n";
        assert_eq!(codes(&lib("sim"), src), [("R1".to_string(), 3)]);
    }

    #[test]
    fn suppression_masks_own_line_and_next_code_line() {
        let trailing =
            "use std::collections::HashSet; // lint: allow(no-unordered-collections) \u{2014} membership-only\n";
        let out = lint_source(&lib("sim"), trailing).expect("lexes");
        assert!(out.findings.is_empty());
        assert_eq!(out.suppressions_honored, 1);

        let standalone = "// lint: allow(no-unordered-collections) \u{2014} membership-only\n\
                          use std::collections::HashSet;\n";
        let out = lint_source(&lib("sim"), standalone).expect("lexes");
        assert!(out.findings.is_empty());
        assert_eq!(out.suppressions_honored, 1);
    }

    #[test]
    fn consecutive_annotated_lines_credit_each_suppression() {
        // Line 1's window also reaches line 2's finding; both annotations
        // must count as used or the second reads as stale.
        let src = "let a = x.unwrap(); // lint: allow(no-panic-in-library) \u{2014} one\n\
                   let b = y.unwrap(); // lint: allow(no-panic-in-library) \u{2014} two\n";
        let out = lint_source(&lib("sim"), src).expect("lexes");
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert_eq!(out.suppressions_honored, 2);
    }

    #[test]
    fn stale_and_malformed_suppressions_are_r5_findings() {
        // Stale: masks nothing.
        let stale = "// lint: allow(no-panic-in-library) \u{2014} reason\nlet x = 1;\n";
        assert_eq!(codes(&lib("sim"), stale), [("R5".to_string(), 1)]);
        // Missing reason.
        let bare = "let v = None::<u32>.unwrap(); // lint: allow(no-panic-in-library)\n";
        let found = codes(&lib("sim"), bare);
        assert!(found.contains(&("R5".to_string(), 1)), "{found:?}");
        assert!(
            found.contains(&("R4".to_string(), 1)),
            "unmasked without reason"
        );
        // Unknown rule.
        let unknown = "// lint: allow(no-such-rule) \u{2014} why\n";
        assert_eq!(codes(&lib("sim"), unknown), [("R5".to_string(), 1)]);
        // Typo in the verb.
        let typo = "// lint: alow(no-panic-in-library) \u{2014} why\n";
        assert_eq!(codes(&lib("sim"), typo), [("R5".to_string(), 1)]);
    }

    #[test]
    fn hot_path_region_covers_the_next_block_only() {
        let src = "\
// lint: hot-path\n\
fn hot(&mut self) {\n\
    let v: Vec<u32> = Vec::new();\n\
    let s = x.to_string();\n\
    inner(|| { y.clone() });\n\
}\n\
fn cold() {\n\
    let v: Vec<u32> = Vec::new();\n\
}\n";
        assert_eq!(
            codes(&lib("lint"), src),
            [
                ("R3".to_string(), 3),
                ("R3".to_string(), 4),
                ("R3".to_string(), 5)
            ],
            "three hits inside the region, none in `cold`"
        );
    }

    #[test]
    fn hot_path_without_a_block_is_an_r5_finding() {
        assert_eq!(
            codes(&lib("lint"), "// lint: hot-path\n"),
            [("R5".to_string(), 1)]
        );
    }

    #[test]
    fn r4_scopes_to_library_code_only() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(codes(&lib("lint"), src), [("R4".to_string(), 1)]);
        assert!(codes(&FileClass::new("lint", TargetKind::Bin), src).is_empty());
        assert!(codes(&FileClass::new("ssmdst", TargetKind::Example), src).is_empty());
        // `std::panic::catch_unwind` is not `panic!`.
        let ok = "fn g() { let _ = std::panic::catch_unwind(|| 1); }\n";
        assert!(codes(&lib("sim"), ok).is_empty());
        let macros = "fn h() { panic!(\"boom\"); todo!() }\n";
        assert_eq!(
            codes(&lib("sim"), macros),
            [("R4".to_string(), 1), ("R4".to_string(), 1)]
        );
    }

    #[test]
    fn r2_matches_calls_not_imports() {
        // The import alone is fine; the call is the violation.
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n";
        assert_eq!(codes(&lib("bench"), src), [("R2".to_string(), 2)]);
        let more = "fn g() { let r = rand::random::<u64>(); let t = thread_rng(); }\n";
        assert_eq!(
            codes(&lib("bench"), more),
            [("R2".to_string(), 1), ("R2".to_string(), 1)]
        );
        // Seeded streams and the non-ambient `rng.random()` method are fine.
        let seeded = "fn h(rng: &mut StdRng) -> u64 { rng.random() }\n";
        assert!(codes(&lib("sim"), seeded).is_empty());
    }
}
