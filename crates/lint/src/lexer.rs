//! A hand-rolled Rust lexer, just deep enough that lint rules match
//! **tokens**, never raw text.
//!
//! The rules this crate enforces are token-shaped (“the identifier
//! `HashMap`”, “`.unwrap`”, “`panic!`”), so the one job of this lexer is
//! to never confuse code with the places banned spellings may legally
//! appear:
//!
//! * string literals — plain (`"…"` with escapes), raw (`r"…"`,
//!   `r##"…"##` with any hash count), byte (`b"…"`), and raw-byte
//!   (`br#"…"#`);
//! * character and byte-character literals (`'x'`, `'\''`, `b'\n'`),
//!   including the classic `'a'`-vs-`'a`-lifetime ambiguity;
//! * comments — line (`//`), doc (`///`, `//!`), and block (`/* … */`)
//!   with arbitrary nesting, which Rust allows and naive scanners get
//!   wrong;
//! * raw identifiers (`r#type`), so an `r#` prefix is not mistaken for
//!   the start of a raw string.
//!
//! Everything else (numbers, punctuation) is tokenized coarsely: rules
//! only ever inspect identifiers and single-character punctuation, so
//! `::` is simply two `:` tokens and numeric literals only need to not
//! swallow their neighbours (`0..n` must yield `0`, `.`, `.`, `n`).
//!
//! The lexer is resilient by design — it has exactly three hard errors
//! (unterminated string, unterminated block comment, unterminated char
//! literal), because a file with one of those will not compile anyway and
//! a linter must not guess at its meaning.

/// What a [`Token`] is. Only `Ident` and `Punct` participate in rule
/// matching; the literal kinds exist so their *content* is provably
/// invisible to the rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `fn`, `r#type`).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`, `'outer`).
    Lifetime,
    /// Character or byte-character literal (`'x'`, `b'\n'`).
    CharLit,
    /// String literal of any flavour (plain, raw, byte, raw-byte).
    StrLit,
    /// Numeric literal (`42`, `0x9E37_79B9`, `1.5e3`).
    Num,
    /// One character of punctuation (`.`, `:`, `!`, `{`, …).
    Punct,
}

/// One lexed token: kind, verbatim text, and the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// The exact source text (for `Punct`, a single character).
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

/// One comment, separated from the code-token stream. Lint annotations
/// (`// lint: …`) are only recognized in plain line comments, so doc
/// comments that *describe* the annotation grammar can never trigger it.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment content with the introducer (`//`, `///`, `/*` …) and, for
    /// block comments, the closing `*/` stripped.
    pub text: String,
    /// Whether this is a doc comment (`///`, `//!`, `/**`, `/*!`).
    pub doc: bool,
    /// Whether this is a block comment.
    pub block: bool,
}

/// Result of lexing one file: code tokens and comments, both in source
/// order, each carrying line numbers.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens (identifiers, literals, punctuation).
    pub tokens: Vec<Token>,
    /// Comments, in source order.
    pub comments: Vec<Comment>,
}

/// A hard lexing failure. Only constructs that would also fail `rustc`
/// produce one; the engine reports it and refuses to lint the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line of the offending construct.
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(ch) = c {
            self.pos += 1;
            if ch == '\n' {
                self.line += 1;
            }
        }
        c
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into code tokens and comments.
pub fn lex(src: &str) -> Result<Lexed, LexError> {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
    };
    let mut out = Lexed::default();
    while let Some(c) = cur.peek(0) {
        if c == '\n' || c.is_whitespace() {
            cur.bump();
            continue;
        }
        if c == '/' && cur.peek(1) == Some('/') {
            line_comment(&mut cur, &mut out);
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            block_comment(&mut cur, &mut out)?;
            continue;
        }
        if is_ident_start(c) {
            ident_or_prefixed_literal(&mut cur, &mut out)?;
            continue;
        }
        if c.is_ascii_digit() {
            number(&mut cur, &mut out);
            continue;
        }
        if c == '"' {
            plain_string(&mut cur, &mut out)?;
            continue;
        }
        if c == '\'' {
            char_or_lifetime(&mut cur, &mut out)?;
            continue;
        }
        let line = cur.line;
        cur.bump();
        out.tokens.push(Token {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
    }
    Ok(out)
}

fn line_comment(cur: &mut Cursor, out: &mut Lexed) {
    let line = cur.line;
    cur.bump(); // /
    cur.bump(); // /
    let mut extra_slashes = 0;
    while cur.peek(0) == Some('/') {
        extra_slashes += 1;
        cur.bump();
    }
    let inner_doc = cur.peek(0) == Some('!');
    if inner_doc {
        cur.bump();
    }
    // `///` is doc, `////…` is plain (rustdoc's rule), `//!` is doc.
    let doc = extra_slashes == 1 || inner_doc;
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    out.comments.push(Comment {
        line,
        text,
        doc,
        block: false,
    });
}

fn block_comment(cur: &mut Cursor, out: &mut Lexed) -> Result<(), LexError> {
    let line = cur.line;
    cur.bump(); // /
    cur.bump(); // *
                // `/**` (not `/**/`) and `/*!` are doc comments.
    let doc = (cur.peek(0) == Some('*') && cur.peek(1) != Some('/')) || cur.peek(0) == Some('!');
    let mut depth = 1usize;
    let mut text = String::new();
    loop {
        match (cur.peek(0), cur.peek(1)) {
            (Some('/'), Some('*')) => {
                depth += 1;
                text.push('/');
                text.push('*');
                cur.bump();
                cur.bump();
            }
            (Some('*'), Some('/')) => {
                depth -= 1;
                cur.bump();
                cur.bump();
                if depth == 0 {
                    break;
                }
                text.push('*');
                text.push('/');
            }
            (Some(c), _) => {
                text.push(c);
                cur.bump();
            }
            (None, _) => {
                return Err(LexError {
                    line,
                    msg: "unterminated block comment".into(),
                });
            }
        }
    }
    out.comments.push(Comment {
        line,
        text,
        doc,
        block: true,
    });
    Ok(())
}

/// An identifier — or one of the literal families an identifier-looking
/// prefix can open: `r"…"`, `r#"…"#`, `br"…"`, `b"…"`, `b'…'`, `r#ident`.
fn ident_or_prefixed_literal(cur: &mut Cursor, out: &mut Lexed) -> Result<(), LexError> {
    let line = cur.line;
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if is_ident_continue(c) {
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    let next = cur.peek(0);
    match (text.as_str(), next) {
        // Raw string with zero hashes: r"…" / br"…".
        ("r" | "br", Some('"')) => raw_string(cur, out, line),
        // Raw string with hashes — or a raw identifier (`r#type`).
        ("r" | "br", Some('#')) => {
            let mut hashes = 0usize;
            while cur.peek(hashes) == Some('#') {
                hashes += 1;
            }
            if cur.peek(hashes) == Some('"') {
                raw_string(cur, out, line)
            } else if text == "r" && hashes == 1 && cur.peek(1).is_some_and(is_ident_start) {
                cur.bump(); // #
                let mut raw = String::new();
                while let Some(c) = cur.peek(0) {
                    if is_ident_continue(c) {
                        raw.push(c);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: TokKind::Ident,
                    text: raw,
                    line,
                });
                Ok(())
            } else {
                // `r#` followed by nothing lexable as string or ident:
                // emit the ident and let the punct loop handle the rest.
                out.tokens.push(Token {
                    kind: TokKind::Ident,
                    text,
                    line,
                });
                Ok(())
            }
        }
        // Byte string: b"…".
        ("b", Some('"')) => plain_string(cur, out),
        // Byte char: b'…'.
        ("b", Some('\'')) => char_literal(cur, out, line),
        _ => {
            out.tokens.push(Token {
                kind: TokKind::Ident,
                text,
                line,
            });
            Ok(())
        }
    }
}

/// Raw (possibly byte) string; the cursor sits on the first `#` or `"`.
fn raw_string(cur: &mut Cursor, out: &mut Lexed, line: u32) -> Result<(), LexError> {
    let mut hashes = 0usize;
    while cur.peek(0) == Some('#') {
        hashes += 1;
        cur.bump();
    }
    cur.bump(); // opening quote
    loop {
        match cur.bump() {
            Some('"') => {
                let mut seen = 0usize;
                while seen < hashes && cur.peek(0) == Some('#') {
                    seen += 1;
                    cur.bump();
                }
                if seen == hashes {
                    break;
                }
            }
            Some(_) => {}
            None => {
                return Err(LexError {
                    line,
                    msg: "unterminated raw string".into(),
                });
            }
        }
    }
    out.tokens.push(Token {
        kind: TokKind::StrLit,
        text: String::new(),
        line,
    });
    Ok(())
}

/// Plain (possibly byte) string with backslash escapes; cursor on `"`.
fn plain_string(cur: &mut Cursor, out: &mut Lexed) -> Result<(), LexError> {
    let line = cur.line;
    cur.bump(); // opening quote
    loop {
        match cur.bump() {
            Some('"') => break,
            Some('\\') => {
                cur.bump(); // whatever is escaped, including \" and \\
            }
            Some(_) => {}
            None => {
                return Err(LexError {
                    line,
                    msg: "unterminated string literal".into(),
                });
            }
        }
    }
    out.tokens.push(Token {
        kind: TokKind::StrLit,
        text: String::new(),
        line,
    });
    Ok(())
}

/// `'` opens either a char literal or a lifetime. Disambiguation mirrors
/// rustc: `'\…'` is a char; `'x` where `x` starts an identifier and the
/// *next* character is not `'` is a lifetime (`'a`, `'static`, `'_`);
/// everything else (`'a'`, `'('`, `' '`) is a char literal.
fn char_or_lifetime(cur: &mut Cursor, out: &mut Lexed) -> Result<(), LexError> {
    let line = cur.line;
    if cur.peek(1) == Some('\\') {
        return char_literal(cur, out, line);
    }
    if cur.peek(1).is_some_and(is_ident_start) && cur.peek(2) != Some('\'') {
        cur.bump(); // '
        let mut text = String::from("'");
        while let Some(c) = cur.peek(0) {
            if is_ident_continue(c) {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
        out.tokens.push(Token {
            kind: TokKind::Lifetime,
            text,
            line,
        });
        return Ok(());
    }
    char_literal(cur, out, line)
}

/// A char literal (`'x'`, `'\''`); the cursor sits on the opening `'`.
fn char_literal(cur: &mut Cursor, out: &mut Lexed, line: u32) -> Result<(), LexError> {
    cur.bump(); // opening '
    loop {
        match cur.bump() {
            Some('\'') => break,
            Some('\\') => {
                cur.bump();
            }
            Some('\n') | None => {
                return Err(LexError {
                    line,
                    msg: "unterminated character literal".into(),
                });
            }
            Some(_) => {}
        }
    }
    out.tokens.push(Token {
        kind: TokKind::CharLit,
        text: String::new(),
        line,
    });
    Ok(())
}

/// Numeric literal: digits, `_`, radix/width letters, and at most one
/// decimal point when a digit follows it — so `0..n` and `1.max(x)` keep
/// their dots as punctuation.
fn number(cur: &mut Cursor, out: &mut Lexed) {
    let line = cur.line;
    let mut text = String::new();
    loop {
        match cur.peek(0) {
            Some(c) if c.is_alphanumeric() || c == '_' => {
                text.push(c);
                cur.bump();
            }
            Some('.') if cur.peek(1).is_some_and(|c| c.is_ascii_digit()) => {
                text.push('.');
                cur.bump();
            }
            _ => break,
        }
    }
    out.tokens.push(Token {
        kind: TokKind::Num,
        text,
        line,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        let lexed = lex(src).expect("lexes");
        lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn raw_strings_hide_banned_tokens() {
        // A raw string containing `HashMap` (with hash-guards and an inner
        // quote) must contribute zero identifier tokens.
        let src = r####"let s = r##"use std::collections::HashMap; " inner "##; "####;
        assert_eq!(idents(src), ["let", "s"]);
        let src2 = "let s = r#\"HashMap\"#;";
        assert_eq!(idents(src2), ["let", "s"]);
        let src3 = "let s = br\"HashSet\";";
        assert_eq!(idents(src3), ["let", "s"]);
    }

    #[test]
    fn nested_block_comments_hide_banned_tokens() {
        let src = "a /* HashMap /* HashSet */ thread_rng */ b";
        assert_eq!(idents(src), ["a", "b"]);
        let lexed = lex(src).expect("lexes");
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("HashSet"));
    }

    #[test]
    fn unterminated_nested_comment_is_an_error() {
        let err = lex("/* /* */").expect_err("must not lex");
        assert!(err.msg.contains("block comment"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str, c: char) { let y = 'b'; }").expect("lexes");
        let lifetimes: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["'a", "'a"]);
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::CharLit)
            .count();
        assert_eq!(chars, 1, "'b' is a char literal");
    }

    #[test]
    fn char_escapes_and_labels() {
        // '\'' and '\\' are chars; 'outer: is a label (lexes as lifetime).
        let lexed =
            lex("let q = '\\''; let b = '\\\\'; 'outer: loop { break 'outer; }").expect("lexes");
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::CharLit)
            .count();
        assert_eq!(chars, 2);
        let labels = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        assert_eq!(labels, 2);
    }

    #[test]
    fn byte_literals_and_raw_idents() {
        let lexed = lex("let x = b'\\''; let s = b\"unwrap\"; let r#type = 1;").expect("lexes");
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "type"));
        assert!(!lexed.tokens.iter().any(|t| t.text == "unwrap"));
    }

    #[test]
    fn doc_comments_are_flagged_and_separated() {
        let src = "/// uses .unwrap() freely\n//! inner doc\n//// not doc\n// plain\nfn f() {}";
        let lexed = lex(src).expect("lexes");
        let docs: Vec<bool> = lexed.comments.iter().map(|c| c.doc).collect();
        assert_eq!(docs, [true, true, false, false]);
        assert!(!lexed.tokens.iter().any(|t| t.text == "unwrap"));
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_method_calls() {
        let lexed = lex("for i in 0..n { let x = 1.max(2); let h = 0x9E37_79B9; }").expect("lexes");
        let texts: Vec<&str> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"max"), "1.max parsed as number+method");
        assert!(texts.contains(&"0x9E37_79B9"));
        let dots = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Punct && t.text == ".")
            .count();
        assert_eq!(dots, 3, "two range dots + one method dot");
    }

    #[test]
    fn line_numbers_are_tracked_through_multiline_constructs() {
        let src = "let a = \"x\ny\";\n/* c\nc */ let b = 1;\nlet c = 2;";
        let lexed = lex(src).expect("lexes");
        let line_of = |name: &str| {
            lexed
                .tokens
                .iter()
                .find(|t| t.text == name)
                .map(|t| t.line)
                .expect("token present")
        };
        assert_eq!(line_of("a"), 1);
        assert_eq!(line_of("b"), 4);
        assert_eq!(line_of("c"), 5);
    }
}
