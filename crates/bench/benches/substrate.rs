//! Substrate benchmarks: generators, exact solver, lower bounds and the
//! centralized baselines (backing tables T1/T5's ground-truth columns).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssmdst_baselines::{bfs_spanning_tree, fr_mdst, greedy_min_degree_tree};
use ssmdst_graph::generators::GraphFamily;
use ssmdst_graph::{degree_lower_bound, exact_mdst, SolveBudget};
use std::hint::black_box;

fn bench_generators(c: &mut Criterion) {
    let mut g = c.benchmark_group("generators");
    for fam in GraphFamily::all() {
        g.bench_with_input(BenchmarkId::new("generate", fam.label()), fam, |b, fam| {
            b.iter(|| fam.generate(black_box(64), 1))
        });
    }
    g.finish();
}

fn bench_exact_solver(c: &mut Criterion) {
    let mut g = c.benchmark_group("exact-mdst");
    g.sample_size(10);
    for n in [10usize, 14] {
        let graph = GraphFamily::GnpDense.generate(n, 1);
        g.bench_with_input(BenchmarkId::new("gnp-dense", n), &graph, |b, graph| {
            b.iter(|| exact_mdst(black_box(graph), SolveBudget::default()).lower())
        });
    }
    g.finish();
}

fn bench_lower_bound(c: &mut Criterion) {
    let graph = GraphFamily::GnpSparse.generate(64, 1);
    c.bench_function("degree-lower-bound-n64", |b| {
        b.iter(|| degree_lower_bound(black_box(&graph)))
    });
}

fn bench_fr(c: &mut Criterion) {
    let mut g = c.benchmark_group("fuerer-raghavachari");
    g.sample_size(10);
    for n in [32usize, 64] {
        let graph = GraphFamily::ScaleFree.generate(n, 1);
        let t0 = bfs_spanning_tree(&graph, 0).unwrap();
        g.bench_with_input(BenchmarkId::new("scale-free", n), &graph, |b, graph| {
            b.iter(|| fr_mdst(black_box(graph), t0.clone()).0.max_degree())
        });
    }
    g.finish();
}

fn bench_greedy(c: &mut Criterion) {
    let graph = GraphFamily::GnpDense.generate(48, 1);
    c.bench_function("greedy-min-degree-n48", |b| {
        b.iter(|| {
            greedy_min_degree_tree(black_box(&graph), 1)
                .unwrap()
                .max_degree()
        })
    });
}

criterion_group!(
    benches,
    bench_generators,
    bench_exact_solver,
    bench_lower_bound,
    bench_fr,
    bench_greedy
);
criterion_main!(benches);
