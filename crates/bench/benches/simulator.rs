//! Simulator throughput benchmarks: cost of one round at steady state
//! (after convergence all traffic is InfoMsg gossip + periodic searches).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssmdst_bench::run_instance;
use ssmdst_core::{build_network, Config};
use ssmdst_graph::generators::GraphFamily;
use ssmdst_sim::{Runner, Scheduler};
use std::hint::black_box;

fn bench_round_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("round-throughput");
    g.sample_size(20);
    // n is capped at 32: steady-state search storms on larger instances
    // make single-round latency extremely noisy (minutes of sampling for
    // no extra information — T2/T3 cover the scaling story).
    for n in [16usize, 32] {
        let graph = GraphFamily::GnpSparse.generate(n, 1);
        // Pre-converge so we measure steady-state rounds, not churn.
        let (_, runner) = run_instance(
            &graph,
            Config::for_n(graph.n()),
            Scheduler::Synchronous,
            400_000,
        );
        g.bench_with_input(BenchmarkId::new("steady-state", n), &(), |b, _| {
            let mut r = runner_clone_hack(&graph, &runner);
            b.iter(|| {
                r.step_round();
                black_box(r.round())
            })
        });
    }
    g.finish();
}

/// Runner holds the network by value and is not `Clone`; rebuild an
/// equivalent steady-state runner for each measurement by re-running the
/// convergence (cheap at these sizes, done once per bench input).
fn runner_clone_hack(
    graph: &ssmdst_graph::Graph,
    _template: &Runner<ssmdst_core::MdstNode>,
) -> Runner<ssmdst_core::MdstNode> {
    let (_, r) = run_instance(
        graph,
        Config::for_n(graph.n()),
        Scheduler::Synchronous,
        400_000,
    );
    r
}

fn bench_network_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("network-build");
    for n in [64usize, 256] {
        let graph = GraphFamily::GnpSparse.generate(n, 1);
        g.bench_with_input(BenchmarkId::new("from-graph", n), &graph, |b, graph| {
            b.iter(|| {
                let net = build_network(black_box(graph), Config::for_n(graph.n()));
                black_box(net.n())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_round_throughput, bench_network_build);
criterion_main!(benches);
