//! Simulator throughput benchmarks: cost of one round at steady state
//! (after convergence all traffic is InfoMsg gossip + periodic searches).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssmdst_bench::run_instance;
use ssmdst_core::{build_network, Config};
use ssmdst_graph::generators::GraphFamily;
use ssmdst_sim::{Runner, Scheduler};
use std::hint::black_box;

fn bench_round_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("round-throughput");
    g.sample_size(20);
    // n is capped at 32: steady-state search storms on larger instances
    // make single-round latency extremely noisy (minutes of sampling for
    // no extra information — T2/T3 cover the scaling story).
    for n in [16usize, 32] {
        let graph = GraphFamily::GnpSparse.generate(n, 1);
        // Pre-converge so we measure steady-state rounds, not churn.
        let (_, runner) = run_instance(
            &graph,
            Config::for_n(graph.n()),
            Scheduler::Synchronous,
            400_000,
        );
        g.bench_with_input(BenchmarkId::new("steady-state", n), &(), |b, _| {
            let mut r = runner_clone_hack(&graph, &runner);
            b.iter(|| {
                r.step_round();
                black_box(r.round())
            })
        });
    }
    g.finish();
}

/// Runner holds the network by value and is not `Clone`; rebuild an
/// equivalent steady-state runner for each measurement by re-running the
/// convergence (cheap at these sizes, done once per bench input).
fn runner_clone_hack(
    graph: &ssmdst_graph::Graph,
    _template: &Runner<ssmdst_core::MdstNode>,
) -> Runner<ssmdst_core::MdstNode> {
    steady_state_runner(graph)
}

/// Old-vs-new engine: the same steady-state round driven by the indexed
/// event queue (`step_round`) vs the pre-engine full rescan of every node
/// and channel (`step_round_rescan`). Both execute the identical schedule
/// (the equivalence is asserted by `event_engine_matches_rescan_engine` in
/// ssmdst-sim), so the delta is pure obligation-discovery cost — the
/// quantity the event-driven engine exists to shrink.
fn bench_engine_compare(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine-compare");
    g.sample_size(20);
    for n in [16usize, 32] {
        let graph = GraphFamily::GnpSparse.generate(n, 1);
        g.bench_with_input(BenchmarkId::new("event-engine", n), &graph, |b, graph| {
            let mut r = steady_state_runner(graph);
            b.iter(|| {
                r.step_round();
                black_box(r.round())
            })
        });
        g.bench_with_input(BenchmarkId::new("legacy-rescan", n), &graph, |b, graph| {
            let mut r = steady_state_runner(graph);
            b.iter(|| {
                r.step_round_rescan();
                black_box(r.round())
            })
        });
    }
    g.finish();
}

/// Sparse-activity workload: one sentinel node circulates a single token
/// while everyone else is disabled — the regime where obligation
/// *discovery* dominates obligation *execution*. A protocol round here has
/// 2 obligations; the legacy path still rescans all `n` nodes and all
/// `2m` channels to find them, while the event engine reads its indices.
/// (The steady-state MDST rounds above are obligation-dominated — every
/// node gossips every round — so the two engines tie there by design.)
fn bench_sparse_activity(c: &mut Criterion) {
    // The workload definition is shared with the S1–S3 experiments
    // (`experiments::fabric`), so this group and the committed
    // BENCH_flat_fabric.json measure the identical regime.
    use ssmdst_bench::experiments::fabric::sentinel_network;

    let mut g = c.benchmark_group("engine-compare-sparse");
    g.sample_size(20);
    // 4096 uses the skip-sampling generator: the O(n²) coin-flip loop of
    // GnpSparse would dominate setup long before the bench body runs.
    // (The full S1–S3 sweep to n = 65 536 lives in `experiments -- s1..s3`
    // and is committed as BENCH_flat_fabric.json.)
    for n in [256usize, 1024, 4096] {
        let graph = if n <= 1024 {
            GraphFamily::GnpSparse.generate(n, 1)
        } else {
            ssmdst_graph::generators::random::gnp_connected_sparse(n, 8.0 / n as f64, 1)
        };
        g.bench_with_input(BenchmarkId::new("event-engine", n), &(), |b, _| {
            let mut r = Runner::new(sentinel_network(&graph), Scheduler::Synchronous);
            b.iter(|| {
                r.step_round();
                black_box(r.round())
            })
        });
        g.bench_with_input(BenchmarkId::new("legacy-rescan", n), &(), |b, _| {
            let mut r = Runner::new(sentinel_network(&graph), Scheduler::Synchronous);
            b.iter(|| {
                r.step_round_rescan();
                black_box(r.round())
            })
        });
    }
    g.finish();
}

/// A converged runner for steady-state round measurements.
fn steady_state_runner(graph: &ssmdst_graph::Graph) -> Runner<ssmdst_core::MdstNode> {
    let (_, r) = run_instance(
        graph,
        Config::for_n(graph.n()),
        Scheduler::Synchronous,
        400_000,
    );
    r
}

fn bench_network_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("network-build");
    for n in [64usize, 256] {
        let graph = GraphFamily::GnpSparse.generate(n, 1);
        g.bench_with_input(BenchmarkId::new("from-graph", n), &graph, |b, graph| {
            b.iter(|| {
                let net = build_network(black_box(graph), Config::for_n(graph.n()));
                black_box(net.n())
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_round_throughput,
    bench_engine_compare,
    bench_sparse_activity,
    bench_network_build
);
criterion_main!(benches);
