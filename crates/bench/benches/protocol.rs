//! End-to-end protocol benchmarks: wall-clock cost of full convergence on
//! the experiment workloads (the Criterion companion to tables T1/T2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssmdst_bench::run_instance;
use ssmdst_core::Config;
use ssmdst_graph::generators::{structured, GraphFamily};
use ssmdst_sim::Scheduler;
use std::hint::black_box;

fn bench_convergence_by_family(c: &mut Criterion) {
    let mut g = c.benchmark_group("convergence");
    g.sample_size(10);
    for fam in [
        GraphFamily::GnpSparse,
        GraphFamily::ScaleFree,
        GraphFamily::HamiltonianChords,
    ] {
        let graph = fam.generate(16, 1);
        g.bench_with_input(
            BenchmarkId::new("family", fam.label()),
            &graph,
            |b, graph| {
                b.iter(|| {
                    let (res, _) = run_instance(
                        black_box(graph),
                        Config::for_n(graph.n()),
                        Scheduler::Synchronous,
                        100_000,
                    );
                    assert!(res.converged);
                    res.conv_round
                })
            },
        );
    }
    g.finish();
}

fn bench_convergence_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("convergence-scaling");
    g.sample_size(10);
    for n in [8usize, 16, 24] {
        let graph = structured::star_with_ring(n).unwrap();
        g.bench_with_input(BenchmarkId::new("star-ring", n), &graph, |b, graph| {
            b.iter(|| {
                let (res, _) = run_instance(
                    black_box(graph),
                    Config::for_n(graph.n()),
                    Scheduler::Synchronous,
                    200_000,
                );
                assert!(res.converged);
                res.conv_round
            })
        });
    }
    g.finish();
}

fn bench_schedulers(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler");
    g.sample_size(10);
    let graph = GraphFamily::GnpSparse.generate(16, 1);
    for (label, sched) in [
        ("synchronous", Scheduler::Synchronous),
        ("random-async", Scheduler::RandomAsync { seed: 1 }),
        ("adversarial", Scheduler::Adversarial { seed: 1 }),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let (res, _) =
                    run_instance(black_box(&graph), Config::for_n(graph.n()), sched, 200_000);
                assert!(res.converged);
                res.conv_round
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_convergence_by_family,
    bench_convergence_scaling,
    bench_schedulers
);
criterion_main!(benches);
