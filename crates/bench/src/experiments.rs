//! The experiment suite — one function per table/figure of DESIGN.md §3.
//!
//! Each function returns the rendered [`Table`] (tests assert on shapes and
//! invariants; the `experiments` binary prints them). The paper has no
//! empirical section, so each experiment validates one of its *claims*;
//! EXPERIMENTS.md records claim vs. measurement.
//!
//! Since the scenario engine landed, the T/F/A/D families are
//! **scenario-driven**: every table row is produced by running a named,
//! serializable [`Scenario`] through `ssmdst_scenario::engine`, so any row
//! is a replayable artifact — rebuild the same scenario (family, n, seed,
//! daemon, config, events) and the run reproduces bit-for-bit. The S
//! family measures the message *fabric* with purpose-built automata (not
//! the MDST protocol), so it stays on its own driver.

use crate::instance::Instrument;
use crate::table::Table;
use ssmdst_baselines as baselines;
use ssmdst_graph::generators::GraphFamily;
use ssmdst_graph::{Graph, SolveBudget};
use ssmdst_scenario::engine::{self, EngineOpts};
use ssmdst_scenario::{
    ConfigSpec, CorruptSpec, EventAction, Scenario, ScenarioEvent, SchedSpec, TopologySpec,
};
use ssmdst_sim::TopologyPlan;

/// Sweep sizing. `quick` keeps the full suite under ~a minute in release;
/// `full` is the EXPERIMENTS.md configuration.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Sizes for exact-ground-truth experiments (Δ* computed).
    pub small_sizes: Vec<usize>,
    /// Sizes for scaling experiments (lower bounds only).
    pub large_sizes: Vec<usize>,
    /// Sizes for the S1–S3 message-fabric scale experiments. These run the
    /// fabric (not protocol convergence), so tens of thousands of nodes
    /// stay affordable even in the quick profile; the first entry is the
    /// baseline the flat-discovery ratio is reported against.
    pub scale_sizes: Vec<usize>,
    /// Random seeds per configuration.
    pub seeds: Vec<u64>,
    /// Round cap per run.
    pub max_rounds: u64,
}

impl Profile {
    /// Small, fast sweep.
    pub fn quick() -> Self {
        Profile {
            small_sizes: vec![12],
            large_sizes: vec![16, 24],
            scale_sizes: vec![256, 4096, 65536],
            seeds: vec![1],
            max_rounds: 60_000,
        }
    }

    /// The configuration used to produce EXPERIMENTS.md.
    pub fn full() -> Self {
        Profile {
            small_sizes: vec![12, 16],
            large_sizes: vec![16, 24, 32, 48, 64],
            scale_sizes: vec![256, 4096, 16384, 65536],
            seeds: vec![1, 2, 3],
            max_rounds: 400_000,
        }
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// The scenario behind one plain-convergence table row: family instance,
/// daemon, full round budget, no faults. The name makes the row a
/// replayable artifact.
fn row_scenario(
    id: &str,
    fam: GraphFamily,
    n: usize,
    seed: u64,
    sched: SchedSpec,
    p: &Profile,
) -> Scenario {
    Scenario::converge(
        format!("{id}-{}-n{n}-s{seed}", fam.label()),
        TopologySpec::family(fam, n, seed),
        sched,
        p.max_rounds,
    )
}

/// Engine options for experiments that do not report Δ*: skip the exact
/// per-component solver when judging phases (the run itself is identical).
fn no_exact() -> EngineOpts {
    EngineOpts {
        delta_budget: SolveBudget { max_nodes: 0 },
    }
}

/// Ground truth for Δ*: the exact engine's certified interval — exact when
/// the interval settles, else the witness-certified floor as `≥ lb`.
fn delta_star_str(g: &Graph) -> (String, Option<u32>) {
    let sol = ssmdst_exact::Solver::builder()
        .settle_budget(2_000_000)
        .settle_max_n(256)
        .build()
        .solve(g);
    match sol.delta_star() {
        Some(d) => (d.to_string(), Some(d)),
        None => (format!("≥{}", sol.lower), None),
    }
}

/// **T1 — Degree quality** (Theorem 2: `deg(T) ≤ Δ* + 1`).
pub fn t1_degree_quality(p: &Profile) -> Table {
    let mut t = Table::new(vec![
        "family",
        "n",
        "m",
        "Δ(G)",
        "deg(ssmdst)",
        "Δ*",
        "≤Δ*+1",
    ]);
    for &fam in GraphFamily::all() {
        for &n in &p.small_sizes {
            for &seed in &p.seeds {
                let scn = row_scenario("t1", fam, n, seed, SchedSpec::Synchronous, p);
                let g = scn.topology.build();
                let (res, _) = engine::run_opts(&scn, no_exact());
                let (ds_str, ds) = match fam.known_delta_star(&g) {
                    Some(d) => (d.to_string(), Some(d)),
                    None => delta_star_str(&g),
                };
                let deg = res.final_degree;
                let ok = match (deg, ds) {
                    (Some(d), Some(s)) => {
                        if d <= s + 1 {
                            "yes"
                        } else {
                            "NO"
                        }
                    }
                    _ => "?",
                };
                t.row(vec![
                    fam.label().to_string(),
                    g.n().to_string(),
                    g.m().to_string(),
                    g.max_degree().to_string(),
                    deg.map(|d| d.to_string()).unwrap_or("-".into()),
                    ds_str,
                    ok.to_string(),
                ]);
            }
        }
    }
    t
}

/// **T2 — Convergence rounds** vs the `O(m n² log n)` bound (Lemma 5).
pub fn t2_convergence(p: &Profile) -> Table {
    let mut t = Table::new(vec![
        "family",
        "n",
        "m",
        "rounds",
        "m·n²·lg n",
        "rounds/bound",
    ]);
    for fam in [
        GraphFamily::GnpSparse,
        GraphFamily::Geometric,
        GraphFamily::ScaleFree,
    ] {
        for &n in &p.large_sizes {
            let mut rounds = Vec::new();
            let mut ms = Vec::new();
            let mut real_n = 0;
            for &seed in &p.seeds {
                let scn = row_scenario("t2", fam, n, seed, SchedSpec::Synchronous, p);
                let (res, _) = engine::run_opts(&scn, no_exact());
                real_n = res.n;
                ms.push(res.m as f64);
                rounds.push(if res.converged {
                    res.conv_round as f64
                } else {
                    f64::NAN
                });
            }
            let r = mean(&rounds);
            let m = mean(&ms);
            let bound = m * (real_n as f64).powi(2) * (real_n as f64).log2();
            t.row(vec![
                fam.label().to_string(),
                real_n.to_string(),
                format!("{m:.0}"),
                format!("{r:.0}"),
                format!("{bound:.1e}"),
                format!("{:.2e}", r / bound),
            ]);
        }
    }
    t
}

/// **T3 — Message complexity by kind** at convergence.
pub fn t3_messages(p: &Profile) -> Table {
    let mut t = Table::new(vec![
        "family", "n", "total", "InfoMsg", "Search", "Remove", "Flip", "Deblock", "Dist*",
    ]);
    for fam in [GraphFamily::GnpSparse, GraphFamily::ScaleFree] {
        for &n in &p.large_sizes {
            let seed = p.seeds[0];
            let scn = row_scenario("t3", fam, n, seed, SchedSpec::Synchronous, p);
            let (res, _) = engine::run_opts(&scn, no_exact());
            let get = |k: &str| {
                res.msgs_by_kind
                    .iter()
                    .find(|&&(kind, _, _)| kind == k)
                    .map(|&(_, s, _)| s)
                    .unwrap_or(0)
            };
            let dist = get("DistChain") + get("DistFlood");
            t.row(vec![
                fam.label().to_string(),
                res.n.to_string(),
                res.total_msgs.to_string(),
                get("InfoMsg").to_string(),
                get("Search").to_string(),
                get("Remove").to_string(),
                get("Flip").to_string(),
                get("Deblock").to_string(),
                dist.to_string(),
            ]);
        }
    }
    t
}

/// **T4 — Memory per node** vs the `O(δ log n)` claim. The measured value
/// is the live state of the *converged* network (the paper's variables,
/// the δ neighbor mirrors of the send/receive model, and the throttle
/// counters), so the ratio column is the empirical constant in front of
/// `δ·log₂ n` — the claim holds iff it stays bounded as n grows.
pub fn t4_memory(p: &Profile) -> Table {
    let mut t = Table::new(vec![
        "family",
        "n",
        "δ",
        "bits/node (max, measured)",
        "δ·lg n",
        "constant",
    ]);
    for fam in [GraphFamily::GnpSparse, GraphFamily::GnpDense] {
        for &n in &p.large_sizes {
            let scn = row_scenario("t4", fam, n, p.seeds[0], SchedSpec::Synchronous, p);
            let g = scn.topology.build();
            let (_, runner) = engine::run_opts(&scn, no_exact());
            let max_bits = ssmdst_core::oracle::max_state_bits(runner.network());
            let delta = g.max_degree();
            let b = (usize::BITS - (g.n().max(2) - 1).leading_zeros()) as usize;
            let bound = delta * b;
            t.row(vec![
                fam.label().to_string(),
                g.n().to_string(),
                delta.to_string(),
                max_bits.to_string(),
                bound.to_string(),
                format!("{:.2}", max_bits as f64 / bound as f64),
            ]);
        }
    }
    t
}

/// **T5 — Baseline comparison**: final degree of every method.
pub fn t5_baselines(p: &Profile) -> Table {
    let mut t = Table::new(vec![
        "family", "n", "BFS", "DFS", "random", "greedy", "FR", "ssmdst", "Δ*",
    ]);
    for &fam in GraphFamily::all() {
        let n = *p.large_sizes.first().unwrap_or(&16);
        let seed = p.seeds[0];
        let scn = row_scenario("t5", fam, n, seed, SchedSpec::Synchronous, p);
        let g = scn.topology.build();
        let bfs = baselines::bfs_spanning_tree(&g, 0).expect("family graphs are connected"); // lint: allow(no-panic-in-library) — every GraphFamily generates a connected instance
        let dfs = baselines::dfs_spanning_tree(&g, 0).expect("family graphs are connected"); // lint: allow(no-panic-in-library) — every GraphFamily generates a connected instance
        let rnd = baselines::random_spanning_tree(&g, seed).expect("family graphs are connected"); // lint: allow(no-panic-in-library) — every GraphFamily generates a connected instance
        let greedy =
            baselines::greedy_min_degree_tree(&g, seed).expect("family graphs are connected"); // lint: allow(no-panic-in-library) — every GraphFamily generates a connected instance
        let (fr, _) = baselines::fr_mdst(&g, bfs.clone());
        let (res, _) = engine::run_opts(&scn, no_exact());
        let (ds_str, _) = match fam.known_delta_star(&g) {
            Some(d) => (d.to_string(), Some(d)),
            None => delta_star_str(&g),
        };
        t.row(vec![
            fam.label().to_string(),
            g.n().to_string(),
            bfs.max_degree().to_string(),
            dfs.max_degree().to_string(),
            rnd.max_degree().to_string(),
            greedy.max_degree().to_string(),
            fr.max_degree().to_string(),
            res.final_degree
                .map(|d| d.to_string())
                .unwrap_or("-".into()),
            ds_str,
        ]);
    }
    t
}

/// **F1 — Convergence trajectory**: `deg(T)` at every change, one instance.
pub fn f1_trajectory(p: &Profile) -> Table {
    let mut t = Table::new(vec!["instance", "round", "deg(T)"]);
    for (label, topo) in [
        ("star-ring n=16", TopologySpec::StarRing { n: 16 }),
        (
            "gnp-dense n=24",
            TopologySpec::family(GraphFamily::GnpDense, 24, p.seeds[0]),
        ),
    ] {
        let scn = Scenario::converge(
            format!("f1-{}", label.replace([' ', '='], "-")),
            topo,
            SchedSpec::Synchronous,
            p.max_rounds,
        );
        let g = scn.topology.build();
        let mut ins = Instrument::new(&g);
        let (_, _) =
            engine::run_observed_opts(&scn, no_exact(), |net, round| ins.observe(net, round));
        for (round, deg) in ins.trajectory() {
            t.row(vec![label.to_string(), round.to_string(), deg.to_string()]);
        }
    }
    t
}

/// **F2 — Fault recovery** (Definition 1 convergence): corrupt a fraction
/// of nodes after stabilization, measure re-convergence.
pub fn f2_fault_recovery(p: &Profile) -> Table {
    let mut t = Table::new(vec![
        "fraction",
        "recovery rounds",
        "deg before",
        "deg after",
        "tree ok",
    ]);
    let n = *p.large_sizes.first().unwrap_or(&16);
    for &frac in &[0.1f64, 0.25, 0.5, 1.0] {
        let mut rounds = Vec::new();
        let mut before = 0u32;
        let mut after = 0u32;
        let mut all_ok = true;
        for &seed in &p.seeds {
            let mut scn = row_scenario(
                &format!("f2-frac{}", (frac * 100.0) as u32),
                GraphFamily::GnpSparse,
                n,
                seed,
                SchedSpec::Synchronous,
                p,
            );
            scn.events = vec![ScenarioEvent::stable(EventAction::Fault(CorruptSpec {
                fraction: frac,
                drop: 0.0,
                seed: seed + 100,
            }))];
            let (res, _) = engine::run_opts(&scn, no_exact());
            before = before.max(res.phases[0].degree);
            rounds.push(res.phases[1].rounds as f64);
            after = after.max(res.final_degree.unwrap_or(u32::MAX));
            all_ok &= res.phases[1].converged && res.final_degree.is_some();
        }
        t.row(vec![
            format!("{frac:.2}"),
            format!("{:.0}", mean(&rounds)),
            before.to_string(),
            after.to_string(),
            if all_ok {
                "yes".into()
            } else {
                "NO".to_string()
            },
        ]);
    }
    t
}

/// **F3 — Concurrent improvements** (intro claim vs the serialized \[3\]):
/// max simultaneous max-degree drops, and round cost vs the serialized
/// baseline charged `diameter + search` per improvement.
///
/// The workload is the purpose-built `multi_hub` gadget: every hub starts
/// at maximum degree simultaneously, so a protocol that can only improve
/// one node at a time (the fragment-based \[3\]) pays per hub, while the
/// fundamental-cycle protocol drops several hubs in the same wave.
pub fn f3_concurrency(p: &Profile) -> Table {
    let mut t = Table::new(vec![
        "instance",
        "n",
        "#hubs",
        "max simultaneous drops",
        "ssmdst rounds",
        "serialized rounds",
        "speedup",
    ]);
    let spokes = 5usize;
    for hubs in [2usize, 4, 6] {
        let scn = Scenario::converge(
            format!("f3-multi-hub-{hubs}x{spokes}"),
            TopologySpec::MultiHub { hubs, spokes },
            SchedSpec::Synchronous,
            p.max_rounds,
        );
        let g = scn.topology.build();
        let mut ins = Instrument::new(&g);
        let (res, _) =
            engine::run_observed_opts(&scn, no_exact(), |net, round| ins.observe(net, round));
        let t0 = baselines::bfs_spanning_tree(&g, 0).expect("multi-hub graphs are connected"); // lint: allow(no-panic-in-library) — multi_hub builds a connected gadget
        let diam = ssmdst_graph::traversal::diameter(&g).unwrap_or(1) as u64;
        // The serialized emulation pays a full refresh (≥ diameter rounds,
        // as \[3\] re-propagates fragment info) plus one search per phase.
        let per_phase = diam + 2 * g.n() as u64;
        let (_, ser) = baselines::serialized_mdst(&g, t0, per_phase);
        t.row(vec![
            format!("multi-hub({hubs}x{spokes})"),
            g.n().to_string(),
            hubs.to_string(),
            ins.max_simultaneous_drops().to_string(),
            res.conv_round.to_string(),
            ser.charged_rounds.to_string(),
            format!(
                "{:.2}x",
                ser.charged_rounds as f64 / res.conv_round.max(1) as f64
            ),
        ]);
    }
    t
}

/// **F4 — Scheduler sensitivity**: the protocol converges under any fair
/// daemon; rounds differ by a constant factor.
pub fn f4_schedulers(p: &Profile) -> Table {
    let mut t = Table::new(vec!["scheduler", "family", "n", "rounds", "deg"]);
    let n = *p.large_sizes.first().unwrap_or(&16);
    for (label, sched) in [
        ("synchronous", SchedSpec::Synchronous),
        ("random-async", SchedSpec::RandomAsync { seed: 11 }),
        ("adversarial", SchedSpec::Adversarial { seed: 11 }),
    ] {
        for fam in [GraphFamily::GnpSparse, GraphFamily::ScaleFree] {
            let scn = row_scenario(&format!("f4-{label}"), fam, n, p.seeds[0], sched, p);
            let (res, _) = engine::run_opts(&scn, no_exact());
            t.row(vec![
                label.to_string(),
                fam.label().to_string(),
                res.n.to_string(),
                res.conv_round.to_string(),
                res.final_degree
                    .map(|d| d.to_string())
                    .unwrap_or("-".into()),
            ]);
        }
    }
    t
}

/// **F5 — Maximum message length** vs the `O(n log n)` buffer claim.
pub fn f5_message_length(p: &Profile) -> Table {
    let mut t = Table::new(vec!["n", "max msg bits", "n·lg n", "ratio"]);
    for &n in &p.large_sizes {
        let scn = row_scenario(
            "f5",
            GraphFamily::GnpSparse,
            n,
            p.seeds[0],
            SchedSpec::Synchronous,
            p,
        );
        let (res, _) = engine::run_opts(&scn, no_exact());
        let bound = res.n as f64 * (res.n as f64).log2();
        t.row(vec![
            res.n.to_string(),
            res.max_msg_bits.to_string(),
            format!("{bound:.0}"),
            format!("{:.2}", res.max_msg_bits as f64 / bound),
        ]);
    }
    t
}

/// **A1 — Ablation: strict vs gentle distance repair** on fault recovery.
pub fn a1_strict_vs_gentle(p: &Profile) -> Table {
    let mut t = Table::new(vec!["mode", "n", "convergence", "recovery (50% fault)"]);
    let n = *p.large_sizes.first().unwrap_or(&16);
    for (label, cfg) in [
        ("gentle (default)", ConfigSpec::Default),
        ("strict (paper R2)", ConfigSpec::Strict),
    ] {
        let mut conv = Vec::new();
        let mut rec = Vec::new();
        for &seed in &p.seeds {
            let mut scn = row_scenario(
                &format!(
                    "a1-{}",
                    if cfg == ConfigSpec::Strict {
                        "strict"
                    } else {
                        "gentle"
                    }
                ),
                GraphFamily::GnpSparse,
                n,
                seed,
                SchedSpec::Synchronous,
                p,
            );
            scn.config = cfg;
            scn.events = vec![ScenarioEvent::stable(EventAction::Fault(CorruptSpec {
                fraction: 0.5,
                drop: 0.0,
                seed: seed + 7,
            }))];
            let (res, _) = engine::run_opts(&scn, no_exact());
            conv.push(if res.phases[0].converged {
                res.phases[0].rounds as f64
            } else {
                f64::NAN
            });
            rec.push(if res.phases[1].converged {
                res.phases[1].rounds as f64
            } else {
                f64::NAN
            });
        }
        t.row(vec![
            label.to_string(),
            n.to_string(),
            format!("{:.0}", mean(&conv)),
            format!("{:.0}", mean(&rec)),
        ]);
    }
    t
}

/// **A2 — Ablation: Deblock disabled**: final degree degrades on instances
/// whose improvements are endpoint-blocked. Besides random families, the
/// table includes complete-bipartite instances where every improving swap
/// for the left side necessarily routes through near-maximum nodes —
/// blocking by construction.
pub fn a2_deblock(p: &Profile) -> Table {
    let mut t = Table::new(vec![
        "instance",
        "n",
        "deg with Deblock",
        "deg without",
        "Δ*",
    ]);
    let mut cases: Vec<(String, TopologySpec)> = Vec::new();
    for fam in [GraphFamily::GnpDense, GraphFamily::ScaleFree] {
        let n = *p.small_sizes.first().unwrap_or(&12);
        for &seed in &p.seeds {
            cases.push((
                format!("{} s{}", fam.label(), seed),
                TopologySpec::family(fam, n, seed),
            ));
        }
    }
    for (a, b) in [(2usize, 6usize), (3, 9)] {
        cases.push((
            format!("K_{{{a},{b}}}"),
            TopologySpec::CompleteBipartite { a, b },
        ));
    }
    for (i, (label, topo)) in cases.into_iter().enumerate() {
        let g = topo.build();
        let run_cfg = |cfg: ConfigSpec, tag: &str| {
            let mut scn = Scenario::converge(
                format!("a2-case{i}-{tag}"),
                topo.clone(),
                SchedSpec::Synchronous,
                p.max_rounds,
            );
            scn.config = cfg;
            engine::run_opts(&scn, no_exact()).0
        };
        let with = run_cfg(ConfigSpec::Default, "deblock");
        let without = run_cfg(ConfigSpec::NoDeblock, "no-deblock");
        let (ds_str, _) = delta_star_str(&g);
        t.row(vec![
            label,
            g.n().to_string(),
            with.final_degree
                .map(|d| d.to_string())
                .unwrap_or("-".into()),
            without
                .final_degree
                .map(|d| d.to_string())
                .unwrap_or("-".into()),
            ds_str,
        ]);
    }
    t
}

/// **A3 — Ablation: busy latch disabled**: without serialization of
/// overlapping improvements, crossing reversal arcs corrupt the tree and
/// trigger re-election storms; convergence slows or stalls (the round cap
/// is reported when it does).
pub fn a3_busy_latch(p: &Profile) -> Table {
    let mut t = Table::new(vec!["mode", "family", "n", "rounds", "converged", "deg"]);
    let n = *p.large_sizes.last().unwrap_or(&24);
    for (label, cfg) in [
        ("latched (default)", ConfigSpec::Default),
        ("unlatched", ConfigSpec::NoBusyLatch),
    ] {
        for fam in [GraphFamily::GnpSparse, GraphFamily::GnpDense] {
            // Cap tighter than the global budget: an unlatched livelock
            // otherwise dominates the suite's runtime.
            let cap = p.max_rounds.min(60_000);
            let mut scn = Scenario::converge(
                format!(
                    "a3-{}-{}",
                    fam.label(),
                    label.split(' ').next().unwrap_or(label)
                ),
                TopologySpec::family(fam, n, p.seeds[0]),
                SchedSpec::Synchronous,
                cap,
            );
            scn.config = cfg;
            let (res, _) = engine::run_opts(&scn, no_exact());
            t.row(vec![
                label.to_string(),
                fam.label().to_string(),
                res.n.to_string(),
                res.conv_round.to_string(),
                if res.converged {
                    "yes".into()
                } else {
                    format!("NO (cap {cap})")
                },
                res.final_degree
                    .map(|d| d.to_string())
                    .unwrap_or("-".into()),
            ]);
        }
    }
    t
}

/// Shared body of the D experiments: run `plan` on every daemon, one table
/// row per (daemon, event), judged component-wise by `ssmdst_core::churn`.
/// Each (daemon, plan) pair is one named scenario — the whole row group is
/// replayable as an artifact.
fn churn_table(topo: &TopologySpec, plan: &TopologyPlan, p: &Profile, label: &str) -> Table {
    let mut t = Table::new(vec![
        "scheduler",
        "event",
        "recovery rounds",
        "components",
        "deg",
        "Δ*",
        "≤Δ*+1",
    ]);
    for (name, sched) in [
        ("synchronous", SchedSpec::Synchronous),
        ("random-async", SchedSpec::RandomAsync { seed: 11 }),
        ("adversarial", SchedSpec::Adversarial { seed: 11 }),
    ] {
        let mut scn = Scenario::converge(
            format!("d-{label}-{name}"),
            topo.clone(),
            sched,
            p.max_rounds,
        );
        scn.events = plan
            .events
            .iter()
            .cloned()
            .map(|e| ScenarioEvent::stable(EventAction::Churn(e)))
            .collect();
        let (res, _) = engine::run(&scn);
        for ph in &res.phases {
            t.row(vec![
                name.to_string(),
                format!("{label}:{}", ph.label),
                ph.rounds.to_string(),
                ph.components.to_string(),
                ph.degree.to_string(),
                ph.delta_star
                    .map(|d| d.to_string())
                    .unwrap_or_else(|| "?".into()),
                if ph.ok {
                    "yes".into()
                } else {
                    "NO".to_string()
                },
            ]);
        }
    }
    t
}

/// **D1 — Edge churn** (dynamic topology): remove and re-insert non-bridge
/// edges; after each event the tree must re-fit the changed cycle space.
pub fn d1_edge_churn(p: &Profile) -> Table {
    let n = *p.small_sizes.first().unwrap_or(&12);
    let topo = TopologySpec::family(GraphFamily::GnpSparse, n, p.seeds[0]);
    let plan = TopologyPlan::edge_churn(&topo.build(), 2, p.seeds[0]);
    churn_table(&topo, &plan, p, "edge")
}

/// **D2 — Node crash/rejoin**: non-articulation nodes crash (their edges
/// and in-flight traffic vanish) and later rejoin with stale state.
pub fn d2_node_churn(p: &Profile) -> Table {
    let n = *p.small_sizes.first().unwrap_or(&12);
    let topo = TopologySpec::family(GraphFamily::GnpSparse, n, p.seeds[0]);
    let plan = TopologyPlan::node_churn(&topo.build(), 2, p.seeds[0]);
    churn_table(&topo, &plan, p, "node")
}

/// **D3 — Partition/heal**: the network splits into halves that must each
/// re-stabilize to their own tree, then merge back under a single root.
pub fn d3_partition_heal(p: &Profile) -> Table {
    let n = *p.small_sizes.first().unwrap_or(&12);
    let topo = TopologySpec::family(GraphFamily::GnpSparse, n, p.seeds[0]);
    let plan = TopologyPlan::partition_heal(&topo.build(), p.seeds[0]);
    churn_table(&topo, &plan, p, "split")
}

/// **C1 — Scenario campaign**: the conformance corpus fanned out over
/// worker threads ([`ssmdst_sim::parallel::run_many`]). One row per
/// scenario; the digest column is the replay identity — re-running the
/// named scenario must reproduce it bit-for-bit (`ssmdst replay NAME`).
pub fn c1_campaign(_p: &Profile) -> Table {
    let mut t = Table::new(vec![
        "scenario",
        "scheduler",
        "n",
        "m",
        "converged",
        "rounds",
        "deg",
        "msgs",
        "ok",
        "digest",
    ]);
    let corpus = ssmdst_scenario::corpus::corpus();
    let rows = ssmdst_scenario::run_campaign(&corpus, ssmdst_sim::parallel::default_workers());
    for r in rows {
        t.row(vec![
            r.name,
            r.scheduler.to_string(),
            r.n.to_string(),
            r.m.to_string(),
            if r.converged {
                "yes".into()
            } else {
                "NO".to_string()
            },
            r.rounds.to_string(),
            r.degree
                .map(|d| d.to_string())
                .unwrap_or_else(|| "-".into()),
            r.total_msgs.to_string(),
            if r.ok { "yes".into() } else { "NO".to_string() },
            format!("{:016x}", r.digest),
        ]);
    }
    t
}

// ----------------------------------------------------------------------
// S family — message-fabric scale (n = 256 … 65 536)
// ----------------------------------------------------------------------

/// Workloads for the fabric scale sweep. They drive the *fabric*, not
/// protocol convergence: the quantity under test is what one round costs
/// at n = 65 536, which is a property of slot addressing and the
/// occupancy/tick indices, independent of the MDST rules.
///
/// Public because `benches/simulator.rs` reuses the same workloads for the
/// criterion `engine-compare-sparse` group — one definition, so the S
/// tables and the micro-benchmarks measure the identical regime.
pub mod fabric {
    use ssmdst_sim::{Automaton, Message, Network, Outbox, Runner, Scheduler};
    use std::time::Instant;

    #[derive(Debug, Clone, Copy)]
    pub struct Token;
    impl Message for Token {
        fn kind(&self) -> &'static str {
            "Token"
        }
        fn size_bits(&self, _n: usize) -> usize {
            1
        }
    }

    /// One sentinel circulates a token; everyone else is disabled — two
    /// obligations per round, so per-round cost ≈ pure discovery cost.
    pub struct Sentinel {
        first_neighbor: Option<u32>,
        active: bool,
    }
    impl Automaton for Sentinel {
        type Msg = Token;
        fn tick(&mut self, out: &mut Outbox<Token>) {
            if let Some(w) = self.first_neighbor {
                out.send(w, Token);
            }
        }
        fn receive(&mut self, _: u32, _: Token, _: &mut Outbox<Token>) {}
        fn enabled(&self) -> bool {
            self.active
        }
    }

    /// Every node gossips to all neighbors every round — the
    /// obligation-dense regime, measuring per-obligation execution cost.
    pub struct Gossip {
        neighbors: Vec<u32>,
        heard: u64,
    }
    impl Automaton for Gossip {
        type Msg = Token;
        fn tick(&mut self, out: &mut Outbox<Token>) {
            for &w in &self.neighbors {
                out.send(w, Token);
            }
        }
        fn receive(&mut self, _: u32, _: Token, _: &mut Outbox<Token>) {
            self.heard += 1;
        }
    }

    /// The sparse-activity workload over `g`: node 0 circulates a token,
    /// everyone else is disabled.
    pub fn sentinel_network(g: &ssmdst_graph::Graph) -> Network<Sentinel> {
        Network::from_graph(g, |v, nbrs| Sentinel {
            first_neighbor: nbrs.first().copied(),
            active: v == 0,
        })
    }

    /// The obligation-dense workload over `g`: everyone gossips to every
    /// neighbor every round.
    pub fn gossip_network(g: &ssmdst_graph::Graph) -> Network<Gossip> {
        Network::from_graph(g, |_, nbrs| Gossip {
            neighbors: nbrs.to_vec(),
            heard: 0,
        })
    }

    pub struct FabricRow {
        pub n: usize,
        pub m: usize,
        pub slots: usize,
        pub build_us: u128,
        pub event_ns_per_round: f64,
        pub rescan_ns_per_round: f64,
        pub gossip_ns_per_obligation: f64,
    }

    /// Measure one instance: fabric build time, sparse-activity round cost
    /// on both discovery paths, and dense-gossip per-obligation cost.
    pub fn measure(g: &ssmdst_graph::Graph) -> FabricRow {
        let build_start = Instant::now(); // lint: allow(no-ambient-entropy) — wall-clock measurement is the payload of this microbenchmark; never feeds simulation state
        let sentinel_net = sentinel_network(g);
        let build_us = build_start.elapsed().as_micros();
        let slots = sentinel_net.slot_count();

        // Sparse activity, event engine: cheap per round, so many rounds.
        let mut r = Runner::new(sentinel_net, Scheduler::Synchronous);
        let warmup = 64u64;
        for _ in 0..warmup {
            r.step_round();
        }
        let rounds = 16_384u64;
        let t = Instant::now(); // lint: allow(no-ambient-entropy) — wall-clock measurement is the payload of this microbenchmark; never feeds simulation state
        for _ in 0..rounds {
            r.step_round();
        }
        let event_ns_per_round = t.elapsed().as_nanos() as f64 / rounds as f64;

        // Same workload on the legacy full-rescan path: per-round cost is
        // O(n + slots), so scale the round count down to keep the sweep
        // bounded while retaining enough samples.
        let rescan_rounds = (1u64 << 24)
            .checked_div((g.n() + slots) as u64)
            .unwrap_or(1)
            .clamp(64, 16_384);
        let t = Instant::now(); // lint: allow(no-ambient-entropy) — wall-clock measurement is the payload of this microbenchmark; never feeds simulation state
        for _ in 0..rescan_rounds {
            r.step_round_rescan();
        }
        let rescan_ns_per_round = t.elapsed().as_nanos() as f64 / rescan_rounds as f64;

        // Dense gossip: a handful of rounds is plenty — each already
        // executes ~n + 2m obligations.
        let mut r = Runner::new(gossip_network(g), Scheduler::Synchronous);
        for _ in 0..2 {
            r.step_round(); // warm channel capacities
        }
        let gossip_rounds = 6u64;
        let delivered_before = r.network().metrics.total_delivered;
        let t = Instant::now(); // lint: allow(no-ambient-entropy) — wall-clock measurement is the payload of this microbenchmark; never feeds simulation state
        for _ in 0..gossip_rounds {
            r.step_round();
        }
        let elapsed = t.elapsed().as_nanos() as f64;
        let obligations =
            (r.network().metrics.total_delivered - delivered_before) + gossip_rounds * g.n() as u64;
        let gossip_ns_per_obligation = elapsed / obligations as f64;

        FabricRow {
            n: g.n(),
            m: g.m(),
            slots,
            build_us,
            event_ns_per_round,
            rescan_ns_per_round,
            gossip_ns_per_obligation,
        }
    }
}

/// Shared body of the S experiments: sweep `p.scale_sizes`, one row per
/// size. The `disc vs n₀` column is event-engine discovery cost relative
/// to the sweep's smallest size — the "flat, not log-linear" claim is that
/// it stays O(1)-ish while `rescan/event` grows linearly with n.
fn scale_table(p: &Profile, gen: impl Fn(usize, u64) -> Graph) -> Table {
    let mut t = Table::new(vec![
        "n",
        "m",
        "slots",
        "build µs",
        "event ns/round",
        "rescan ns/round",
        "rescan/event",
        "gossip ns/oblig",
        "disc vs n₀",
    ]);
    let mut baseline: Option<f64> = None;
    for &n in &p.scale_sizes {
        let g = gen(n, p.seeds[0]);
        let row = fabric::measure(&g);
        let base = *baseline.get_or_insert(row.event_ns_per_round);
        t.row(vec![
            row.n.to_string(),
            row.m.to_string(),
            row.slots.to_string(),
            row.build_us.to_string(),
            format!("{:.0}", row.event_ns_per_round),
            format!("{:.0}", row.rescan_ns_per_round),
            format!("{:.1}x", row.rescan_ns_per_round / row.event_ns_per_round),
            format!("{:.1}", row.gossip_ns_per_obligation),
            format!("{:.2}x", row.event_ns_per_round / base),
        ]);
    }
    t
}

/// **S1 — Fabric scale on sparse G(n,p)** (mean degree 8, skip-sampled
/// generation, connectivity-repaired).
pub fn s1_scale_gnp(p: &Profile) -> Table {
    scale_table(p, |n, seed| {
        ssmdst_graph::generators::random::gnp_connected_sparse(n, 8.0 / n as f64, seed)
    })
}

/// **S2 — Fabric scale on near-regular graphs** (target degree 8).
pub fn s2_scale_regular(p: &Profile) -> Table {
    scale_table(p, |n, seed| {
        ssmdst_graph::generators::random::near_regular(n, 8, seed)
    })
}

/// **S3 — Fabric scale on Barabási–Albert graphs** (attachment 2 —
/// heavy-tailed degrees stress the per-row binary search with hub rows).
pub fn s3_scale_ba(p: &Profile) -> Table {
    scale_table(p, |n, seed| {
        ssmdst_graph::generators::random::barabasi_albert(n, 2, seed)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Profile {
        Profile {
            small_sizes: vec![10],
            large_sizes: vec![12],
            scale_sizes: vec![64, 128],
            seeds: vec![1],
            max_rounds: 40_000,
        }
    }

    #[test]
    fn t1_reports_all_families_within_one() {
        let t = t1_degree_quality(&tiny());
        assert_eq!(t.len(), GraphFamily::all().len());
        let s = t.render();
        assert!(!s.contains("NO"), "quality violation:\n{s}");
    }

    #[test]
    fn t2_has_rows_and_finite_ratios() {
        let t = t2_convergence(&tiny());
        assert_eq!(t.len(), 3);
        assert!(!t.render().contains("NaN"));
    }

    #[test]
    fn t4_memory_is_within_constant_of_bound() {
        let t = t4_memory(&tiny());
        let s = t.render();
        // The measured constant in front of δ·lg n must stay small: the
        // encoding stores 6 fields per mirror plus throttles, so ~7–12 is
        // expected and anything past 20 would mean super-linear state.
        for line in s.lines().skip(2) {
            let c: f64 = line.split_whitespace().last().unwrap().parse().unwrap();
            assert!(c <= 20.0, "constant {c} too large:\n{s}");
        }
    }

    #[test]
    fn f3_concurrency_beats_serialized_at_scale() {
        let t = f3_concurrency(&tiny());
        assert_eq!(t.len(), 3);
        // The largest multi-hub instance must show a strict speedup.
        let s = t.render();
        let last = s.lines().last().unwrap();
        let speedup: f64 = last
            .split_whitespace()
            .last()
            .unwrap()
            .trim_end_matches('x')
            .parse()
            .unwrap();
        assert!(speedup > 1.0, "no concurrency advantage:\n{s}");
    }

    #[test]
    fn a3_latched_mode_converges() {
        let t = a3_busy_latch(&tiny());
        let s = t.render();
        for line in s.lines().filter(|l| l.starts_with("latched")) {
            assert!(line.contains("yes"), "latched run failed:\n{s}");
        }
    }

    #[test]
    fn f2_recovers_from_all_fractions() {
        let t = f2_fault_recovery(&tiny());
        assert_eq!(t.len(), 4);
        assert!(!t.render().contains("NO"));
    }

    #[test]
    fn f5_messages_within_nlogn_constant() {
        let t = f5_message_length(&tiny());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn d1_edge_churn_recovers_on_every_daemon() {
        let t = d1_edge_churn(&tiny());
        // 3 daemons × (initial + 2 events per churned edge × 2 edges).
        assert_eq!(t.len(), 3 * 5, "rows:\n{}", t.render());
        assert!(!t.render().contains("NO"), "failure:\n{}", t.render());
    }

    #[test]
    fn d2_node_churn_recovers_on_every_daemon() {
        let t = d2_node_churn(&tiny());
        assert!(t.len() >= 3 * 3, "rows:\n{}", t.render());
        assert!(!t.render().contains("NO"), "failure:\n{}", t.render());
    }

    #[test]
    fn s_family_sweeps_every_scale_size() {
        // Debug-build timings are meaningless; the test pins shape and
        // sanity (positive costs, slots == 2m) on tiny sizes.
        let p = tiny();
        for t in [s1_scale_gnp(&p), s2_scale_regular(&p), s3_scale_ba(&p)] {
            assert_eq!(t.len(), p.scale_sizes.len(), "table:\n{}", t.render());
            let s = t.render();
            assert!(!s.contains("NaN") && !s.contains("inf"), "bad row:\n{s}");
            for (line, &n) in s.lines().skip(2).zip(&p.scale_sizes) {
                let cells: Vec<&str> = line.split_whitespace().collect();
                assert_eq!(cells[0], n.to_string());
                let m: usize = cells[1].parse().unwrap();
                let slots: usize = cells[2].parse().unwrap();
                assert_eq!(slots, 2 * m, "slots must be 2m:\n{s}");
            }
        }
    }

    #[test]
    fn c1_campaign_rows_are_replayable() {
        let t = c1_campaign(&tiny());
        let corpus = ssmdst_scenario::corpus::corpus();
        assert_eq!(t.len(), corpus.len(), "one row per corpus scenario");
        let s = t.render();
        assert!(!s.contains("NO"), "corpus failure:\n{s}");
        // Spot-check replayability: the first row's digest must match a
        // fresh run of the named scenario.
        let first = s.lines().nth(2).unwrap();
        let cells: Vec<&str> = first.split_whitespace().collect();
        let name = cells[0];
        let digest = cells.last().unwrap();
        let scn = ssmdst_scenario::corpus::by_name(name).expect("row names a corpus entry");
        let (out, _) = engine::run(&scn);
        assert_eq!(
            format!("{:016x}", out.digest),
            *digest,
            "row not replayable"
        );
    }

    #[test]
    fn d3_partition_heal_recovers_and_splits() {
        let t = d3_partition_heal(&tiny());
        assert_eq!(t.len(), 3 * 3, "rows:\n{}", t.render());
        let s = t.render();
        assert!(!s.contains("NO"), "failure:\n{s}");
        // While partitioned there must be ≥ 2 components on some row.
        assert!(
            s.lines().any(|l| l.contains("split:partition")),
            "missing partition rows:\n{s}"
        );
    }
}
