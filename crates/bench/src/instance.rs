//! Single-instance experiment driver: run the protocol on one graph and
//! collect everything the tables need.
//!
//! Since the Session/Observer redesign, [`Instrument`] is an
//! [`Observer`]: the same bookkeeping value plugs into a
//! [`ssmdst_sim::Session`] here, into the scenario engine's per-round
//! hook, or into a bare [`Runner::run_observed`] — no bespoke driver
//! loop anywhere.

use ssmdst_core::{build_network, oracle, Config, MdstNode};
use ssmdst_graph::Graph;
use ssmdst_sim::{stop_when, Network, Observer, QuiescenceGate, Runner, Scheduler, Session, Stop};

/// Everything measured from one protocol run.
#[derive(Debug, Clone)]
pub struct InstanceResult {
    /// Nodes and edges of the instance.
    pub n: usize,
    /// Edge count.
    pub m: usize,
    /// Whether the run reached quiescence before the round cap.
    pub converged: bool,
    /// Round at which the final configuration was first reached (total
    /// rounds minus the quiescence confirmation window).
    pub conv_round: u64,
    /// Final tree degree (`None` if the terminal state is not a tree —
    /// never observed for converged runs, but reported honestly).
    pub final_degree: Option<u32>,
    /// Total messages sent.
    pub total_msgs: u64,
    /// Messages by kind: (kind, sent, max size bits).
    pub msgs_by_kind: Vec<(&'static str, u64, usize)>,
    /// Largest message observed, in bits.
    pub max_msg_bits: usize,
    /// Peak number of undelivered messages.
    pub peak_in_flight: usize,
    /// Degree-trajectory samples: (round, deg(T)) at every change.
    pub trajectory: Vec<(u64, u32)>,
    /// Maximum number of distinct maximum-degree nodes whose degree dropped
    /// within a single round (the concurrency measure of experiment F3).
    pub max_simultaneous_drops: usize,
}

/// Quiescence window used everywhere — the simulator's canonical one, so
/// the harness, the facade's `ssmdst::run` and the dynamic-topology tests
/// all judge stability identically.
pub fn quiet_window(n: usize) -> u64 {
    ssmdst_sim::quiet_window(n)
}

/// Per-round trajectory + concurrency bookkeeping, shared between the
/// arbitrary-graph driver below and the scenario-driven experiments. Use
/// it either as an [`Observer`] attached to a session/runner, or through
/// the scenario engine's per-round hook via [`Instrument::observe`].
#[derive(Debug)]
pub struct Instrument<'g> {
    g: &'g Graph,
    trajectory: Vec<(u64, u32)>,
    last_deg: Option<u32>,
    prev_degrees: Option<Vec<u32>>,
    max_simdrops: usize,
}

impl<'g> Instrument<'g> {
    /// Fresh bookkeeping for a run over `g`.
    pub fn new(g: &'g Graph) -> Self {
        Instrument {
            g,
            trajectory: Vec::new(),
            last_deg: None,
            prev_degrees: None,
            max_simdrops: 0,
        }
    }

    /// Observe one completed round.
    pub fn observe(&mut self, net: &Network<MdstNode>, round: u64) {
        let tree = oracle::try_extract_tree(self.g, net);
        let deg = tree.as_ref().map(|t| t.max_degree());
        if deg != self.last_deg {
            if let Some(d) = deg {
                self.trajectory.push((round, d));
            }
            self.last_deg = deg;
        }
        if let Some(t) = &tree {
            let degs = t.degrees();
            if let Some(prev) = &self.prev_degrees {
                let k = *prev.iter().max().unwrap_or(&0);
                let drops = prev
                    .iter()
                    .zip(degs.iter())
                    .filter(|&(&p, &c)| p == k && c < p)
                    .count();
                if drops > self.max_simdrops {
                    self.max_simdrops = drops;
                }
            }
            self.prev_degrees = Some(degs);
        } else {
            self.prev_degrees = None;
        }
    }

    /// Degree-trajectory samples: `(round, deg(T))` at every change.
    pub fn trajectory(&self) -> &[(u64, u32)] {
        &self.trajectory
    }

    /// Maximum number of distinct maximum-degree nodes whose degree
    /// dropped within a single round (the F3 concurrency measure).
    pub fn max_simultaneous_drops(&self) -> usize {
        self.max_simdrops
    }
}

/// [`Instrument`] as an observer: record after every round, never stop
/// the run (pair it with a stop condition).
impl Observer<MdstNode> for Instrument<'_> {
    fn on_round_end(&mut self, net: &Network<MdstNode>, round: u64) -> Stop {
        self.observe(net, round);
        Stop::Continue
    }
}

/// Run the protocol on `g` until quiescence (or `max_rounds`), recording
/// trajectory and concurrency statistics through a [`Session`] with the
/// [`Instrument`] attached as its observer. Returns the result and the
/// final runner for ad-hoc inspection (e.g. fault-injection follow-ups).
pub fn run_instance(
    g: &Graph,
    cfg: Config,
    sched: Scheduler,
    max_rounds: u64,
) -> (InstanceResult, Runner<MdstNode>) {
    let quiet = quiet_window(g.n());
    let mut session = Session::from_network(build_network(g, cfg))
        .scheduler(sched)
        .horizon(max_rounds)
        .observe(Instrument::new(g));
    let out = session.run_to_quiescence(quiet, oracle::projection);
    let (runner, ins) = session.into_parts();
    let res = collect(g, &runner, &ins, out.converged(), 0, quiet);
    (res, runner)
}

/// Continue running an existing network until quiescence — used after
/// fault injection to measure recovery in isolation. Same observer stack
/// as [`run_instance`] ([`Instrument`] plus the shared
/// [`QuiescenceGate`]), borrowed onto the caller's runner.
pub fn run_more(g: &Graph, runner: &mut Runner<MdstNode>, max_rounds: u64) -> InstanceResult {
    let quiet = quiet_window(g.n());
    let start_round = runner.round();
    let mut ins = Instrument::new(g);
    let mut gate = QuiescenceGate::primed(quiet, oracle::projection(runner.network()));
    let out = runner.run_observed(
        max_rounds,
        &mut (
            &mut ins,
            stop_when(move |net: &Network<MdstNode>, _| gate.observe(oracle::projection(net))),
        ),
    );
    collect(g, runner, &ins, out.converged(), start_round, quiet)
}

/// Assemble the table row from a finished run.
fn collect(
    g: &Graph,
    runner: &Runner<MdstNode>,
    ins: &Instrument,
    converged: bool,
    start_round: u64,
    quiet: u64,
) -> InstanceResult {
    let metrics = &runner.network().metrics;
    let msgs_by_kind = metrics
        .kinds()
        .map(|(k, s)| (k, s.sent, s.max_size_bits))
        .collect();
    InstanceResult {
        n: g.n(),
        m: g.m(),
        converged,
        conv_round: (runner.round() - start_round).saturating_sub(if converged {
            quiet
        } else {
            0
        }),
        final_degree: oracle::current_degree(g, runner.network()),
        total_msgs: metrics.total_sent,
        msgs_by_kind,
        max_msg_bits: metrics.max_message_bits(),
        peak_in_flight: metrics.peak_in_flight,
        trajectory: ins.trajectory().to_vec(),
        max_simultaneous_drops: ins.max_simultaneous_drops(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmdst_graph::generators::structured;

    #[test]
    fn star_with_ring_instance_end_to_end() {
        let g = structured::star_with_ring(8).unwrap();
        let (res, _) = run_instance(&g, Config::for_n(8), Scheduler::Synchronous, 20_000);
        assert!(res.converged);
        assert!(res.final_degree.unwrap() <= 3);
        assert!(res.total_msgs > 0);
        assert!(res.max_msg_bits > 0);
        // Trajectory must be non-trivial: the hub degree descends.
        assert!(res.trajectory.len() >= 3);
        let first = res.trajectory.first().unwrap().1;
        let last = res.trajectory.last().unwrap().1;
        assert!(first > last);
    }

    #[test]
    fn conv_round_excludes_quiet_window() {
        let g = structured::path(6).unwrap();
        let (res, _) = run_instance(&g, Config::for_n(6), Scheduler::Synchronous, 5_000);
        assert!(res.converged);
        // A path stabilizes in O(n) rounds; the window must not be charged.
        assert!(res.conv_round < 100, "conv_round = {}", res.conv_round);
    }

    #[test]
    fn run_more_measures_recovery_separately() {
        let g = structured::star_with_ring(8).unwrap();
        let (first, mut runner) =
            run_instance(&g, Config::for_n(8), Scheduler::Synchronous, 20_000);
        assert!(first.converged);
        ssmdst_sim::faults::inject(
            runner.network_mut(),
            ssmdst_sim::faults::FaultPlan::partial(0.4, 3),
        );
        let second = run_more(&g, &mut runner, 20_000);
        assert!(second.converged);
        assert!(second.final_degree.unwrap() <= 3);
    }
}
