//! Single-instance experiment driver: run the protocol on one graph and
//! collect everything the tables need.

use ssmdst_core::{build_network, oracle, Config, MdstNode};
use ssmdst_graph::Graph;
use ssmdst_sim::{Runner, Scheduler};

/// Everything measured from one protocol run.
#[derive(Debug, Clone)]
pub struct InstanceResult {
    /// Nodes and edges of the instance.
    pub n: usize,
    /// Edge count.
    pub m: usize,
    /// Whether the run reached quiescence before the round cap.
    pub converged: bool,
    /// Round at which the final configuration was first reached (total
    /// rounds minus the quiescence confirmation window).
    pub conv_round: u64,
    /// Final tree degree (`None` if the terminal state is not a tree —
    /// never observed for converged runs, but reported honestly).
    pub final_degree: Option<u32>,
    /// Total messages sent.
    pub total_msgs: u64,
    /// Messages by kind: (kind, sent, max size bits).
    pub msgs_by_kind: Vec<(&'static str, u64, usize)>,
    /// Largest message observed, in bits.
    pub max_msg_bits: usize,
    /// Peak number of undelivered messages.
    pub peak_in_flight: usize,
    /// Degree-trajectory samples: (round, deg(T)) at every change.
    pub trajectory: Vec<(u64, u32)>,
    /// Maximum number of distinct maximum-degree nodes whose degree dropped
    /// within a single round (the concurrency measure of experiment F3).
    pub max_simultaneous_drops: usize,
}

/// Quiescence window used everywhere — the simulator's canonical one, so
/// the harness, the facade's `ssmdst::run` and the dynamic-topology tests
/// all judge stability identically.
pub fn quiet_window(n: usize) -> u64 {
    ssmdst_sim::quiet_window(n)
}

/// Run the protocol on `g` until quiescence (or `max_rounds`), recording
/// trajectory and concurrency statistics. Returns the result and the final
/// runner for ad-hoc inspection (e.g. fault-injection follow-ups).
pub fn run_instance(
    g: &Graph,
    cfg: Config,
    sched: Scheduler,
    max_rounds: u64,
) -> (InstanceResult, Runner<MdstNode>) {
    let net = build_network(g, cfg);
    let mut runner = Runner::new(net, sched);
    let res = run_more(g, &mut runner, max_rounds);
    (res, runner)
}

/// Continue running an existing network until quiescence — used after
/// fault injection to measure recovery in isolation.
pub fn run_more(g: &Graph, runner: &mut Runner<MdstNode>, max_rounds: u64) -> InstanceResult {
    let n = g.n();
    let quiet = quiet_window(n);
    let start_round = runner.round();

    let mut trajectory: Vec<(u64, u32)> = Vec::new();
    let mut last_deg: Option<u32> = None;
    let mut prev_degrees: Option<Vec<u32>> = None;
    let mut max_simdrops = 0usize;
    let mut last_proj = oracle::projection(runner.network());
    let mut quiet_for = 0u64;

    let out = runner.run_until(max_rounds, |net, round| {
        // Trajectory + concurrency bookkeeping.
        let tree = oracle::try_extract_tree(g, net);
        let deg = tree.as_ref().map(|t| t.max_degree());
        if deg != last_deg {
            if let Some(d) = deg {
                trajectory.push((round, d));
            }
            last_deg = deg;
        }
        if let Some(t) = &tree {
            let degs = t.degrees();
            if let Some(prev) = &prev_degrees {
                let k = *prev.iter().max().unwrap_or(&0);
                let drops = prev
                    .iter()
                    .zip(degs.iter())
                    .filter(|&(&p, &c)| p == k && c < p)
                    .count();
                if drops > max_simdrops {
                    max_simdrops = drops;
                }
            }
            prev_degrees = Some(degs);
        } else {
            prev_degrees = None;
        }
        // Quiescence detection on the full projection.
        let proj = oracle::projection(net);
        if proj == last_proj {
            quiet_for += 1;
        } else {
            quiet_for = 0;
            last_proj = proj;
        }
        quiet_for >= quiet
    });

    let metrics = &runner.network().metrics;
    let msgs_by_kind = metrics
        .kinds()
        .map(|(k, s)| (k, s.sent, s.max_size_bits))
        .collect();
    InstanceResult {
        n,
        m: g.m(),
        converged: out.converged(),
        conv_round: (runner.round() - start_round).saturating_sub(if out.converged() {
            quiet
        } else {
            0
        }),
        final_degree: oracle::current_degree(g, runner.network()),
        total_msgs: metrics.total_sent,
        msgs_by_kind,
        max_msg_bits: metrics.max_message_bits(),
        peak_in_flight: metrics.peak_in_flight,
        trajectory,
        max_simultaneous_drops: max_simdrops,
    }
}

/// One row of a dynamic-topology scenario: what happened, how long the
/// re-convergence took, and what the re-converged forest looks like.
#[derive(Debug, Clone)]
pub struct ChurnOutcome {
    /// Rendered churn event ("-edge(2,5)", "crash(3)", …), or "initial".
    pub event: String,
    /// Whether quiescence was reached before the round cap.
    pub converged: bool,
    /// Rounds from the event to the re-converged configuration (the
    /// quiescence confirmation window is excluded, as in `conv_round`).
    pub recovery_rounds: u64,
    /// Number of connected components of the live topology.
    pub components: usize,
    /// Worst tree degree across components (0 if the check failed).
    pub degree: u32,
    /// Exact Δ* of the worst component when solvable (worst = the component
    /// with the largest degree), else `None`.
    pub delta_star: Option<u32>,
    /// Whether every component re-stabilized to a tree within one of its
    /// optimum.
    pub ok: bool,
}

/// Drive one dynamic-topology scenario: converge on the initial graph,
/// then apply each event of `plan` in turn, re-converging and re-judging
/// the tree (component-wise, degree ≤ Δ*+1) after every event. The first
/// returned row is the initial convergence.
pub fn run_churn_scenario(
    g: &Graph,
    plan: &ssmdst_sim::TopologyPlan,
    cfg: Config,
    sched: Scheduler,
    max_rounds: u64,
) -> Vec<ChurnOutcome> {
    use ssmdst_core::churn;
    use ssmdst_graph::SolveBudget;

    let budget = SolveBudget { max_nodes: 500_000 };
    let quiet = quiet_window(g.n());
    let net = ssmdst_core::build_network(g, cfg);
    let mut runner = Runner::new(net, sched);
    let mut rows = Vec::with_capacity(plan.events.len() + 1);
    let mut measure = |runner: &mut Runner<MdstNode>, label: String| {
        let out = runner.run_to_quiescence(max_rounds, quiet, oracle::projection);
        let (components, degree, delta_star, ok) =
            match churn::check_reconvergence(runner.network(), budget) {
                Ok(reports) => {
                    let worst = reports.iter().max_by_key(|r| r.degree);
                    (
                        reports.len(),
                        worst.map(|r| r.degree).unwrap_or(0),
                        worst.and_then(|r| r.delta_star),
                        reports.iter().all(|r| r.within_one),
                    )
                }
                Err(_) => (0, 0, None, false),
            };
        rows.push(ChurnOutcome {
            event: label,
            converged: out.converged(),
            recovery_rounds: out
                .rounds
                .saturating_sub(if out.converged() { quiet } else { 0 }),
            components,
            degree,
            delta_star,
            ok: ok && out.converged(),
        });
    };
    measure(&mut runner, "initial".to_string());
    for ev in &plan.events {
        ssmdst_sim::faults::apply_churn(runner.network_mut(), ev);
        measure(&mut runner, ev.to_string());
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmdst_graph::generators::structured;

    #[test]
    fn star_with_ring_instance_end_to_end() {
        let g = structured::star_with_ring(8).unwrap();
        let (res, _) = run_instance(&g, Config::for_n(8), Scheduler::Synchronous, 20_000);
        assert!(res.converged);
        assert!(res.final_degree.unwrap() <= 3);
        assert!(res.total_msgs > 0);
        assert!(res.max_msg_bits > 0);
        // Trajectory must be non-trivial: the hub degree descends.
        assert!(res.trajectory.len() >= 3);
        let first = res.trajectory.first().unwrap().1;
        let last = res.trajectory.last().unwrap().1;
        assert!(first > last);
    }

    #[test]
    fn conv_round_excludes_quiet_window() {
        let g = structured::path(6).unwrap();
        let (res, _) = run_instance(&g, Config::for_n(6), Scheduler::Synchronous, 5_000);
        assert!(res.converged);
        // A path stabilizes in O(n) rounds; the window must not be charged.
        assert!(res.conv_round < 100, "conv_round = {}", res.conv_round);
    }

    #[test]
    fn churn_scenario_reports_one_row_per_event() {
        let g = structured::cycle(8).unwrap();
        let plan = ssmdst_sim::TopologyPlan::edge_churn(&g, 1, 3);
        let rows = run_churn_scenario(&g, &plan, Config::for_n(8), Scheduler::Synchronous, 40_000);
        assert_eq!(rows.len(), 3, "initial + remove + insert");
        assert_eq!(rows[0].event, "initial");
        assert!(rows.iter().all(|r| r.ok), "rows: {rows:?}");
        // Removing a cycle edge leaves a path: a single component whose
        // tree is forced (degree 2, Δ* 2).
        assert_eq!(rows[1].components, 1);
        assert_eq!(rows[1].degree, 2);
    }

    #[test]
    fn run_more_measures_recovery_separately() {
        let g = structured::star_with_ring(8).unwrap();
        let (first, mut runner) =
            run_instance(&g, Config::for_n(8), Scheduler::Synchronous, 20_000);
        assert!(first.converged);
        ssmdst_sim::faults::inject(
            runner.network_mut(),
            ssmdst_sim::faults::FaultPlan::partial(0.4, 3),
        );
        let second = run_more(&g, &mut runner, 20_000);
        assert!(second.converged);
        assert!(second.final_degree.unwrap() <= 3);
    }
}
