//! # ssmdst-bench
//!
//! Experiment harness for the IPDPS 2009 self-stabilizing MDST
//! reproduction. The paper is theory-only, so the "tables and figures" are
//! its claims turned into measurements (DESIGN.md §3):
//!
//! | id | claim |
//! |----|-------|
//! | T1 | `deg(T) ≤ Δ* + 1` (Theorem 2) |
//! | T2 | convergence in `O(m n² log n)` rounds (Lemma 5) |
//! | T3 | message complexity breakdown |
//! | T4 | `O(δ log n)` bits per node (Lemma 5) |
//! | T5 | final quality vs baselines (FR, BFS, DFS, random, greedy) |
//! | F1 | degree-reduction trajectory |
//! | F2 | recovery from transient faults (Definition 1) |
//! | F3 | simultaneous improvements vs the serialized \[3\] |
//! | F4 | convergence under any fair daemon |
//! | F5 | `O(n log n)` maximum message length |
//! | A1 | ablation: strict vs gentle distance repair |
//! | A2 | ablation: Deblock on/off |
//! | A3 | ablation: busy latch on/off |
//! | D1 | re-convergence under edge churn (dynamic topology) |
//! | D2 | re-convergence under node crash/rejoin |
//! | D3 | re-convergence across partition and heal |
//! | C1 | scenario campaign: the conformance corpus, one replayable row each |
//!
//! The D family exercises the regime the event-driven engine was built
//! for: the topology changes between rounds ([`ssmdst_sim::TopologyPlan`])
//! and the protocol must re-fit the tree to the new constraint set, judged
//! component-wise by [`ssmdst_core::churn`].
//!
//! The T/F/A/D/C families are **scenario-driven**: each row runs a named
//! `ssmdst_scenario::Scenario` through the scenario engine, making every
//! row a replayable artifact (`ssmdst replay` reproduces it bit-for-bit
//! from the scenario description). The S family measures the message
//! fabric with purpose-built automata and keeps its own driver.
//!
//! Run `cargo run --release -p ssmdst-bench --bin experiments -- all` to
//! print everything; Criterion micro-benchmarks live in `benches/`.

// Library code must not grow bare `.unwrap()`s: use `.expect` with the
// invariant that makes failure unreachable (ssmdst-lint R4 audits the
// reasons). Unit tests keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod experiments;
pub mod instance;
pub mod table;

pub use experiments::Profile;
pub use instance::{run_instance, run_more, InstanceResult, Instrument};
pub use table::{json_string, Table};
