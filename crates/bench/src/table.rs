//! Minimal fixed-width table printer for experiment output.
//!
//! The harness prints tables to stdout in the shape the paper's evaluation
//! would have used; keeping the printer dependency-free makes the output
//! trivially diffable and greppable in CI.

/// A simple column-aligned table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; short rows are padded with empty cells.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let line = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = width[i]))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        let mut out = String::new();
        out.push_str(&line(&self.header));
        out.push('\n');
        let total: usize = width.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&line(r));
            out.push('\n');
        }
        out
    }
}

impl Table {
    /// Render as a JSON object `{"header": [...], "rows": [[...], ...]}`.
    ///
    /// Hand-rolled (the offline build has no serde_json); cells are plain
    /// strings so escaping quotes/backslashes/control chars suffices.
    pub fn to_json(&self) -> String {
        let arr = |cells: &[String]| -> String {
            let quoted: Vec<String> = cells.iter().map(|c| json_string(c)).collect();
            format!("[{}]", quoted.join(","))
        };
        let rows: Vec<String> = self.rows.iter().map(|r| arr(r)).collect();
        format!(
            "{{\"header\":{},\"rows\":[{}]}}",
            arr(&self.header),
            rows.join(",")
        )
    }
}

/// Escape and quote a string per RFC 8259.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "n", "deg"]);
        t.row(vec!["grid", "100", "2"]);
        t.row(vec!["scale-free", "80", "4"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "n" column starts at the same offset in all rows.
        let off = lines[0].find(" n").unwrap();
        assert_eq!(&lines[2][off..off + 2], " 1");
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["x"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.render().contains('x'));
    }

    #[test]
    fn display_matches_render() {
        let mut t = Table::new(vec!["h"]);
        t.row(vec!["v"]);
        assert_eq!(format!("{t}"), t.render());
    }

    #[test]
    fn json_round_trips_structure_and_escapes() {
        let mut t = Table::new(vec!["name", "val"]);
        t.row(vec!["quote\"back\\slash", "tab\tnewline\n"]);
        let j = t.to_json();
        assert_eq!(
            j,
            "{\"header\":[\"name\",\"val\"],\
             \"rows\":[[\"quote\\\"back\\\\slash\",\"tab\\tnewline\\n\"]]}"
        );
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
