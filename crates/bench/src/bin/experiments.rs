//! Experiment driver: regenerates every table/figure of DESIGN.md §3.
//!
//! ```text
//! cargo run --release -p ssmdst-bench --bin experiments -- all
//! cargo run --release -p ssmdst-bench --bin experiments -- t1 f2 --quick
//! cargo run --release -p ssmdst-bench --bin experiments -- all --quick --json BENCH_baseline.json
//! ```
//!
//! With `--json PATH` the tables (plus per-experiment wall time) are also
//! written as one JSON document, so successive commits can diff perf and
//! quality numbers mechanically.

use std::time::Instant;

use ssmdst_bench::experiments as ex;
use ssmdst_bench::{json_string, Profile, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| match args.get(i + 1) {
            Some(p) if !p.starts_with("--") => p.clone(),
            _ => {
                eprintln!("error: --json requires an output path");
                std::process::exit(2);
            }
        });
    let profile = if quick {
        Profile::quick()
    } else {
        Profile::full()
    };
    let mut ids: Vec<String> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            // Skip flags and the value following `--json`.
            let is_json_value = *i > 0 && args[i - 1] == "--json";
            !a.starts_with("--") && !is_json_value
        })
        .map(|(_, s)| s.to_lowercase())
        .collect();
    if ids.is_empty() || ids.iter().any(|a| a == "all") {
        ids = [
            "t1", "t2", "t3", "t4", "t5", "f1", "f2", "f3", "f4", "f5", "a1", "a2", "a3", "d1",
            "d2", "d3", "s1", "s2", "s3", "c1",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    let profile_label = if quick { "quick" } else { "full" };
    println!("# ssmdst experiment suite ({profile_label} profile)");
    let mut json_entries: Vec<String> = Vec::new();
    for id in ids {
        let started = Instant::now(); // lint: allow(no-ambient-entropy) — observation-side wall-clock for the printed timing column; never feeds simulation state
        let (title, table): (&str, Table) = match id.as_str() {
            "t1" => (
                "T1 — degree quality (Thm 2: deg ≤ Δ*+1)",
                ex::t1_degree_quality(&profile),
            ),
            "t2" => (
                "T2 — convergence rounds vs O(m·n²·lg n) (Lemma 5)",
                ex::t2_convergence(&profile),
            ),
            "t3" => ("T3 — message complexity by kind", ex::t3_messages(&profile)),
            "t4" => (
                "T4 — memory per node vs O(δ·lg n) (Lemma 5)",
                ex::t4_memory(&profile),
            ),
            "t5" => ("T5 — baseline comparison", ex::t5_baselines(&profile)),
            "f1" => ("F1 — convergence trajectory", ex::f1_trajectory(&profile)),
            "f2" => (
                "F2 — transient-fault recovery (Def. 1)",
                ex::f2_fault_recovery(&profile),
            ),
            "f3" => (
                "F3 — concurrent improvements vs serialized [3]",
                ex::f3_concurrency(&profile),
            ),
            "f4" => ("F4 — scheduler sensitivity", ex::f4_schedulers(&profile)),
            "f5" => (
                "F5 — max message length vs O(n·lg n)",
                ex::f5_message_length(&profile),
            ),
            "a1" => (
                "A1 — ablation: strict vs gentle distance repair",
                ex::a1_strict_vs_gentle(&profile),
            ),
            "a2" => ("A2 — ablation: Deblock disabled", ex::a2_deblock(&profile)),
            "a3" => (
                "A3 — ablation: busy latch disabled",
                ex::a3_busy_latch(&profile),
            ),
            "d1" => (
                "D1 — dynamic topology: edge churn re-convergence",
                ex::d1_edge_churn(&profile),
            ),
            "d2" => (
                "D2 — dynamic topology: node crash/rejoin re-convergence",
                ex::d2_node_churn(&profile),
            ),
            "d3" => (
                "D3 — dynamic topology: partition/heal re-convergence",
                ex::d3_partition_heal(&profile),
            ),
            "s1" => (
                "S1 — fabric scale: sparse G(n,p), mean degree 8",
                ex::s1_scale_gnp(&profile),
            ),
            "s2" => (
                "S2 — fabric scale: near-regular, degree 8",
                ex::s2_scale_regular(&profile),
            ),
            "s3" => (
                "S3 — fabric scale: Barabási–Albert, attachment 2",
                ex::s3_scale_ba(&profile),
            ),
            "c1" => (
                "C1 — scenario campaign: corpus grid, replayable rows",
                ex::c1_campaign(&profile),
            ),
            other => {
                eprintln!("unknown experiment id: {other}");
                continue;
            }
        };
        let wall_ms = started.elapsed().as_millis();
        println!("\n## {title}\n");
        print!("{table}");
        json_entries.push(format!(
            "{{\"id\":{},\"title\":{},\"wall_ms\":{},\"table\":{}}}",
            json_string(&id),
            json_string(title),
            wall_ms,
            table.to_json()
        ));
    }
    if let Some(path) = json_path {
        let doc = format!(
            "{{\"suite\":\"ssmdst-experiments\",\"profile\":{},\"experiments\":[\n{}\n]}}\n",
            json_string(profile_label),
            json_entries.join(",\n")
        );
        std::fs::write(&path, doc).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {path}");
    }
}
