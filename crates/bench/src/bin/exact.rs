//! X experiment family: the exact-Δ* engine at judging scale.
//!
//! ```text
//! cargo run --release -p ssmdst-bench --bin exact -- --json BENCH_exact.json
//! cargo run --release -p ssmdst-bench --bin exact -- --n 1000 --churns 16   # X-mini (CI smoke)
//! ```
//!
//! Measures what unlocked large-`n` scenario judging: per-judgment cost of
//! a from-scratch certified solve ([`ssmdst_exact::Solver`]) versus the
//! incremental re-solve ([`ssmdst_exact::IncrementalSolver`]) across an
//! edge-churn chain, on sparse G(n, 8/n) at n = 10³ … 10⁵. One row pair
//! per size; the `speedup` column is the judge-throughput ratio the
//! scenario engine sees when a stable phase re-judges after one churn
//! event. Each incremental judgment's certified interval is asserted
//! consistent with the from-scratch interval in-bench (both bracket Δ*),
//! so a timing for an unsound run is never reported.
//!
//! The JSON document is `bench-delta`-compatible (`id` + `wall_ms` per
//! record), so regressions show up in the same non-blocking CI step as
//! every other suite.

use ssmdst_bench::{json_string, Table};
use ssmdst_exact::{IncrementalSolver, Solver};
use ssmdst_graph::generators::random::gnp_connected_sparse;
use ssmdst_graph::{exact_mdst, Graph, SolveBudget};
use std::time::Instant;

/// The solver configuration under test: generous pivot budget, settling
/// (branch-and-bound closing of `lower+1` intervals) capped at the same
/// component size the scenario judge uses.
fn solver() -> Solver {
    Solver::builder()
        .settle_budget(500_000)
        .settle_max_n(256)
        .build()
}

struct ScratchRow {
    wall_ms: u128,
    per_judgment_ms: f64,
    lower: u32,
    upper: u32,
}

/// Time one judgment on the old exact path — the branch-and-bound
/// [`exact_mdst`] call the pre-engine judge made per component, with the
/// scenario engine's default budget. At n ≥ 1k it burns the whole budget
/// and still answers `None`: the cost *and* the blindness are what the
/// engine replaced.
fn measure_old_path(g: &Graph) -> (u128, Option<u32>) {
    // The branch-and-bound recursion is one stack frame per search node —
    // up to the 500k budget deep — which overflows a default thread stack
    // at n = 100k. Give the legacy path a big stack so its time can still
    // be measured at every size (the engine itself needs no such crutch).
    std::thread::scope(|s| {
        std::thread::Builder::new()
            .stack_size(512 << 20)
            .spawn_scoped(s, || {
                let t = Instant::now(); // lint: allow(no-ambient-entropy) — observation-side wall-clock for the timing column; never feeds simulation state
                let res = exact_mdst(g, SolveBudget { max_nodes: 500_000 });
                (t.elapsed().as_millis(), res.delta_star())
            })
            .expect("spawn bench thread")
            .join()
            .expect("old-path measurement thread panicked")
    })
}

/// Time `reps` from-scratch solves of `g` — the judge cost without the
/// incremental engine (what every stable phase used to pay).
fn measure_scratch(g: &Graph, reps: u64) -> ScratchRow {
    let s = solver();
    let warm = s.solve(g);
    let t = Instant::now(); // lint: allow(no-ambient-entropy) — observation-side wall-clock for the timing column; never feeds simulation state
    let mut last = warm;
    for _ in 0..reps {
        last = s.solve(g);
    }
    let wall_ms = t.elapsed().as_millis();
    ScratchRow {
        wall_ms,
        per_judgment_ms: wall_ms as f64 / reps as f64,
        lower: last.lower,
        upper: last.upper,
    }
}

struct IncRow {
    wall_ms: u128,
    per_judgment_ms: f64,
    judgments: u64,
    warm_starts: u64,
    cache_hits: u64,
}

/// Time an edge-churn chain through the incremental engine: remove one
/// edge, re-judge, re-insert it, re-judge — `churns` pairs, every
/// judgment's interval checked against the from-scratch interval (both
/// must bracket the same Δ*, so they may not be disjoint).
fn measure_incremental(g: &Graph, churns: u64, scratch: &ScratchRow) -> IncRow {
    let mut inc = IncrementalSolver::from_graph(g, solver());
    inc.solve_all(); // prime the basis outside the timed window
    let edges = g.edges();
    let stride = (edges.len() / churns.max(1) as usize).max(1);
    let mut judgments = 0u64;
    let t = Instant::now(); // lint: allow(no-ambient-entropy) — observation-side wall-clock for the timing column; never feeds simulation state
    for i in 0..churns {
        let (u, v) = edges[(i as usize * stride) % edges.len()];
        inc.remove_edge(u, v);
        for sol in inc.solve_all() {
            judgments += 1;
            assert!(
                sol.lower <= scratch.upper.max(sol.upper),
                "incremental lower {} contradicts from-scratch upper {}",
                sol.lower,
                scratch.upper
            );
        }
        inc.insert_edge(u, v);
        let sols = inc.solve_all();
        judgments += 1;
        // Back on the original graph: one component again, and its
        // interval must be consistent with the from-scratch one.
        assert_eq!(sols.len(), 1, "churn pair must restore the graph");
        assert!(
            sols[0].lower <= scratch.upper && scratch.lower <= sols[0].upper,
            "intervals [{}, {}] and [{}, {}] cannot both bracket Δ*",
            sols[0].lower,
            sols[0].upper,
            scratch.lower,
            scratch.upper
        );
    }
    let wall_ms = t.elapsed().as_millis();
    let stats = inc.stats();
    IncRow {
        wall_ms,
        per_judgment_ms: wall_ms as f64 / judgments.max(1) as f64,
        judgments,
        warm_starts: stats.warm_starts,
        cache_hits: stats.cache_hits,
    }
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .map(|i| match args.get(i + 1) {
            Some(p) if !p.starts_with("--") => p.clone(),
            _ => {
                eprintln!("error: {flag} requires a value");
                std::process::exit(2);
            }
        })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = arg_value(&args, "--json");
    let sizes: Vec<usize> = arg_value(&args, "--n")
        .unwrap_or_else(|| "1000,10000,100000".to_string())
        .split(',')
        .map(|s| {
            s.trim().parse().unwrap_or_else(|_| {
                eprintln!("error: --n takes comma-separated node counts, got {s:?}");
                std::process::exit(2);
            })
        })
        .collect();
    let churns: u64 = arg_value(&args, "--churns")
        .map(|r| {
            r.parse().unwrap_or_else(|_| {
                eprintln!("error: --churns takes an integer, got {r:?}");
                std::process::exit(2);
            })
        })
        .unwrap_or(64);

    println!("# ssmdst X: exact-Δ* engine, from-scratch solve vs incremental re-judge");
    let mut json_entries: Vec<String> = Vec::new();
    let mut table = Table::new(vec![
        "n",
        "m",
        "interval",
        "old-path ms",
        "solve ms/judgment",
        "incremental ms/judgment",
        "speedup (old/inc)",
        "warm/cached",
    ]);

    for &n in &sizes {
        let id = format!("x-n{n}");
        println!("\n## {id} — sparse G(n, 8/n), {churns} churn pairs, n = {n}");
        let g = gnp_connected_sparse(n, 8.0 / n as f64, 42);
        println!("#   instance: n = {} m = {}", g.n(), g.m());

        // Few from-scratch reps at large n — each one is the expensive
        // path whose cost is exactly the point.
        let reps = if n >= 50_000 { 2 } else { 8 };
        let (old_ms, old_delta) = measure_old_path(&g);
        let scratch = measure_scratch(&g, reps);
        let inc = measure_incremental(&g, churns, &scratch);
        let speedup = old_ms as f64 / inc.per_judgment_ms.max(1e-6);

        println!(
            "  old path     wall={old_ms:>6}ms  Δ*={}",
            old_delta
                .map(|d| d.to_string())
                .unwrap_or("? (budget exhausted)".into())
        );
        println!(
            "  scratch      wall={:>6}ms  {:>9.3} ms/judgment  interval=[{}, {}]",
            scratch.wall_ms, scratch.per_judgment_ms, scratch.lower, scratch.upper
        );
        println!(
            "  incremental  wall={:>6}ms  {:>9.3} ms/judgment  {} judgments, {} warm, {} cached, speedup={speedup:.0}x",
            inc.wall_ms, inc.per_judgment_ms, inc.judgments, inc.warm_starts, inc.cache_hits
        );
        table.row(vec![
            n.to_string(),
            g.m().to_string(),
            format!("[{}, {}]", scratch.lower, scratch.upper),
            old_ms.to_string(),
            format!("{:.3}", scratch.per_judgment_ms),
            format!("{:.3}", inc.per_judgment_ms),
            format!("{speedup:.0}x"),
            format!("{}/{}", inc.warm_starts, inc.cache_hits),
        ]);
        json_entries.push(format!(
            "{{\"id\":{},\"title\":{},\"n\":{n},\"m\":{},\"wall_ms\":{old_ms},\
             \"judgments\":1,\"ms_per_judgment\":{old_ms},\"delta_star\":{}}}",
            json_string(&format!("{id}-old-path")),
            json_string(&format!(
                "X — old exact path (branch-and-bound, budget 500k), G({n}, 8/n)"
            )),
            g.m(),
            old_delta.map(|d| d.to_string()).unwrap_or("null".into()),
        ));
        json_entries.push(format!(
            "{{\"id\":{},\"title\":{},\"n\":{n},\"m\":{},\"wall_ms\":{},\
             \"judgments\":{reps},\"ms_per_judgment\":{:.3},\"lower\":{},\"upper\":{}}}",
            json_string(&format!("{id}-solve")),
            json_string(&format!("X — from-scratch certified solve, G({n}, 8/n)")),
            g.m(),
            scratch.wall_ms,
            scratch.per_judgment_ms,
            scratch.lower,
            scratch.upper,
        ));
        json_entries.push(format!(
            "{{\"id\":{},\"title\":{},\"n\":{n},\"m\":{},\"wall_ms\":{},\
             \"judgments\":{},\"ms_per_judgment\":{:.3},\"warm_starts\":{},\
             \"cache_hits\":{},\"speedup\":{speedup:.1}}}",
            json_string(&format!("{id}-incremental")),
            json_string(&format!(
                "X — incremental re-judge across {churns} churn pairs, G({n}, 8/n)"
            )),
            g.m(),
            inc.wall_ms,
            inc.judgments,
            inc.per_judgment_ms,
            inc.warm_starts,
            inc.cache_hits,
        ));
    }

    println!("\n## summary\n");
    print!("{}", table.render());

    if let Some(path) = json_path {
        let doc = format!(
            "{{\"suite\":\"ssmdst-exact\",\"profile\":{},\"experiments\":[\n{}\n]}}\n",
            json_string("default"),
            json_entries.join(",\n")
        );
        std::fs::write(&path, doc).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {path}");
    }
}
