//! S4 experiment family: million-node rounds on the sharded backend.
//!
//! ```text
//! cargo run --release -p ssmdst-bench --bin sharded -- --json BENCH_sharded.json
//! cargo run --release -p ssmdst-bench --bin sharded -- --n 100000 --rounds 4   # S4-mini (CI smoke)
//! ```
//!
//! Measures the round loop at the scale the sharded backend exists for:
//! message-dense gossip on a sparse G(n, p) instance (mean degree 4) at
//! n ≥ 10⁶, one row per shard count. Each row reports **rounds/sec** and
//! **scaling efficiency** `T(sharded:1) / (K · T(sharded:K))` — the
//! fraction of ideal K-way speedup realized. The reference backend runs
//! the same workload for context, and every row's chained
//! `ScheduleDigest` is asserted equal to the reference digest in-bench:
//! a timing for a run that was not bit-exact is never reported.
//!
//! The JSON document also records `available_parallelism`: on a 1-core
//! host the efficiency column measures pure sharding overhead (no
//! speedup is physically possible), which is exactly what makes the
//! committed numbers interpretable across machines.

use ssmdst_bench::{json_string, Table};
use ssmdst_graph::generators::random::gnp_connected_sparse;
use ssmdst_graph::Graph;
use ssmdst_sim::{Automaton, Backend, Digest, Message, Network, Outbox, Runner, Scheduler};
use std::time::Instant;

#[derive(Debug, Clone, Copy)]
struct Beat(u32);
impl Message for Beat {
    fn kind(&self) -> &'static str {
        "Beat"
    }
    fn size_bits(&self, _n: usize) -> usize {
        32
    }
}

/// Floods a counter to every neighbor each round — the obligation-dense
/// regime (n ticks + 2m deliveries per round, nothing quiesces), so the
/// timing isolates the round loop, not protocol logic.
#[derive(Debug)]
struct Gossip {
    neighbors: Vec<u32>,
    beat: u32,
    heard: u64,
}

impl Automaton for Gossip {
    type Msg = Beat;
    fn tick(&mut self, out: &mut Outbox<Beat>) {
        self.beat += 1;
        for &w in &self.neighbors {
            out.send(w, Beat(self.beat));
        }
    }
    fn receive(&mut self, _from: u32, msg: Beat, _out: &mut Outbox<Beat>) {
        self.heard += msg.0 as u64;
    }
}

fn gossip_net(g: &Graph) -> Network<Gossip> {
    Network::from_graph(g, |_, nbrs| Gossip {
        neighbors: nbrs.to_vec(),
        beat: 0,
        heard: 0,
    })
}

struct Measured {
    wall_ms: u128,
    digest: u64,
    delivered: u64,
}

/// Time `rounds` rounds (after one untimed warm-up round, so buffer
/// growth and first-touch page faults land outside the window) and chain
/// the schedule digest of the *timed* rounds.
fn measure(g: &Graph, backend: Backend, rounds: u64) -> Measured {
    let mut runner = Runner::new(gossip_net(g), Scheduler::Synchronous);
    runner.set_backend(backend);
    runner.step_round();
    let mut digest = Digest::new();
    let started = Instant::now(); // lint: allow(no-ambient-entropy) — observation-side wall-clock for the timing column; never feeds simulation state
    for _ in 0..rounds {
        runner.step_round_digest(&mut digest);
    }
    Measured {
        wall_ms: started.elapsed().as_millis(),
        digest: digest.value(),
        delivered: runner.network().metrics.total_delivered,
    }
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .map(|i| match args.get(i + 1) {
            Some(p) if !p.starts_with("--") => p.clone(),
            _ => {
                eprintln!("error: {flag} requires a value");
                std::process::exit(2);
            }
        })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = arg_value(&args, "--json");
    // Comma-separated sizes; the default is the committed S4 row. CI's
    // S4-mini smoke passes `--n 100000`.
    let sizes: Vec<usize> = arg_value(&args, "--n")
        .unwrap_or_else(|| "1000000".to_string())
        .split(',')
        .map(|s| {
            s.trim().parse().unwrap_or_else(|_| {
                eprintln!("error: --n takes comma-separated node counts, got {s:?}");
                std::process::exit(2);
            })
        })
        .collect();
    let rounds: u64 = arg_value(&args, "--rounds")
        .map(|r| {
            r.parse().unwrap_or_else(|_| {
                eprintln!("error: --rounds takes an integer, got {r:?}");
                std::process::exit(2);
            })
        })
        .unwrap_or(6);
    let shard_counts = [1usize, 2, 4, 8];
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    println!("# ssmdst S4: sharded million-node rounds (bit-exactness asserted per row)");
    println!("# host parallelism: {cores}");
    let mut json_entries: Vec<String> = Vec::new();
    let mut table = Table::new(vec![
        "workload",
        "backend",
        "wall_ms",
        "rounds/s",
        "efficiency",
        "digest",
    ]);

    for &n in &sizes {
        let id = format!("s4-n{n}");
        println!("\n## {id} — gossip on sparse G(n, 4/n), sync, {rounds} rounds, n = {n}");
        let g = gnp_connected_sparse(n, 4.0 / n as f64, 42);
        println!("#   instance: n = {} m = {}", g.n(), g.m());

        // Reference row first: the digest every sharded row must match.
        let reference = measure(&g, Backend::Reference, rounds);
        let mut base_wall: Option<u128> = None; // sharded:1 wall time
        let mut rows: Vec<(Backend, Measured, Option<f64>)> =
            vec![(Backend::Reference, reference, None)];
        for k in shard_counts {
            let m = measure(&g, Backend::Sharded { shards: k }, rounds);
            assert_eq!(
                m.digest, rows[0].1.digest,
                "{id}: sharded:{k} diverged from reference digest"
            );
            if k == 1 {
                base_wall = Some(m.wall_ms);
            }
            let efficiency = base_wall.map(|t1| t1 as f64 / (k as f64 * m.wall_ms.max(1) as f64));
            rows.push((Backend::Sharded { shards: k }, m, efficiency));
        }

        for (backend, m, efficiency) in &rows {
            let rps = rounds_per_sec(rounds, m.wall_ms);
            let eff_txt = efficiency
                .map(|e| format!("{e:.2}"))
                .unwrap_or_else(|| "-".to_string());
            println!(
                "  {backend:<10} wall={:>6}ms  {rps:>7.2} rounds/s  eff={eff_txt}  digest={:016x}",
                m.wall_ms, m.digest
            );
            table.row(vec![
                id.clone(),
                backend.to_string(),
                m.wall_ms.to_string(),
                format!("{rps:.2}"),
                eff_txt,
                format!("{:016x}", m.digest),
            ]);
            json_entries.push(format!(
                "{{\"id\":{},\"title\":{},\"n\":{n},\"m\":{},\"rounds\":{rounds},\"wall_ms\":{},\
                 \"rounds_per_sec\":{rps:.3},\"scaling_efficiency\":{},\"digest\":\"{:016x}\",\
                 \"delivered\":{}}}",
                json_string(&format!("{id}-{backend}")),
                json_string(&format!(
                    "S4 — gossip on sparse G({n}, 4/n), sync, {rounds} rounds, {backend}"
                )),
                g.m(),
                m.wall_ms,
                efficiency
                    .map(|e| format!("{e:.3}"))
                    .unwrap_or_else(|| "null".to_string()),
                m.digest,
                m.delivered,
            ));
        }
    }

    println!("\n## summary\n");
    print!("{}", table.render());

    if let Some(path) = json_path {
        let doc = format!(
            "{{\"suite\":\"ssmdst-sharded\",\"profile\":{},\"available_parallelism\":{cores},\
             \"experiments\":[\n{}\n]}}\n",
            json_string("default"),
            json_entries.join(",\n")
        );
        std::fs::write(&path, doc).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {path}");
    }
}

/// Rounds per second from a wall-time; clamped away from division by zero
/// for sub-millisecond runs (S4-mini on fast hardware).
fn rounds_per_sec(rounds: u64, wall_ms: u128) -> f64 {
    rounds as f64 * 1000.0 / wall_ms.max(1) as f64
}
