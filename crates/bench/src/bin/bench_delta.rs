//! Non-blocking perf delta: compare per-experiment wall times between two
//! `experiments --json` documents.
//!
//! ```text
//! cargo run --release -p ssmdst-bench --bin bench-delta -- \
//!     BENCH_event_engine.json BENCH_flat_fabric.json
//! ```
//!
//! Prints one row per experiment id found in either file with the wall-ms
//! of each and the ratio — the obligation-discovery story of a PR at a
//! glance (for the fabric refactor: D rows ≈ flat, S rows new). The tool
//! is CI furniture, not a gate: it always exits 0, including when a file
//! is missing or unparsable, so the step stays informational.

use std::fmt::Write as _;

/// Extract `(id, wall_ms)` pairs from an experiments-JSON document. The
/// format is the one `experiments --json` writes (one experiment object
/// per line); a hand-rolled scanner keeps the offline build serde-free.
fn extract(doc: &str) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    let mut rest = doc;
    while let Some(i) = rest.find("\"id\":\"") {
        rest = &rest[i + 6..];
        let Some(end) = rest.find('"') else { break };
        let id = rest[..end].to_string();
        // Search wall_ms only within this record (up to the next "id":),
        // so a record missing the field is skipped rather than stealing
        // the following record's timing.
        let record = match rest.find("\"id\":\"") {
            Some(next) => &rest[..next],
            None => rest,
        };
        if let Some(w) = record.find("\"wall_ms\":") {
            let tail = &record[w + 10..];
            let digits: String = tail.chars().take_while(|c| c.is_ascii_digit()).collect();
            if let Ok(ms) = digits.parse::<u64>() {
                out.push((id, ms));
            }
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (old_path, new_path) = match (args.first(), args.get(1)) {
        (Some(a), Some(b)) => (a.clone(), b.clone()),
        _ => {
            eprintln!("usage: bench-delta OLD.json NEW.json (non-blocking: exiting 0)");
            return;
        }
    };
    let read = |p: &str| match std::fs::read_to_string(p) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("bench-delta: cannot read {p}: {e} (non-blocking: exiting 0)");
            None
        }
    };
    let (Some(old_doc), Some(new_doc)) = (read(&old_path), read(&new_path)) else {
        return;
    };
    let old = extract(&old_doc);
    let new = extract(&new_doc);

    let mut ids: Vec<String> = old.iter().chain(&new).map(|(id, _)| id.clone()).collect();
    ids.sort();
    ids.dedup();

    let find = |set: &[(String, u64)], id: &str| set.iter().find(|(k, _)| k == id).map(|&(_, v)| v);
    let mut report = String::new();
    let _ = writeln!(
        report,
        "{:<6} {:>12} {:>12} {:>8}",
        "id", "old ms", "new ms", "ratio"
    );
    let _ = writeln!(report, "{}", "-".repeat(42));
    for id in &ids {
        let (o, n) = (find(&old, id), find(&new, id));
        let row = match (o, n) {
            (Some(o), Some(n)) => {
                let ratio = if o == 0 {
                    "-".to_string()
                } else {
                    format!("{:.2}x", n as f64 / o as f64)
                };
                format!("{id:<6} {o:>12} {n:>12} {ratio:>8}")
            }
            (Some(o), None) => format!("{id:<6} {o:>12} {:>12} {:>8}", "gone", "-"),
            (None, Some(n)) => format!("{id:<6} {:>12} {n:>12} {:>8}", "new", "-"),
            (None, None) => continue,
        };
        let _ = writeln!(report, "{row}");
    }
    println!("# wall-time deltas: {old_path} → {new_path}\n");
    print!("{report}");
}

#[cfg(test)]
mod tests {
    use super::extract;

    #[test]
    fn extracts_ids_and_wall_times_in_order() {
        let doc = r#"{"suite":"x","experiments":[
{"id":"t1","title":"T1 — q","wall_ms":44,"table":{}},
{"id":"s1","title":"S1","wall_ms":1203,"table":{}}
]}"#;
        assert_eq!(
            extract(doc),
            vec![("t1".to_string(), 44), ("s1".to_string(), 1203)]
        );
    }

    #[test]
    fn tolerates_garbage() {
        assert!(extract("not json at all").is_empty());
        assert!(extract("{\"id\":\"t1\"}").is_empty(), "no wall_ms: skipped");
    }

    #[test]
    fn record_missing_wall_ms_does_not_steal_the_next_ones() {
        // A truncated record must be dropped, not attributed the timing of
        // the experiment after it.
        let doc = r#"{"id":"t1","title":"broken"},
{"id":"t2","wall_ms":5,"table":{}}"#;
        assert_eq!(extract(doc), vec![("t2".to_string(), 5)]);
    }
}
