//! Per-backend speed × exactness table for the round-loop backends.
//!
//! ```text
//! cargo run --release -p ssmdst-bench --bin backends -- --json BENCH_backends.json
//! ```
//!
//! Runs each workload once per execution backend ([`Backend::ALL`]),
//! chains the full per-round `ScheduleDigest` while timing the loop, and
//! **asserts in-bench** that every backend's chained digest equals the
//! reference backend's — a benchmark row is only reportable if the run it
//! timed was bit-exact. Wall times are the minimum of three repetitions
//! (the usual defense against scheduler noise). The JSON document uses
//! the same `"id"`/`"wall_ms"` record shape as `experiments --json`, so
//! `bench-delta` can diff it against any committed baseline.
//!
//! Workloads target the regimes where the backends differ:
//!
//! * `bk1` — message-dense gossip on G(n,p): every node floods every
//!   neighbor every round; per-message slot lookups dominate, the batched
//!   backend's run-coalescing is on the hot path.
//! * `bk2` — large-n near-regular gossip: wide occupancy sets; the SoA
//!   backend's bit-word scan replaces sorting thousands of slot ids.
//! * `bk3` — the MDST protocol to quiescence and beyond: bursty start,
//!   long quiet tail of pure ticks; measures backend overhead when there
//!   is little to batch.

use ssmdst_bench::{json_string, Table};
use ssmdst_core::{build_network, Config, MdstNode};
use ssmdst_graph::generators::random::{gnp_connected, near_regular};
use ssmdst_graph::Graph;
use ssmdst_sim::{Automaton, Backend, Digest, Message, Network, Outbox, Runner, Scheduler};
use std::time::Instant;

#[derive(Debug, Clone, Copy)]
struct Beat(u32);
impl Message for Beat {
    fn kind(&self) -> &'static str {
        "Beat"
    }
    fn size_bits(&self, _n: usize) -> usize {
        32
    }
}

/// Floods a counter to every neighbor each round — the message-dense,
/// never-quiescing regime (same automaton the zero-alloc guard meters).
#[derive(Debug)]
struct Gossip {
    neighbors: Vec<u32>,
    beat: u32,
    heard: u64,
}

impl Automaton for Gossip {
    type Msg = Beat;
    fn tick(&mut self, out: &mut Outbox<Beat>) {
        self.beat += 1;
        for &w in &self.neighbors {
            out.send(w, Beat(self.beat));
        }
    }
    fn receive(&mut self, _from: u32, msg: Beat, _out: &mut Outbox<Beat>) {
        self.heard += msg.0 as u64;
    }
}

struct Measured {
    wall_ms: u128,
    digest: u64,
    delivered: u64,
}

/// Run `rounds` rounds of a freshly built network under `backend`,
/// chaining every round's schedule digest. Returns the min wall time of
/// three repetitions; the digest must be identical across reps (it is a
/// pure function of the run) and is asserted so.
fn measure<A: Automaton>(
    build: impl Fn() -> Network<A>,
    sched: Scheduler,
    backend: Backend,
    rounds: u64,
) -> Measured {
    let mut best: Option<Measured> = None;
    for _ in 0..3 {
        let mut runner = Runner::new(build(), sched);
        runner.set_backend(backend);
        let mut digest = Digest::new();
        let started = Instant::now(); // lint: allow(no-ambient-entropy) — observation-side wall-clock for the printed timing column; never feeds simulation state
        for _ in 0..rounds {
            runner.step_round_digest(&mut digest);
        }
        let wall_ms = started.elapsed().as_millis();
        let m = Measured {
            wall_ms,
            digest: digest.value(),
            delivered: runner.network().metrics.total_delivered,
        };
        best = Some(match best {
            Some(b) => {
                assert_eq!(b.digest, m.digest, "digest must not vary across reps");
                if m.wall_ms < b.wall_ms {
                    m
                } else {
                    b
                }
            }
            None => m,
        });
    }
    best.unwrap()
}

fn gossip_net(g: &Graph) -> Network<Gossip> {
    Network::from_graph(g, |_, nbrs| Gossip {
        neighbors: nbrs.to_vec(),
        beat: 0,
        heard: 0,
    })
}

fn mdst_net(g: &Graph) -> Network<MdstNode> {
    build_network(g, Config::for_n(g.n()))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| match args.get(i + 1) {
            Some(p) if !p.starts_with("--") => p.clone(),
            _ => {
                eprintln!("error: --json requires an output path");
                std::process::exit(2);
            }
        });

    println!("# ssmdst backend benchmark (bit-exactness asserted per row)");
    let mut json_entries: Vec<String> = Vec::new();
    let mut table = Table::new(vec![
        "workload",
        "backend",
        "wall_ms",
        "vs ref",
        "digest",
        "delivered",
    ]);

    // (id, title, closure running one backend)
    let g1 = gnp_connected(256, 0.06, 11);
    let g2 = near_regular(2048, 8, 7);
    let g3 = gnp_connected(96, 0.08, 3);
    type Run = Box<dyn Fn(Backend) -> Measured>;
    let workloads: Vec<(&str, &str, Run)> = vec![
        (
            "bk1",
            "BK1 — message-dense gossip, G(256, 0.06), async, 400 rounds",
            Box::new(move |b| {
                measure(
                    || gossip_net(&g1),
                    Scheduler::RandomAsync { seed: 5 },
                    b,
                    400,
                )
            }),
        ),
        (
            "bk2",
            "BK2 — large-n gossip, near-regular(2048, 8), sync, 150 rounds",
            Box::new(move |b| measure(|| gossip_net(&g2), Scheduler::Synchronous, b, 150)),
        ),
        (
            "bk3",
            "BK3 — MDST protocol, G(96, 0.08), adversarial, 2000 rounds",
            Box::new(move |b| {
                measure(
                    || mdst_net(&g3),
                    Scheduler::Adversarial { seed: 9 },
                    b,
                    2000,
                )
            }),
        ),
    ];

    for (id, title, run) in &workloads {
        println!("\n## {title}");
        let mut reference: Option<Measured> = None;
        for backend in Backend::ALL {
            let started = Instant::now(); // lint: allow(no-ambient-entropy) — observation-side wall-clock for the printed timing column; never feeds simulation state
            let m = run(backend);
            let total_ms = started.elapsed().as_millis();
            let (ratio, ref_digest) = match &reference {
                Some(r) => (m.wall_ms as f64 / r.wall_ms.max(1) as f64, r.digest),
                None => (1.0, m.digest),
            };
            // The conformance gate inside the benchmark: a timing row for
            // a run that was not bit-exact must never be reported.
            assert_eq!(
                m.digest, ref_digest,
                "{id}: backend {backend} diverged from reference digest"
            );
            if reference.is_none() {
                reference = Some(Measured {
                    wall_ms: m.wall_ms,
                    digest: m.digest,
                    delivered: m.delivered,
                });
            }
            println!(
                "  {backend:<10} wall={:>5}ms ({ratio:.2}x ref) digest={:016x}",
                m.wall_ms, m.digest
            );
            table.row(vec![
                id.to_string(),
                backend.to_string(),
                m.wall_ms.to_string(),
                format!("{ratio:.2}x"),
                format!("{:016x}", m.digest),
                m.delivered.to_string(),
            ]);
            json_entries.push(format!(
                "{{\"id\":{},\"title\":{},\"wall_ms\":{},\"digest\":\"{:016x}\",\"total_ms\":{}}}",
                json_string(&format!("{id}-{backend}")),
                json_string(title),
                m.wall_ms,
                m.digest,
                total_ms
            ));
        }
    }

    println!("\n## summary\n");
    print!("{}", table.render());

    if let Some(path) = json_path {
        let doc = format!(
            "{{\"suite\":\"ssmdst-backends\",\"profile\":{},\"experiments\":[\n{}\n]}}\n",
            json_string("default"),
            json_entries.join(",\n")
        );
        std::fs::write(&path, doc).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {path}");
    }
}
