//! Property test: the flat fabric's accounting survives arbitrary
//! interleavings of traffic, fault injection and topology churn.
//!
//! The class of bug this hunts is *accounting desync* — `in_flight`
//! drifting from the real queue contents, the occupancy index keeping a
//! ghost entry for an emptied (or tombstoned) channel, a recycled slot
//! inheriting stale state, a dirty flag surviving its queue entry. Before
//! [`Network::check_invariants`] existed these were only caught indirectly,
//! rounds later, when a determinism or convergence test happened to
//! diverge. Here every mutation is followed by a full audit plus the
//! incremental-vs-rescan occupancy cross-check, so the desync is pinned to
//! the exact operation that introduced it.

use proptest::collection;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ssmdst_sim::{Automaton, Corrupt, Message, Network, Outbox};

const N: u32 = 12;

#[derive(Debug, Clone, Copy)]
struct Ping(u64);
impl Message for Ping {
    fn kind(&self) -> &'static str {
        "Ping"
    }
    fn size_bits(&self, _n: usize) -> usize {
        64
    }
}

/// Chatty automaton with a corruptible payload; gossips to all current
/// neighbors every tick.
#[derive(Debug)]
struct Cell {
    neighbors: Vec<u32>,
    value: u64,
}

impl Automaton for Cell {
    type Msg = Ping;
    fn tick(&mut self, out: &mut Outbox<Ping>) {
        for &w in &self.neighbors {
            out.send(w, Ping(self.value));
        }
    }
    fn receive(&mut self, _: u32, msg: Ping, _: &mut Outbox<Ping>) {
        self.value = self.value.wrapping_add(msg.0);
    }
    fn on_topology_change(&mut self, neighbors: &[u32]) {
        self.neighbors = neighbors.to_vec();
    }
}

impl Corrupt for Cell {
    fn corrupt(&mut self, rng: &mut StdRng) {
        use rand::Rng;
        self.value = rng.random();
    }
}

/// One scripted mutation; fields are interpreted modulo the current state,
/// so every generated triple is applicable.
type Op = (u8, u32, u32);

fn apply(net: &mut Network<Cell>, op: Op, rng: &mut StdRng) {
    let (kind, a, b) = op;
    let n = net.n() as u32;
    let (a, b) = (a % n, b % n);
    match kind % 8 {
        0 => net.tick_node(a),
        1 => {
            // Deliver from one of the currently occupied channels.
            let occupied = net.nonempty_channels();
            if !occupied.is_empty() {
                let (from, to) = occupied[a as usize % occupied.len()];
                assert!(net.deliver_one(from, to), "occupied channel was empty");
            }
        }
        2 => {
            net.remove_edge(a, b);
        }
        3 => {
            net.insert_edge(a, b);
        }
        4 => {
            net.crash_node(a);
        }
        5 => {
            net.rejoin_node(a);
        }
        6 => {
            use rand::Rng;
            let p = (b as f64 / n as f64).min(1.0);
            net.drop_in_flight(p, rng);
            let _ = rng.random::<u64>(); // decorrelate successive bursts
        }
        7 => {
            if a % 3 == 0 {
                net.clear_channels();
            } else {
                // Runtime state corruption through the fault-injection door.
                net.node_mut(a).corrupt(rng);
            }
        }
        _ => unreachable!(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random churn + faults + traffic, audited after every mutation.
    #[test]
    fn accounting_survives_arbitrary_churn(
        graph_seed in 0u64..5_000,
        rng_seed in 0u64..5_000,
        ops in collection::vec((0u8..8, 0u32..N, 0u32..N), 1..120),
    ) {
        let g = ssmdst_graph::generators::random::gnp_connected(
            N as usize, 0.3, graph_seed,
        );
        let mut net = Network::from_graph(&g, |_, nbrs| Cell {
            neighbors: nbrs.to_vec(),
            value: 1,
        });
        let mut rng = StdRng::seed_from_u64(rng_seed);
        for op in ops {
            apply(&mut net, op, &mut rng);
            net.check_invariants();
            // The incremental occupancy index and a from-scratch scan must
            // tell the same story at every step.
            prop_assert_eq!(net.nonempty_channels(), net.scan_nonempty_channels());
        }
        // Drain whatever is left; the audit must hold down to empty.
        while let Some(&(from, to)) = net.nonempty_channels().first() {
            net.deliver_one(from, to);
            net.check_invariants();
        }
        prop_assert_eq!(net.in_flight(), 0);
    }
}
