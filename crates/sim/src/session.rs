//! [`Session`]: the one composable driver surface.
//!
//! A session bundles everything a run needs — network, scheduler, round
//! horizon, an optional planned churn timeline, and a stack of
//! [`Observer`]s — behind one fluent builder and one `run()`/`step()`
//! surface. Every driver in the workspace (the `ssmdst::run` facade, the
//! scenario engine, the experiment harness, the CLI) is a thin layer over
//! a `Session`; protocol-specific machinery plugs in as observers rather
//! than as bespoke loops.
//!
//! ```
//! use ssmdst_sim::{Automaton, Message, Outbox, Scheduler, Session};
//!
//! #[derive(Debug, Clone)]
//! struct Ping;
//! impl Message for Ping {
//!     fn kind(&self) -> &'static str { "Ping" }
//!     fn size_bits(&self, _n: usize) -> usize { 1 }
//! }
//! struct Chatter { neighbors: Vec<u32>, heard: u32 }
//! impl Automaton for Chatter {
//!     type Msg = Ping;
//!     fn tick(&mut self, out: &mut Outbox<Ping>) {
//!         for &w in &self.neighbors { out.send(w, Ping); }
//!     }
//!     fn receive(&mut self, _: u32, _: Ping, _: &mut Outbox<Ping>) { self.heard += 1; }
//! }
//!
//! let g = ssmdst_graph::graph::graph_from_edges(2, &[(0, 1)]);
//! let mut session = Session::over(&g, |_, nbrs| Chatter { neighbors: nbrs.to_vec(), heard: 0 })
//!     .scheduler(Scheduler::Synchronous)
//!     .horizon(10)
//!     .build();
//! let out = session.run_until(10, &mut ssmdst_sim::stop_when(|net: &ssmdst_sim::Network<Chatter>, _| {
//!     net.node(0).heard >= 3
//! }));
//! assert!(out.converged());
//! ```
//!
//! The steady-state loop stays **zero-allocation when no observer is
//! attached**: a `Session<A, ()>` round is the same machine code as a bare
//! [`Runner`] round (`tests/zero_alloc.rs` meters both).

#![warn(missing_docs)]

use crate::automaton::Automaton;
use crate::backend::Backend;
use crate::faults::{apply_churn, inject, ChurnEvent, Corrupt, FaultPlan};
use crate::network::Network;
use crate::observer::{Observer, Stop};
use crate::runner::{RunOutcome, Runner, StopReason};
use crate::scheduler::Scheduler;
use crate::stop::QuiescenceGate;
use crate::NodeId;
use ssmdst_graph::Graph;

/// Fluent construction state for a [`Session`]. Finish with
/// [`SessionBuilder::build`] (no observers) or
/// [`SessionBuilder::observe`] (attach an observer stack).
#[must_use = "a session builder does nothing until .build() or .observe() finishes it"]
pub struct SessionBuilder<A: Automaton> {
    net: Network<A>,
    sched: Scheduler,
    horizon: u64,
    plan: Vec<(u64, ChurnEvent)>,
    backend: Backend,
}

impl<A: Automaton> SessionBuilder<A> {
    /// Choose the daemon (default: [`Scheduler::Synchronous`]).
    pub fn scheduler(mut self, sched: Scheduler) -> Self {
        self.sched = sched;
        self
    }

    /// Choose the round-loop execution backend (default:
    /// [`Backend::Reference`]). Every backend is required to produce the
    /// bit-identical execution — the choice trades hot-path cost only.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Default round budget for [`Session::run`] and
    /// [`Session::run_to_quiescence`]. Defaults to
    /// [`Session::DEFAULT_HORIZON`] — deliberately finite, so a
    /// non-converging run returns [`crate::StopReason::RoundLimit`]
    /// instead of hanging when a caller forgets the bound; pass
    /// `u64::MAX` explicitly for an unbounded session.
    pub fn horizon(mut self, rounds: u64) -> Self {
        self.horizon = rounds;
        self
    }

    /// Corrupt the initial configuration — the paper's
    /// arbitrary-configuration start. Applied immediately, before round 0.
    pub fn corrupt(mut self, plan: FaultPlan) -> Self
    where
        A: Corrupt,
    {
        let _ = inject(&mut self.net, plan);
        self
    }

    /// Schedule a topology-churn event to apply once `at_round` rounds
    /// have completed — i.e. before the `(at_round + 1)`-th round
    /// executes, so `churn_at(0, …)` applies before any round runs and a
    /// node crashed by `churn_at(r, …)` participates in exactly `r`
    /// rounds. Events whose round has already passed apply before the
    /// next round. Observers see each application via
    /// [`Observer::on_phase`] with the event's rendered label.
    pub fn churn_at(mut self, at_round: u64, ev: ChurnEvent) -> Self {
        self.plan.push((at_round, ev));
        self
    }

    /// Finish with an observer stack attached (a single observer, or a
    /// nested tuple of them).
    pub fn observe<O: Observer<A>>(mut self, obs: O) -> Session<A, O> {
        self.plan.sort_by_key(|&(at, _)| at);
        let mut runner = Runner::new(self.net, self.sched);
        runner.set_backend(self.backend);
        Session {
            runner,
            obs,
            horizon: self.horizon,
            plan: self.plan,
            next_planned: 0,
        }
    }

    /// Finish with no observers: the zero-overhead configuration.
    pub fn build(self) -> Session<A, ()> {
        self.observe(())
    }
}

/// A configured simulation run: network + scheduler + horizon + planned
/// churn + observers, with one `run()`/`step()` surface.
///
/// Construct via [`Session::over`] (graph + node factory) or
/// [`Session::from_network`] (pre-built network, e.g. a protocol crate's
/// `build_network`); resume an existing [`Runner`] with
/// [`Session::resume`].
#[must_use = "a session does nothing until run() or step() drives it"]
pub struct Session<A: Automaton, O: Observer<A> = ()> {
    runner: Runner<A>,
    obs: O,
    horizon: u64,
    plan: Vec<(u64, ChurnEvent)>,
    next_planned: usize,
}

impl<A: Automaton> Session<A, ()> {
    /// Fallback round budget when the builder sets no
    /// [`SessionBuilder::horizon`]: large enough for every workload in
    /// this workspace, finite so a forgotten bound can never hang a
    /// process.
    pub const DEFAULT_HORIZON: u64 = 1_000_000;

    /// Start building a session over `g`, constructing one automaton per
    /// node from `(id, sorted neighbor list)`.
    pub fn over(g: &Graph, make: impl FnMut(NodeId, &[NodeId]) -> A) -> SessionBuilder<A> {
        Self::from_network(Network::from_graph(g, make))
    }

    /// Start building a session over a pre-built network.
    pub fn from_network(net: Network<A>) -> SessionBuilder<A> {
        SessionBuilder {
            net,
            sched: Scheduler::Synchronous,
            horizon: Self::DEFAULT_HORIZON,
            plan: Vec::new(),
            backend: Backend::Reference,
        }
    }

    /// Wrap an existing runner (mid-run state preserved) as an
    /// observer-less session — the migration path from hand-driven
    /// [`Runner`] code.
    pub fn resume(runner: Runner<A>) -> Session<A, ()> {
        Session {
            runner,
            obs: (),
            horizon: Self::DEFAULT_HORIZON,
            plan: Vec::new(),
            next_planned: 0,
        }
    }
}

impl<A: Automaton, O: Observer<A>> Session<A, O> {
    /// The wrapped network (oracles, metrics).
    pub fn network(&self) -> &Network<A> {
        self.runner.network()
    }

    /// Mutable network access (ad-hoc fault injection and churn between
    /// rounds).
    pub fn network_mut(&mut self) -> &mut Network<A> {
        self.runner.network_mut()
    }

    /// The underlying runner.
    pub fn runner(&self) -> &Runner<A> {
        &self.runner
    }

    /// The attached observer stack.
    pub fn observer(&self) -> &O {
        &self.obs
    }

    /// Mutable access to the observer stack (e.g. to reconfigure a stop
    /// condition between phases or fold extra data into a digest).
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.obs
    }

    /// Split borrow: the observer stack mutably alongside the network —
    /// for observers that judge or index the current topology between
    /// phases without cloning it.
    pub fn observer_and_network(&mut self) -> (&mut O, &Network<A>) {
        (&mut self.obs, self.runner.network())
    }

    /// Completed rounds since the session (or resumed runner) started.
    pub fn round(&self) -> u64 {
        self.runner.round()
    }

    /// Default round budget for [`Session::run`].
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// Replace the observer stack, keeping run state.
    pub fn swap_observer<O2: Observer<A>>(self, obs: O2) -> (Session<A, O2>, O) {
        (
            Session {
                runner: self.runner,
                obs,
                horizon: self.horizon,
                plan: self.plan,
                next_planned: self.next_planned,
            },
            self.obs,
        )
    }

    /// Dismantle into the runner and the observer stack.
    pub fn into_parts(self) -> (Runner<A>, O) {
        (self.runner, self.obs)
    }

    /// Dismantle into just the runner (observers dropped).
    pub fn into_runner(self) -> Runner<A> {
        self.runner
    }

    /// Execute one round through the observer stack (planned churn due at
    /// this round applies first). Returns the observers' stop verdict.
    pub fn step(&mut self) -> Stop {
        self.apply_due_plan();
        self.runner.step_round_observed(&mut self.obs)
    }

    /// Run until the attached observers answer [`Stop::Done`] or the
    /// session horizon elapses.
    pub fn run(&mut self) -> RunOutcome {
        let horizon = self.horizon;
        self.run_until(horizon, &mut ())
    }

    /// Run until the attached observers *or* the extra `stop` observer
    /// answer [`Stop::Done`], or `max_rounds` elapse. The extra observer
    /// is borrowed for this call only, so per-call stop conditions compose
    /// with session-owned machinery.
    pub fn run_until<S: Observer<A>>(&mut self, max_rounds: u64, stop: &mut S) -> RunOutcome {
        let start = self.runner.round();
        while self.runner.round() - start < max_rounds {
            self.apply_due_plan();
            let verdict = self
                .runner
                .step_round_observed(&mut (&mut self.obs, &mut *stop));
            if verdict.is_done() {
                return RunOutcome {
                    rounds: self.runner.round() - start,
                    reason: StopReason::Converged,
                };
            }
        }
        RunOutcome {
            rounds: self.runner.round() - start,
            reason: StopReason::RoundLimit,
        }
    }

    /// Run until a projection of the global state has been stable for
    /// `window` consecutive rounds (the [`QuiescenceGate`] predicate), or
    /// the session horizon elapses.
    pub fn run_to_quiescence<P: PartialEq>(
        &mut self,
        window: u64,
        mut project: impl FnMut(&Network<A>) -> P,
    ) -> RunOutcome {
        let horizon = self.horizon;
        let mut gate = QuiescenceGate::primed(window, project(self.network()));
        self.run_until(
            horizon,
            &mut crate::observer::stop_when(move |net: &Network<A>, _| gate.observe(project(net))),
        )
    }

    /// Inject a transient-fault burst (observers are notified via
    /// [`Observer::on_phase`] with a `fault` label). Returns the sorted
    /// victim list.
    pub fn inject(&mut self, plan: FaultPlan) -> Vec<NodeId>
    where
        A: Corrupt,
    {
        let victims = inject(self.runner.network_mut(), plan);
        let round = self.runner.round();
        self.obs.on_phase(self.runner.network(), "fault", round);
        victims
    }

    /// Apply one topology-churn event now (observers are notified via
    /// [`Observer::on_phase`] with the event's rendered label and via
    /// [`Observer::on_churn`] with the event itself). Returns the number
    /// of in-flight messages dropped by the change.
    pub fn churn(&mut self, ev: &ChurnEvent) -> usize {
        let dropped = apply_churn(self.runner.network_mut(), ev);
        let label = ev.to_string();
        let round = self.runner.round();
        self.obs.on_phase(self.runner.network(), &label, round);
        self.obs.on_churn(self.runner.network(), ev, round);
        dropped
    }

    /// Announce a driver-defined phase boundary to the observer stack.
    pub fn phase(&mut self, label: &str) {
        let round = self.runner.round();
        self.obs.on_phase(self.runner.network(), label, round);
    }

    /// Apply every planned churn event whose round has arrived.
    fn apply_due_plan(&mut self) {
        while self.next_planned < self.plan.len()
            && self.plan[self.next_planned].0 <= self.runner.round()
        {
            let (at, ev) = &self.plan[self.next_planned];
            let _ = apply_churn(self.runner.network_mut(), ev);
            let label = ev.to_string();
            self.obs.on_phase(self.runner.network(), &label, *at);
            self.obs.on_churn(self.runner.network(), ev, *at);
            self.next_planned += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{Message, Outbox};
    use crate::observer::{observe_rounds, stop_when, ScheduleDigest};
    use ssmdst_graph::generators::structured::path;

    #[derive(Debug, Clone)]
    struct Val(u32);
    impl Message for Val {
        fn kind(&self) -> &'static str {
            "Val"
        }
        fn size_bits(&self, _n: usize) -> usize {
            32
        }
    }

    /// Min-propagation: floods the smallest value seen.
    #[derive(Debug)]
    struct MinFlood {
        neighbors: Vec<NodeId>,
        value: u32,
    }
    impl Corrupt for MinFlood {
        fn corrupt(&mut self, rng: &mut rand::rngs::StdRng) {
            use rand::Rng;
            self.value = rng.random_range(0..1000u32);
        }
    }

    impl Automaton for MinFlood {
        type Msg = Val;
        fn tick(&mut self, out: &mut Outbox<Val>) {
            for &w in &self.neighbors {
                out.send(w, Val(self.value));
            }
        }
        fn receive(&mut self, _: NodeId, msg: Val, _: &mut Outbox<Val>) {
            self.value = self.value.min(msg.0);
        }
        fn on_topology_change(&mut self, neighbors: &[NodeId]) {
            self.neighbors = neighbors.to_vec();
        }
    }

    fn builder(n: usize) -> SessionBuilder<MinFlood> {
        let g = path(n).unwrap();
        Session::over(&g, |v, nbrs| MinFlood {
            neighbors: nbrs.to_vec(),
            value: 100 - v,
        })
    }

    #[test]
    fn session_run_matches_bare_runner() {
        let mut session = builder(9)
            .scheduler(Scheduler::RandomAsync { seed: 7 })
            .build();
        let out = session.run_until(30, &mut ());
        assert_eq!(out.reason, StopReason::RoundLimit);
        assert_eq!(out.rounds, 30);

        let g = path(9).unwrap();
        let net = Network::from_graph(&g, |v, nbrs| MinFlood {
            neighbors: nbrs.to_vec(),
            value: 100 - v,
        });
        let mut runner = Runner::new(net, Scheduler::RandomAsync { seed: 7 });
        let _ = runner.run_until(30, |_, _| false);
        let a: Vec<u32> = session.network().nodes().iter().map(|n| n.value).collect();
        let b: Vec<u32> = runner.network().nodes().iter().map(|n| n.value).collect();
        assert_eq!(a, b, "session and bare runner diverged");
        assert_eq!(
            session.network().metrics.total_sent,
            runner.network().metrics.total_sent
        );
    }

    #[test]
    fn run_to_quiescence_uses_horizon_and_converges() {
        let mut session = builder(6).horizon(1_000).build();
        let out = session.run_to_quiescence(3, |net| {
            net.nodes().iter().map(|a| a.value).collect::<Vec<_>>()
        });
        assert!(out.converged());
        assert!(session.network().nodes().iter().all(|a| a.value == 95));
    }

    #[test]
    fn horizon_caps_run() {
        let mut session = builder(6).horizon(4).build();
        let out = session.run();
        assert_eq!(out.reason, StopReason::RoundLimit);
        assert_eq!(out.rounds, 4);
        assert_eq!(session.round(), 4);
    }

    /// Planned churn applies at its round, notifies observers, and the
    /// run re-converges around it.
    #[test]
    fn planned_churn_applies_at_round_and_notifies() {
        let mut session = builder(6)
            .churn_at(1, ChurnEvent::RemoveEdge(2, 3))
            .observe(crate::observer::PhaseLog::new());
        // Run a few rounds past the event. The cut lands before round 1's
        // deliveries, so value 97 never crosses to the left side.
        let _ = session.run_until(10, &mut ());
        assert_eq!(session.observer().seen(), &[("-edge(2,3)".to_string(), 1)]);
        // The cut partitions the path: the left side keeps its own min.
        let _ = session.run_until(50, &mut ());
        assert_eq!(session.network().node(0).value, 98);
    }

    #[test]
    fn corrupt_at_birth_requires_and_uses_corrupt_impl() {
        let mut session = builder(8).corrupt(FaultPlan::total(3)).horizon(200).build();
        // Not self-stabilizing (latched min), but the run is deterministic.
        let out = session.run_to_quiescence(5, |net| {
            net.nodes().iter().map(|a| a.value).collect::<Vec<_>>()
        });
        assert!(out.converged());
    }

    /// `on_churn` fires with the structured event — post-application —
    /// for both explicit and planned churn, and `observer_and_network`
    /// hands the log back alongside the live topology.
    #[test]
    fn on_churn_hook_sees_explicit_and_planned_events() {
        #[derive(Default)]
        struct ChurnLog(Vec<(String, u64, usize)>);
        impl Observer<MinFlood> for ChurnLog {
            fn on_churn(&mut self, net: &Network<MinFlood>, ev: &ChurnEvent, round: u64) {
                self.0.push((ev.to_string(), round, net.neighbors(2).len()));
            }
        }
        let mut session = builder(6)
            .churn_at(2, ChurnEvent::RemoveEdge(2, 3))
            .observe(ChurnLog::default());
        let _ = session.run_until(5, &mut ());
        let _ = session.churn(&ChurnEvent::InsertEdge(2, 3));
        let (obs, net) = session.observer_and_network();
        assert_eq!(obs.0.len(), 2);
        let planned = &obs.0[0];
        assert_eq!(planned.0, "-edge(2,3)");
        assert_eq!(planned.1, 2);
        assert_eq!(planned.2, 1, "hook sees the post-event topology");
        assert_eq!(obs.0[1].0, "+edge(2,3)");
        assert_eq!(net.neighbors(2).len(), 2);
    }

    /// `swap_observer` keeps run state; `into_parts` returns both halves.
    #[test]
    fn observer_lifecycle() {
        let session = builder(5).build();
        let (mut session, ()) = session.swap_observer(ScheduleDigest::new());
        let _ = session.run_until(5, &mut ());
        let (runner, digest) = session.into_parts();
        assert_eq!(runner.round(), 5);
        assert_ne!(digest.value(), crate::trace::Digest::new().value());
    }

    /// Composed per-call stop observers end the run and report Converged.
    #[test]
    fn per_call_stop_condition() {
        let mut seen = 0u64;
        let mut session = builder(8).observe(observe_rounds(|_: &Network<MinFlood>, _| {}));
        let out = session.run_until(
            100,
            &mut (
                observe_rounds(|_: &Network<MinFlood>, _| seen += 1),
                stop_when(|net: &Network<MinFlood>, _| net.node(7).value == 93),
            ),
        );
        assert!(out.converged());
        assert!(seen > 0);
    }
}
