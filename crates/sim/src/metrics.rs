//! Execution metrics: message counts by kind, sizes, and round accounting.
//!
//! These drive experiments T3 (message complexity), T4 (memory), F5
//! (message-length claim `O(n log n)`).
//!
//! `on_send`/`on_deliver` sit on the fabric's per-message hot path, so the
//! per-kind table is a small flat vector probed by `&'static str` pointer
//! identity first (protocols hand in interned literals, so the fast path
//! is a handful of pointer compares), falling back to a string compare for
//! distinct literals with equal text. No ordered map, no allocation after
//! a kind's first appearance.

/// Exponential bucket projection used by coverage signatures: `0` for `0`,
/// else `floor(log2(x)) + 1` — so `1`, `2..=3`, `4..=7`, … each land in one
/// stable bucket. Collapsing raw counters this way makes behavioural
/// signatures insensitive to ±1 message jitter while still separating
/// order-of-magnitude regime changes.
pub fn log2_bucket(x: u64) -> u32 {
    64 - x.leading_zeros()
}

/// Per-message-kind statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KindStats {
    /// Messages sent of this kind.
    pub sent: u64,
    /// Messages delivered of this kind.
    pub delivered: u64,
    /// Largest serialized size (bits) observed for this kind.
    pub max_size_bits: usize,
    /// Sum of serialized sizes (bits) over all sends — divided by `sent`
    /// this gives the mean message length.
    pub total_size_bits: u64,
}

/// Aggregated metrics for one simulation run.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Per-kind stats, unordered, linear-probed (protocols have ≤ ~10
    /// kinds; [`Metrics::kinds`] sorts on read).
    by_kind: Vec<(&'static str, KindStats)>,
    /// Total messages sent (all kinds).
    pub total_sent: u64,
    /// Total messages delivered.
    pub total_delivered: u64,
    /// Completed rounds.
    pub rounds: u64,
    /// Peak number of undelivered messages across all channels (buffer
    /// occupancy high-water mark).
    pub peak_in_flight: usize,
    /// Sends addressed to a departed neighbor after topology churn; such
    /// messages are lost in transit rather than delivered (the static-
    /// topology invariant treats them as a bug and panics instead).
    pub dropped_sends: u64,
}

impl Metrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Find-or-insert the stats entry for `kind`: pointer-identity fast
    /// path, string-equality fallback, push on first sight.
    fn entry(&mut self, kind: &'static str) -> &mut KindStats {
        let idx = self
            .by_kind
            .iter()
            .position(|&(k, _)| std::ptr::eq(k, kind) || k == kind);
        let idx = match idx {
            Some(i) => i,
            None => {
                self.by_kind.push((kind, KindStats::default()));
                self.by_kind.len() - 1
            }
        };
        &mut self.by_kind[idx].1
    }

    /// Record a send of a message with the given kind/size.
    pub fn on_send(&mut self, kind: &'static str, size_bits: usize) {
        let e = self.entry(kind);
        e.sent += 1;
        e.max_size_bits = e.max_size_bits.max(size_bits);
        e.total_size_bits += size_bits as u64;
        self.total_sent += 1;
    }

    /// Record a delivery.
    pub fn on_deliver(&mut self, kind: &'static str) {
        self.entry(kind).delivered += 1;
        self.total_delivered += 1;
    }

    /// Record current in-flight message count (called by the network after
    /// each step).
    pub fn on_in_flight(&mut self, in_flight: usize) {
        self.peak_in_flight = self.peak_in_flight.max(in_flight);
    }

    /// Stats for one kind, zeroed if never seen.
    pub fn kind(&self, kind: &str) -> KindStats {
        self.by_kind
            .iter()
            .find(|&&(k, _)| k == kind)
            .map(|(_, s)| s.clone())
            .unwrap_or_default()
    }

    /// All kinds seen, in lexicographic order (sorted on read — this is a
    /// reporting path, not the hot path).
    pub fn kinds(&self) -> impl Iterator<Item = (&'static str, &KindStats)> {
        let mut view: Vec<(&'static str, &KindStats)> =
            self.by_kind.iter().map(|(k, v)| (*k, v)).collect();
        view.sort_unstable_by_key(|&(k, _)| k);
        view.into_iter()
    }

    /// Bucketed per-kind send counts, in lexicographic kind order — the
    /// messages-by-kind projection coverage signatures fold. Buckets are
    /// [`log2_bucket`] of the send count, so the projection is stable
    /// under small count jitter but distinguishes traffic regimes.
    pub fn kind_buckets(&self) -> Vec<(&'static str, u32)> {
        self.kinds()
            .map(|(k, s)| (k, log2_bucket(s.sent)))
            .collect()
    }

    /// Largest message observed across all kinds (bits).
    pub fn max_message_bits(&self) -> usize {
        self.by_kind
            .iter()
            .map(|(_, s)| s.max_size_bits)
            .max()
            .unwrap_or(0)
    }

    /// Reset all counters (the fault-recovery experiment measures the
    /// post-fault phase in isolation).
    pub fn reset(&mut self) {
        *self = Metrics::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_deliver_accounting() {
        let mut m = Metrics::new();
        m.on_send("InfoMsg", 32);
        m.on_send("InfoMsg", 48);
        m.on_send("Search", 300);
        m.on_deliver("InfoMsg");
        assert_eq!(m.total_sent, 3);
        assert_eq!(m.total_delivered, 1);
        let info = m.kind("InfoMsg");
        assert_eq!(info.sent, 2);
        assert_eq!(info.delivered, 1);
        assert_eq!(info.max_size_bits, 48);
        assert_eq!(info.total_size_bits, 80);
        assert_eq!(m.max_message_bits(), 300);
    }

    #[test]
    fn unknown_kind_is_zeroed() {
        let m = Metrics::new();
        assert_eq!(m.kind("Nope"), KindStats::default());
    }

    #[test]
    fn in_flight_high_water_mark() {
        let mut m = Metrics::new();
        m.on_in_flight(3);
        m.on_in_flight(10);
        m.on_in_flight(5);
        assert_eq!(m.peak_in_flight, 10);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut m = Metrics::new();
        m.on_send("X", 8);
        m.rounds = 9;
        m.reset();
        assert_eq!(m.total_sent, 0);
        assert_eq!(m.rounds, 0);
        assert_eq!(m.kinds().count(), 0);
    }

    #[test]
    fn log2_bucket_boundaries() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 1);
        assert_eq!(log2_bucket(2), 2);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(4), 3);
        assert_eq!(log2_bucket(7), 3);
        assert_eq!(log2_bucket(8), 4);
        assert_eq!(log2_bucket(u64::MAX), 64);
    }

    #[test]
    fn kind_buckets_project_sent_counts() {
        let mut m = Metrics::new();
        for _ in 0..5 {
            m.on_send("Beta", 8);
        }
        m.on_send("Alpha", 8);
        assert_eq!(m.kind_buckets(), vec![("Alpha", 1), ("Beta", 3)]);
    }

    #[test]
    fn kinds_iterates_lexicographically() {
        let mut m = Metrics::new();
        m.on_send("Zeta", 1);
        m.on_send("Alpha", 1);
        let order: Vec<_> = m.kinds().map(|(k, _)| k).collect();
        assert_eq!(order, vec!["Alpha", "Zeta"]);
    }
}
