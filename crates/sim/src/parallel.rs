//! Parallel sweep driver for the experiment harness.
//!
//! Experiments run hundreds of independent (graph, seed, scheduler)
//! simulations; this module fans them out across OS threads with crossbeam's
//! scoped threads and collects results in input order. Each simulation is
//! single-threaded and deterministic, so parallelism never perturbs results
//! — a requirement for reproducible tables.

use crossbeam::thread;
use parking_lot::Mutex;

/// Run `job` over `inputs` on up to `workers` threads, preserving input
/// order in the output. `job` must be `Sync` (it is shared by reference) and
/// inputs are handed out through a work-stealing index.
///
/// Results are written through **per-slot cells** — each worker locks only
/// the (uncontended) mutex of the slot it just produced, never a shared
/// collection — so workers publishing results do not serialize on one
/// global lock while others are mid-`job`.
///
/// Falls back to sequential execution when `workers <= 1` (`workers = 0`
/// is treated as 1, not as "no workers": the sweep always runs).
///
/// # Panics
///
/// A panicking `job` aborts the sweep and the panic propagates to the
/// caller; no partial result vector is ever returned. The payload differs
/// by path, and tests pin both behaviors:
///
/// * sequential path (`workers <= 1` or a single input): the job's own
///   panic payload propagates unchanged;
/// * parallel path: workers already mid-job finish their current item,
///   then the scope re-raises — since the scoped-thread shim is built on
///   [`std::thread::scope`], the payload is the standard library's
///   `"a scoped thread panicked"`, not the job's own.
pub fn run_many<I, O, F>(inputs: Vec<I>, workers: usize, job: F) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    if workers <= 1 || inputs.len() <= 1 {
        return inputs.iter().map(&job).collect();
    }
    let n = inputs.len();
    let mut slots: Vec<Mutex<Option<O>>> = Vec::with_capacity(n);
    slots.resize_with(n, || Mutex::new(None));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let inputs_ref = &inputs;
    let slots_ref = &slots;
    let job_ref = &job;
    thread::scope(|s| {
        for _ in 0..workers.min(n) {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = job_ref(&inputs_ref[i]);
                *slots_ref[i].lock() = Some(out);
            });
        }
    })
    .expect("sweep worker panicked"); // lint: allow(no-panic-in-library) — propagating a worker panic is the only honest option here
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("every slot filled")) // lint: allow(no-panic-in-library) — the scoped join above proves every job wrote its slot
        .collect()
}

/// Number of workers to use by default: the available parallelism, capped
/// so laptop runs stay responsive, and clamped to ≥ 1 — on platforms where
/// `available_parallelism` errors (it already falls back to 1) *or* where a
/// future cap expression evaluates to 0, the sweep must still run.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .clamp(1, 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let inputs: Vec<u64> = (0..50).collect();
        let out = run_many(inputs.clone(), 8, |&x| x * x);
        let expect: Vec<u64> = inputs.iter().map(|x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn sequential_fallback_matches_parallel() {
        let inputs: Vec<u32> = (0..20).collect();
        let seq = run_many(inputs.clone(), 1, |&x| x + 1);
        let par = run_many(inputs, 4, |&x| x + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let out: Vec<u32> = run_many(Vec::<u32>::new(), 4, |&x| x);
        assert!(out.is_empty());
        let out = run_many(vec![7u32], 4, |&x| x * 2);
        assert_eq!(out, vec![14]);
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
        assert!(default_workers() <= 16);
    }

    /// Degenerate split: more workers than inputs must not spawn workers
    /// that have nothing to do. The job records which threads actually ran
    /// work; with 64 requested workers over 3 inputs, at most 3 distinct
    /// threads may ever touch a job (the spawn loop clamps to
    /// `workers.min(n)`), and the output is still complete and ordered.
    #[test]
    fn more_workers_than_inputs_spawns_no_empty_workers() {
        let seen = Mutex::new(Vec::<std::thread::ThreadId>::new());
        let out = run_many(vec![10u32, 20, 30], 64, |&x| {
            let mut ids = seen.lock();
            let id = std::thread::current().id();
            if !ids.contains(&id) {
                ids.push(id);
            }
            x + 1
        });
        assert_eq!(out, vec![11, 21, 31]);
        let distinct = seen.lock().len();
        assert!(
            (1..=3).contains(&distinct),
            "3 inputs must use at most 3 worker threads, saw {distinct}"
        );
    }

    /// The same clamp at the extreme: `usize::MAX` workers over a handful
    /// of inputs completes instead of trying to spawn the impossible.
    #[test]
    fn absurd_worker_count_is_clamped_to_input_count() {
        let out = run_many((0..5u32).collect(), usize::MAX, |&x| x * 2);
        assert_eq!(out, vec![0, 2, 4, 6, 8]);
    }

    /// `workers = 0` means "run anyway, sequentially" — not "no workers".
    #[test]
    fn zero_workers_still_runs_everything() {
        let inputs: Vec<u32> = (0..10).collect();
        let out = run_many(inputs.clone(), 0, |&x| x * 3);
        assert_eq!(out, inputs.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    /// Empty input is a no-op on every worker count, including zero.
    #[test]
    fn empty_input_is_empty_output_for_any_worker_count() {
        for workers in [0usize, 1, 4, 64] {
            let out: Vec<u64> = run_many(Vec::<u64>::new(), workers, |&x| x);
            assert!(out.is_empty(), "workers = {workers}");
        }
    }

    /// Sequential path: a panicking job propagates its own payload to the
    /// caller unchanged — no partial results, no swallowed panic.
    #[test]
    fn panicking_job_propagates_sequentially_with_original_payload() {
        let err = std::panic::catch_unwind(|| {
            run_many(vec![1u32, 2, 3], 1, |&x| {
                if x == 2 {
                    panic!("job exploded on 2");
                }
                x
            })
        })
        .expect_err("panic must propagate");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .expect("payload is the job's own &str");
        assert_eq!(msg, "job exploded on 2");
    }

    /// Parallel path: the panic still aborts the sweep and reaches the
    /// caller (via the std scoped-thread re-raise), never a partial output.
    #[test]
    fn panicking_job_propagates_from_worker_threads() {
        let err = std::panic::catch_unwind(|| {
            run_many((0..32u32).collect(), 4, |&x| {
                if x == 17 {
                    panic!("worker job exploded");
                }
                x
            })
        })
        .expect_err("panic must propagate from the scope");
        // std::thread::scope re-raises with its own payload; don't pin the
        // exact string beyond it being a str-ish panic (stable behavior).
        assert!(
            err.downcast_ref::<&str>().is_some() || err.downcast_ref::<String>().is_some(),
            "payload should be a panic message"
        );
    }

    #[test]
    fn order_preserved_when_later_inputs_finish_first() {
        // Early inputs sleep, late inputs return immediately: with more
        // than one worker the completion order is (nearly) the reverse of
        // the input order, so any indexing mistake in the per-slot writes
        // shows up as a permuted output.
        let inputs: Vec<u64> = (0..24).collect();
        let out = run_many(inputs.clone(), 8, |&x| {
            if x < 8 {
                std::thread::sleep(std::time::Duration::from_millis(8 - x));
            }
            x * 10
        });
        let expect: Vec<u64> = inputs.iter().map(|x| x * 10).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn heavier_jobs_still_ordered() {
        // Deliberately uneven job sizes to exercise work stealing.
        let inputs: Vec<u64> = (0..30).collect();
        let out = run_many(inputs, 6, |&x| {
            let mut acc = 0u64;
            for i in 0..(x % 7) * 10_000 {
                acc = acc.wrapping_add(i);
            }
            (x, acc).0
        });
        assert_eq!(out, (0..30).collect::<Vec<u64>>());
    }
}
