//! Named stop predicates — the single source of truth for convergence
//! detection.
//!
//! Before this module, the quiet-window / quiescence logic lived in three
//! places with three hand-rolled copies: `Runner::run_to_quiescence`, the
//! scenario engine's phase loop, and the experiment harness's
//! `run_until` closure. They are now all expressed through one named
//! predicate, [`QuiescenceGate`], so "the projection has been stable for
//! W consecutive rounds" means exactly the same thing everywhere — a
//! boundary test in this module pins the firing round.

#![warn(missing_docs)]

use crate::trace::StabilityWindow;

/// Canonical quiescence-confirmation window for an `n`-node run, shared by
/// the facade, the experiment harness and the dynamic-topology tests so
/// they all judge stability identically: `max(6n, 64)` rounds — long
/// enough that periodic protocol activity with an `O(n)` period (e.g. the
/// MDST search wave, period `2n`, plus an improvement of `≤ 2n` hops)
/// cannot hide inside it.
pub fn quiet_window(n: usize) -> u64 {
    (6 * n as u64).max(64)
}

/// The named quiescence predicate: fires once a projection of the global
/// state has been *unchanged for `window` consecutive observations*.
///
/// Prime it with the pre-run projection ([`QuiescenceGate::primed`]) so
/// the very first round already counts toward the streak when nothing
/// moved — the semantics every driver historically used. One observation
/// per completed round; [`QuiescenceGate::observe`] returns `true` from
/// the round the streak reaches the window onward.
#[derive(Debug, Clone)]
pub struct QuiescenceGate<P> {
    window: u64,
    inner: StabilityWindow<P>,
}

impl<P: PartialEq> QuiescenceGate<P> {
    /// Gate with no reference value yet: the first observation only seeds
    /// the streak.
    pub fn new(window: u64) -> Self {
        QuiescenceGate {
            window,
            inner: StabilityWindow::new(),
        }
    }

    /// Gate seeded with the pre-run projection, so a run that never
    /// changes state confirms after exactly `window` rounds.
    pub fn primed(window: u64, initial: P) -> Self {
        let mut gate = Self::new(window);
        let _ = gate.inner.observe(initial);
        gate
    }

    /// Offer the current projection; `true` once it has been stable for
    /// the full window.
    pub fn observe(&mut self, value: P) -> bool {
        self.inner.observe(value) >= self.window
    }

    /// The confirmation window this gate enforces.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Current stable streak (0 right after a change).
    pub fn stable_for(&self) -> u64 {
        self.inner.stable_for()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Boundary: a primed gate over an unchanging projection fires on
    /// exactly the `window`-th observation — not one earlier, not one
    /// later. This is the round-count contract the golden traces and
    /// every `conv_round` column rely on.
    #[test]
    fn primed_gate_fires_exactly_at_the_window() {
        let window = 5;
        let mut gate = QuiescenceGate::primed(window, 42u32);
        for i in 1..window {
            assert!(!gate.observe(42), "fired early at observation {i}");
        }
        assert!(gate.observe(42), "must fire at observation {window}");
        assert!(gate.observe(42), "stays fired while stable");
    }

    /// Any change resets the streak; returning to an old value is a
    /// change like any other.
    #[test]
    fn change_resets_the_streak() {
        let mut gate = QuiescenceGate::primed(3, 1u32);
        assert!(!gate.observe(1));
        assert!(!gate.observe(2), "change resets");
        assert_eq!(gate.stable_for(), 0);
        assert!(!gate.observe(1), "old value is still a change");
        assert!(!gate.observe(1));
        assert!(!gate.observe(1));
        assert!(gate.observe(1));
    }

    /// An unprimed gate needs one extra observation to seed the
    /// reference value.
    #[test]
    fn unprimed_gate_seeds_on_first_observation() {
        let mut gate = QuiescenceGate::new(2);
        assert!(!gate.observe(7u32), "seeding observation");
        assert!(!gate.observe(7));
        assert!(gate.observe(7));
        assert_eq!(gate.window(), 2);
    }

    /// Window 0 degenerates to "stop after the first observation" — the
    /// historical `run_to_quiescence(_, 0, _)` behavior.
    #[test]
    fn zero_window_fires_immediately() {
        let mut gate = QuiescenceGate::primed(0, 1u32);
        assert!(gate.observe(99), "0-window fires on any observation");
    }
}
