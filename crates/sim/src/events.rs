//! The pending-event queue behind the event-driven runner.
//!
//! A round's obligations are *one tick per enabled node* plus *one delivery
//! per message in flight at round start*. The old runner recomputed that
//! set by scanning every node and every channel (`O(n + #channels)` per
//! round even when almost nothing was happening); this queue derives it
//! from two incremental indices instead — and since the flat-fabric
//! refactor, neither index performs a single ordered-tree operation or
//! heap allocation at steady state:
//!
//! * the **tick index** ([`EventQueue::ticks`]): the set of nodes that are
//!   alive and whose [`Automaton::enabled`] predicate holds, kept in an
//!   O(1)-transition [`DenseSet`]. It is refreshed from the network's
//!   dirty-node list — only nodes whose state actually changed since the
//!   previous round are re-evaluated;
//! * the network's **occupancy index**: the non-empty channel slots,
//!   snapshot in `O(#obligations)` straight off the fabric's swap-remove
//!   occupancy list.
//!
//! Both snapshots land in reusable scratch buffers and are sorted there
//! (ticks by node id, deliveries by slot id — which on a static topology
//! is exactly `(from, to)` lexicographic order, the canonical enumeration
//! the daemons key against). The per-round cost is `O(k log k)` in the
//! round's own obligation count `k`, never in `n` or `#channels`.
//!
//! Each obligation is assigned a daemon-specific priority key
//! ([`crate::scheduler::KeySource`]) at enumeration time and the batch is
//! executed in ascending `(key, enumeration index)` order — fully
//! deterministic per `(scheduler, seed)`.

use crate::automaton::Automaton;
use crate::dense::DenseSet;
use crate::network::Network;
use crate::scheduler::{Action, KeySource};
use crate::NodeId;

/// One pending event: daemon priority key, enumeration index (total-order
/// tie-break), and the action itself.
type Pending = (u128, u32, Action);

/// A pending event that also carries the channel slot a delivery pops
/// (`NO_SLOT` for ticks), so the slot-batched executor never re-resolves
/// `(from, to)` addresses. Key and index semantics are identical to
/// [`Pending`].
pub(crate) type PendingSlot = (u128, u32, Action, u32);

/// Slot marker for tick events in a [`PendingSlot`] schedule. Never a
/// valid channel slot, so a run of equal slot values is always a run of
/// same-channel deliveries.
pub(crate) const NO_SLOT: u32 = u32::MAX;

/// Incremental obligation tracker + per-round pending-event buffers (all
/// reused round to round — the steady-state loop never allocates).
pub(crate) struct EventQueue {
    /// Alive nodes whose `enabled()` predicate held at last refresh.
    ticks: DenseSet,
    /// Bit-word mirror of `ticks` (bit `v % 64` of word `v / 64`), kept in
    /// lockstep by [`EventQueue::refresh`] regardless of the active
    /// backend, so switching backends mid-run is always safe. The SoA
    /// backend enumerates ticks by scanning these words ascending instead
    /// of sorting a scratch snapshot.
    tick_words: Vec<u64>,
    /// Reusable buffer for the current round's keyed events.
    buf: Vec<Pending>,
    /// Reusable buffer for slot-carrying schedules (batched/SoA backends).
    slot_buf: Vec<PendingSlot>,
    /// Scratch: this round's tick set, sorted by node id.
    tick_scratch: Vec<NodeId>,
    /// Scratch: this round's occupied slots, sorted by slot id.
    slot_scratch: Vec<u32>,
    /// Scratch: dirty nodes drained from the network.
    dirty_scratch: Vec<NodeId>,
    /// Per-round occupancy bit-words for the SoA backend. Scattered from
    /// the occupancy index each round and cleared word-by-word as the
    /// scan consumes them — all-zero between rounds.
    slot_words: Vec<u64>,
    /// Indices of the `slot_words` entries touched this round (the only
    /// words the scan needs to visit or sort).
    touched_words: Vec<u32>,
}

impl EventQueue {
    pub(crate) fn new() -> Self {
        EventQueue {
            ticks: DenseSet::new(),
            tick_words: Vec::new(),
            buf: Vec::new(),
            slot_buf: Vec::new(),
            tick_scratch: Vec::new(),
            slot_scratch: Vec::new(),
            dirty_scratch: Vec::new(),
            slot_words: Vec::new(),
            touched_words: Vec::new(),
        }
    }

    /// Re-evaluate the enabled-tick predicate for every node the network
    /// marked dirty since the last call.
    // lint: hot-path
    pub(crate) fn refresh<A: Automaton>(&mut self, net: &mut Network<A>) {
        let words = net.n().div_ceil(64);
        if self.tick_words.len() < words {
            self.tick_words.resize(words, 0);
        }
        net.take_dirty_into(&mut self.dirty_scratch);
        for &v in &self.dirty_scratch {
            let (w, bit) = (v as usize / 64, 1u64 << (v % 64));
            if net.is_alive(v) && net.node(v).enabled() {
                self.ticks.insert(v);
                self.tick_words[w] |= bit;
            } else {
                self.ticks.remove(v);
                self.tick_words[w] &= !bit;
            }
        }
    }

    /// Build this round's pending events (canonical enumeration order:
    /// ticks ascending by node id, then channel deliveries ascending by
    /// slot id) and hand them back sorted into daemon execution order.
    // lint: hot-path
    pub(crate) fn schedule<A: Automaton>(
        &mut self,
        round: u64,
        keys: &mut KeySource,
        net: &Network<A>,
    ) -> &[Pending] {
        self.buf.clear();
        self.tick_scratch.clear();
        self.tick_scratch.extend_from_slice(self.ticks.members());
        self.tick_scratch.sort_unstable();
        let mut seq = 0u32;
        for &v in &self.tick_scratch {
            let a = Action::Tick(v);
            self.buf.push((keys.key(round, &a), seq, a));
            seq += 1;
        }
        net.occupied_slots_into(&mut self.slot_scratch);
        self.slot_scratch.sort_unstable();
        for &s in &self.slot_scratch {
            let (from, to) = net.slot_endpoints(s);
            let a = Action::Deliver(from, to);
            for _ in 0..net.slot_len(s) {
                self.buf.push((keys.key(round, &a), seq, a));
                seq += 1;
            }
        }
        self.buf.sort_unstable_by_key(|e| (e.0, e.1));
        &self.buf
    }

    /// [`EventQueue::schedule`] for the batched backend: the same
    /// derivation (scratch snapshots of the incremental indices, sorted
    /// in place), but each delivery carries its channel slot so execution
    /// can pop channels directly in same-slot runs. Keys are requested in
    /// the identical canonical enumeration order, so the stateful daemons
    /// draw the identical streams.
    // lint: hot-path
    pub(crate) fn schedule_batched<A: Automaton>(
        &mut self,
        round: u64,
        keys: &mut KeySource,
        net: &Network<A>,
    ) -> &[PendingSlot] {
        self.slot_buf.clear();
        self.tick_scratch.clear();
        self.tick_scratch.extend_from_slice(self.ticks.members());
        self.tick_scratch.sort_unstable();
        let mut seq = 0u32;
        for &v in &self.tick_scratch {
            let a = Action::Tick(v);
            self.slot_buf.push((keys.key(round, &a), seq, a, NO_SLOT));
            seq += 1;
        }
        net.occupied_slots_into(&mut self.slot_scratch);
        self.slot_scratch.sort_unstable();
        for &s in &self.slot_scratch {
            let (from, to) = net.slot_endpoints(s);
            let a = Action::Deliver(from, to);
            for _ in 0..net.slot_len(s) {
                self.slot_buf.push((keys.key(round, &a), seq, a, s));
                seq += 1;
            }
        }
        self.slot_buf.sort_unstable_by_key(|e| (e.0, e.1));
        &self.slot_buf
    }

    /// [`EventQueue::schedule`] for the SoA backend: obligations are
    /// enumerated by scanning flat bit-word projections ascending — the
    /// always-maintained `tick_words` mirror for ticks, and a per-round
    /// scatter of the occupancy index into `slot_words` for deliveries —
    /// so the canonical ascending orders fall out of word arithmetic
    /// instead of comparison sorts over scratch vectors (the only sort is
    /// over the *touched word indices*, 64× fewer elements). Same
    /// obligations, same key-request order, same final `(key, seq)` sort.
    // lint: hot-path
    pub(crate) fn schedule_soa<A: Automaton>(
        &mut self,
        round: u64,
        keys: &mut KeySource,
        net: &Network<A>,
    ) -> &[PendingSlot] {
        self.slot_buf.clear();
        let mut seq = 0u32;
        let words = net.n().div_ceil(64).min(self.tick_words.len());
        for w in 0..words {
            let mut bits = self.tick_words[w];
            while bits != 0 {
                let v = (w * 64) as NodeId + bits.trailing_zeros();
                bits &= bits - 1;
                let a = Action::Tick(v);
                self.slot_buf.push((keys.key(round, &a), seq, a, NO_SLOT));
                seq += 1;
            }
        }
        let slot_words = net.slot_count().div_ceil(64);
        if self.slot_words.len() < slot_words {
            self.slot_words.resize(slot_words, 0);
        }
        self.touched_words.clear();
        for &s in net.occupied_slot_members() {
            let w = s / 64;
            if self.slot_words[w as usize] == 0 {
                self.touched_words.push(w);
            }
            self.slot_words[w as usize] |= 1u64 << (s % 64);
        }
        self.touched_words.sort_unstable();
        for i in 0..self.touched_words.len() {
            let w = self.touched_words[i];
            let mut bits = std::mem::take(&mut self.slot_words[w as usize]);
            while bits != 0 {
                let s = w * 64 + bits.trailing_zeros();
                bits &= bits - 1;
                let (from, to) = net.slot_endpoints(s);
                let a = Action::Deliver(from, to);
                for _ in 0..net.slot_len(s) {
                    self.slot_buf.push((keys.key(round, &a), seq, a, s));
                    seq += 1;
                }
            }
        }
        self.slot_buf.sort_unstable_by_key(|e| (e.0, e.1));
        &self.slot_buf
    }

    /// Like [`EventQueue::schedule`], but enumerating obligations the
    /// pre-engine way — full scans over all nodes and all channel slots.
    /// Same obligations, same keys, same execution order; only the
    /// discovery cost differs. Kept for the old-vs-new throughput
    /// benchmarks and as a live cross-check that the incremental indices
    /// are consistent.
    pub(crate) fn schedule_rescan<A: Automaton>(
        &mut self,
        round: u64,
        keys: &mut KeySource,
        net: &Network<A>,
    ) -> &[Pending] {
        self.buf.clear();
        let mut seq = 0u32;
        for v in 0..net.n() as NodeId {
            if net.is_alive(v) && net.node(v).enabled() {
                let a = Action::Tick(v);
                self.buf.push((keys.key(round, &a), seq, a));
                seq += 1;
            }
        }
        for s in 0..net.slot_count() as u32 {
            let len = net.slot_len(s);
            if len == 0 {
                continue;
            }
            let (from, to) = net.slot_endpoints(s);
            let a = Action::Deliver(from, to);
            for _ in 0..len {
                self.buf.push((keys.key(round, &a), seq, a));
                seq += 1;
            }
        }
        self.buf.sort_unstable_by_key(|e| (e.0, e.1));
        &self.buf
    }

    /// Current number of enabled ticks (for diagnostics/tests).
    #[cfg(test)]
    pub(crate) fn enabled_ticks(&self) -> usize {
        self.ticks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{Message, Outbox};
    use crate::scheduler::Scheduler;
    use ssmdst_graph::graph::graph_from_edges;

    /// Automaton whose enabled predicate is a toggle, to exercise the
    /// dirty-flag path.
    #[derive(Debug)]
    struct Gate {
        neighbors: Vec<NodeId>,
        open: bool,
    }

    #[derive(Debug, Clone)]
    struct Unit;
    impl Message for Unit {
        fn kind(&self) -> &'static str {
            "Unit"
        }
        fn size_bits(&self, _n: usize) -> usize {
            1
        }
    }

    impl Automaton for Gate {
        type Msg = Unit;
        fn tick(&mut self, out: &mut Outbox<Unit>) {
            for &w in &self.neighbors {
                out.send(w, Unit);
            }
        }
        fn receive(&mut self, _: NodeId, _: Unit, _: &mut Outbox<Unit>) {}
        fn enabled(&self) -> bool {
            self.open
        }
        fn on_topology_change(&mut self, neighbors: &[NodeId]) {
            self.neighbors = neighbors.to_vec();
        }
    }

    fn net(open: bool) -> Network<Gate> {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        Network::from_graph(&g, |_, nbrs| Gate {
            neighbors: nbrs.to_vec(),
            open,
        })
    }

    #[test]
    fn tick_index_tracks_enabled_predicate() {
        let mut n = net(true);
        let mut q = EventQueue::new();
        q.refresh(&mut n);
        assert_eq!(q.enabled_ticks(), 3);
        // Disable node 1; the network marks it dirty through node_mut.
        n.node_mut(1).open = false;
        q.refresh(&mut n);
        assert_eq!(q.enabled_ticks(), 2);
        n.node_mut(1).open = true;
        q.refresh(&mut n);
        assert_eq!(q.enabled_ticks(), 3);
    }

    #[test]
    fn crashed_nodes_leave_the_tick_index() {
        let mut n = net(true);
        let mut q = EventQueue::new();
        q.refresh(&mut n);
        n.crash_node(2);
        q.refresh(&mut n);
        assert_eq!(q.enabled_ticks(), 2);
        n.rejoin_node(2);
        q.refresh(&mut n);
        assert_eq!(q.enabled_ticks(), 3);
    }

    #[test]
    fn indexed_and_rescan_schedules_agree() {
        let mut n = net(true);
        let mut q = EventQueue::new();
        q.refresh(&mut n);
        n.tick_node(0);
        n.tick_node(1);
        q.refresh(&mut n);
        for sched in [Scheduler::Synchronous, Scheduler::Adversarial { seed: 3 }] {
            let mut k1 = KeySource::new(sched);
            let mut k2 = KeySource::new(sched);
            let a = q.schedule(5, &mut k1, &n).to_vec();
            let b = q.schedule_rescan(5, &mut k2, &n).to_vec();
            assert_eq!(a, b, "engines disagree under {sched:?}");
            assert_eq!(a.len(), 3 + 3, "3 ticks + 3 in-flight messages");
        }
    }

    /// Every backend derivation must produce the identical `(key, seq,
    /// action)` stream — and the slot-carrying ones must annotate each
    /// delivery with the slot that actually backs its channel.
    #[test]
    fn batched_and_soa_derivations_match_reference() {
        let mut n = net(true);
        let mut q = EventQueue::new();
        q.refresh(&mut n);
        n.tick_node(0);
        n.tick_node(1);
        n.node_mut(2).open = false; // a hole in the tick bit-words
        q.refresh(&mut n);
        for sched in [
            Scheduler::Synchronous,
            Scheduler::RandomAsync { seed: 5 },
            Scheduler::Adversarial { seed: 5 },
        ] {
            let mut k1 = KeySource::new(sched);
            let mut k2 = KeySource::new(sched);
            let mut k3 = KeySource::new(sched);
            let reference = q.schedule(4, &mut k1, &n).to_vec();
            let batched = q.schedule_batched(4, &mut k2, &n).to_vec();
            check_slotted(&n, &reference, &batched, sched, "batched");
            let soa = q.schedule_soa(4, &mut k3, &n).to_vec();
            check_slotted(&n, &reference, &soa, sched, "soa");
        }
    }

    fn check_slotted(
        n: &Network<Gate>,
        reference: &[Pending],
        slotted: &[PendingSlot],
        sched: Scheduler,
        label: &str,
    ) {
        let stripped: Vec<Pending> = slotted.iter().map(|&(k, i, a, _)| (k, i, a)).collect();
        assert_eq!(reference, &stripped[..], "{label} diverged under {sched:?}");
        for &(_, _, a, s) in slotted {
            match a {
                Action::Tick(_) => assert_eq!(s, NO_SLOT, "tick carries a slot"),
                Action::Deliver(from, to) => {
                    assert_eq!(n.slot_endpoints(s), (from, to), "{label}: wrong slot")
                }
            }
        }
    }

    #[test]
    fn schedules_agree_after_churn_recycles_slots() {
        // Slot recycling reorders slot ids relative to (from,to); both
        // enumeration paths must still agree event for event.
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let mut n = Network::from_graph(&g, |_, nbrs| Gate {
            neighbors: nbrs.to_vec(),
            open: true,
        });
        let mut q = EventQueue::new();
        q.refresh(&mut n);
        n.remove_edge(1, 2);
        n.insert_edge(0, 2); // reuses the tombstoned slots
        n.tick_node(0);
        n.tick_node(2);
        q.refresh(&mut n);
        for sched in [
            Scheduler::Synchronous,
            Scheduler::RandomAsync { seed: 9 },
            Scheduler::Adversarial { seed: 9 },
        ] {
            let mut k1 = KeySource::new(sched);
            let mut k2 = KeySource::new(sched);
            let a = q.schedule(2, &mut k1, &n).to_vec();
            let b = q.schedule_rescan(2, &mut k2, &n).to_vec();
            assert_eq!(a, b, "engines disagree under {sched:?} after churn");
            // Slot recycling breaks the slot-order == (from,to)-order
            // coincidence; the slot-carrying derivations must still agree.
            let mut k3 = KeySource::new(sched);
            let mut k4 = KeySource::new(sched);
            let batched = q.schedule_batched(2, &mut k3, &n).to_vec();
            check_slotted(&n, &a, &batched, sched, "batched");
            let soa = q.schedule_soa(2, &mut k4, &n).to_vec();
            check_slotted(&n, &a, &soa, sched, "soa");
        }
    }

    /// What the determinism contract promises about same-round ordering.
    ///
    /// Promised: the *execution* order — and hence the chained digest —
    /// is a pure function of the keyed event set. `(key, seq)` pairs are
    /// unique, so the final sort is a total order: however the pending
    /// buffer is permuted before sorting, sorting restores the identical
    /// schedule.
    #[test]
    fn execution_order_is_a_pure_function_of_the_keyed_event_set() {
        use rand::seq::SliceRandom;
        use rand::{rngs::StdRng, SeedableRng};
        let mut n = net(true);
        let mut q = EventQueue::new();
        q.refresh(&mut n);
        n.tick_node(0);
        n.tick_node(1);
        q.refresh(&mut n);
        for sched in [
            Scheduler::Synchronous,
            Scheduler::RandomAsync { seed: 11 },
            Scheduler::Adversarial { seed: 11 },
        ] {
            let mut k = KeySource::new(sched);
            let reference = q.schedule(3, &mut k, &n).to_vec();
            // (key, seq) is unique per event…
            let mut ks: Vec<(u128, u32)> = reference.iter().map(|&(k, s, _)| (k, s)).collect();
            ks.sort_unstable();
            ks.dedup();
            assert_eq!(
                ks.len(),
                reference.len(),
                "(key, seq) collision under {sched:?}"
            );
            // …so any permutation of the keyed set re-sorts to the
            // identical schedule, and the digest chained over execution
            // is invariant.
            for shuffle_seed in 0..4u64 {
                let mut permuted = reference.clone();
                permuted.shuffle(&mut StdRng::seed_from_u64(shuffle_seed));
                permuted.sort_unstable_by_key(|e| (e.0, e.1));
                assert_eq!(reference, permuted, "re-sort diverged under {sched:?}");
                assert_eq!(
                    digest_of(&reference),
                    digest_of(&permuted),
                    "digest diverged under {sched:?}"
                );
            }
        }
    }

    /// Fold an execution order into the replay digest, the way
    /// `step_round_digest` chains what actually ran.
    fn digest_of(events: &[Pending]) -> u64 {
        let mut d = crate::trace::Digest::new();
        for &(_, _, a) in events {
            match a {
                Action::Tick(v) => {
                    d.write_u32(0);
                    d.write_u32(v);
                }
                Action::Deliver(f, t) => {
                    d.write_u32(1);
                    d.write_u32(f);
                    d.write_u32(t);
                }
            }
        }
        d.value()
    }

    /// Re-derive the same obligations as [`EventQueue::schedule`] but
    /// request daemon keys in *reverse* enumeration order (seq still
    /// records canonical positions, so ties break identically).
    fn reversed_enumeration<A: Automaton>(
        q: &EventQueue,
        round: u64,
        keys: &mut KeySource,
        net: &Network<A>,
    ) -> Vec<Pending> {
        let mut actions: Vec<Action> = Vec::new();
        let mut ticks: Vec<NodeId> = q.ticks.members().to_vec();
        ticks.sort_unstable();
        for &v in &ticks {
            actions.push(Action::Tick(v));
        }
        let mut slots = Vec::new();
        net.occupied_slots_into(&mut slots);
        slots.sort_unstable();
        for &s in &slots {
            let (from, to) = net.slot_endpoints(s);
            for _ in 0..net.slot_len(s) {
                actions.push(Action::Deliver(from, to));
            }
        }
        let mut buf: Vec<Pending> = Vec::with_capacity(actions.len());
        for (i, a) in actions.iter().enumerate().rev() {
            buf.push((keys.key(round, a), i as u32, *a));
        }
        buf.sort_unstable_by_key(|e| (e.0, e.1));
        buf
    }

    /// What the contract deliberately does NOT promise: invariance to the
    /// *enumeration* (key-request) order. The stateless daemons key each
    /// action by a pure function of `(round, action)`, so they tolerate
    /// any enumeration order; `RandomAsync` draws each key from a seeded
    /// stream — the i-th request gets the i-th draw — so reversing the
    /// enumeration reassigns every key and the schedule legitimately
    /// changes. That is exactly why obligation enumeration must be
    /// canonical (ticks ascending by node id, deliveries ascending by
    /// slot id) and why R1 bans unordered collections in derivation code.
    #[test]
    fn enumeration_order_is_contractual_only_for_the_stateful_daemon() {
        let mut n = net(true);
        let mut q = EventQueue::new();
        q.refresh(&mut n);
        n.tick_node(0);
        n.tick_node(1);
        q.refresh(&mut n);
        let actions_of = |evs: &[Pending]| evs.iter().map(|&(_, _, a)| a).collect::<Vec<_>>();
        for sched in [Scheduler::Synchronous, Scheduler::Adversarial { seed: 7 }] {
            let mut k1 = KeySource::new(sched);
            let canonical = q.schedule(2, &mut k1, &n).to_vec();
            let mut k2 = KeySource::new(sched);
            let reversed = reversed_enumeration(&q, 2, &mut k2, &n);
            assert_eq!(
                actions_of(&canonical),
                actions_of(&reversed),
                "stateless daemon {sched:?} must tolerate any enumeration order"
            );
        }
        let mut k1 = KeySource::new(Scheduler::RandomAsync { seed: 7 });
        let canonical = q.schedule(2, &mut k1, &n).to_vec();
        let mut k2 = KeySource::new(Scheduler::RandomAsync { seed: 7 });
        let reversed = reversed_enumeration(&q, 2, &mut k2, &n);
        assert_ne!(
            actions_of(&canonical),
            actions_of(&reversed),
            "a stateful daemon keyed in a different enumeration order must diverge \
             (if it did not, the canonical-order rule would be unnecessary)"
        );
    }
}
