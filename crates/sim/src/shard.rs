//! Sharded round execution: the [`crate::Backend::Sharded`] engine.
//!
//! One round runs in three phases around a deterministic barrier:
//!
//! 1. **Stage** (sequential) — every non-empty channel's queue is moved
//!    out of the fabric into the inbox of the shard that owns the
//!    *receiving* node ([`Network::stage_out_channels`]). Queues travel by
//!    `mem::take`, so staging is O(occupied slots) and allocation-free.
//! 2. **Execute** (parallel) — nodes are split into contiguous ranges,
//!    one per shard (`chunks_mut`, so the borrows are disjoint). Each
//!    shard walks *its* slice of the global schedule — the events whose
//!    executing node it owns, in global order — running ticks (with the
//!    same execution-time guard re-check as the sequential backends) and
//!    deliveries (popped from the staged inboxes). Sends are not applied:
//!    they are resolved to a channel slot and banked in a per-shard
//!    outbox, tagged with the global index of the event that produced
//!    them.
//! 3. **Merge** (sequential) — the engine replays the global schedule in
//!    canonical order, applying each event's accounting (in-flight
//!    decrement for deliveries, then that event's banked sends via
//!    [`Network::merge_send`], then the in-flight high-water sample) at
//!    exactly the position the reference backend would.
//!
//! **Why digests are shard-count-invariant.** The schedule itself is
//! derived and keyed sequentially *before* any shard runs, so the digest
//! input never depends on the shard count. State equality follows from
//! three facts: (a) a node's state is only ever touched by its owning
//! shard, and that shard executes the node's events in global-schedule
//! order, (b) within one round, nodes interact only through channel
//! pushes, which the merge applies in the exact global order the
//! reference applies them, and (c) each delivery consumes a message
//! determined at round start (staged queues), so execution order across
//! shards cannot change what anyone receives. The merge then replays
//! metrics accounting in canonical order, which pins `peak_in_flight`
//! byte-for-byte. The conformance ladder (`tests/backend_conformance.rs`)
//! enforces all of this against the reference oracle.

use crate::automaton::{Automaton, Message, Outbox};
use crate::events::PendingSlot;
use crate::network::Network;
use crate::scheduler::Action;
use crate::NodeId;
use std::collections::VecDeque;

/// Outbox slot sentinel for a send that resolved to no live channel
/// (stale neighbor mirror after churn): the merge counts it as dropped.
/// Never collides with a real slot id — the fabric asserts slot ids stay
/// below `u32::MAX`.
const DROPPED: u32 = u32::MAX;

/// Per-shard working state, reused across rounds (buffers keep their
/// capacity; the steady state allocates nothing).
struct ShardState<M> {
    /// This shard's slice of the schedule: `(global event index, action,
    /// carried slot)`, ascending by global index.
    events: Vec<(u32, Action, u32)>,
    /// Staged inbound queues `(slot, queue)`, ascending by slot (staging
    /// visits slots in ascending order, and a subsequence of a sorted
    /// sequence is sorted).
    inbox: Vec<(u32, VecDeque<M>)>,
    /// Banked sends: `(global event index, slot or DROPPED, message)`,
    /// ascending by event index. `Option` lets the merge move each
    /// message out without cloning.
    outbox: Vec<(u32, u32, Option<M>)>,
    /// Global indices of ticks whose guard was false at execution time.
    /// The merge skips the in-flight sample at these positions — the
    /// reference backend samples only inside executed events.
    skipped: Vec<u32>,
    /// Executing nodes to re-mark dirty at the merge.
    dirty: Vec<NodeId>,
    /// Scratch send buffer for one atomic step.
    step_out: Outbox<M>,
    /// Merge cursors into `outbox` / `skipped`.
    out_cursor: usize,
    skip_cursor: usize,
}

impl<M> ShardState<M> {
    fn new() -> Self {
        ShardState {
            events: Vec::new(),
            inbox: Vec::new(),
            outbox: Vec::new(),
            skipped: Vec::new(),
            dirty: Vec::new(),
            step_out: Outbox::new(),
            out_cursor: 0,
            skip_cursor: 0,
        }
    }
}

/// The sharded backend's engine: owns the per-shard states so their
/// buffers survive across rounds. One per [`crate::Runner`].
pub(crate) struct ShardEngine<M> {
    shards: Vec<ShardState<M>>,
}

/// The node whose state an event mutates — ticks execute at the ticking
/// node, deliveries at the receiver. Shard ownership keys off this.
fn executing_node(act: Action) -> NodeId {
    match act {
        Action::Tick(v) => v,
        Action::Deliver(_, to) => to,
    }
}

impl<M: Message> ShardEngine<M> {
    pub(crate) fn new() -> Self {
        ShardEngine { shards: Vec::new() }
    }

    /// Execute one round's schedule across `shards` contiguous node
    /// ranges, bit-identically to the sequential backends (see the module
    /// docs for the three-phase structure and the invariance argument).
    pub(crate) fn run_round<A: Automaton<Msg = M>>(
        &mut self,
        net: &mut Network<A>,
        events: &[PendingSlot],
        shards: usize,
    ) {
        let shards = shards.max(1);
        while self.shards.len() < shards {
            self.shards.push(ShardState::new());
        }
        let n = net.n();
        // Contiguous ownership: node v belongs to shard v / chunk. A shard
        // count above n leaves trailing shards empty, which is harmless.
        let chunk = n.div_ceil(shards).max(1);
        debug_assert!(
            events.len() < u32::MAX as usize,
            "round event count overflows the u32 global event index"
        );

        // Partition the global schedule by executing-node ownership. Each
        // shard sees its events in global order (stable subsequence).
        for st in &mut self.shards[..shards] {
            st.events.clear();
            st.outbox.clear();
            st.skipped.clear();
            st.dirty.clear();
            st.out_cursor = 0;
            st.skip_cursor = 0;
        }
        for (i, &(_, _, act, slot)) in events.iter().enumerate() {
            let owner = executing_node(act) as usize / chunk;
            self.shards[owner].events.push((i as u32, act, slot));
        }

        // Stage: bank every occupied channel's queue in the receiver's
        // shard inbox (ascending slot order — see ShardState::inbox).
        let states = &mut self.shards;
        net.stage_out_channels(|slot, to, q| {
            states[to as usize / chunk].inbox.push((slot, q));
        });

        // Execute: disjoint node ranges, one worker per non-empty shard.
        // A single shard runs inline — same pipeline, no thread spawn —
        // which also keeps the steady state of `sharded:1` allocation-free.
        {
            let parts = net.fabric_parts();
            if shards == 1 {
                execute_shard(
                    &mut self.shards[0],
                    parts.nodes,
                    0,
                    parts.topo,
                    parts.out_slot,
                    parts.alive,
                    parts.dynamic,
                );
            } else {
                let (topo, out_slot, alive, dynamic) =
                    (parts.topo, parts.out_slot, parts.alive, parts.dynamic);
                std::thread::scope(|scope| {
                    let mut chunks = parts.nodes.chunks_mut(chunk);
                    for (k, st) in self.shards[..shards].iter_mut().enumerate() {
                        let Some(nodes) = chunks.next() else { break };
                        if st.events.is_empty() {
                            continue;
                        }
                        let base = (k * chunk) as NodeId;
                        scope.spawn(move || {
                            execute_shard(st, nodes, base, topo, out_slot, alive, dynamic)
                        });
                    }
                });
            }
        }

        // Return the drained queues to their slots *before* the merge
        // pushes into them (preserves each deque's capacity).
        for st in &mut self.shards[..shards] {
            for (slot, q) in st.inbox.drain(..) {
                net.return_channel(slot, q);
            }
        }

        // Merge: replay the global schedule in canonical order, applying
        // each event's accounting and banked sends at its exact position.
        self.merge(net, events, chunk);

        // Re-mark executed nodes dirty (the network dedups via its flag
        // array, so membership — not order — is what matters, and
        // membership is shard-count-independent).
        for st in &mut self.shards[..shards] {
            for &v in &st.dirty {
                net.mark_dirty(v);
            }
        }
    }

    /// The sequential round-barrier merge (see module docs, phase 3).
    // lint: hot-path
    fn merge<A: Automaton<Msg = M>>(
        &mut self,
        net: &mut Network<A>,
        events: &[PendingSlot],
        chunk: usize,
    ) {
        for (i, &(_, _, act, _)) in events.iter().enumerate() {
            let i = i as u32;
            let st = &mut self.shards[executing_node(act) as usize / chunk];
            if matches!(act, Action::Deliver(..)) {
                net.merge_deliver_accounted();
            }
            if st.skip_cursor < st.skipped.len() && st.skipped[st.skip_cursor] == i {
                // Guard-skipped tick: no sends, and the reference samples
                // in-flight only inside executed events — skip both.
                st.skip_cursor += 1;
                continue;
            }
            while st.out_cursor < st.outbox.len() && st.outbox[st.out_cursor].0 == i {
                let (_, slot, msg) = &mut st.outbox[st.out_cursor];
                let m = msg.take().expect("banked send already merged"); // lint: allow(no-panic-in-library) — the cursor visits each outbox entry exactly once
                if *slot == DROPPED {
                    net.merge_dropped_send();
                } else {
                    net.merge_send(*slot, m);
                }
                st.out_cursor += 1;
            }
            net.sample_in_flight();
        }
        for st in &self.shards {
            debug_assert_eq!(st.out_cursor, st.outbox.len(), "unmerged banked sends");
            debug_assert_eq!(st.skip_cursor, st.skipped.len(), "unconsumed skip markers");
        }
    }
}

/// Run one shard's slice of the schedule against its node range.
/// `nodes[local]` is node `base + local`; the shard only ever indexes its
/// own range because it only receives events it owns.
// lint: hot-path
fn execute_shard<A: Automaton>(
    st: &mut ShardState<A::Msg>,
    nodes: &mut [A],
    base: NodeId,
    topo: &[Vec<NodeId>],
    out_slot: &[Vec<u32>],
    alive: &[bool],
    dynamic: bool,
) {
    for i in 0..st.events.len() {
        let (evt, act, slot) = st.events[i];
        match act {
            Action::Tick(v) => {
                // Same execution-time guard re-check as the sequential
                // backends. Exact despite parallelism: only this shard
                // mutates v's state, and it replays v's events in global
                // order, so the guard sees the same history either way.
                let local = (v - base) as usize;
                if alive[v as usize] && nodes[local].enabled() {
                    nodes[local].tick(&mut st.step_out);
                    st.dirty.push(v);
                    route_banked(
                        &mut st.outbox,
                        &mut st.step_out,
                        v,
                        evt,
                        topo,
                        out_slot,
                        dynamic,
                    );
                } else {
                    st.skipped.push(evt);
                }
            }
            Action::Deliver(from, to) => {
                let local = (to - base) as usize;
                let pos = st
                    .inbox
                    .binary_search_by_key(&slot, |e| e.0)
                    .expect("delivery obligation for an unstaged slot"); // lint: allow(no-panic-in-library) — the schedule and the staging pass read the same occupancy index
                let msg = st.inbox[pos]
                    .1
                    .pop_front()
                    .expect("delivery obligation for an over-drained channel"); // lint: allow(no-panic-in-library) — one obligation per message present at round start, FIFO pops in order
                nodes[local].receive(from, msg, &mut st.step_out);
                st.dirty.push(to);
                route_banked(
                    &mut st.outbox,
                    &mut st.step_out,
                    to,
                    evt,
                    topo,
                    out_slot,
                    dynamic,
                );
            }
        }
    }
}

/// Resolve one step's sends to channel slots and bank them for the merge —
/// the address-resolution half of the sequential `route`, with the fabric
/// mutation deferred to the barrier.
// lint: hot-path
fn route_banked<M: Message>(
    outbox: &mut Vec<(u32, u32, Option<M>)>,
    out: &mut Outbox<M>,
    from: NodeId,
    evt: u32,
    topo: &[Vec<NodeId>],
    out_slot: &[Vec<u32>],
    dynamic: bool,
) {
    for (to, msg) in out.drain() {
        match topo[from as usize].binary_search(&to) {
            Ok(ix) => outbox.push((evt, out_slot[from as usize][ix], Some(msg))),
            Err(_) if dynamic => {
                // Stale neighbor mirror after churn: counted at the merge.
                outbox.push((evt, DROPPED, Some(msg)));
            }
            Err(_) => panic!("node {from} sent to non-neighbor {to}"), // lint: allow(no-panic-in-library) — protocol bug trap on static topologies, mirroring the sequential route
        }
    }
}
