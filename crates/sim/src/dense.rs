//! [`DenseSet`]: an O(1) membership set over dense `u32` keys.
//!
//! The flat message fabric needs two incremental indices — "which channel
//! slots are non-empty" and "which nodes have an enabled tick" — whose
//! empty↔non-empty transitions fire on *every* send and delivery. A
//! `BTreeSet` makes each transition `O(log k)` plus node allocations; this
//! structure makes them O(1) and allocation-free at steady state:
//!
//! * `list` — the members, unordered, contiguous (iterate / snapshot in
//!   O(k));
//! * `pos` — for every possible key, its index in `list`, or `NONE`.
//!
//! Removal swap-removes from `list` and patches the displaced member's
//! `pos` entry. The price is that `list` is unordered; callers that need a
//! canonical order (the deterministic engine does) sort their snapshot —
//! an O(k log k) cost on the *obligation count*, never on the universe
//! size, with no per-operation tree rebalancing.

/// Sentinel for "not a member".
const NONE: u32 = u32::MAX;

/// O(1) insert/remove/contains set over keys `0..universe`, with O(k)
/// unordered iteration. Grows its key space on demand.
#[derive(Debug, Clone, Default)]
pub(crate) struct DenseSet {
    list: Vec<u32>,
    pos: Vec<u32>,
}

impl DenseSet {
    pub(crate) fn new() -> Self {
        DenseSet::default()
    }

    /// Number of members.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn len(&self) -> usize {
        self.list.len()
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Whether `key` is a member. Keys beyond the current universe are
    /// simply absent.
    #[inline]
    pub(crate) fn contains(&self, key: u32) -> bool {
        self.pos.get(key as usize).is_some_and(|&p| p != NONE)
    }

    /// Insert `key`; no-op if already present. Amortized O(1) (the `pos`
    /// table grows to cover the largest key ever seen, then stays put).
    ///
    /// Index-width contract (checked in debug builds): `key` must stay
    /// below `u32::MAX` — the sentinel — and the member count below
    /// `u32::MAX`, or the position table silently corrupts. At the 10M-node
    /// scale keys are node ids or channel slots (`< 2m`), both far under
    /// the boundary, but the assertion turns a future overflow into a
    /// loud checked-build failure instead of a wrong answer.
    #[inline]
    pub(crate) fn insert(&mut self, key: u32) {
        debug_assert_ne!(key, NONE, "DenseSet key collides with the NONE sentinel");
        if self.pos.len() <= key as usize {
            self.pos.resize(key as usize + 1, NONE);
        }
        if self.pos[key as usize] == NONE {
            debug_assert!(
                self.list.len() < NONE as usize,
                "DenseSet member count overflows the u32 position table"
            );
            self.pos[key as usize] = self.list.len() as u32;
            self.list.push(key);
        }
    }

    /// Remove `key`; no-op if absent. O(1) via swap-remove.
    #[inline]
    pub(crate) fn remove(&mut self, key: u32) {
        let Some(&p) = self.pos.get(key as usize) else {
            return;
        };
        if p == NONE {
            return;
        }
        self.pos[key as usize] = NONE;
        let last = self.list.pop().expect("non-empty: key was a member"); // lint: allow(no-panic-in-library) — pos[key] != NONE proves the list holds key
        if last != key {
            self.list[p as usize] = last;
            self.pos[last as usize] = p;
        }
    }

    /// The members, unordered. Stable only until the next mutation.
    #[inline]
    pub(crate) fn members(&self) -> &[u32] {
        &self.list
    }

    /// Drop all members in O(k).
    pub(crate) fn clear(&mut self) {
        for &k in &self.list {
            self.pos[k as usize] = NONE;
        }
        self.list.clear();
    }

    /// Structural audit for [`crate::network::Network::check_invariants`]:
    /// `list` and `pos` must be exact inverses of each other.
    pub(crate) fn check_consistent(&self) {
        for (i, &k) in self.list.iter().enumerate() {
            assert_eq!(
                self.pos.get(k as usize).copied(),
                Some(i as u32),
                "DenseSet: member {k} at list[{i}] has wrong pos entry"
            );
        }
        let members = self.list.len();
        let claimed = self.pos.iter().filter(|&&p| p != NONE).count();
        assert_eq!(claimed, members, "DenseSet: pos table claims ghost members");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains_roundtrip() {
        let mut s = DenseSet::new();
        assert!(s.is_empty());
        s.insert(5);
        s.insert(2);
        s.insert(5); // idempotent
        assert_eq!(s.len(), 2);
        assert!(s.contains(5) && s.contains(2));
        assert!(!s.contains(0) && !s.contains(99));
        s.remove(5);
        assert!(!s.contains(5));
        s.remove(5); // idempotent
        s.remove(99); // beyond universe: no-op
        assert_eq!(s.members(), &[2]);
        s.check_consistent();
    }

    #[test]
    fn swap_remove_patches_displaced_member() {
        let mut s = DenseSet::new();
        for k in [10, 20, 30] {
            s.insert(k);
        }
        s.remove(10); // 30 is swapped into 10's list position
        assert!(s.contains(30) && s.contains(20) && !s.contains(10));
        s.check_consistent();
        let mut m = s.members().to_vec();
        m.sort_unstable();
        assert_eq!(m, vec![20, 30]);
    }

    #[test]
    fn clear_empties_and_stays_consistent() {
        let mut s = DenseSet::new();
        for k in 0..100 {
            s.insert(k);
        }
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(50));
        s.check_consistent();
        s.insert(7);
        assert_eq!(s.members(), &[7]);
    }

    /// Regression fence at the u32 boundary: `u32::MAX` is the NONE
    /// sentinel, so inserting it must fail loudly in checked builds
    /// rather than silently aliasing "absent" (querying or removing it is
    /// still a harmless no-op — the sentinel can never have been
    /// inserted). The assertion fires before the pos table would try to
    /// grow to cover the 4-billion-key universe.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "NONE sentinel")]
    fn sentinel_key_panics_in_checked_builds() {
        DenseSet::new().insert(u32::MAX);
    }

    #[test]
    fn sentinel_key_reads_as_absent() {
        let mut s = DenseSet::new();
        s.insert(7);
        assert!(!s.contains(u32::MAX));
        s.remove(u32::MAX); // no-op, not a panic
        assert_eq!(s.members(), &[7]);
        s.check_consistent();
    }

    #[test]
    fn heavy_churn_stays_consistent() {
        let mut s = DenseSet::new();
        for round in 0..50u32 {
            for k in 0..200u32 {
                if (k.wrapping_mul(2654435761) ^ round) & 1 == 0 {
                    s.insert(k);
                } else {
                    s.remove(k);
                }
            }
            s.check_consistent();
        }
    }
}
